#!/usr/bin/env python
"""SOR on a Poisson problem: the convergence claim of the paper's §1.

Gauss-Seidel converges quadratically faster than Jacobi, and SOR with
the optimal relaxation factor faster still [Greenbaum 1997] — that is
*why* in-place stencils are worth generating good code for. This example
solves a 2D Poisson problem three ways using the *generated* kernels
(Jacobi's out-of-place pattern and SOR's in-place one through the same
compiler) and prints the iteration counts.

Run:  python examples/sor_poisson.py
"""

import numpy as np

from repro.cfdlib.solvers import optimal_sor_omega, poisson_residual
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d, jacobi_5pt_2d


def compiled_sweep(pattern, body, n):
    module = frontend.build_stencil_kernel(pattern, (n, n), body)
    return StencilCompiler(CompileOptions(vectorize=32)).compile(module)


def solve(kernel, b_term, u0, f, h, tol, max_iters=4000):
    u = u0.copy()
    for it in range(1, max_iters + 1):
        (u,) = kernel(u, b_term, u)
        if it % 10 == 0 and poisson_residual(u[0], f, h) < tol:
            return u, it
    return u, max_iters


def main() -> None:
    n = 34
    h = 1.0 / (n - 1)
    x = np.linspace(0, 1, n)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    f = -2.0 * np.pi**2 * np.sin(np.pi * xx) * np.sin(np.pi * yy)
    # In the (B + sum neighbours)/d normal form, B = -h^2 f.
    b_term = (-(h * h) * f)[None]
    u0 = np.zeros((1, n, n))
    tol = 1e-8
    omega = optimal_sor_omega(n - 2)

    runs = {
        "Jacobi (out-of-place)": compiled_sweep(
            jacobi_5pt_2d(), frontend.identity_body(4.0), n
        ),
        "Gauss-Seidel (in-place)": compiled_sweep(
            gauss_seidel_5pt_2d(), frontend.identity_body(4.0), n
        ),
        f"SOR omega={omega:.3f}": compiled_sweep(
            gauss_seidel_5pt_2d(), frontend.sor_body(omega, 4.0), n
        ),
    }

    print(f"2D Poisson, {n}x{n}, target residual {tol:g}\n")
    iters = {}
    for name, kernel in runs.items():
        u, it = solve(kernel, b_term, u0, f, h, tol)
        iters[name] = it
        res = poisson_residual(u[0], f, h)
        print(f"  {name:26s}: {it:5d} sweeps (residual {res:.2e})")

    jac = iters["Jacobi (out-of-place)"]
    gs = iters["Gauss-Seidel (in-place)"]
    print(f"\nGauss-Seidel needed {jac / gs:.1f}x fewer sweeps than Jacobi "
          "(the asymptotic factor is 2); SOR improves on both — the reason "
          "the paper targets in-place stencils despite their harder "
          "parallelization.")
    assert gs < jac


if __name__ == "__main__":
    main()
