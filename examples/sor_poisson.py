#!/usr/bin/env python
"""SOR on a Poisson problem: the convergence claim of the paper's §1.

Gauss-Seidel converges quadratically faster than Jacobi, and SOR with
the optimal relaxation factor faster still [Greenbaum 1997] — that is
*why* in-place stencils are worth generating good code for. This example
solves a 2D Poisson problem three ways using *generated* kernels, all
written as plain-Python ``@stencil`` functions:

* Jacobi uses the **split form** ``(y, x, b, i, j)`` — output and
  input are different fields, so every read is previous-iteration (U);
* Gauss-Seidel uses the **single-field form** ``(u, b, i, j)`` — the
  frontend infers the L/U split from the read offsets' signs (§2.1);
* SOR is Gauss-Seidel plus a weighted *center* read, with the folded
  relaxation coefficients captured from the enclosing scope.

Run:  python examples/sor_poisson.py
"""

import numpy as np

from repro.cfdlib.solvers import optimal_sor_omega, poisson_residual
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.frontend import stencil


@stencil
def jacobi(y, x, b, i, j):
    y[i, j] = (b[i, j] + x[i - 1, j] + x[i, j - 1]
               + x[i, j + 1] + x[i + 1, j]) / 4.0


@stencil
def gauss_seidel(u, b, i, j):
    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
               + u[i, j + 1] + u[i + 1, j]) / 4.0


def sor_program(omega, d=4.0):
    """SOR folded into the Eq. 2 normal form (cf.
    :func:`repro.core.frontend.sor_body`): divide by ``d/omega`` and
    blend the previous iterate in through a weighted center read."""
    d_eff = d / omega
    coeff = (1.0 - omega) * d / omega

    @stencil
    def sor(u, b, i, j):
        u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1] + u[i, j + 1]
                   + u[i + 1, j] + coeff * u[i, j]) / d_eff

    return sor


def compiled_sweep(program, n):
    module = program.build_module((n, n))
    return StencilCompiler(CompileOptions(vectorize=32)).compile(module)


def solve(kernel, b_term, u0, f, h, tol, max_iters=4000):
    u = u0.copy()
    for it in range(1, max_iters + 1):
        (u,) = kernel(u, b_term, u)
        if it % 10 == 0 and poisson_residual(u[0], f, h) < tol:
            return u, it
    return u, max_iters


def main() -> None:
    n = 34
    h = 1.0 / (n - 1)
    x = np.linspace(0, 1, n)
    xx, yy = np.meshgrid(x, x, indexing="ij")
    f = -2.0 * np.pi**2 * np.sin(np.pi * xx) * np.sin(np.pi * yy)
    # In the (B + sum neighbours)/d normal form, B = -h^2 f.
    b_term = (-(h * h) * f)[None]
    u0 = np.zeros((1, n, n))
    tol = 1e-8
    omega = optimal_sor_omega(n - 2)

    runs = {
        "Jacobi (out-of-place)": compiled_sweep(jacobi, n),
        "Gauss-Seidel (in-place)": compiled_sweep(gauss_seidel, n),
        f"SOR omega={omega:.3f}": compiled_sweep(sor_program(omega), n),
    }

    print(f"2D Poisson, {n}x{n}, target residual {tol:g}\n")
    iters = {}
    for name, kernel in runs.items():
        u, it = solve(kernel, b_term, u0, f, h, tol)
        iters[name] = it
        res = poisson_residual(u[0], f, h)
        print(f"  {name:26s}: {it:5d} sweeps (residual {res:.2e})")

    jac = iters["Jacobi (out-of-place)"]
    gs = iters["Gauss-Seidel (in-place)"]
    print(f"\nGauss-Seidel needed {jac / gs:.1f}x fewer sweeps than Jacobi "
          "(the asymptotic factor is 2); SOR improves on both — the reason "
          "the paper targets in-place stencils despite their harder "
          "parallelization.")
    assert gs < jac


if __name__ == "__main__":
    main()
