#!/usr/bin/env python
"""The paper's §4.3 end-to-end case: 3D Euler with LU-SGS.

Builds the full implicit solver of Fig. 14 in the cfd dialect — periodic
ghost refresh, Roe fluxes via three ``cfd.faceIteratorOp``, forward and
backward Gauss-Seidel sweeps (the backward one using the sign-inverted
pattern with initial-content reads), pointwise state update — compiles it
through the whole pipeline, and compares it with both the reference
transcription and the elsA-like hand-optimized solver on a periodic
density wave.

Run:  python examples/euler_lusgs.py
"""

import time

import numpy as np

from repro.baselines.elsa import elsa_solve
from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers
from repro.cfdlib.lusgs import (
    LUSGSConfig,
    build_lusgs_module,
    lusgs_reference,
    stable_dt,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.core.pipeline import CompileOptions, StencilCompiler


def main() -> None:
    n, steps = 12, 2
    mesh = StructuredMesh((n, n, n))
    w0 = euler.density_wave((n, n, n), amplitude=0.05)
    config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh, cfl=1.0))
    print(f"3D Euler, periodic box {n}^3, dt={config.dt:.4f}, "
          f"{steps} implicit steps (Roe flux + LU-SGS)")

    module = build_lusgs_module(config, steps=steps)
    ops = [op.name for op in module.walk()]
    print(f"IR: {ops.count('cfd.faceIteratorOp')} faceIterator ops, "
          f"{ops.count('cfd.stencilOp')} stencil sweeps (Fig. 14 graph)")

    options = CompileOptions(
        subdomain_sizes=(6, 6, 12),
        tile_sizes=(3, 3, 12),
        fuse=True,
        parallel=True,
        vectorize=12,
    )
    kernel = StencilCompiler(options).compile(module, entry="lusgs")

    start = time.perf_counter()
    (w_gen,) = kernel(add_ghost_layers(w0))
    t_gen = time.perf_counter() - start
    inner = (slice(None),) + (slice(1, -1),) * 3

    start = time.perf_counter()
    w_elsa = elsa_solve(w0, config, steps=steps)
    t_elsa = time.perf_counter() - start

    print("reference (pure-Python transcription) ...")
    w_ref = lusgs_reference(w0, config, steps=steps)

    err_gen = float(np.abs(w_gen[inner] - w_ref).max())
    err_elsa = float(np.abs(w_elsa - w_ref).max())
    euler.validate_state(w_gen[inner])

    cells = n**3
    print(f"\n  generated solver : {t_gen * 1e3:8.1f} ms "
          f"({t_gen / (steps * cells) * 1e6:.2f} us/cell/step), "
          f"max err {err_gen:.1e}")
    print(f"  elsA-like (hand) : {t_elsa * 1e3:8.1f} ms "
          f"({t_elsa / (steps * cells) * 1e6:.2f} us/cell/step), "
          f"max err {err_elsa:.1e}")
    assert err_gen < 1e-8 and err_elsa < 1e-8
    print("\nOK: the generated implicit solver matches the hand-optimized "
          "one (the paper's Fig. 15 claim at our scale).")


if __name__ == "__main__":
    main()
