#!/usr/bin/env python
"""The paper's use case (d): 3D heat equation solved implicitly.

Builds the three-phase program of Fig. 9/10 — laplacian RHS, in-place
6-point Gauss-Seidel on the temperature increment, pointwise update —
compiles it with each of the four ablation configurations of §4.2
(Tr1..Tr4), verifies them against the direct reference, and reports the
measured single-thread times (the paper's Fig. 13, left edge).

The Gauss-Seidel phase is written as a plain-Python ``@stencil`` kernel
inside :func:`repro.cfdlib.heat.build_heat3d_module`: the frontend
infers the 6-point L/U pattern statically and emits IR identical to the
previous hand-built version (the parity tests pin this).

Run:  python examples/heat3d_implicit.py
"""

import time

import numpy as np

from repro.cfdlib.heat import (
    build_heat3d_module,
    heat3d_reference,
    initial_temperature,
)
from repro.core.pipeline import StencilCompiler, ablation_options


def main() -> None:
    n, steps = 24, 2
    subdomains, tiles, vf = (6, 12, 22), (6, 6, 22), 22

    t0 = initial_temperature(n)
    dt0 = np.zeros((n, n, n))
    print(f"domain {n}^3, {steps} implicit steps")
    print("reference (direct transcription of Fig. 9) ...")
    expected, _ = heat3d_reference(t0, dt0, steps)

    results = {}
    for tr, label in (
        ("Tr1", "sub-domain parallelism"),
        ("Tr2", "+ tiling & fusion"),
        ("Tr3", "Tr1 + vectorization"),
        ("Tr4", "all transformations"),
    ):
        module = build_heat3d_module(n, steps)
        options = ablation_options(tr, subdomains, tiles, vf=vf)
        kernel = StencilCompiler(options).compile(module, entry="heat")
        start = time.perf_counter()
        (result,) = kernel(t0[None], dt0[None])
        elapsed = time.perf_counter() - start
        error = float(np.abs(result[0] - expected).max())
        assert error < 1e-9, f"{tr} diverged: {error}"
        results[tr] = elapsed
        print(f"  {tr} ({label:24s}): {elapsed * 1e3:8.1f} ms   "
              f"max err {error:.1e}")

    speedup = results["Tr1"] / results["Tr4"]
    print(f"\nTr4 vs Tr1 at one thread: {speedup:.2f}x "
          "(vectorization dominates sequentially; Fig. 13 shows fusion "
          "taking over at high thread counts)")


if __name__ == "__main__":
    main()
