#!/usr/bin/env python
"""Quickstart: compile and run a 2D Gauss-Seidel in-place stencil.

This walks the full path of the paper in ~50 lines:

1. describe the stencil pattern (the L/U split of Eq. 2);
2. build a ``cfd.stencilOp`` kernel with the frontend;
3. compile it with the full pipeline — sub-domain wavefronts, cache
   tiling, fusion, partial vectorization;
4. run it on NumPy arrays and check it against the textbook sweep.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import naive
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d


def main() -> None:
    n = 130
    iterations = 5
    pattern = gauss_seidel_5pt_2d()
    print(f"pattern: {pattern}")
    print(f"  L (current-iteration reads): {pattern.l_offsets}")
    print(f"  U (previous-iteration reads): {pattern.u_offsets}")

    # The kernel: `iterations` in-place sweeps of
    #     Y[i,j] = (B[i,j] + Y[i-1,j] + Y[i,j-1] + X[i,j+1] + X[i+1,j]) / 4
    module = frontend.build_stencil_kernel(
        pattern, (n, n), frontend.identity_body(4.0), iterations=iterations
    )

    options = CompileOptions(
        subdomain_sizes=(32, 64),  # wavefront-parallel sub-domains (§2.3)
        tile_sizes=(16, 32),       # L2 cache blocking (§2.1)
        fuse=True,                 # producers recomputed per tile (§2.2)
        vectorize=32,              # partial vectorization (§2.4)
        parallel=True,             # cfd.get_parallel_blocks groups (§3.4)
    )
    compiler = StencilCompiler(options)
    kernel = compiler.compile(module)
    print(f"\npipeline: {compiler.pass_manager.pipeline_description()}")
    print(f"generated code: {len(kernel.source.splitlines())} lines of Python")

    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, n, n))
    b = rng.standard_normal((1, n, n))
    (y,) = kernel(x, b, x.copy())

    # The ground truth: the plain lexicographic in-place sweep.
    expected = x[0].copy()
    for _ in range(iterations):
        expected = naive.gauss_seidel_sweep_python(
            expected, b[0], pattern, 4.0
        )
    error = float(np.abs(y[0] - expected).max())
    print(f"\nmax |generated - reference| after {iterations} sweeps: {error:.3e}")
    assert error < 1e-10
    print("OK: the optimized kernel reproduces the textbook Gauss-Seidel.")


if __name__ == "__main__":
    main()
