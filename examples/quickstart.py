#!/usr/bin/env python
"""Quickstart: compile and run a 2D Gauss-Seidel in-place stencil.

This walks the full path of the paper in ~50 lines:

1. write the update as a plain Python kernel under ``@stencil`` — the
   frontend statically infers the L/U split of Eq. 2 from the read
   offsets' sign structure (§2.1);
2. build a ``cfd.stencilOp`` kernel from the analyzed program;
3. compile it with the full pipeline — sub-domain wavefronts, cache
   tiling, fusion, partial vectorization;
4. run it on NumPy arrays and check it against the textbook sweep.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import naive
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.frontend import stencil


#: The kernel: one in-place sweep of
#:     u[i,j] = (b[i,j] + u[i-1,j] + u[i,j-1] + u[i,j+1] + u[i+1,j]) / 4
#: The reads at (-1,0) and (0,-1) are lexicographically *negative* — the
#: sweep has already updated those cells, so they are current-iteration
#: (L) reads; (0,1) and (1,0) are positive — previous-iteration (U).
#: The frontend proves this classification; nothing is annotated.
@stencil
def gauss_seidel(u, b, i, j):
    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
               + u[i, j + 1] + u[i + 1, j]) / 4.0


def main() -> None:
    n = 130
    iterations = 5
    pattern = gauss_seidel.pattern
    print(f"inferred: {gauss_seidel.summary.describe()}")
    print(f"  L (current-iteration reads): {pattern.l_offsets}")
    print(f"  U (previous-iteration reads): {pattern.u_offsets}")

    module = gauss_seidel.build_module((n, n), iterations=iterations)

    options = CompileOptions(
        subdomain_sizes=(32, 64),  # wavefront-parallel sub-domains (§2.3)
        tile_sizes=(16, 32),       # L2 cache blocking (§2.1)
        fuse=True,                 # producers recomputed per tile (§2.2)
        vectorize=32,              # partial vectorization (§2.4)
        parallel=True,             # cfd.get_parallel_blocks groups (§3.4)
    )
    compiler = StencilCompiler(options)
    kernel = compiler.compile(module)
    print(f"\npipeline: {compiler.pass_manager.pipeline_description()}")
    print(f"generated code: {len(kernel.source.splitlines())} lines of Python")

    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, n, n))
    b = rng.standard_normal((1, n, n))
    (y,) = kernel(x, b, x.copy())

    # The ground truth: the plain lexicographic in-place sweep.
    expected = x[0].copy()
    for _ in range(iterations):
        expected = naive.gauss_seidel_sweep_python(
            expected, b[0], pattern, 4.0
        )
    error = float(np.abs(y[0] - expected).max())
    print(f"\nmax |generated - reference| after {iterations} sweeps: {error:.3e}")
    assert error < 1e-10
    print("OK: the optimized kernel reproduces the textbook Gauss-Seidel.")


if __name__ == "__main__":
    main()
