#!/usr/bin/env python
"""Inspect the compiler: watch the IR transform, stage by stage.

Prints the 5-point Gauss-Seidel kernel's IR after each pass of the full
pipeline — frontend ``cfd.stencilOp``, sub-domain ``cfd.tiled_loop`` with
``cfd.get_parallel_blocks``, cache tiles, and finally the partially
vectorized loops of Fig. 7 — then the generated Python/NumPy source,
the midend optimizer's effect on it, the per-pass translation-validation
certificates, and the per-pass timing breakdown.

Run:  python examples/inspect_pipeline.py
"""

from repro.codegen.executor import compile_function
from repro.core import frontend
from repro.core.fusion import FuseProducersPass
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.core.tiling import TileStencilsPass
from repro.core.vectorization import VectorizeStencilsPass
from repro.ir import PassManager
from repro.ir.printer import print_module


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    pattern = gauss_seidel_5pt_2d()
    module = frontend.build_stencil_kernel(
        pattern, (32, 32), frontend.identity_body(4.0)
    )
    banner("1. Frontend output: cfd.stencilOp with the pattern attribute")
    print(print_module(module))

    PassManager(
        [TileStencilsPass((16, 16), with_groups=True, level=0)]
    ).run(module)
    banner("2. After sub-domain tiling: cfd.tiled_loop + "
           "cfd.get_parallel_blocks (Fig. 6, §3.4)")
    text = print_module(module)
    print("\n".join(text.splitlines()[:60]))
    print(f"    ... ({len(text.splitlines())} lines total)")

    PassManager([VectorizeStencilsPass(vf=8)]).run(module)
    banner("3. After partial vectorization: vector.transfer_read + "
           "unrolled scalar recurrence + peeled loop (Fig. 7)")
    text = print_module(module)
    vec_lines = [
        line for line in text.splitlines() if "vector." in line
    ]
    print(f"{len(vec_lines)} vector ops; a sample:")
    print("\n".join(vec_lines[:10]))

    kernel = compile_function(module)
    banner("4. Generated Python/NumPy (the backend's 'LLVM')")
    print("\n".join(kernel.source.splitlines()[:50]))
    print(f"    ... ({len(kernel.source.splitlines())} lines total)")

    banner("5. The midend optimizer (fold + CSE + LICM + DCE) and "
           "per-pass timings")
    options = CompileOptions(
        subdomain_sizes=(16, 16), tile_sizes=(4, 8), fuse=True,
        parallel=True, vectorize=8, use_cache=False,
        validate_passes=True,
    )
    lines = {}
    for opt_level in (0, 2):
        options.opt_level = opt_level
        fresh = frontend.build_stencil_kernel(
            pattern, (32, 32), frontend.identity_body(4.0)
        )
        compiler = StencilCompiler(options)
        k = compiler.compile(fresh)
        lines[opt_level] = len(k.source.splitlines())
    print(f"generated source: O0 {lines[0]} lines -> O2 {lines[2]} lines")

    banner("6. Per-pass translation validation: every pass certifies "
           "dependence preservation (TV001-TV007)")
    validator = compiler.pass_manager.validator
    width = max(len(c["after_pass"]) for c in validator.certificates)
    for cert in validator.certificates:
        status = "CERTIFIED" if not cert["violations"] else (
            f"{cert['violations']} VIOLATION(S)"
        )
        detail = ", ".join(
            f"site #{s['site']}: {s.get('instances', 0)} instances, "
            f"{s.get('flow_edges', 0)} flow edges ({s['status']})"
            for s in cert["sites"]
        )
        print(f"  {cert['after_pass'].ljust(width)}  {status:9s}  {detail}")
    print()
    print(compiler.pass_manager.timing_report(
        title=f"pass timings [{options.describe()}]"
    ))


if __name__ == "__main__":
    main()
