"""Legacy setup shim: enables `pip install -e .` without network access
(the sandbox has no `wheel` package, so the PEP 517 editable path fails)."""

from setuptools import setup

setup()
