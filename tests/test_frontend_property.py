"""Property test: the frontend's inferred L/U split always agrees with
the dependence engine's independent re-derivation from the built IR.

The frontend classifies reads from the *source* (AST sign structure,
§2.1); :func:`repro.analysis.dependence.stencil_raw_attrs` re-decodes
the L/U split from the *raw pattern attribute* of the emitted
``cfd.stencilOp`` — a completely separate enumeration (row-major box
positions re-centered by radii). Hypothesis drives randomly generated
affine kernels through both and requires exact agreement; any
disagreement is precisely what the gating FE012 cross-check exists to
catch, so this property holding is what keeps FE012 silent on good
kernels.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.analysis.dependence import lex_sign, stencil_raw_attrs
from repro.dialects import cfd
from repro.frontend import stencil_from_source

_INDEX_VARS = ("i", "j", "k")


def _box_offsets(rank):
    return [
        off
        for off in itertools.product((-1, 0, 1), repeat=rank)
        if any(off)
    ]


def _subscript(offset):
    parts = []
    for var, c in zip(_INDEX_VARS, offset):
        if c == 0:
            parts.append(var)
        elif c > 0:
            parts.append(f"{var} + {c}")
        else:
            parts.append(f"{var} - {-c}")
    return ", ".join(parts)


_WEIGHTS = st.sampled_from([None, 0.5, 2.0, -1.5])


@st.composite
def _kernels(draw):
    rank = draw(st.integers(min_value=1, max_value=3))
    offsets = draw(
        st.lists(
            st.sampled_from(_box_offsets(rank)),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    weights = [draw(_WEIGHTS) for _ in offsets]
    center_weight = draw(st.sampled_from([None, 0.25, -2.0]))
    divisor = draw(st.sampled_from([4.0, 6.0, 2.5]))
    sweep = draw(st.sampled_from([1, -1]))
    idx = ", ".join(_INDEX_VARS[:rank])
    terms = [f"b[{idx}]"]
    for off, w in zip(offsets, weights):
        read = f"u[{_subscript(off)}]"
        terms.append(read if w is None else f"({w!r}) * {read}")
    if center_weight is not None:
        terms.append(f"({center_weight!r}) * u[{idx}]")
    src = (
        f"def k(u, b, {idx}):\n"
        f"    u[{idx}] = ({' + '.join(terms)}) / {divisor!r}\n"
    )
    return src, rank, offsets, sweep


@given(_kernels())
@settings(max_examples=60, deadline=None)
def test_inferred_lu_matches_dependence_engine(case):
    src, rank, offsets, sweep = case
    program = stencil_from_source(src, sweep=sweep)

    # What §2.1 demands: reads behind the sweep are current-iteration.
    expected_l = {o for o in offsets if lex_sign(o) * sweep < 0}
    expected_u = {o for o in offsets if lex_sign(o) * sweep > 0}
    assert set(program.summary.l_offsets) == expected_l
    assert set(program.summary.u_offsets) == expected_u

    # Build the IR (the gating FE012 cross-check already runs inside) and
    # re-derive the split from the raw attribute with the dependence
    # engine — not the StencilPattern that produced it.
    module = program.build_module(tuple([8] * rank))
    ops = [
        op
        for op in module.walk()
        if op.name == cfd.StencilOp.OP_NAME
    ]
    assert len(ops) == 1
    raw = stencil_raw_attrs(ops[0])
    assert raw is not None
    raw_rank, raw_l, raw_u, raw_sweep, raw_initial = raw
    assert raw_rank == rank
    assert set(raw_l) == expected_l
    assert set(raw_u) == expected_u
    assert raw_sweep == sweep
    assert raw_initial is False
