"""Tests for the CFD substrate: mesh, boundaries, solvers, Euler, Roe."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfdlib import euler
from repro.cfdlib.boundary import (
    add_ghost_layers,
    apply_dirichlet,
    apply_periodic,
    strip_ghost_layers,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.cfdlib.roe import roe_flux, rusanov_flux
from repro.cfdlib.solvers import (
    optimal_sor_omega,
    poisson_residual,
    solve_poisson,
    spectral_radius_model_problem,
)


class TestMesh:
    def test_geometry(self):
        mesh = StructuredMesh((4, 8, 16), extent=(1.0, 2.0, 4.0))
        assert mesh.spacing == (0.25, 0.25, 0.25)
        assert mesh.num_cells == 4 * 8 * 16
        assert mesh.cell_volume == pytest.approx(0.25**3)
        assert mesh.face_area(0) == pytest.approx(0.25**2)

    def test_cell_centers(self):
        mesh = StructuredMesh((4,), extent=(1.0,))
        np.testing.assert_allclose(
            mesh.cell_centers(0), [0.125, 0.375, 0.625, 0.875]
        )

    def test_field_shape(self):
        mesh = StructuredMesh((3, 3, 3))
        assert mesh.field(nb_var=5).shape == (5, 3, 3, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            StructuredMesh((0, 4))
        with pytest.raises(ValueError):
            StructuredMesh((4, 4), extent=(1.0,))
        with pytest.raises(ValueError):
            StructuredMesh((4,), extent=(-1.0,))


class TestBoundary:
    def test_ghost_roundtrip(self):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((2, 4, 5))
        padded = add_ghost_layers(f)
        assert padded.shape == (2, 6, 7)
        np.testing.assert_array_equal(strip_ghost_layers(padded), f)

    def test_periodic_wraps(self):
        f = np.zeros((1, 5))
        f[0, 1:4] = [10.0, 20.0, 30.0]
        apply_periodic(f)
        assert f[0, 0] == 30.0  # low ghost = high interior
        assert f[0, 4] == 10.0  # high ghost = low interior

    def test_periodic_2d_corners_consistent(self):
        rng = np.random.default_rng(1)
        f = add_ghost_layers(rng.standard_normal((1, 3, 3)))
        apply_periodic(f)
        # Corner ghost equals the diagonally opposite interior cell.
        assert f[0, 0, 0] == f[0, 3, 3]
        assert f[0, -1, -1] == f[0, 1, 1]

    def test_dirichlet(self):
        f = np.ones((2, 4, 4))
        apply_dirichlet(f, values=[5.0, -1.0])
        assert np.all(f[0, 0, :] == 5.0)
        assert np.all(f[1, :, -1] == -1.0)
        assert np.all(f[:, 1:-1, 1:-1] == 1.0)


class TestPoissonSolvers:
    @pytest.fixture()
    def problem(self):
        n = 17
        x = np.linspace(0, 1, n)
        xx, yy = np.meshgrid(x, x, indexing="ij")
        f = -2.0 * np.pi**2 * np.sin(np.pi * xx) * np.sin(np.pi * yy)
        return f, 1.0 / (n - 1)

    def test_gauss_seidel_converges(self, problem):
        f, h = problem
        u, report = solve_poisson(f, "gauss_seidel", max_iterations=1500, h=h)
        assert report.converged
        assert poisson_residual(u, f, h) < 1e-8

    def test_gauss_seidel_beats_jacobi(self, problem):
        """The §1 claim: GS converges ~2x faster than Jacobi."""
        f, h = problem
        _, gs = solve_poisson(f, "gauss_seidel", max_iterations=2000, h=h)
        _, jac = solve_poisson(f, "jacobi", max_iterations=2000, h=h)
        assert gs.iterations < jac.iterations
        # The rate should be roughly the square (allow slack).
        assert gs.convergence_rate() < jac.convergence_rate()

    def test_sor_beats_gauss_seidel(self, problem):
        f, h = problem
        n = f.shape[0] - 2
        omega = optimal_sor_omega(n)
        _, gs = solve_poisson(f, "gauss_seidel", max_iterations=2000, h=h)
        _, sor = solve_poisson(f, "sor", omega=omega, max_iterations=2000, h=h)
        assert sor.iterations < gs.iterations

    def test_symmetric_gs_converges(self, problem):
        f, h = problem
        _, sym = solve_poisson(f, "symmetric_gs", max_iterations=1000, h=h)
        assert sym.converged

    def test_spectral_radius_ordering(self):
        n = 31
        jac = spectral_radius_model_problem(n, "jacobi")
        gs = spectral_radius_model_problem(n, "gauss_seidel")
        assert gs == pytest.approx(jac**2)
        assert spectral_radius_model_problem(n, "sor", optimal_sor_omega(n)) < gs

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_poisson(np.zeros((4, 4)), "magic")


class TestEulerState:
    def test_primitive_roundtrip(self):
        rng = np.random.default_rng(2)
        rho = 1.0 + 0.5 * rng.random((4, 4, 4))
        vel = [rng.standard_normal((4, 4, 4)) * 0.3 for _ in range(3)]
        p = 1.0 + 0.5 * rng.random((4, 4, 4))
        w = euler.conservative_from_primitive(rho, vel, p)
        rho2, vel2, p2 = euler.primitive_from_conservative(w)
        np.testing.assert_allclose(rho2, rho, rtol=1e-13)
        np.testing.assert_allclose(p2, p, rtol=1e-12)
        for v, v2 in zip(vel, vel2):
            np.testing.assert_allclose(v2, v, rtol=1e-12)

    def test_sound_speed_positive(self):
        w = euler.uniform_flow((3, 3, 3))
        assert np.all(euler.sound_speed(w) > 0)

    def test_flux_of_quiescent_gas(self):
        w = euler.uniform_flow((2, 2, 2), velocity=(0, 0, 0), rho=1.0, p=1.0)
        f = euler.flux(w, 0)
        np.testing.assert_allclose(f[0], 0.0, atol=1e-14)  # no mass flux
        np.testing.assert_allclose(f[1], 1.0)  # pressure only
        np.testing.assert_allclose(f[4], 0.0, atol=1e-14)

    def test_validate_state(self):
        w = euler.uniform_flow((2, 2, 2))
        euler.validate_state(w)
        bad = w.copy()
        bad[0, 0, 0, 0] = -1.0
        with pytest.raises(ValueError, match="density"):
            euler.validate_state(bad)

    def test_initial_conditions_physical(self):
        for w in (
            euler.uniform_flow((4, 4, 4)),
            euler.density_wave((4, 4, 4)),
            euler.gaussian_pressure_pulse((4, 4, 4)),
        ):
            euler.validate_state(w)


@st.composite
def _random_states(draw):
    rho = draw(st.floats(0.2, 5.0))
    u = tuple(draw(st.floats(-1.5, 1.5)) for _ in range(3))
    p = draw(st.floats(0.2, 5.0))
    return rho, u, p


class TestRoeFlux:
    @staticmethod
    def _state(rho, u, p):
        ones = np.ones((1,))
        return euler.conservative_from_primitive(
            rho * ones, [ui * ones for ui in u], p * ones
        )

    @given(_random_states())
    @settings(max_examples=40, deadline=None)
    def test_consistency(self, state):
        """F_roe(u, u) = f(u) — the defining property of a numerical flux."""
        rho, u, p = state
        w = self._state(rho, u, p)
        for axis in range(3):
            np.testing.assert_allclose(
                roe_flux(w, w, axis),
                euler.flux(w, axis),
                rtol=1e-10,
                atol=1e-12,
            )

    def test_supersonic_upwinding(self):
        """Fully supersonic flow: the Roe flux equals the upwind flux."""
        wl = self._state(1.0, (3.0, 0.0, 0.0), 1.0)  # M ~ 2.5
        wr = self._state(0.9, (3.1, 0.0, 0.0), 1.1)
        f = roe_flux(wl, wr, 0)
        np.testing.assert_allclose(f, euler.flux(wl, 0), rtol=1e-10)

    def test_dissipation_sign(self):
        """Roe adds dissipation: flux differs from the central average
        in the direction opposing the jump."""
        wl = self._state(1.0, (0.1, 0, 0), 1.0)
        wr = self._state(0.5, (0.1, 0, 0), 0.5)
        central = 0.5 * (euler.flux(wl, 0) + euler.flux(wr, 0))
        f = roe_flux(wl, wr, 0)
        # Dissipation is active on a genuine jump: the Roe flux differs
        # from the central average.
        assert float(np.abs(f - central).max()) > 1e-6

    @given(_random_states(), st.floats(0.3, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_rusanov_more_dissipative_on_contact(self, s1, rho_r):
        """For a pure density jump (a contact), only the entropy wave is
        active: Roe dissipates with |u| while Rusanov uses |u| + c, so the
        Rusanov mass flux deviates at least as much from the average."""
        rho_l, u, p = s1
        w_l = self._state(rho_l, u, p)
        w_r = self._state(rho_r, u, p)
        central = 0.5 * (euler.flux(w_l, 0) + euler.flux(w_r, 0))
        roe_d = np.abs(roe_flux(w_l, w_r, 0)[0] - central[0]).item()
        rus_d = np.abs(rusanov_flux(w_l, w_r, 0)[0] - central[0]).item()
        assert rus_d >= roe_d - 1e-10
