"""The wavefront race detector: CSR replay and corruption."""

import pytest

from repro.analysis import (
    check_csr_schedule,
    check_get_parallel_blocks,
    derive_block_offsets,
)
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.scheduling import compute_parallel_blocks
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
)

DEPS_2D = [(-1, 0), (0, -1)]


def _canonical_csr(num_blocks, deps=None):
    return compute_parallel_blocks(num_blocks, deps or DEPS_2D)


def _codes(diags):
    return sorted({d.code for d in diags})


class TestDeriveBlockOffsets:
    @pytest.mark.parametrize(
        "make", [gauss_seidel_5pt_2d, gauss_seidel_9pt_2d, gauss_seidel_6pt_3d]
    )
    @pytest.mark.parametrize("tile", [1, 2, 5])
    def test_agrees_with_stencil_pattern(self, make, tile):
        """The analyzer's corner-range derivation and StencilPattern's
        production derivation were written independently; they must agree
        on every legal tiling of every canonical pattern."""
        pattern = make()
        sizes = [tile] * pattern.rank
        if pattern.negative_distance_dims():
            sizes[0] = 1  # keep the tiling legal for the 9pt pattern
        derived = derive_block_offsets(
            pattern.l_offsets, pattern.sweep, pattern.allow_initial_reads, sizes
        )
        assert derived == sorted(pattern.block_stencil_offsets(sizes))


class TestCanonicalSchedules:
    @pytest.mark.parametrize("num_blocks", [(1, 1), (3, 3), (4, 7), (1, 6)])
    def test_2d_clean(self, num_blocks):
        offsets, indices = _canonical_csr(num_blocks)
        assert check_csr_schedule(num_blocks, DEPS_2D, offsets, indices) == []

    def test_3d_clean(self):
        deps = [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
        num_blocks = (3, 4, 2)
        offsets, indices = compute_parallel_blocks(num_blocks, deps)
        assert check_csr_schedule(num_blocks, deps, offsets, indices) == []

    # Degenerate domains: the shapes the thread-pool dispatcher must
    # handle without deadlock all validate as clean schedules too.

    def test_single_block_mesh_clean(self):
        num_blocks = (1, 1, 1)
        deps = [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
        offsets, indices = compute_parallel_blocks(num_blocks, deps)
        assert list(offsets) == [0, 1] and list(indices) == [0]
        assert check_csr_schedule(num_blocks, deps, offsets, indices) == []

    def test_one_cell_axis_is_pure_pipeline(self):
        """(1, N) degenerates to one block per group — no parallelism,
        but a valid schedule the analyzer must accept."""
        num_blocks = (1, 6)
        offsets, indices = _canonical_csr(num_blocks)
        assert list(offsets) == list(range(7))
        assert check_csr_schedule(num_blocks, DEPS_2D, offsets, indices) == []

    def test_no_dependences_single_group(self):
        """An empty offset list (fully parallel pattern) collapses the
        schedule to one all-block group."""
        num_blocks = (2, 3)
        offsets, indices = compute_parallel_blocks(num_blocks, [])
        assert list(offsets) == [0, 6]
        assert check_csr_schedule(num_blocks, [], offsets, indices) == []

    def test_empty_group_is_still_valid(self):
        """Repeated CSR offsets (an empty group) keep every dependence
        ordered; the analyzer accepts them and the dispatcher must not
        hang on them."""
        num_blocks = (2, 2)
        offsets, indices = _canonical_csr(num_blocks)
        import numpy as np

        padded = np.insert(offsets, 2, offsets[2])
        assert check_csr_schedule(num_blocks, DEPS_2D, padded, indices) == []

    def test_backward_deps_clean(self):
        deps = [(1, 0), (0, 1)]
        num_blocks = (3, 4)
        offsets, indices = compute_parallel_blocks(num_blocks, deps)
        assert check_csr_schedule(num_blocks, deps, offsets, indices) == []


class TestCorruptedCSR:
    """The mutation corpus of the satellite task: every corruption is
    flagged with its designated code and no other error codes."""

    def setup_method(self):
        self.num_blocks = (3, 3)
        self.offsets, self.indices = _canonical_csr(self.num_blocks)
        self.offsets = list(self.offsets)
        self.indices = list(self.indices)

    def check(self):
        return check_csr_schedule(
            self.num_blocks, DEPS_2D, self.offsets, self.indices
        )

    def test_merge_first_groups_races(self):
        # Fusing groups 0 and 1 puts (0,0) next to its dependents.
        del self.offsets[1]
        diags = self.check()
        assert "IP004" in _codes(diags)
        assert all(d.is_error for d in diags)

    def test_swap_across_groups(self):
        # Move a group-1 sub-domain into group 2 and vice versa: its
        # group-2 dependent now shares a group with it (IP004) and/or
        # depends on a later group (IP007).
        g1 = slice(self.offsets[1], self.offsets[2])
        g2 = slice(self.offsets[2], self.offsets[3])
        a = self.indices[g1][0]
        b = self.indices[g2][0]
        i, j = self.indices.index(a), self.indices.index(b)
        self.indices[i], self.indices[j] = self.indices[j], self.indices[i]
        codes = _codes(self.check())
        assert set(codes) & {"IP004", "IP007"}
        assert "IP009" not in codes

    def test_dropped_subdomain(self):
        victim = int(self.indices[-1])
        del self.indices[-1]
        self.offsets = [min(o, len(self.indices)) for o in self.offsets]
        diags = self.check()
        assert "IP005" in _codes(diags)
        assert str(tuple(divmod(victim, 3))) in "".join(
            d.message for d in diags if d.code == "IP005"
        )

    def test_duplicated_subdomain(self):
        self.indices.append(self.indices[0])
        self.offsets[-1] += 1
        diags = self.check()
        assert "IP006" in _codes(diags)
        assert "overlap" in [d for d in diags if d.code == "IP006"][0].message

    def test_out_of_range_index(self):
        self.indices[0] = 99
        diags = self.check()
        assert _codes(diags) == ["IP009"]

    def test_negative_index(self):
        self.indices[2] = -1
        assert _codes(self.check()) == ["IP009"]

    def test_non_monotonic_offsets(self):
        self.offsets[1], self.offsets[2] = self.offsets[2], self.offsets[1]
        assert "IP009" in _codes(self.check())

    def test_offsets_not_starting_at_zero(self):
        self.offsets[0] = 1
        assert "IP009" in _codes(self.check())

    def test_truncated_offsets(self):
        self.offsets[-1] -= 2
        assert "IP009" in _codes(self.check())


class TestOpLevel:
    def _lowered(self, pattern, shape, subdomains):
        module = frontend.build_stencil_kernel(
            pattern, shape, frontend.identity_body(4.0)
        )
        options = CompileOptions(
            subdomain_sizes=subdomains, parallel=True, vectorize=0,
            use_cache=False,
        )
        StencilCompiler(options).lower(module)
        return module

    def _gp_ops(self, module):
        return [
            op for op in module.walk() if op.name == "cfd.get_parallel_blocks"
        ]

    def test_canonical_clean(self):
        module = self._lowered(gauss_seidel_5pt_2d(), (24, 24), (12, 12))
        ops = self._gp_ops(module)
        assert ops
        for op in ops:
            assert check_get_parallel_blocks(op) == []

    def test_corrupted_block_stencil_is_ip008(self):
        from repro.ir.attributes import DenseIntElementsAttr

        module = self._lowered(gauss_seidel_5pt_2d(), (24, 24), (12, 12))
        (op,) = self._gp_ops(module)
        # Declare only one of the two true block dependences.
        op.attributes["block_stencil"] = DenseIntElementsAttr(
            [[0, 0, 0], [-1, 0, 0], [0, 0, 0]]
        )
        diags = check_get_parallel_blocks(op)
        codes = _codes(diags)
        assert "IP008" in codes
        # The replayed schedule also races along the undeclared (0,-1)
        # dependence: same anti-diagonal group, dependent neighbors.
        assert "IP004" in codes

    def test_step_mutation_is_detected(self):
        from repro.ir.attributes import IntegerAttr

        module = self._lowered(gauss_seidel_9pt_2d(), (24, 24), (12, 12))
        (op,) = self._gp_ops(module)
        (loop,) = [o for o in module.walk() if o.name == "cfd.tiled_loop"]
        assert loop.steps[0].op.attributes["value"].value == 1
        loop.steps[0].op.attributes["value"] = IntegerAttr(4)
        codes = _codes(check_get_parallel_blocks(op))
        assert "IP008" in codes
