"""Unit tests for the @stencil static analyzer itself.

Covers subscript resolution, L/U sign inference (§2.1), normal-form
classification (Eq. 2), closure/global constant capture, and the
source-caret rendering of frontend diagnostics.
"""

import pytest

from repro.frontend import (
    FrontendError,
    analyze_source,
    stencil,
    stencil_from_source,
)

_GS5 = (
    "def k(u, b, i, j):\n"
    "    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]\n"
    "               + u[i, j + 1] + u[i + 1, j]) / 4.0\n"
)


def _codes(report):
    return [d.code for d in report.diagnostics]


def test_single_field_sign_inference():
    program, report = analyze_source(_GS5)
    assert not report.diagnostics
    s = program.summary
    assert s.single_field
    assert s.rank == 2
    assert s.out_field == "u" and s.rhs_field == "b"
    assert set(s.l_offsets) == {(-1, 0), (0, -1)}
    assert set(s.u_offsets) == {(0, 1), (1, 0)}
    assert s.divisor == 4.0
    assert s.form == "identity"


def test_split_form_all_reads_are_previous_iteration():
    src = (
        "def k(y, x, b, i, j):\n"
        "    y[i, j] = (b[i, j] + x[i - 1, j] + x[i, j - 1]\n"
        "               + x[i, j + 1] + x[i + 1, j]) / 4.0\n"
    )
    program, report = analyze_source(src)
    assert not report.diagnostics
    s = program.summary
    assert not s.single_field
    assert s.l_offsets == []
    assert set(s.u_offsets) == {(-1, 0), (0, -1), (0, 1), (1, 0)}


def test_split_form_declared_l_reads_are_checked():
    # Reads of the output field on the already-swept side are legal L.
    src = (
        "def k(y, x, b, i, j):\n"
        "    y[i, j] = (b[i, j] + y[i - 1, j] + x[i + 1, j]) / 4.0\n"
    )
    program, report = analyze_source(src)
    assert not report.diagnostics
    assert set(program.summary.l_offsets) == {(-1, 0)}
    assert set(program.summary.u_offsets) == {(1, 0)}


def test_weighted_center_and_closure_capture():
    omega = 1.5
    coeff = (1.0 - omega) * 4.0 / omega
    d_eff = 4.0 / omega
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1] + u[i, j + 1]\n"
        "               + u[i + 1, j] + coeff * u[i, j]) / d_eff\n"
    )
    program, report = analyze_source(src, {"coeff": coeff, "d_eff": d_eff})
    assert not report.diagnostics
    s = program.summary
    assert s.form == "center_weighted"
    assert s.center_weight == pytest.approx(coeff)
    assert s.divisor == pytest.approx(d_eff)


def test_constant_expressions_fold():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + (2.0 * 0.25) * u[i - 1, j]\n"
        "               + u[i + 1, j]) / (2.0 + 2.0)\n"
    )
    program, report = analyze_source(src)
    assert not report.diagnostics
    assert program.summary.divisor == 4.0
    assert program.summary.weights[(-1, 0)] == pytest.approx(0.5)


def test_non_affine_subscript_is_rejected():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[2 * i, j]) / 4.0\n"
    )
    _, report = analyze_source(src)
    assert "FE003" in _codes(report)


def test_data_dependent_subscript_is_rejected():
    # A field value used inside an index: rejected at role classification
    # (the field would have to double as an index variable).
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[u[i, j - 1], j]) / 4.0\n"
    )
    _, report = analyze_source(src)
    assert report.has_errors
    assert set(_codes(report)) <= {"FE002", "FE003"}


def test_composite_index_expression_is_rejected():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i + j, j]) / 4.0\n"
    )
    _, report = analyze_source(src)
    assert "FE003" in _codes(report)


def test_rank_mismatch_is_rejected():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j, 0]) / 4.0\n"
    )
    _, report = analyze_source(src)
    assert "FE004" in _codes(report)


def test_unknown_name_is_impure_reference():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + alpha * u[i - 1, j]) / 4.0\n"
    )
    _, report = analyze_source(src)
    assert "FE005" in _codes(report)


def test_captured_non_number_is_rejected():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + w * u[i - 1, j]) / 4.0\n"
    )
    _, report = analyze_source(src, {"w": [1.0, 2.0]})
    assert "FE010" in _codes(report)


def test_zero_divisor_is_rejected():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j]) / (2.0 - 2.0)\n"
    )
    _, report = analyze_source(src)
    assert "FE010" in _codes(report)


def test_duplicate_read_is_conflicting_access():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j] + u[i - 1, j]) / 4.0\n"
    )
    _, report = analyze_source(src)
    assert "FE008" in _codes(report)


def test_diagnostics_carry_carets():
    src = (
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[j, i]) / 4.0\n"
    )
    _, report = analyze_source(src, filename="kernel.py")
    (diag,) = [d for d in report.diagnostics if d.code == "FE003"]
    assert "^" in diag.excerpt
    assert "u[j, i]" in diag.excerpt
    assert "kernel.py" in diag.op_path


def test_decorator_raises_frontend_error_eagerly():
    with pytest.raises(FrontendError) as exc:
        @stencil
        def bad(u, b, i, j):
            u[i, j] = b[i, j] + u[i - 1, j]  # no division: not Eq. 2

    assert any(d.code == "FE006" for d in exc.value.report.diagnostics)


def test_stencil_from_source_backward_sweep():
    program = stencil_from_source(_GS5, sweep=-1)
    # Under a backward sweep the lexicographically *positive* reads are
    # the already-updated (L) ones.
    assert set(program.summary.l_offsets) == {(0, 1), (1, 0)}
    assert set(program.summary.u_offsets) == {(-1, 0), (0, -1)}
    assert program.pattern.sweep == -1


def test_describe_mentions_l_and_u():
    program = stencil_from_source(_GS5)
    text = program.summary.describe()
    assert "L" in text and "U" in text
