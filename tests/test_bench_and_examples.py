"""Tests for the bench harness and smoke tests for the examples."""

import json
import runpy
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import (
    Measurement,
    format_series,
    format_table,
    save_results,
    time_callable,
)

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


class TestHarness:
    def test_measurement_median(self):
        values = iter([0.0, 0.0, 0.0])

        m = Measurement.collect(lambda: next(values, None), repeats=3)
        assert len(m.samples) == 3
        assert m.seconds == sorted(m.samples)[1]

    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(100)), repeats=2) >= 0

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.23456], ["long-name", 2]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # 4 significant digits
        assert "long-name" in text

    def test_format_series_missing_points(self):
        text = format_series(
            "x", {"a": {1: 1.0, 2: 2.0}, "b": {1: 3.0}}
        )
        assert "-" in text  # b has no x=2 point
        assert "a" in text and "b" in text

    def test_save_results_roundtrip(self, tmp_path, monkeypatch):
        import repro.bench.harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        path = save_results(
            "unit_test", {"x": np.int64(3), "y": np.float64(1.5),
                          "z": np.arange(3)}
        )
        data = json.loads(path.read_text())
        assert data == {"x": 3, "y": 1.5, "z": [0, 1, 2]}


class TestExperimentRegistry:
    def test_cases_are_consistent(self):
        from repro.bench.experiments import KERNEL_CASES

        for case in KERNEL_CASES.values():
            pattern = case.pattern_factory()
            assert len(case.domain) == pattern.rank
            assert len(case.mlir_tiles) == pattern.rank
            assert len(case.paper_subdomains) == pattern.rank
            assert case.iterations >= 1
            # Domains are chosen so the interior is a VF multiple
            # (no peeled remainder in the benchmarks).
            interior = case.domain[-1] - 2 * pattern.radii[-1]
            assert interior % case.vf == 0

    def test_build_and_run_one_case(self):
        from repro.bench.experiments import (
            KERNEL_CASES,
            build_mlir_kernel,
            case_inputs,
        )

        case = KERNEL_CASES["seidel-2D-5pt"]
        kernel = build_mlir_kernel(case)
        x, b = case_inputs(case)
        (y,) = kernel(x, b, x.copy())
        assert y.shape == x.shape
        assert np.isfinite(y).all()

    def test_hw_anchor_preserves_ratios(self):
        from repro.bench.experiments import HW_SCALAR_CELL_SECONDS, hw_per_cell

        assert hw_per_cell(1.0, 1.0) == HW_SCALAR_CELL_SECONDS
        assert hw_per_cell(0.5, 1.0) == 0.5 * HW_SCALAR_CELL_SECONDS


@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "sor_poisson.py", "inspect_pipeline.py"],
)
def test_example_runs(script, capsys):
    """The fast examples run end to end (the heavier heat/Euler examples
    are covered by their library tests and the benchmark suite)."""
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out  # every example prints a report
