"""Pipeline integration: the analysis gate, check_level, the cache-key
audit and the CLI lint driver."""

import dataclasses

import pytest

from repro.analysis import AnalysisError, AnalysisGate
from repro.analysis.__main__ import main as lint_main
from repro.analysis.corpus import build_corpus
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.ir import Pass, PassManager
from repro.ir.attributes import BoolAttr, IntegerAttr


def _all_entries():
    return [
        (entry, stem)
        for stem, entries in build_corpus().items()
        for entry in entries
    ]


class TestCorpusPipelinesClean:
    @pytest.mark.parametrize(
        "entry,stem", _all_entries(), ids=lambda e: getattr(e, "name", e)
    )
    def test_zero_diagnostics_after_every_pass(self, entry, stem):
        """Acceptance criterion: the analyzer reports nothing — not even
        notes — on any canonical pipeline over the example kernels, at
        every pass boundary. The one exception is IP016, which by design
        documents legitimately rejected fusion opportunities (the LU-SGS
        face-flux producer's halo exceeds its backward-sweep stencil
        halo); those must stay informational notes, never errors."""
        gate = AnalysisGate(fail_fast=False)
        compiler = StencilCompiler(entry.options)
        pm = compiler.build_pipeline()
        pm.gate = gate
        pm.gate_each = True
        module = entry.build()
        gate(module, after_pass=None)
        pm.run(module)
        findings = [
            d for d in gate.report.diagnostics if d.code != "IP016"
        ]
        assert findings == [], gate.report.render()
        assert all(
            d.severity == "note"
            for d in gate.report.diagnostics
            if d.code == "IP016"
        )


class _CorruptReversePass(Pass):
    """A stand-in for a buggy transformation: flips the traversal
    direction of every tiled loop without touching the sweep."""

    name = "corrupt-reverse"

    def run(self, module):
        for op in module.walk():
            if op.name == "cfd.tiled_loop":
                op.attributes["reverse"] = BoolAttr(not op.reverse)


class TestAnalysisGate:
    """Frontend-level mutants are rejected by the production validators
    before any pass runs, so the gate's job is catching corruption that
    *passes* introduce — simulated here by a deliberately buggy pass."""

    OPTIONS = dict(
        subdomain_sizes=(8, 8), parallel=True, vectorize=0, use_cache=False
    )

    def _module(self):
        return frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (16, 16), frontend.identity_body(4.0)
        )

    def _corrupted_pipeline(self, check_level):
        compiler = StencilCompiler(
            CompileOptions(check_level=check_level, **self.OPTIONS)
        )
        pm = compiler.build_pipeline()
        pm.passes.insert(1, _CorruptReversePass())  # right after tiling
        return pm

    def test_gate_raises_with_pass_name(self):
        pm = self._corrupted_pipeline("after-every-pass")
        with pytest.raises(AnalysisError) as info:
            pm.run(self._module())
        assert "IP001" in str(info.value)
        assert info.value.after_pass == "corrupt-reverse"
        assert info.value.report.has_errors

    def test_gate_after_pipeline_also_detects(self):
        pm = self._corrupted_pipeline("after-pipeline")
        with pytest.raises(AnalysisError) as info:
            pm.run(self._module())
        assert info.value.after_pass is None  # end-of-pipeline call

    def test_check_level_off_does_not_gate(self):
        pm = self._corrupted_pipeline("off")
        assert pm.gate is None
        pm.run(self._module())  # must not raise

    def test_invalid_check_level_rejected(self):
        options = CompileOptions(check_level="sometimes")
        with pytest.raises(ValueError, match="check_level"):
            StencilCompiler(options).build_pipeline()

    def test_gate_timing_recorded(self):
        options = CompileOptions(
            subdomain_sizes=(8, 8), vectorize=0, use_cache=False,
            check_level="after-pipeline",
        )
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (16, 16), frontend.identity_body(4.0)
        )
        compiler = StencilCompiler(options)
        compiler.lower(module)
        timings = compiler.pass_manager.timings
        assert PassManager.GATE_TIMING_KEY in timings
        assert timings[PassManager.GATE_TIMING_KEY] > 0
        assert PassManager.GATE_TIMING_KEY in (
            compiler.pass_manager.timing_report()
        )

    def test_collecting_gate_does_not_raise(self):
        module = self._module()
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        op.attributes["sweep"] = IntegerAttr(-1)
        gate = AnalysisGate(fail_fast=False)
        gate(module, after_pass="frontend")
        assert gate.report.has_errors
        assert all(
            d.after_pass == "frontend" for d in gate.report.diagnostics
        )


class TestCacheKeyAudit:
    #: One non-default value per CompileOptions field. The audit below
    #: fails when a new field is added without extending this table,
    #: which is exactly the omission that caused the original
    #: describe()-based cache-aliasing bug.
    ALTERNATES = {
        "subdomain_sizes": (8, 8),
        "tile_sizes": (2, 4),
        "fuse": True,
        "vectorize": 4,
        "parallel": True,
        "opt_level": 0,
        "use_cache": False,
        "verify_each": False,
        "check_level": "after-pipeline",
        "validate_passes": True,
        "verify_engine": "symbolic",
        "machine": "py-numpy",
        "frontend_version": "fe-test",
    }

    def test_alternates_cover_every_field(self):
        field_names = {f.name for f in dataclasses.fields(CompileOptions)}
        assert field_names == set(self.ALTERNATES)
        for name, value in self.ALTERNATES.items():
            assert value != getattr(CompileOptions(), name)

    def test_every_field_but_use_cache_changes_the_key(self):
        base = CompileOptions().cache_key()
        for name, value in self.ALTERNATES.items():
            changed = CompileOptions(**{name: value}).cache_key()
            if name == "use_cache":
                assert changed == base
            else:
                assert changed != base, f"{name} does not reach the cache key"

    def test_check_level_in_key(self):
        assert "check_level" in CompileOptions().cache_key()

    def test_describe_is_not_the_key(self):
        # describe() is lossy (it drops verify_each/check_level); the
        # fingerprint must not be built from it.
        a = CompileOptions(check_level="off")
        b = CompileOptions(check_level="after-pipeline")
        assert a.describe() == b.describe()
        assert a.cache_key() != b.cache_key()


class TestLintCLI:
    def test_single_stem_ok(self, capsys):
        assert lint_main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "[ok] quickstart" in out and "0 diagnostic" in out

    def test_example_path_resolves(self, capsys):
        assert lint_main(["examples/sor_poisson.py", "-q"]) == 0
        assert "sor_poisson" in capsys.readouterr().out

    def test_directory_resolves_all(self, capsys):
        assert lint_main(["examples", "-q"]) == 0
        out = capsys.readouterr().out
        for stem in build_corpus():
            assert stem in out

    def test_unknown_stem_errors(self):
        with pytest.raises(SystemExit):
            lint_main(["no_such_example"])

    def test_json_mode_emits_one_object_per_diagnostic(self, capsys):
        import json

        # euler_lusgs carries the one legitimate IP016 fusion-rejection
        # note, so its JSON stream is non-empty and notes don't fail it.
        assert lint_main(["euler_lusgs", "--json"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert lines, "json mode printed nothing"
        records = [json.loads(l) for l in lines]
        for rec in records:
            assert set(rec) == {
                "code", "severity", "title", "message", "op_path",
                "after_pass", "entry", "file",
            }
            assert rec["file"] == "examples/euler_lusgs.py"
        assert {r["code"] for r in records} == {"IP016"}
        # No human-readable verdict lines pollute the stream.
        assert "[ok]" not in out and "linted" not in out

    def test_github_mode_emits_annotations(self, capsys):
        assert lint_main(["euler_lusgs", "--github"]) == 0
        out = capsys.readouterr().out
        notices = [l for l in out.splitlines() if l.startswith("::notice ")]
        assert notices, "no ::notice annotation for the IP016 note"
        assert "file=examples/euler_lusgs.py" in notices[0]
        assert "title=IP016" in notices[0]
        # Verdict lines stay (the CI log keeps its summary), but the
        # annotation body must not contain a premature '::' terminator.
        assert "[ok] euler_lusgs" in out
        body = notices[0].split("::", 2)[-1]
        assert "::" not in body

    def test_github_mode_quickstart_silent(self, capsys):
        assert lint_main(["quickstart", "--github"]) == 0
        out = capsys.readouterr().out
        assert "::" not in out.replace("[ok]", "")

    def test_exit_one_on_error_diagnostics(self, monkeypatch, capsys):
        from repro.analysis import __main__ as cli
        from repro.analysis.corpus import CorpusEntry

        def bad_module():
            module = frontend.build_stencil_kernel(
                gauss_seidel_5pt_2d(), (16, 16), frontend.identity_body(4.0)
            )
            (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
            op.attributes["sweep"] = IntegerAttr(-1)
            return module

        corrupt = {
            "quickstart": (
                CorpusEntry(
                    "quickstart", "seeded mutant", bad_module,
                    CompileOptions(vectorize=0, use_cache=False),
                ),
            )
        }
        monkeypatch.setattr(cli, "build_corpus", lambda: corrupt)
        assert cli.main(["quickstart"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "IP001" in out
