"""Tests for the partially vectorized lowering (Figs. 2 and 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
)
from repro.core.tiling import TileStencilsPass
from repro.core.vectorization import (
    VectorizeStencilsPass,
    can_vectorize,
    classify_accesses,
)
from repro.dialects import arith, cfd
from repro.ir import PassManager, verify
from repro.ir.printer import print_module


def _fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _check(pattern, shape, vf, seed=0, nb_var=1, tiles=None, groups=False,
           d=None):
    d = d if d is not None else float(pattern.num_accesses)
    reference = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), nb_var=nb_var
    )
    vectorized = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), nb_var=nb_var
    )
    passes = []
    if tiles:
        passes.append(TileStencilsPass(tiles, with_groups=groups))
    passes.append(VectorizeStencilsPass(vf))
    PassManager(passes).run(vectorized)
    assert not any(op.name == "cfd.stencilOp" for op in vectorized.walk())
    x, b = _fields(shape, seed)
    (expected,) = run_function(reference, "kernel", x, b, x.copy())
    (actual,) = run_function(vectorized, "kernel", x, b, x.copy())
    np.testing.assert_allclose(actual, expected, rtol=1e-11)
    verify(vectorized)
    return vectorized


class TestClassification:
    def test_5pt(self):
        vec, rec = classify_accesses(gauss_seidel_5pt_2d())
        pattern = gauss_seidel_5pt_2d()
        # L = {(-1,0), (0,-1)}: (-1,0) reads a finished row -> vectorizable;
        # (0,-1) is the in-row recurrence.
        rec_offsets = [pattern.accesses[a][0] for a in rec]
        assert rec_offsets == [(0, -1)]
        assert len(vec) == 3

    def test_second_order_two_recurrences(self):
        pattern = gauss_seidel_9pt_2nd_order_2d()
        _, rec = classify_accesses(pattern)
        rec_offsets = sorted(pattern.accesses[a][0] for a in rec)
        assert rec_offsets == [(0, -2), (0, -1)]

    def test_jacobi_fully_vectorizable(self):
        vec, rec = classify_accesses(jacobi_5pt_2d())
        assert rec == []
        assert len(vec) == 4

    def test_backward_sweep_recurrence(self):
        pattern = gauss_seidel_5pt_2d().inverted()
        _, rec = classify_accesses(pattern)
        rec_offsets = [pattern.accesses[a][0] for a in rec]
        assert rec_offsets == [(0, 1)]


class TestLegality:
    def test_identity_body_vectorizable(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        op = next(o for o in module.walk() if o.name == "cfd.stencilOp")
        assert can_vectorize(op)

    def test_cross_dependent_body_rejected(self):
        """A body whose vector part reads a recurrent argument falls back."""
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (8, 8), _poisoned_body()
        )
        op = next(o for o in module.walk() if o.name == "cfd.stencilOp")
        assert not can_vectorize(op)
        # The pass must still lower it (scalar fallback) and stay correct.
        reference = frontend.build_stencil_kernel(
            pattern, (8, 8), _poisoned_body()
        )
        pass_ = VectorizeStencilsPass(4)
        PassManager([pass_]).run(module)
        assert pass_.fallbacks == 1
        x, b = _fields((1, 8, 8), 3)
        (expected,) = run_function(reference, "kernel", x, b, x.copy())
        (actual,) = run_function(module, "kernel", x, b, x.copy())
        np.testing.assert_allclose(actual, expected, rtol=1e-12)


def _poisoned_body():
    """d depends on a recurrent (in-row L) argument: not vectorizable."""

    def body(builder, args):
        # args[1] is the (0,-1) access for the 5-pt pattern (pattern
        # order: (-1,0), (0,-1), (0,1), (1,0)).
        four = arith.const_f64(builder, 4.0)
        tiny = arith.const_f64(builder, 1e-12)
        d = arith.addf(
            builder, four, arith.mulf(builder, tiny, args[1])
        )
        zero = arith.const_f64(builder, 0.0)
        return d, list(args[:-1]) + [zero]

    return body


class TestVectorizedSemantics:
    @pytest.mark.parametrize("vf", [2, 4, 8])
    def test_5pt_various_vf(self, vf):
        _check(gauss_seidel_5pt_2d(), (1, 10, 17), vf)

    @pytest.mark.parametrize(
        "pattern_fn,shape",
        [
            (gauss_seidel_9pt_2d, (1, 9, 14)),
            (gauss_seidel_9pt_2nd_order_2d, (1, 12, 13)),
            (gauss_seidel_6pt_3d, (1, 6, 7, 11)),
            (jacobi_5pt_2d, (1, 9, 13)),
        ],
    )
    def test_all_paper_patterns(self, pattern_fn, shape):
        _check(pattern_fn(), shape, 4)

    def test_width_not_divisible_by_vf_peels(self):
        # 15 interior columns, VF=4 -> 3 strips + 3 peeled.
        module = _check(gauss_seidel_5pt_2d(), (1, 8, 17), 4)
        text = print_module(module)
        assert "vector.transfer_read" in text
        assert "vector.extract" in text

    def test_width_smaller_than_vf_all_peeled(self):
        _check(gauss_seidel_5pt_2d(), (1, 8, 5), 8)

    def test_backward_sweep_vectorized(self):
        _check(gauss_seidel_5pt_2d().inverted(), (1, 9, 14), 4)

    def test_backward_9pt(self):
        _check(gauss_seidel_9pt_2d().inverted(), (1, 9, 14), 4)

    def test_multivar(self):
        _check(gauss_seidel_5pt_2d(), (2, 8, 12), 4, nb_var=2)

    def test_after_tiling(self):
        _check(gauss_seidel_5pt_2d(), (1, 14, 18), 4, tiles=(4, 8))

    def test_after_tiling_with_groups(self):
        _check(
            gauss_seidel_5pt_2d(), (1, 12, 16), 4, tiles=(4, 8), groups=True
        )

    def test_1d_stencil(self):
        pattern = StencilPattern.from_offsets(
            1, l_offsets=[(-1,)], u_offsets=[(1,)]
        )
        _check(pattern, (1, 23), 4, d=2.0)

    def test_ir_structure_matches_fig7(self):
        module = _check(gauss_seidel_5pt_2d(), (1, 8, 20), 4)
        text = print_module(module)
        # Vector part, unrolled scalar part and peeled loop coexist.
        assert text.count("vector.transfer_read") >= 4
        assert "vector.broadcast" in text or "vector.extract" in text
        assert "tensor.insert" in text


@st.composite
def _vec_case(draw):
    pattern = draw(
        st.sampled_from(
            [
                gauss_seidel_5pt_2d(),
                gauss_seidel_9pt_2d(),
                gauss_seidel_9pt_2nd_order_2d(),
                gauss_seidel_5pt_2d().inverted(),
            ]
        )
    )
    n0 = draw(st.integers(5, 12))
    n1 = draw(st.integers(5, 20))
    vf = draw(st.sampled_from([2, 4, 8]))
    return pattern, (1, n0, n1), vf


class TestVectorizationProperty:
    @given(_vec_case())
    @settings(max_examples=20, deadline=None)
    def test_vectorization_preserves_semantics(self, case):
        pattern, shape, vf = case
        _check(pattern, shape, vf, seed=17)
