"""README ⟷ registry parity: the diagnostics tables never drift.

``repro.analysis.diagnostics.REGISTRY`` is the single source of truth
for every ``IP0xx``/``TV0xx``/``RS0xx``/``PF0xx``/``FE0xx`` code. The README tables are generated
from it (``render_registry_table``); these tests parse them back out of
the README and assert an exact match — codes, canonical severities and
one-line descriptions — so adding or editing a code without updating
the documentation (or vice versa) fails CI.
"""

import re
from pathlib import Path

import pytest

from repro.analysis.diagnostics import (
    REGISTRY,
    SEVERITIES,
    Diagnostic,
    render_registry_table,
)

README = Path(__file__).resolve().parent.parent / "README.md"

_ROW = re.compile(r"^\| `((?:IP|TV|RS|PF|FE)\d{3})` \| (\w+) \| (.+?) \|$")


def _readme_rows():
    rows = {}
    for line in README.read_text().splitlines():
        m = _ROW.match(line.strip())
        if m:
            code, severity, description = m.groups()
            assert code not in rows, f"{code} documented twice"
            rows[code] = (severity, description)
    return rows


class TestRegistry:
    def test_registry_is_well_formed(self):
        for code, info in REGISTRY.items():
            assert info.code == code
            assert re.fullmatch(r"(IP|TV|RS|PF|FE)\d{3}", code)
            assert info.severity in SEVERITIES
            assert info.title and info.description
            assert "\n" not in info.description

    def test_codes_are_contiguous_per_prefix(self):
        for prefix in ("IP", "TV", "RS", "PF", "FE"):
            nums = sorted(
                int(c[2:]) for c in REGISTRY if c.startswith(prefix)
            )
            assert nums == list(range(1, len(nums) + 1)), (
                f"{prefix} codes are not contiguous from {prefix}001"
            )

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("TV999", "nope")

    def test_render_covers_whole_registry(self):
        rendered = (
            render_registry_table("IP")
            + render_registry_table("TV")
            + render_registry_table("RS")
            + render_registry_table("PF")
            + render_registry_table("FE")
        )
        codes = {m.group(1) for m in map(_ROW.match, rendered) if m}
        assert codes == set(REGISTRY)


class TestReadmeParity:
    def test_readme_tables_match_registry_exactly(self):
        rows = _readme_rows()
        assert set(rows) == set(REGISTRY), (
            "README documents a different code set than the registry: "
            f"missing {set(REGISTRY) - set(rows)}, "
            f"stale {set(rows) - set(REGISTRY)}"
        )
        for code, (severity, description) in rows.items():
            info = REGISTRY[code]
            assert severity == info.severity, (
                f"{code}: README says {severity!r}, "
                f"registry says {info.severity!r}"
            )
            assert description == info.description, (
                f"{code}: README description drifted:\n"
                f"  README:   {description}\n"
                f"  registry: {info.description}"
            )

    def test_readme_rows_are_the_rendered_rows(self):
        """The README rows byte-match ``render_registry_table`` output."""
        text = README.read_text()
        for prefix in ("IP", "TV", "RS", "PF", "FE"):
            for row in render_registry_table(prefix)[2:]:
                assert row in text, f"rendered row missing from README: {row}"
