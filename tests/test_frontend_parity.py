"""Fingerprint parity: @stencil-built IR is byte-identical to hand-built IR.

The frontend promises "parity by construction": analyzing a plain-Python
kernel and building a module from the summary must produce exactly the
same IR — same op order, same constant order, same attributes — as the
equivalent hand-written :func:`repro.core.frontend.build_stencil_kernel`
call. The kernel cache keys off :func:`module_fingerprint`, so parity
here means a frontend port never invalidates cached compilations.
"""

import numpy as np

from repro.cfdlib.heat import build_heat3d_module, heat3d_reference, initial_temperature
from repro.codegen.cache import module_fingerprint
from repro.core import frontend as core_frontend
from repro.core.pipeline import StencilCompiler, CompileOptions
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    jacobi_5pt_2d,
    sor_5pt_2d,
)
from repro.frontend import stencil


def _fingerprints_equal(m_fe, m_hand, entry="kernel"):
    return module_fingerprint(m_fe, entry, "") == module_fingerprint(
        m_hand, entry, ""
    )


@stencil
def _gs5(u, b, i, j):
    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
               + u[i, j + 1] + u[i + 1, j]) / 4.0


@stencil
def _jacobi(y, x, b, i, j):
    y[i, j] = (b[i, j] + x[i - 1, j] + x[i, j - 1]
               + x[i, j + 1] + x[i + 1, j]) / 4.0


def _sor_program(omega, d=4.0):
    d_eff = d / omega
    coeff = (1.0 - omega) * d / omega

    @stencil
    def sor(u, b, i, j):
        u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1] + u[i, j + 1]
                   + u[i + 1, j] + coeff * u[i, j]) / d_eff

    return sor


def test_gauss_seidel_5pt_parity():
    m_fe = _gs5.build_module((64, 64), iterations=2)
    m_hand = core_frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (64, 64), core_frontend.identity_body(4.0),
        iterations=2,
    )
    assert _fingerprints_equal(m_fe, m_hand)


def test_jacobi_split_form_parity():
    assert not _jacobi.summary.single_field
    assert _jacobi.pattern.l_offsets == []
    m_fe = _jacobi.build_module((34, 34))
    m_hand = core_frontend.build_stencil_kernel(
        jacobi_5pt_2d(), (34, 34), core_frontend.identity_body(4.0)
    )
    assert _fingerprints_equal(m_fe, m_hand)


def test_sor_closure_weights_parity():
    omega = 1.5
    sor = _sor_program(omega)
    assert sor.summary.form == "center_weighted"
    m_fe = sor.build_module((34, 34))
    m_hand = core_frontend.build_stencil_kernel(
        sor_5pt_2d(), (34, 34), core_frontend.sor_body(omega, 4.0)
    )
    assert _fingerprints_equal(m_fe, m_hand)


def test_heat_gs_3d_parity():
    lam = 0.1
    d = 1.0 / lam

    @stencil
    def heat_gs(dt, rhs, i, j, k):
        dt[i, j, k] = (rhs[i, j, k]
                       + dt[i - 1, j, k] + dt[i, j - 1, k]
                       + dt[i, j, k - 1] + dt[i, j, k + 1]
                       + dt[i, j + 1, k] + dt[i + 1, j, k]) / d

    m_fe = heat_gs.build_module((16, 16, 16))
    m_hand = core_frontend.build_stencil_kernel(
        gauss_seidel_6pt_3d(), (16, 16, 16),
        core_frontend.identity_body(1.0 / lam),
    )
    assert _fingerprints_equal(m_fe, m_hand)


def test_multi_iteration_loop_structure_parity():
    # iterations > 1 goes through the scf.for path of build_stencil_kernel.
    m_fe = _gs5.build_module((20, 20), iterations=3)
    m_hand = core_frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (20, 20), core_frontend.identity_body(4.0),
        iterations=3,
    )
    assert _fingerprints_equal(m_fe, m_hand)


def test_heat3d_module_numerics_through_attach():
    # The cfdlib heat builder routes its Gauss-Seidel phase through
    # @stencil + attach; it must still reproduce the Fig. 9 reference.
    n, steps = 12, 2
    t0 = initial_temperature(n)
    dt0 = np.zeros((n, n, n))
    expected, _ = heat3d_reference(t0, dt0, steps)
    module = build_heat3d_module(n, steps)
    kernel = StencilCompiler(CompileOptions()).compile(module, entry="heat")
    (result,) = kernel(t0[None], dt0[None])
    assert float(np.abs(result[0] - expected).max()) < 1e-9
