"""The fault-injection framework itself: determinism, matching, scoping."""

import threading

import pytest

from repro.runtime.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    injected,
    install_plan,
    maybe_inject,
    register_fault_site,
    sites_by_category,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


class TestRegistry:
    def test_expected_sites_registered(self):
        expected = {
            "pipeline.pass-run", "pipeline.verify",
            "cache.disk-read", "cache.disk-write",
            "executor.compile", "executor.execute", "executor.hang",
            "solver.sweep", "solver.heat-step", "solver.lusgs-step",
        }
        assert expected <= set(FAULT_SITES)

    def test_every_site_has_category_and_description(self):
        for site in FAULT_SITES.values():
            assert site.category in (
                "pipeline", "cache", "executor", "solver", "parallel",
                "service",
            )
            assert site.description

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            register_fault_site("pipeline.pass-run", "pipeline", "dup")

    def test_sites_by_category(self):
        solver = {s.name for s in sites_by_category("solver")}
        assert solver == {
            "solver.sweep", "solver.heat-step", "solver.lusgs-step"
        }


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("no.such.site")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec("solver.sweep", action="explode")

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("solver.sweep", at=0)
        with pytest.raises(ValueError):
            FaultSpec("solver.sweep", times=0)

    def test_match_exact_and_prefix(self):
        spec = FaultSpec(
            "pipeline.pass-run", match={"pass_name": "vectorize-stencils"}
        )
        assert spec.accepts({"pass_name": "vectorize-stencils"})
        assert spec.accepts({"pass_name": "vectorize-stencils<vf=8>"})
        assert not spec.accepts({"pass_name": "tile-stencils<8x8>"})
        assert not spec.accepts({})


class TestFaultPlan:
    def test_fires_at_chosen_invocation_only(self):
        plan = FaultPlan([FaultSpec("solver.sweep", at=3)])
        with injected(plan):
            maybe_inject("solver.sweep")
            maybe_inject("solver.sweep")
            with pytest.raises(InjectedFault) as info:
                maybe_inject("solver.sweep")
            maybe_inject("solver.sweep")  # one-shot: fires once
        assert info.value.site == "solver.sweep"
        assert info.value.invocation == 3
        assert plan.fired == [("solver.sweep", 3)]
        assert plan.invocations("solver.sweep") == 4

    def test_times_fires_consecutively(self):
        plan = FaultPlan([FaultSpec("solver.sweep", at=2, times=2)])
        with injected(plan):
            maybe_inject("solver.sweep")
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    maybe_inject("solver.sweep")
            maybe_inject("solver.sweep")

    def test_match_filters_eligibility(self):
        plan = FaultPlan([FaultSpec(
            "pipeline.pass-run", at=1,
            match={"pass_name": "vectorize-stencils"},
        )])
        with injected(plan):
            maybe_inject("pipeline.pass-run", pass_name="cse")
            with pytest.raises(InjectedFault):
                maybe_inject(
                    "pipeline.pass-run", pass_name="vectorize-stencils<vf=4>"
                )

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded("solver.sweep", seed=7)
        b = FaultPlan.seeded("solver.sweep", seed=7)
        assert a.specs[0].at == b.specs[0].at
        assert 1 <= a.specs[0].at <= 3

    def test_seeded_varies_across_sites_and_seeds(self):
        ats = {
            (site, seed): FaultPlan.seeded(site, seed=seed).specs[0].at
            for site in sorted(FAULT_SITES)
            for seed in range(4)
        }
        assert len(set(ats.values())) > 1

    def test_hang_action_sleeps_and_returns(self):
        plan = FaultPlan([FaultSpec(
            "executor.hang", action="hang", hang_seconds=0.01
        )])
        with injected(plan):
            maybe_inject("executor.hang")  # returns after the sleep

    def test_thread_safe_counting(self):
        plan = FaultPlan([FaultSpec("solver.sweep", at=10**9)])
        with injected(plan):
            threads = [
                threading.Thread(
                    target=lambda: [maybe_inject("solver.sweep")
                                    for _ in range(50)]
                )
                for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert plan.invocations("solver.sweep") == 200


class TestInstallation:
    def test_noop_without_plan(self):
        assert active_plan() is None
        maybe_inject("solver.sweep")  # cheap no-op

    def test_injected_scopes_and_restores(self):
        outer = FaultPlan([])
        install_plan(outer)
        inner = FaultPlan([])
        with injected(inner):
            assert active_plan() is inner
        assert active_plan() is outer
        clear_plan()
        assert active_plan() is None

    def test_injected_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with injected(FaultPlan([])):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_unregistered_site_with_active_plan_is_an_error(self):
        with injected(FaultPlan([])):
            with pytest.raises(ValueError, match="unregistered site"):
                maybe_inject("no.such.site")
