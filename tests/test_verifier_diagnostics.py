"""Verifier error messages: structural op paths and IR excerpts."""

import pytest

from repro.core import frontend
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.ir import ModuleOp, Pass, PassManager
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import create_operation
from repro.ir.types import f64
from repro.ir.verifier import IRVerificationError, verify


def _invalid_module():
    module = ModuleOp.create()
    a = create_operation("test.def", result_types=[f64])
    use = create_operation("test.use", [a.result()])
    module.body.append(use)  # use before def
    module.body.append(a)
    return module


class TestOpPath:
    def test_kernel_stencil_path(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        path = op_path(op)
        assert path.startswith("builtin.module/")
        assert "func.func[sym=kernel]" in path
        assert path.endswith("cfd.stencilOp")
        assert "/r0/b0/" in path

    def test_detached_op_has_bare_path(self):
        op = create_operation("test.def", result_types=[f64])
        assert op_path(op) == "test.def"

    def test_excerpt_truncates(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        text = op_excerpt(module, max_lines=4)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "more lines" in lines[-1]

    def test_excerpt_of_small_op_is_complete(self):
        op = create_operation("test.def", result_types=[f64])
        assert "test.def" in op_excerpt(op)
        assert "more lines" not in op_excerpt(op)


class TestVerifierMessages:
    def test_dominance_error_carries_path_and_excerpt(self):
        with pytest.raises(IRVerificationError) as info:
            verify(_invalid_module())
        message = str(info.value)
        assert "does not dominate" in message
        assert "at builtin.module/r0/b0/op0:test.use" in message
        assert "\n  | " in message  # the printed-IR excerpt

    def test_nested_failure_names_the_function(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        # Corrupt the op's use-def chain behind the API's back.
        op.operand(0).uses.clear()
        with pytest.raises(IRVerificationError) as info:
            verify(module)
        message = str(info.value)
        assert "use-def" in message
        assert "func.func[sym=kernel]" in message
        assert "cfd.stencilOp" in message

    def test_op_verifier_failure_carries_path(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        # Empty the payload region: the op verifier requires a terminator.
        for inner in reversed(list(op.body.operations)):
            inner.erase()
        with pytest.raises(IRVerificationError) as info:
            verify(module)
        assert "func.func[sym=kernel]" in str(info.value)


class TestPassManagerNamesFailingPass:
    def test_failure_names_pass_and_op(self):
        class Corrupt(Pass):
            name = "corrupt"

            def run(self, module):
                a = create_operation("test.def", result_types=[f64])
                use = create_operation("test.use", [a.result()])
                module.body.append(use)
                module.body.append(a)

        pm = PassManager([Corrupt()])
        with pytest.raises(
            RuntimeError, match="after pass 'corrupt'"
        ) as info:
            pm.run(ModuleOp.create())
        assert "test.use" in str(info.value)
        assert "at builtin.module" in str(info.value)
