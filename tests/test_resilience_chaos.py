"""The chaos suite: every registered fault site, swept deterministically.

Each registered :data:`~repro.runtime.resilience.faults.FAULT_SITES`
entry gets a scenario that (1) installs a seeded plan for that site,
(2) drives a workload that hits the site enough times for the plan to
fire, and (3) asserts the run *still produces the correct result* —
recovery, degradation, quarantine or checkpoint resume, depending on
the site's category. The firing invocation is derived from
``$CHAOS_SEED`` (default 0), so CI sweeps a seed matrix and every run
is reproducible: same seed, same faults, same recovery path.

A new ``maybe_inject`` call site only needs to register its site in
``FAULT_SITES`` plus add a scenario here; the completeness test fails
until it does.
"""

import os

import numpy as np
import pytest

from repro.codegen.cache import KernelCache, module_fingerprint
from repro.codegen.executor import compile_function
from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.runtime.resilience import (
    FAULT_SITES,
    FaultPlan,
    InjectedFault,
    clear_plan,
    injected,
)
from repro.runtime.resilience.checkpoint import CheckpointManager
from repro.runtime.resilience.driver import ResilientCompiler
from repro.cfdlib.heat import checkpointed_heat3d, initial_temperature
from repro.cfdlib.solvers import checkpointed_poisson_solve

SEED = int(os.environ.get("CHAOS_SEED", "0"))
SHAPE = (8, 8)
OPTIONS = CompileOptions(
    subdomain_sizes=(4, 4), tile_sizes=(2, 2), fuse=True, vectorize=4,
    use_cache=False,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


def _module():
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), SHAPE, frontend.identity_body(4.0)
    )


def _inputs():
    rng = np.random.default_rng(SEED)
    full = (1,) + SHAPE
    return rng.standard_normal(full), rng.standard_normal(full)


def _reference(x, b):
    (expected,) = run_function(_module(), "kernel", x, b, x.copy())
    return expected


def _chaos_compile_and_run(plan, **compiler_kwargs):
    """Drive enough resilient runs that the seeded plan must fire."""
    x, b = _inputs()
    expected = _reference(x, b)
    kwargs = {"max_retries": 2, "backoff_base": 0.0, **compiler_kwargs}
    with injected(plan):
        for _ in range(4):
            values, report = ResilientCompiler(
                OPTIONS, **kwargs
            ).compile_and_run(
                _module(), lambda: (x.copy(), b.copy(), x.copy())
            )
            np.testing.assert_allclose(values[0], expected, rtol=1e-12)
    assert plan.fired, "the seeded fault never fired"
    return report


def _chaos_pipeline(site):
    plan = FaultPlan.seeded(site, seed=SEED)
    report = _chaos_compile_and_run(plan)
    assert report.final in ("compiled", "interpreter")


def _chaos_cache_read(site):
    cache = KernelCache(persist=True, disk_dir=_tmp_dir())
    module = _module()
    StencilCompiler(CompileOptions(vectorize=4)).lower(module)
    fp = module_fingerprint(module)
    cache.put(fp, compile_function(module))
    plan = FaultPlan.seeded(site, seed=SEED)
    with injected(plan):
        for _ in range(4):
            KernelCache(persist=True, disk_dir=cache.disk_dir).get(fp)
    assert plan.fired
    # The entry survives injected read failures: a clean read still hits.
    assert KernelCache(persist=True, disk_dir=cache.disk_dir).get(fp)


def _chaos_cache_write(site):
    cache = KernelCache(persist=True, disk_dir=_tmp_dir())
    module = _module()
    StencilCompiler(CompileOptions(vectorize=4)).lower(module)
    fp = module_fingerprint(module)
    kernel = compile_function(module)
    plan = FaultPlan.seeded(site, seed=SEED)
    with injected(plan):
        for _ in range(4):
            cache.put(fp, kernel)
    assert plan.fired
    assert cache.stats.disk_errors >= 1
    # Memory tier never degraded; disk holds the last successful write.
    assert cache.get(fp) is not None
    assert KernelCache(persist=True, disk_dir=cache.disk_dir).get(fp)


def _chaos_executor(site):
    plan = FaultPlan.seeded(site, seed=SEED)
    _chaos_compile_and_run(plan)


def _chaos_hang(site):
    plan = FaultPlan.seeded(
        site, seed=SEED, action="hang", hang_seconds=0.4
    )
    report = _chaos_compile_and_run(plan, watchdog_timeout=0.1)
    del report  # the last run may have been clean; plan.fired is the check


def _chaos_solver(site):
    if site == "solver.sweep":
        rng = np.random.default_rng(SEED)
        f = rng.standard_normal((10, 10))
        run = lambda mgr: checkpointed_poisson_solve(  # noqa: E731
            f, 6, method="sor", omega=1.5, manager=mgr
        )
        expected = run(None)
    elif site == "solver.heat-step":
        t0 = initial_temperature(5, seed=SEED)
        dt0 = np.zeros_like(t0)
        run = lambda mgr: checkpointed_heat3d(  # noqa: E731
            t0, dt0, 6, manager=mgr
        )[0]
        expected = run(None)
    else:  # solver.lusgs-step
        from repro.cfdlib import euler
        from repro.cfdlib.lusgs import (
            LUSGSConfig, checkpointed_lusgs, stable_dt,
        )
        from repro.cfdlib.mesh import StructuredMesh

        mesh = StructuredMesh((5, 5, 5), extent=(1.0, 1.0, 1.0))
        w0 = euler.density_wave((5, 5, 5), amplitude=0.05)
        config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh, cfl=1.0))
        run = lambda mgr: checkpointed_lusgs(  # noqa: E731
            w0, config, 6, manager=mgr
        )
        expected = run(None)

    mgr = CheckpointManager(every=2, directory=_tmp_dir())
    plan = FaultPlan.seeded(site, seed=SEED)
    with injected(plan):
        with pytest.raises(InjectedFault):
            run(mgr)
    assert plan.fired
    got = run(mgr)  # resume from the last checkpoint (or from scratch)
    assert np.array_equal(got, expected), (
        "resumed solve is not bit-identical to the uninterrupted one"
    )


def _chaos_parallel_worker(site):
    """A worker fault mid-group degrades to sequential, bit-identically."""
    from repro.runtime.parallel import drain_events, num_threads

    options = CompileOptions(
        subdomain_sizes=(4, 4), vectorize=4, parallel=True, use_cache=False
    )
    kernel = StencilCompiler(options).compile(_module())
    assert kernel.parallel_certified
    x, b = _inputs()
    with num_threads(1):
        (expected,) = kernel(x.copy(), b.copy(), x.copy())
    drain_events()
    plan = FaultPlan.seeded(site, seed=SEED)
    with injected(plan), num_threads(4):
        for _ in range(4):
            (got,) = kernel(x.copy(), b.copy(), x.copy())
            assert np.array_equal(got, expected), (
                "degraded parallel run is not bit-identical to sequential"
            )
    assert plan.fired
    codes = {d.code for d in drain_events()}
    assert "RS010" in codes


def _service(**overrides):
    from repro.service import CompileService, ServiceConfig

    config = ServiceConfig(**{
        "options": OPTIONS, "backoff_base": 0.0, "max_retries": 4,
        **overrides,
    })
    return CompileService(config, cache=KernelCache())


def _chaos_service_queue(site):
    """A faulted admission stage rejects explicitly — never loses."""
    import asyncio

    plan = FaultPlan.seeded(site, seed=SEED)

    async def scenario():
        svc = _service()
        resps = [await svc.compile(_module()) for _ in range(6)]
        await svc.drain()
        return svc, resps

    with injected(plan):
        svc, resps = asyncio.run(scenario())
    assert plan.fired, "the seeded fault never fired"
    assert all(r.status in ("ok", "rejected") for r in resps)
    rejected = [r for r in resps if r.status == "rejected"]
    assert rejected, "the faulted admission was not rejected"
    for r in rejected:
        assert "RS012" in r.codes() and r.retry_after is not None


def _chaos_service_leader(site):
    """A crashed leader's waiters re-dispatch; every request succeeds."""
    import asyncio

    plan = FaultPlan.seeded(site, seed=SEED)

    async def scenario():
        svc = _service()
        resps = []
        for _ in range(4):
            resps.extend(await asyncio.gather(
                *[svc.compile(_module()) for _ in range(2)]
            ))
        await svc.drain()
        return svc, resps

    with injected(plan):
        svc, resps = asyncio.run(scenario())
    assert plan.fired
    assert all(r.ok for r in resps)
    assert svc.stats.redispatches >= 1
    assert "RS014" in {d.code for d in svc._events}


def _chaos_service_drain(site):
    """A faulted drain path still finishes every in-flight request."""
    import asyncio

    plan = FaultPlan.seeded(site, seed=SEED)

    async def one_round():
        svc = _service()
        task = asyncio.ensure_future(svc.compile(_module()))
        while not svc._flights and not task.done():
            await asyncio.sleep(0.001)
        await svc.drain()
        return svc, await task

    with injected(plan):
        for _ in range(4):
            svc, resp = asyncio.run(one_round())
            assert resp.ok
            if plan.fired:
                break
    assert plan.fired
    assert "RS009" in {d.code for d in svc._events}


_SCENARIOS = {
    "pipeline.pass-run": _chaos_pipeline,
    "pipeline.verify": _chaos_pipeline,
    "cache.disk-read": _chaos_cache_read,
    "cache.disk-write": _chaos_cache_write,
    "executor.compile": _chaos_executor,
    "executor.execute": _chaos_executor,
    "executor.hang": _chaos_hang,
    "parallel.worker": _chaos_parallel_worker,
    "service.queue": _chaos_service_queue,
    "service.leader": _chaos_service_leader,
    "service.drain": _chaos_service_drain,
    "solver.sweep": _chaos_solver,
    "solver.heat-step": _chaos_solver,
    "solver.lusgs-step": _chaos_solver,
}

def _tmp_dir():
    import tempfile
    from pathlib import Path

    return Path(tempfile.mkdtemp(prefix="chaos-"))


def test_every_registered_site_has_a_scenario():
    """Registering a new fault site without chaos coverage fails here."""
    assert set(_SCENARIOS) == set(FAULT_SITES)


@pytest.mark.parametrize("site", sorted(FAULT_SITES))
def test_chaos(site):
    _SCENARIOS[site](site)
