"""Tests for tiling: legalization and semantic preservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
)
from repro.core.tiling import (
    TileStencilsPass,
    legalize_tile_sizes,
    tile_footprint_bytes,
    tiling_level,
)
from repro.ir import PassManager, verify
from repro.ir.printer import print_module


def _fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _run_both(pattern, shape, tile_sizes, with_groups=False, seed=0, d=None,
              iterations=1):
    """Interpret the kernel before and after tiling; return both outputs."""
    d = d if d is not None else float(pattern.num_accesses)
    reference = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), iterations=iterations
    )
    tiled = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), iterations=iterations
    )
    pm = PassManager([TileStencilsPass(tile_sizes, with_groups=with_groups)])
    pm.run(tiled)
    x, b = _fields(shape, seed)
    (expected,) = run_function(reference, "kernel", x, b, x.copy())
    (actual,) = run_function(tiled, "kernel", x, b, x.copy())
    return expected, actual, tiled


class TestLegalization:
    def test_5pt_unrestricted(self):
        assert legalize_tile_sizes(gauss_seidel_5pt_2d(), [16, 32]) == [16, 32]

    def test_9pt_forces_leading_dim_to_1(self):
        # The paper's 1 x 128 shape (Table 2).
        assert legalize_tile_sizes(gauss_seidel_9pt_2d(), [16, 128]) == [1, 128]

    def test_9pt_second_order_unrestricted(self):
        p = gauss_seidel_9pt_2nd_order_2d()
        assert legalize_tile_sizes(p, [64, 256]) == [64, 256]

    def test_heat3d_unrestricted(self):
        assert legalize_tile_sizes(gauss_seidel_6pt_3d(), [4, 26, 256]) == [
            4,
            26,
            256,
        ]

    def test_backward_sweep_mirror(self):
        p = gauss_seidel_9pt_2d().inverted()
        # Mirrored pattern has L offset (1, -1): still forces dim 0 to 1.
        assert legalize_tile_sizes(p, [16, 128]) == [1, 128]

    def test_3d_diagonal_restriction(self):
        p = StencilPattern.from_offsets(
            3, l_offsets=[(0, -1, 1), (-1, 0, 0)], u_offsets=[(1, 0, 0)]
        )
        # (0, -1, 1): positive at dim 2, negative at dim 1 -> size 1 there.
        assert legalize_tile_sizes(p, [8, 8, 8]) == [8, 1, 8]

    def test_rank_mismatch(self):
        with pytest.raises(ValueError, match="tile sizes"):
            legalize_tile_sizes(gauss_seidel_5pt_2d(), [4])

    def test_footprint_model(self):
        assert tile_footprint_bytes([64, 256], nb_var=1) == 64 * 256 * 3 * 8
        assert tile_footprint_bytes([4, 26, 128], nb_var=5) == (
            4 * 26 * 128 * 5 * 3 * 8
        )


class TestTiledSemantics:
    @pytest.mark.parametrize(
        "pattern_fn,shape,tiles",
        [
            (gauss_seidel_5pt_2d, (1, 12, 13), (4, 5)),
            (gauss_seidel_5pt_2d, (1, 9, 9), (16, 16)),  # one big tile
            (gauss_seidel_9pt_2d, (1, 10, 11), (1, 4)),
            (gauss_seidel_9pt_2nd_order_2d, (1, 12, 12), (3, 4)),
            (gauss_seidel_6pt_3d, (1, 7, 8, 9), (2, 3, 4)),
            (jacobi_5pt_2d, (1, 10, 10), (3, 3)),
        ],
    )
    def test_matches_untiled(self, pattern_fn, shape, tiles):
        expected, actual, tiled = _run_both(pattern_fn(), shape, tiles)
        np.testing.assert_allclose(actual, expected, rtol=1e-13)
        verify(tiled)

    def test_tiled_ir_structure(self):
        _, _, tiled = _run_both(gauss_seidel_5pt_2d(), (1, 10, 10), (4, 4))
        text = print_module(tiled)
        assert "cfd.tiled_loop" in text
        assert "tensor.extract_slice" in text
        assert "tensor.insert_slice" in text
        # The inner stencil carries explicit write bounds and a level tag.
        inner = [op for op in tiled.walk() if op.name == "cfd.stencilOp"]
        assert len(inner) == 1
        assert inner[0].has_bounds
        assert tiling_level(inner[0]) == 1

    def test_with_wavefront_groups(self):
        expected, actual, tiled = _run_both(
            gauss_seidel_5pt_2d(), (1, 14, 14), (4, 4), with_groups=True
        )
        np.testing.assert_allclose(actual, expected, rtol=1e-13)
        text = print_module(tiled)
        assert "cfd.get_parallel_blocks" in text

    def test_groups_on_9pt_legal_tiles(self):
        expected, actual, _ = _run_both(
            gauss_seidel_9pt_2d(), (1, 9, 12), (1, 4), with_groups=True
        )
        np.testing.assert_allclose(actual, expected, rtol=1e-13)

    def test_two_level_tiling(self):
        """Sub-domain tiling (with groups) then cache tiling inside."""
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (16, 16), frontend.identity_body(4.0)
        )
        reference = frontend.build_stencil_kernel(
            pattern, (16, 16), frontend.identity_body(4.0)
        )
        pm = PassManager(
            [
                TileStencilsPass((8, 8), with_groups=True, level=0),
                TileStencilsPass((2, 4), level=1),
            ]
        )
        pm.run(module)
        loops = [op for op in module.walk() if op.name == "cfd.tiled_loop"]
        assert len(loops) == 2
        stencils = [op for op in module.walk() if op.name == "cfd.stencilOp"]
        assert len(stencils) == 1
        assert tiling_level(stencils[0]) == 2
        x, b = _fields((1, 16, 16), seed=11)
        (expected,) = run_function(reference, "kernel", x, b, x.copy())
        (actual,) = run_function(module, "kernel", x, b, x.copy())
        np.testing.assert_allclose(actual, expected, rtol=1e-13)

    def test_backward_sweep_tiled(self):
        pattern = gauss_seidel_5pt_2d().inverted()
        expected, actual, tiled = _run_both(pattern, (1, 11, 10), (4, 3))
        np.testing.assert_allclose(actual, expected, rtol=1e-13)
        loops = [op for op in tiled.walk() if op.name == "cfd.tiled_loop"]
        assert loops[0].reverse

    def test_multiple_iterations_tiled(self):
        expected, actual, _ = _run_both(
            gauss_seidel_5pt_2d(), (1, 10, 10), (4, 4), iterations=3
        )
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_multivar_tiled(self):
        pattern = gauss_seidel_5pt_2d()
        reference = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0), nb_var=3
        )
        tiled = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0), nb_var=3
        )
        PassManager([TileStencilsPass((4, 4))]).run(tiled)
        x, b = _fields((3, 8, 8), seed=13)
        (expected,) = run_function(reference, "kernel", x, b, x.copy())
        (actual,) = run_function(tiled, "kernel", x, b, x.copy())
        np.testing.assert_allclose(actual, expected, rtol=1e-13)


@st.composite
def _tiling_case(draw):
    pattern = draw(
        st.sampled_from(
            [
                gauss_seidel_5pt_2d(),
                gauss_seidel_9pt_2d(),
                gauss_seidel_9pt_2nd_order_2d(),
            ]
        )
    )
    n0 = draw(st.integers(5, 14))
    n1 = draw(st.integers(5, 14))
    t0 = draw(st.integers(1, 8))
    t1 = draw(st.integers(1, 8))
    groups = draw(st.booleans())
    return pattern, (1, n0, n1), (t0, t1), groups


class TestTilingProperty:
    @given(_tiling_case())
    @settings(max_examples=25, deadline=None)
    def test_any_tile_size_preserves_semantics(self, case):
        pattern, shape, tiles, groups = case
        expected, actual, _ = _run_both(
            pattern, shape, tiles, with_groups=groups, seed=42
        )
        np.testing.assert_allclose(actual, expected, rtol=1e-12)
