"""Unit tests for the interval abstract domain (analysis/absint)."""

import pytest

from repro.analysis.absint.interval import (
    NEG_INF,
    POS_INF,
    Interval,
    box_contains,
    box_disjoint,
    box_is_bounded,
    box_join,
    box_overlaps,
    box_str,
    hull_of_points,
)


def iv(lo, hi):
    return Interval(lo, hi)


class TestConstruction:
    def test_point(self):
        p = Interval.point(3)
        assert p.is_point and p.lo == p.hi == 3

    def test_top_is_unbounded(self):
        t = Interval.top()
        assert not t.is_bounded
        assert t.lo == NEG_INF and t.hi == POS_INF

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Interval(2, 1)

    def test_equality_and_hash(self):
        assert iv(1, 4) == iv(1, 4)
        assert iv(1, 4) != iv(1, 5)
        assert len({iv(0, 2), iv(0, 2), iv(0, 3)}) == 2

    def test_repr(self):
        assert repr(iv(-1, 7)) == "[-1, 7]"


class TestArithmetic:
    def test_add(self):
        assert iv(1, 3) + iv(-2, 5) == iv(-1, 8)

    def test_sub_flips_endpoints(self):
        assert iv(1, 3) - iv(-2, 5) == iv(-4, 5)

    def test_neg(self):
        assert -iv(-2, 5) == iv(-5, 2)

    def test_points_propagate_exactly(self):
        a, b = Interval.point(7), Interval.point(-3)
        assert (a + b).is_point and (a + b).lo == 4
        assert (a - b).is_point and (a - b).lo == 10
        assert (a * b).is_point and (a * b).lo == -21

    def test_mul_sign_corners(self):
        assert iv(-2, 3) * iv(-5, 4) == iv(-15, 12)
        assert iv(-2, -1) * iv(-3, -2) == iv(2, 6)

    def test_mul_zero_times_infinity(self):
        # The 0 * inf corner must collapse to 0, not NaN.
        z = Interval.point(0) * Interval.top()
        assert z == Interval.point(0)
        half = Interval(0, POS_INF) * Interval.point(2)
        assert half.lo == 0 and half.hi == POS_INF

    def test_floordiv_positive_point(self):
        assert iv(-5, 7).floordiv(Interval.point(2)) == iv(-3, 3)

    def test_floordiv_widens_otherwise(self):
        assert iv(4, 8).floordiv(iv(1, 2)) == Interval.top()
        assert iv(4, 8).floordiv(Interval.point(-2)) == Interval.top()

    def test_floordiv_preserves_infinities(self):
        assert Interval.top().floordiv(Interval.point(3)) == Interval.top()

    def test_remainder(self):
        assert Interval.point(7).remainder(Interval.point(4)) == (
            Interval.point(3)
        )
        assert iv(2, 9).remainder(Interval.point(4)) == iv(0, 3)
        assert iv(2, 9).remainder(iv(1, 4)) == Interval.top()

    def test_min_max_are_exact(self):
        a, b = iv(1, 10), iv(4, 6)
        assert a.min_(b) == iv(1, 6)
        assert a.max_(b) == iv(4, 10)


class TestLattice:
    def test_join_is_hull(self):
        assert iv(0, 2).join(iv(5, 9)) == iv(0, 9)

    def test_contains(self):
        assert iv(0, 10).contains(iv(3, 4))
        assert not iv(0, 10).contains(iv(3, 11))
        assert Interval.top().contains(iv(-100, 100))

    def test_disjoint(self):
        assert iv(0, 2).disjoint_from(iv(3, 5))
        assert not iv(0, 3).disjoint_from(iv(3, 5))


class TestBoxes:
    def test_box_join_and_contains(self):
        a = (iv(0, 2), iv(1, 1))
        b = (iv(1, 5), iv(0, 0))
        j = box_join(a, b)
        assert j == (iv(0, 5), iv(0, 1))
        assert box_contains(j, a) and box_contains(j, b)

    def test_box_join_rank_mismatch(self):
        with pytest.raises(ValueError, match="rank"):
            box_join((iv(0, 1),), (iv(0, 1), iv(0, 1)))

    def test_box_disjoint_needs_one_dimension(self):
        a = (iv(0, 2), iv(0, 2))
        assert box_disjoint(a, (iv(3, 4), iv(0, 2)))
        assert box_overlaps(a, (iv(2, 4), iv(2, 4)))

    def test_box_is_bounded(self):
        assert box_is_bounded((iv(0, 3), iv(1, 1)))
        assert not box_is_bounded((iv(0, 3), Interval.top()))

    def test_box_str(self):
        assert box_str((iv(0, 3), iv(1, 2))) == "[0, 3]x[1, 2]"

    def test_hull_of_points(self):
        hull = hull_of_points([(0, 5), (2, 1), (1, 3)])
        assert hull == [iv(0, 2), iv(1, 5)]
