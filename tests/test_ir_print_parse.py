"""Round-trip tests for the textual printer and parser."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntElementsAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    TypeAttr,
)
from repro.ir.block import single_block_region
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.parser import IRParseError, parse_module
from repro.ir.printer import print_module, print_op
from repro.ir.types import FunctionType, TensorType, f64, index


def _roundtrip(module):
    """print -> parse -> print must be a fixed point."""
    text1 = print_module(module)
    reparsed = parse_module(text1)
    text2 = print_module(reparsed)
    assert text1 == text2
    return reparsed


def _simple_module():
    module = ModuleOp.create()
    builder = OpBuilder.at_end(module.body)
    func = builder.create(
        "func.func",
        attributes={
            "sym_name": StringAttr("f"),
            "function_type": TypeAttr(FunctionType([f64], [f64])),
        },
        regions=[single_block_region(arg_types=[f64])],
    )
    body = func.region(0).entry_block
    inner = OpBuilder.at_end(body)
    c = inner.create(
        "arith.constant", attributes={"value": FloatAttr(2.5)}, result_types=[f64]
    )
    s = inner.create("arith.addf", [body.arguments[0], c.result()], [f64])
    inner.create("func.return", [s.result()])
    return module


class TestPrinter:
    def test_simple_module_shape(self):
        text = print_module(_simple_module())
        assert "builtin.module()" in text
        assert "func.func()" in text
        assert "arith.addf(" in text
        assert ": (f64, f64) -> (f64)" in text
        assert 'sym_name = "f"' in text

    def test_name_hints_win(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        op = builder.create("test.def", result_types=[f64])
        op.result().name_hint = "X"
        builder.create("test.use", [op.result()])
        text = print_module(module)
        assert "%X = test.def()" in text
        assert "test.use(%X)" in text

    def test_duplicate_hints_disambiguated(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        a = builder.create("test.a", result_types=[f64])
        b = builder.create("test.b", result_types=[f64])
        a.result().name_hint = "X"
        b.result().name_hint = "X"
        text = print_module(module)
        assert "%X = test.a()" in text
        assert "%X_1 = test.b()" in text

    def test_print_single_op(self):
        module = _simple_module()
        func = module.body.operations[0]
        text = print_op(func)
        assert text.startswith("func.func()")


class TestRoundTrip:
    def test_simple_module(self):
        reparsed = _roundtrip(_simple_module())
        func = reparsed.body.operations[0]
        assert func.name == "func.func"
        assert len(func.region(0).entry_block.operations) == 3

    def test_all_attribute_kinds(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        builder.create(
            "test.attrs",
            attributes={
                "i": IntegerAttr(-7),
                "idx": IntegerAttr(3, index),
                "f": FloatAttr(0.125),
                "fneg": FloatAttr(-2.0),
                "fsci": FloatAttr(1e-9),
                "b": BoolAttr(True),
                "s": StringAttr('quote " inside'),
                "arr": ArrayAttr([IntegerAttr(1), FloatAttr(2.0)]),
                "nested": ArrayAttr([ArrayAttr([IntegerAttr(0)])]),
                "pattern": DenseIntElementsAttr([[0, -1, 0], [-1, 0, 1], [0, 1, 0]]),
                "ft": TypeAttr(FunctionType([f64, index], [f64])),
                "tt": TypeAttr(TensorType([1, 4, 4], f64)),
            },
        )
        reparsed = _roundtrip(module)
        attrs = reparsed.body.operations[0].attributes
        assert attrs["i"] == IntegerAttr(-7)
        assert attrs["idx"] == IntegerAttr(3, index)
        assert attrs["f"] == FloatAttr(0.125)
        assert attrs["fsci"] == FloatAttr(1e-9)
        assert attrs["b"] == BoolAttr(True)
        assert attrs["s"] == StringAttr('quote " inside')
        assert attrs["pattern"].to_nested_lists() == [
            [0, -1, 0],
            [-1, 0, 1],
            [0, 1, 0],
        ]
        assert attrs["ft"] == TypeAttr(FunctionType([f64, index], [f64]))
        assert attrs["tt"] == TypeAttr(TensorType([1, 4, 4], f64))

    def test_nested_regions(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        outer = builder.create(
            "scf.for",
            result_types=[f64],
            regions=[single_block_region(arg_types=[index, f64])],
        )
        inner_block = outer.region(0).entry_block
        ib = OpBuilder.at_end(inner_block)
        add = ib.create(
            "arith.addf", [inner_block.arguments[1], inner_block.arguments[1]], [f64]
        )
        ib.create("scf.yield", [add.result()])
        reparsed = _roundtrip(module)
        loop = reparsed.body.operations[0]
        assert loop.name == "scf.for"
        args = loop.region(0).entry_block.arguments
        assert [a.type for a in args] == [index, f64]
        yield_op = loop.region(0).entry_block.operations[-1]
        assert yield_op.name == "scf.yield"

    def test_multi_result_op(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        pair = builder.create("test.pair", result_types=[index, index])
        builder.create("test.use", [pair.result(1), pair.result(0)])
        reparsed = _roundtrip(module)
        use = reparsed.body.operations[1]
        definer = reparsed.body.operations[0]
        assert use.operand(0) is definer.result(1)
        assert use.operand(1) is definer.result(0)

    def test_dynamic_tensor_types(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        builder.create(
            "test.t", result_types=[TensorType([1, -1, -1], f64)]
        )
        reparsed = _roundtrip(module)
        t = reparsed.body.operations[0].result().type
        assert str(t) == "tensor<1x?x?xf64>"


class TestParseErrors:
    def test_undefined_value(self):
        text = "builtin.module() ({\n^bb():\ntest.use(%nope) : (f64) -> ()\n}) : () -> ()\n"
        with pytest.raises(IRParseError, match="undefined value"):
            parse_module(text)

    def test_top_level_must_be_module(self):
        with pytest.raises(IRParseError, match="builtin.module"):
            parse_module("func.func() : () -> ()\n")

    def test_garbage_rejected(self):
        with pytest.raises(IRParseError):
            parse_module("@@@@")

    def test_result_count_mismatch(self):
        text = (
            "builtin.module() ({\n^bb():\n"
            "%a, %b = test.op() : () -> (f64)\n"
            "}) : () -> ()\n"
        )
        with pytest.raises(IRParseError, match="result names"):
            parse_module(text)

    def test_trailing_input(self):
        module_text = print_module(ModuleOp.create())
        with pytest.raises(IRParseError, match="trailing"):
            parse_module(module_text + "test.op() : () -> ()\n")


class TestAnalysisAttrRoundTrip:
    """The analysis layer reads attributes stamped by tiling, fusion and
    bufferization; all of them must survive print -> parse verbatim."""

    def _tiled(self):
        from repro.core import frontend
        from repro.core.pipeline import CompileOptions, StencilCompiler
        from repro.core.stencil import gauss_seidel_5pt_2d

        module = ModuleOp.create()
        frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (24, 24), frontend.identity_body(4.0),
            module=module,
        )
        options = CompileOptions(
            subdomain_sizes=(12, 12), parallel=True, vectorize=0,
            use_cache=False,
        )
        StencilCompiler(options).lower(module)
        return module

    @staticmethod
    def _loop(module):
        return next(op for op in module.walk() if op.name == "cfd.tiled_loop")

    def test_tiling_attrs_survive(self):
        module = self._tiled()
        original = self._loop(module)
        reparsed_loop = self._loop(_roundtrip(module))
        for key in ("stencil", "tile_sizes"):
            assert (
                reparsed_loop.attributes[key].to_nested_lists()
                == original.attributes[key].to_nested_lists()
            ), key
        for key in ("sweep", "reverse", "num_ins", "num_outs", "rank",
                    "nbVar", "has_groups", "allow_initial_reads"):
            assert (
                reparsed_loop.attributes[key].value
                == original.attributes[key].value
            ), key

    def test_fusion_rejected_attr_survives(self):
        from repro.analysis import analyze_op

        module = self._tiled()
        loop = self._loop(module)
        # The same stamp fusion.py places when a producer's halo exceeds
        # the stencil halo (see test_analysis_pipeline on euler_lusgs).
        loop.attributes["fusion_rejected"] = StringAttr(
            "producer 'cfd.faceIteratorOp' of input #0 not fused: its "
            "access halo (1, 1) along space dimension 2 exceeds the "
            "stencil halo (1, 0)"
        )
        reparsed_loop = self._loop(_roundtrip(module))
        assert (
            reparsed_loop.attributes["fusion_rejected"].value
            == loop.attributes["fusion_rejected"].value
        )
        (diag,) = [
            d for d in analyze_op(reparsed_loop) if d.code == "IP016"
        ]
        assert diag.severity == "note"
        assert "halo" in diag.message

    def test_bufferization_lineage_attrs_survive(self):
        from repro.analysis.absint import run_memory_safety
        from repro.core import frontend
        from repro.core.bufferization import BufferizePass
        from repro.core.lowering import LowerStencilsPass
        from repro.core.stencil import gauss_seidel_5pt_2d

        module = ModuleOp.create()
        frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (24, 24), frontend.identity_body(4.0),
            module=module,
        )
        LowerStencilsPass().run(module)
        BufferizePass().run(module)
        reparsed = _roundtrip(module)

        def stamps(m):
            out = []
            for op in m.walk():
                row = {
                    k: v.value
                    for k, v in sorted(op.attributes.items())
                    if k in ("absint_reads", "absint_writes", "absint_parent")
                }
                carries = op.attributes.get("absint_carries")
                if carries is not None:
                    row["absint_carries"] = carries.to_nested_lists()
                if row:
                    out.append((op.name, row))
            return out

        original = stamps(module)
        assert original, "bufferization stamped no lineage attributes"
        assert stamps(reparsed) == original
        # The reparsed module analyzes identically: still provably clean.
        assert run_memory_safety(reparsed).diagnostics == []
