"""The two-level dependence engine: decoding, extraction, cross-check."""

import pytest

from repro.analysis import (
    AccessSet,
    cross_check_stencil,
    decode_stencil_attr,
    flow_distance_vectors,
    lex_sign,
    lowered_access_set,
    pattern_access_set,
    schedule_relevant_offsets,
)
from repro.analysis.dependence import compare_access_sets, extract_loop_access_set
from repro.core import frontend
from repro.core.lowering import LowerStencilsPass
from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
    sor_5pt_2d,
)
from repro.ir.attributes import IntegerAttr

ALL_PATTERNS = [
    gauss_seidel_5pt_2d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    gauss_seidel_6pt_3d,
    jacobi_5pt_2d,
    sor_5pt_2d,
]


def _stencil_ops(module):
    return [op for op in module.walk() if op.name == "cfd.stencilOp"]


def _build(pattern, nb_var=1):
    shape = (12,) * pattern.rank
    return frontend.build_stencil_kernel(
        pattern, shape, frontend.identity_body(4.0), nb_var=nb_var
    )


class TestLexSign:
    def test_signs(self):
        assert lex_sign((0, 0)) == 0
        assert lex_sign((-1, 5)) == -1
        assert lex_sign((0, -1)) == -1
        assert lex_sign((0, 1)) == 1
        assert lex_sign((1, -9)) == 1


class TestDecode:
    @pytest.mark.parametrize("make", ALL_PATTERNS)
    def test_matches_stencil_pattern(self, make):
        """The independent decoder agrees with StencilPattern on every
        canonical pattern."""
        pattern = make()
        module = _build(pattern)
        (op,) = _stencil_ops(module)
        rank, l_offsets, u_offsets = decode_stencil_attr(
            op.attributes["stencil"]
        )
        assert rank == pattern.rank
        assert sorted(l_offsets) == sorted(pattern.l_offsets)
        assert sorted(u_offsets) == sorted(pattern.u_offsets)

    def test_schedule_relevant_negates_initial_reads(self):
        # A backward-side L offset under allow_initial_reads contributes
        # its negation (an anti-dependence on the initial content).
        offs = schedule_relevant_offsets([(-1, 0), (1, 0)], 1, True)
        assert offs == [(-1, 0)]
        offs = schedule_relevant_offsets([(-1, 0), (0, 1)], 1, True)
        assert sorted(offs) == [(-1, 0), (0, -1)]

    def test_schedule_relevant_drops_wrong_side_without_initial(self):
        assert schedule_relevant_offsets([(1, 0)], 1, False) == []

    @pytest.mark.parametrize("make", ALL_PATTERNS)
    def test_flow_distances_lex_positive(self, make):
        """Every canonical pattern's dependence distances point forward."""
        pattern = make()
        for d in flow_distance_vectors(
            pattern.l_offsets, pattern.sweep, pattern.allow_initial_reads
        ):
            assert lex_sign(tuple(c * pattern.sweep for c in d)) > 0


class TestCrossCheck:
    @pytest.mark.parametrize("make", ALL_PATTERNS)
    @pytest.mark.parametrize("nb_var", [1, 2])
    def test_canonical_patterns_clean(self, make, nb_var):
        """The lowering reads exactly the cells the L/U tags promise, for
        every canonical pattern and both single/multi-variable forms."""
        module = _build(make(), nb_var=nb_var)
        (op,) = _stencil_ops(module)
        assert cross_check_stencil(op) == []

    def test_backward_sweep_clean(self):
        pattern = gauss_seidel_6pt_3d().inverted()
        assert pattern.sweep == -1
        module = _build(pattern)
        (op,) = _stencil_ops(module)
        assert cross_check_stencil(op) == []

    def test_symmetric_sweep_kernel_clean(self):
        module = frontend.build_symmetric_sweep_kernel(
            gauss_seidel_5pt_2d(), (10, 10), frontend.identity_body(4.0)
        )
        ops = _stencil_ops(module)
        assert len(ops) == 2
        for op in ops:
            assert cross_check_stencil(op) == []

    @pytest.mark.parametrize("make", ALL_PATTERNS)
    def test_lowered_access_set_matches_pattern(self, make):
        pattern = make()
        module = _build(pattern)
        (op,) = _stencil_ops(module)
        actual = lowered_access_set(op)
        expected = pattern_access_set(op)
        assert actual is not None and expected is not None
        assert actual.y_reads == expected.y_reads
        assert actual.x_reads == expected.x_reads
        assert actual.b_reads == expected.b_reads

    def test_mutated_loop_nest_flags_ip003(self):
        """Corrupting one read offset in an actually-lowered nest is
        caught by comparing against the pattern tags."""
        pattern = gauss_seidel_5pt_2d()
        module = _build(pattern)
        (op,) = _stencil_ops(module)
        expected = pattern_access_set(op)
        LowerStencilsPass().run(module)
        # Shift one stencil read: change some addi's +/-1 constant to -2.
        for nest_op in module.walk():
            if nest_op.name != "arith.addi":
                continue
            rhs = nest_op.operand(1)
            if (
                rhs.op.name == "arith.constant"
                and rhs.op.attributes["value"].value == -1
            ):
                from repro.dialects import arith
                from repro.ir import OpBuilder

                builder = OpBuilder.before(nest_op)
                nest_op.set_operand(1, arith.const_index(builder, -2))
                break
        actual = extract_loop_access_set(module)
        diags = compare_access_sets(expected, actual)
        assert diags, "mutated nest must disagree with the pattern tags"
        assert {d.code for d in diags} == {"IP003"}
        assert all(d.is_error for d in diags)

    def test_compare_reports_missing_and_extra(self):
        expected = AccessSet(2, y_reads={(-1, 0), (0, -1)})
        actual = AccessSet(2, y_reads={(-1, 0), (0, 1)})
        (diag,) = compare_access_sets(expected, actual)
        assert diag.code == "IP003"
        assert "(0, -1)" in diag.message and "(0, 1)" in diag.message

    def test_jacobi_has_no_l_reads(self):
        module = _build(jacobi_5pt_2d())
        (op,) = _stencil_ops(module)
        assert pattern_access_set(op).y_reads == set()
        assert cross_check_stencil(op) == []

    def test_pattern_access_set_requires_stencil_attr(self):
        module = _build(gauss_seidel_5pt_2d())
        (op,) = _stencil_ops(module)
        del op.attributes["stencil"]
        assert pattern_access_set(op) is None
        assert cross_check_stencil(op) == []


class TestIndependenceFromStencilPattern:
    def test_decoder_accepts_invalid_patterns(self):
        """The analyzer must decode mutants StencilPattern would reject
        at construction time (that is the point of re-deriving)."""
        module = _build(gauss_seidel_5pt_2d())
        (op,) = _stencil_ops(module)
        op.attributes["sweep"] = IntegerAttr(-1)
        with pytest.raises(ValueError):
            StencilPattern(
                op.attributes["stencil"].to_nested_lists(), sweep=-1
            )
        rank, l_offsets, _ = decode_stencil_attr(op.attributes["stencil"])
        assert rank == 2 and sorted(l_offsets) == [(-1, 0), (0, -1)]
