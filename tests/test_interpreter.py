"""Tests for the reference interpreter against hand-written numerics."""

import numpy as np
import pytest

from repro.baselines import naive
from repro.codegen.interpreter import Interpreter, InterpreterError, run_function
from repro.core import frontend
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    jacobi_5pt_2d,
)
from repro.dialects import arith, cfd, func, linalg, scf, tensor
from repro.ir import ModuleOp, OpBuilder
from repro.ir.types import FunctionType, TensorType, f64, index


def _rng(seed=0):
    return np.random.default_rng(seed)


def _fields(shape, seed=0):
    rng = _rng(seed)
    return (
        rng.standard_normal(shape),
        rng.standard_normal(shape),
    )


class TestScalarPrograms:
    def test_arith_function(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        fn = func.FuncOp.build(b, "axpy", FunctionType([f64, f64, f64], [f64]))
        fb = OpBuilder.at_end(fn.body)
        a, x, y = fn.arguments
        func.ReturnOp.build(fb, [arith.addf(fb, arith.mulf(fb, a, x), y)])
        (result,) = run_function(module, "axpy", 2.0, 3.0, 4.0)
        assert result == 10.0

    def test_loop_accumulation(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        fn = func.FuncOp.build(b, "sum_n", FunctionType([index], [f64]))
        fb = OpBuilder.at_end(fn.body)
        zero = arith.const_index(fb, 0)
        one = arith.const_index(fb, 1)
        init = arith.const_f64(fb, 0.0)
        loop = scf.ForOp.build(fb, zero, fn.arguments[0], one, [init])
        lb = OpBuilder.at_end(loop.body)
        iv_f = arith.SIToFPOp.build(lb, loop.induction_var).result()
        scf.YieldOp.build(lb, [arith.addf(lb, loop.iter_args[0], iv_f)])
        func.ReturnOp.build(fb, [loop.result()])
        (result,) = run_function(module, "sum_n", 5)
        assert result == 0 + 1 + 2 + 3 + 4

    def test_call_between_functions(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        sq = func.FuncOp.build(b, "square", FunctionType([f64], [f64]))
        sb = OpBuilder.at_end(sq.body)
        func.ReturnOp.build(
            sb, [arith.mulf(sb, sq.arguments[0], sq.arguments[0])]
        )
        main = func.FuncOp.build(b, "main", FunctionType([f64], [f64]))
        mb = OpBuilder.at_end(main.body)
        c = func.CallOp.build(mb, "square", [main.arguments[0]], [f64])
        func.ReturnOp.build(mb, [c.result()])
        (result,) = run_function(module, "main", 7.0)
        assert result == 49.0

    def test_if_op(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        fn = func.FuncOp.build(b, "clamp0", FunctionType([f64], [f64]))
        fb = OpBuilder.at_end(fn.body)
        zero = arith.const_f64(fb, 0.0)
        cond = arith.CmpFOp.build(fb, "lt", fn.arguments[0], zero).result()
        if_op = scf.IfOp.build(fb, cond, [f64])
        tb = OpBuilder.at_end(if_op.then_block)
        scf.YieldOp.build(tb, [arith.const_f64(tb, 0.0)])
        eb = OpBuilder.at_end(if_op.else_block)
        scf.YieldOp.build(eb, [fn.arguments[0]])
        func.ReturnOp.build(fb, [if_op.result()])
        assert run_function(module, "clamp0", -3.0) == [0.0]
        assert run_function(module, "clamp0", 5.0) == [5.0]

    def test_missing_function(self):
        with pytest.raises(InterpreterError, match="no function"):
            run_function(ModuleOp.create(), "ghost")

    def test_argument_count_checked(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        fn = func.FuncOp.build(b, "f", FunctionType([f64], [f64]))
        func.ReturnOp.build(OpBuilder.at_end(fn.body), [fn.arguments[0]])
        with pytest.raises(InterpreterError, match="expects 1"):
            run_function(module, "f", 1.0, 2.0)


class TestStencilOpSemantics:
    @pytest.mark.parametrize(
        "pattern_fn,shape",
        [
            (gauss_seidel_5pt_2d, (1, 8, 9)),
            (gauss_seidel_9pt_2d, (1, 7, 8)),
            (gauss_seidel_6pt_3d, (1, 5, 6, 7)),
        ],
    )
    def test_matches_python_reference(self, pattern_fn, shape):
        pattern = pattern_fn()
        d = float(pattern.num_accesses)
        module = frontend.build_stencil_kernel(
            pattern, shape[1:], frontend.identity_body(d)
        )
        x, b = _fields(shape)
        y0 = x.copy()
        (y,) = run_function(module, "kernel", x, b, y0)
        expected = naive.stencil_sweep_python(
            x, b, x.copy(), pattern, naive.identity_scalar_body(d)
        )
        np.testing.assert_allclose(y, expected, rtol=1e-13)

    def test_multiple_iterations(self):
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0), iterations=3
        )
        x, b = _fields((1, 8, 8), seed=3)
        (y,) = run_function(module, "kernel", x, b, x.copy())
        expected = x.copy()
        for _ in range(3):
            expected = naive.stencil_sweep_python(
                expected.copy(), b, expected, pattern,
                naive.identity_scalar_body(4.0),
            )
        np.testing.assert_allclose(y, expected, rtol=1e-12)

    def test_in_place_dependence_actually_used(self):
        """The L reads must see *current*-iteration values: compare
        against Jacobi (previous-iteration reads) and require different
        results."""
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0)
        )
        x, b = _fields((1, 8, 8), seed=1)
        (y,) = run_function(module, "kernel", x, b, x.copy())
        jac = naive.jacobi_sweep(x[0].copy(), b[0], jacobi_5pt_2d(), 4.0)
        assert not np.allclose(y[0], jac)

    def test_backward_sweep_is_mirror_of_forward(self):
        pattern = gauss_seidel_5pt_2d()
        x, b = _fields((1, 8, 8), seed=2)
        fwd_module = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0)
        )
        (y_fwd,) = run_function(fwd_module, "kernel", x, b, x.copy())
        # Backward sweep on the flipped data must equal flipped forward.
        bwd_module = frontend.build_stencil_kernel(
            pattern.inverted(), (8, 8), frontend.identity_body(4.0)
        )
        x_f = np.flip(x, axis=(1, 2)).copy()
        b_f = np.flip(b, axis=(1, 2)).copy()
        (y_bwd,) = run_function(bwd_module, "kernel", x_f, b_f, x_f.copy())
        np.testing.assert_allclose(np.flip(y_bwd, axis=(1, 2)), y_fwd, rtol=1e-13)

    def test_symmetric_sweep_kernel(self):
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_symmetric_sweep_kernel(
            pattern, (6, 6), frontend.identity_body(4.0)
        )
        x, b = _fields((1, 6, 6), seed=5)
        (y,) = run_function(module, "symmetric_kernel", x, b, x.copy())
        ref = naive.stencil_sweep_python(
            x, b, x.copy(), pattern, naive.identity_scalar_body(4.0)
        )
        ref = naive.stencil_sweep_python(
            ref, b, ref.copy(), pattern.inverted(),
            naive.identity_scalar_body(4.0),
        )
        np.testing.assert_allclose(y, ref, rtol=1e-13)

    def test_boundary_untouched(self):
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0)
        )
        x, b = _fields((1, 8, 8))
        (y,) = run_function(module, "kernel", x, b, x.copy())
        np.testing.assert_array_equal(y[0, 0, :], x[0, 0, :])
        np.testing.assert_array_equal(y[0, -1, :], x[0, -1, :])
        np.testing.assert_array_equal(y[0, :, 0], x[0, :, 0])
        np.testing.assert_array_equal(y[0, :, -1], x[0, :, -1])

    def test_multivar_stencil(self):
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (6, 6), frontend.identity_body(4.0), nb_var=2
        )
        x, b = _fields((2, 6, 6), seed=7)
        (y,) = run_function(module, "kernel", x, b, x.copy())
        expected = naive.stencil_sweep_python(
            x, b, x.copy(), pattern,
            naive.identity_scalar_body(4.0, nb_var=2), nb_var=2,
        )
        np.testing.assert_allclose(y, expected, rtol=1e-13)

    def test_sor_body(self):
        pattern = gauss_seidel_5pt_2d()
        omega = 1.5
        module = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.sor_body(omega, 4.0)
        )
        x, b = _fields((1, 8, 8), seed=9)
        (y,) = run_function(module, "kernel", x, b, x.copy())

        # Direct SOR reference.
        u = x[0].copy()
        for i in range(1, 7):
            for j in range(1, 7):
                gs = (b[0, i, j] + u[i - 1, j] + u[i, j - 1]
                      + u[i, j + 1] + u[i + 1, j]) / 4.0
                u[i, j] = (1 - omega) * x[0, i, j] + omega * gs
        np.testing.assert_allclose(y[0], u, rtol=1e-12)


class TestFaceIterator:
    def test_flux_accumulation(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([1, 4, 4], f64)
        fn = func.FuncOp.build(b, "flux", FunctionType([t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        x, b_init = fn.arguments
        op = cfd.FaceIteratorOp.build(fb, x, b_init, axis=0)
        ob = OpBuilder.at_end(op.body)
        left, right = op.body.arguments
        cfd.CFDYieldOp.build(ob, [arith.subf(ob, right, left)])
        func.ReturnOp.build(fb, [op.result()])

        rng = _rng(4)
        xv = rng.standard_normal((1, 4, 4))
        (bv,) = run_function(module, "flux", xv, np.zeros((1, 4, 4)))
        expected = np.zeros((1, 4, 4))
        for i in range(3):
            for j in range(4):
                f = xv[0, i + 1, j] - xv[0, i, j]
                expected[0, i, j] -= f
                expected[0, i + 1, j] += f
        np.testing.assert_allclose(bv, expected, rtol=1e-13)

    def test_conservation(self):
        """Fluxes cancel in the interior: the total of B is zero."""
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([1, 6, 6], f64)
        fn = func.FuncOp.build(b, "flux", FunctionType([t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        op = cfd.FaceIteratorOp.build(fb, fn.arguments[0], fn.arguments[1], axis=1)
        ob = OpBuilder.at_end(op.body)
        left, right = op.body.arguments
        half = arith.const_f64(ob, 0.5)
        avg = arith.mulf(ob, half, arith.addf(ob, left, right))
        cfd.CFDYieldOp.build(ob, [avg])
        func.ReturnOp.build(fb, [op.result()])
        rng = _rng(5)
        xv = rng.standard_normal((1, 6, 6))
        (bv,) = run_function(module, "flux", xv, np.zeros((1, 6, 6)))
        np.testing.assert_allclose(bv.sum(), 0.0, atol=1e-12)


class TestLinalgGeneric:
    def test_pointwise_add(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([4, 4], f64)
        fn = func.FuncOp.build(b, "add", FunctionType([t, t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        a1, a2, init = fn.arguments
        g = linalg.GenericOp.build(fb, [a1, a2], init)
        gb = OpBuilder.at_end(g.body)
        args = g.body.arguments
        linalg.LinalgYieldOp.build(gb, [arith.addf(gb, args[0], args[1])])
        func.ReturnOp.build(fb, [g.result()])
        rng = _rng(6)
        x, y = rng.standard_normal((4, 4)), rng.standard_normal((4, 4))
        (out,) = run_function(module, "add", x, y, np.zeros((4, 4)))
        np.testing.assert_allclose(out, x + y, rtol=1e-13)

    def test_shifted_laplacian_1d(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([8], f64)
        fn = func.FuncOp.build(b, "lap", FunctionType([t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        u, init = fn.arguments
        g = linalg.GenericOp.build(
            fb, [u, u, u], init, offsets=[(-1,), (0,), (1,)]
        )
        gb = OpBuilder.at_end(g.body)
        um, uc, up, _out = g.body.arguments
        two = arith.const_f64(gb, 2.0)
        lap = arith.subf(
            gb, arith.addf(gb, um, up), arith.mulf(gb, two, uc)
        )
        linalg.LinalgYieldOp.build(gb, [lap])
        func.ReturnOp.build(fb, [g.result()])
        rng = _rng(8)
        uv = rng.standard_normal(8)
        (out,) = run_function(module, "lap", uv, np.zeros(8))
        expected = np.zeros(8)
        expected[1:-1] = uv[:-2] + uv[2:] - 2 * uv[1:-1]
        np.testing.assert_allclose(out, expected, rtol=1e-13)

    def test_boundary_keeps_init(self):
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([6], f64)
        fn = func.FuncOp.build(b, "shift", FunctionType([t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        u, init = fn.arguments
        g = linalg.GenericOp.build(fb, [u], init, offsets=[(2,)])
        gb = OpBuilder.at_end(g.body)
        linalg.LinalgYieldOp.build(gb, [g.body.arguments[0]])
        func.ReturnOp.build(fb, [g.result()])
        uv = np.arange(6.0)
        marker = np.full(6, -99.0)
        (out,) = run_function(module, "shift", uv, marker)
        np.testing.assert_array_equal(out[:4], uv[2:])
        np.testing.assert_array_equal(out[4:], marker[4:])


class TestTiledLoopAndBlocks:
    def test_get_parallel_blocks_matches_scheduling(self):
        from repro.core import scheduling

        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([-1], index)
        fn = func.FuncOp.build(b, "blocks", FunctionType([index, index], [t, t]))
        fb = OpBuilder.at_end(fn.body)
        op = cfd.GetParallelBlocksOp.build(
            fb, list(fn.arguments), [(-1, 0), (0, -1)]
        )
        func.ReturnOp.build(fb, [op.result(0), op.result(1)])
        offsets, indices = run_function(module, "blocks", 3, 3)
        exp_off, exp_idx = scheduling.compute_parallel_blocks(
            (3, 3), [(-1, 0), (0, -1)]
        )
        np.testing.assert_array_equal(offsets, exp_off)
        np.testing.assert_array_equal(indices, exp_idx)

    def test_tiled_loop_visits_all_tiles(self):
        """A tiled loop that adds 1 to each tile slice covers the tensor."""
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([1, 8, 8], f64)
        fn = func.FuncOp.build(b, "bump", FunctionType([t], [t]))
        fb = OpBuilder.at_end(fn.body)
        zero = arith.const_index(fb, 0)
        n = arith.const_index(fb, 8)
        four = arith.const_index(fb, 4)
        loop = cfd.TiledLoopOp.build(
            fb, [zero, zero], [n, n], [four, four], [], [fn.arguments[0]]
        )
        lb = OpBuilder.at_end(loop.body)
        i, j = loop.induction_vars
        out = loop.out_args[0]
        one_v = arith.const_index(lb, 1)
        zero_i = arith.const_index(lb, 0)
        four_i = arith.const_index(lb, 4)
        tile = tensor.ExtractSliceOp.build(
            lb, out, [zero_i, i, j], [one_v, four_i, four_i]
        )
        one_f = arith.const_f64(lb, 1.0)
        filled = linalg.GenericOp.build(lb, [tile.result()], tile.result())
        gb = OpBuilder.at_end(filled.body)
        linalg.LinalgYieldOp.build(
            gb, [arith.addf(gb, filled.body.arguments[0], one_f)]
        )
        new_out = tensor.InsertSliceOp.build(
            lb, filled.result(), out, [zero_i, i, j], [one_v, four_i, four_i]
        )
        cfd.CFDYieldOp.build(lb, [new_out.result()])
        func.ReturnOp.build(fb, [loop.result()])
        (out_v,) = run_function(module, "bump", np.zeros((1, 8, 8)))
        np.testing.assert_array_equal(out_v, np.ones((1, 8, 8)))
