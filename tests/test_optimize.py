"""Unit tests for the midend optimizer suite (repro.core.optimize)."""

from repro.core.optimize import (
    CSEPass,
    ConstantFoldPass,
    DCEPass,
    LICMPass,
    optimization_pipeline,
)
from repro.dialects import arith, scf
from repro.ir import ModuleOp, PassManager
from repro.ir.attributes import FloatAttr, IntegerAttr
from repro.ir.builder import OpBuilder
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.types import f64, index
from repro.ir.verifier import verify


def _empty_module():
    module = ModuleOp.create()
    return module, OpBuilder.at_end(module.body)


def _ops(module):
    return [op.name for op in module.body.operations]


def _run(module, pass_):
    PassManager([pass_]).run(module)


class TestStructuralHashing:
    def test_key_equal_for_identical_ops(self):
        module, b = _empty_module()
        x = arith.const_index(b, 7)
        one = arith.const_index(b, 1)
        s1 = arith.addi(b, x, one)
        s2 = arith.addi(b, x, one)
        assert s1.op.structural_key() == s2.op.structural_key()

    def test_key_differs_on_operands_and_attrs(self):
        module, b = _empty_module()
        x = arith.const_index(b, 7)
        y = arith.const_index(b, 8)
        assert x.op.structural_key() != y.op.structural_key()
        assert (
            arith.addi(b, x, y).op.structural_key()
            != arith.addi(b, y, x).op.structural_key()
        )

    def test_deep_hash_and_equivalence_ignore_value_identity(self):
        def build_loop():
            module, b = _empty_module()
            lo = arith.const_index(b, 0)
            hi = arith.const_index(b, 4)
            one = arith.const_index(b, 1)
            loop = scf.ForOp.build(b, lo, hi, one)
            body = OpBuilder.at_end(loop.body)
            arith.addi(body, loop.induction_var, one)
            scf.YieldOp.build(body)
            return module

        m1, m2 = build_loop(), build_loop()
        assert m1.structural_hash() == m2.structural_hash()
        assert m1.is_structurally_equivalent(m2)

    def test_equivalence_detects_difference(self):
        module, b = _empty_module()
        x = arith.const_index(b, 7)
        y = arith.const_index(b, 9)
        assert not x.op.is_structurally_equivalent(y.op)


class TestConstantFold:
    def test_folds_integer_chain(self):
        module, b = _empty_module()
        three = arith.const_index(b, 3)
        four = arith.const_index(b, 4)
        total = arith.addi(b, three, four)
        b.create("test.use", [arith.muli(b, total, total)])
        _run(module, ConstantFoldPass())
        _run(module, DCEPass())
        use = module.body.operations[-1]
        folded = use.operand(0)
        assert folded.op.name == "arith.constant"
        assert folded.op.attributes["value"].value == 49

    def test_folds_float_and_identities(self):
        module, b = _empty_module()
        x = b.create("test.def", result_types=[f64]).result()
        one = arith.ConstantOp.build(b, FloatAttr(1.0, f64)).result()
        b.create("test.use", [arith.mulf(b, x, one)])
        _run(module, ConstantFoldPass())
        use = module.body.operations[-1]
        assert use.operand(0) is x  # x * 1.0 == x, bit-exact

    def test_division_by_zero_not_folded(self):
        module, b = _empty_module()
        ten = arith.const_index(b, 10)
        zero = arith.const_index(b, 0)
        b.create("test.use", [arith.floordivi(b, ten, zero)])
        _run(module, ConstantFoldPass())
        assert "arith.floordivi" in _ops(module)

    def test_select_with_constant_condition(self):
        module, b = _empty_module()
        x = b.create("test.def", result_types=[f64]).result()
        y = b.create("test.def", result_types=[f64]).result()
        cond = arith.ConstantOp.build(b, IntegerAttr(1, index)).result()
        true_attr = arith.CmpIOp.build(b, "eq", cond, cond).result()
        sel = arith.SelectOp.build(b, true_attr, x, y)
        b.create("test.use", [sel.result()])
        _run(module, ConstantFoldPass())
        use = module.body.operations[-1]
        assert use.operand(0) is x


class TestCSE:
    def test_merges_duplicate_pure_ops(self):
        module, b = _empty_module()
        x = arith.const_index(b, 5)
        y = arith.const_index(b, 5)
        s1 = arith.addi(b, x, x)
        s2 = arith.addi(b, x, x)
        b.create("test.use", [s1, s2, y])
        _run(module, CSEPass())
        _run(module, DCEPass())
        names = _ops(module)
        assert names.count("arith.constant") == 1
        assert names.count("arith.addi") == 1
        use = module.body.operations[-1]
        assert use.operand(0) is use.operand(1)

    def test_nested_block_reuses_outer_op(self):
        module, b = _empty_module()
        lo = arith.const_index(b, 0)
        hi = arith.const_index(b, 4)
        one = arith.const_index(b, 1)
        outer_sum = arith.addi(b, hi, one)
        b.create("test.use", [outer_sum])
        loop = scf.ForOp.build(b, lo, hi, one)
        body = OpBuilder.at_end(loop.body)
        inner_sum = arith.addi(body, hi, one)  # same computation inside
        body.create("test.use", [inner_sum])
        scf.YieldOp.build(body)
        _run(module, CSEPass())
        inner_use = [op for op in loop.body.operations if op.name == "test.use"][0]
        assert inner_use.operand(0) is outer_sum
        verify(module)

    def test_sibling_regions_do_not_share(self):
        module, b = _empty_module()
        lo = arith.const_index(b, 0)
        hi = arith.const_index(b, 4)
        one = arith.const_index(b, 1)
        for _ in range(2):
            loop = scf.ForOp.build(b, lo, hi, one)
            body = OpBuilder.at_end(loop.body)
            body.create("test.use", [arith.addi(body, hi, one)])
            scf.YieldOp.build(body)
        _run(module, CSEPass())
        # Each loop body keeps its own addi: neither dominates the other.
        addis = [op for op in module.walk() if op.name == "arith.addi"]
        assert len(addis) == 2


class TestDCE:
    def test_erases_dead_pure_chain(self):
        module, b = _empty_module()
        x = arith.const_index(b, 5)
        dead = arith.addi(b, x, x)
        arith.muli(b, dead, dead)
        live = arith.const_index(b, 7)
        b.create("test.use", [live])
        _run(module, DCEPass())
        assert _ops(module) == ["arith.constant", "test.use"]

    def test_keeps_unknown_ops(self):
        module, b = _empty_module()
        b.create("test.effectful", result_types=[f64])
        _run(module, DCEPass())
        assert _ops(module) == ["test.effectful"]


class TestLICM:
    def _loop_with_body(self):
        module, b = _empty_module()
        lo = arith.const_index(b, 0)
        hi = b.create("test.def", result_types=[index]).result()
        one = arith.const_index(b, 1)
        loop = scf.ForOp.build(b, lo, hi, one)
        body = OpBuilder.at_end(loop.body)
        return module, loop, body, hi, one

    def test_hoists_invariant_chain(self):
        module, loop, body, hi, one = self._loop_with_body()
        inv = arith.addi(body, hi, one)
        inv2 = arith.muli(body, inv, inv)
        body.create("test.use", [inv2, loop.induction_var])
        scf.YieldOp.build(body)
        _run(module, LICMPass())
        assert [op.name for op in loop.body.operations] == ["test.use", "scf.yield"]
        assert "arith.addi" in _ops(module) and "arith.muli" in _ops(module)
        verify(module)

    def test_keeps_variant_ops(self):
        module, loop, body, hi, one = self._loop_with_body()
        variant = arith.addi(body, loop.induction_var, one)
        body.create("test.use", [variant])
        scf.YieldOp.build(body)
        _run(module, LICMPass())
        assert "arith.addi" in [op.name for op in loop.body.operations]

    def test_division_needs_constant_divisor(self):
        module, loop, body, hi, one = self._loop_with_body()
        eight = arith.const_index(body, 8)
        hoistable = arith.floordivi(body, hi, eight)
        trapping = arith.floordivi(body, hi, hi)  # divisor not a constant
        body.create("test.use", [hoistable, trapping, loop.induction_var])
        scf.YieldOp.build(body)
        _run(module, LICMPass())
        body_names = [op.name for op in loop.body.operations]
        assert body_names.count("arith.floordivi") == 1
        assert "arith.floordivi" in _ops(module)


class TestPipelineIntegration:
    def test_levels(self):
        assert optimization_pipeline(0) == []
        assert [p.name for p in optimization_pipeline(1)] == [
            "constant-fold",
            "dce",
        ]
        assert [p.name for p in optimization_pipeline(2)] == [
            "constant-fold",
            "cse",
            "licm",
            "cse",
            "dce",
        ]

    def test_describe_includes_level(self):
        from repro.core.pipeline import CompileOptions

        assert ",O2" in CompileOptions().describe()
        assert ",O0" in CompileOptions(opt_level=0).describe()

    def test_optimized_module_round_trips(self):
        from repro.core import frontend
        from repro.core.pipeline import CompileOptions, StencilCompiler
        from repro.core.stencil import gauss_seidel_5pt_2d

        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (16, 16), frontend.identity_body(4.0)
        )
        StencilCompiler(
            CompileOptions(subdomain_sizes=(8, 8), tile_sizes=(4, 4),
                           fuse=True, parallel=True, vectorize=4)
        ).lower(module)
        text = print_module(module)
        assert print_module(parse_module(text)) == text

    def test_optimizer_shrinks_emitted_source(self):
        from repro.codegen.python_backend import emit_module
        from repro.core import frontend
        from repro.core.pipeline import CompileOptions, StencilCompiler
        from repro.core.stencil import gauss_seidel_5pt_2d

        def emit(opt_level):
            module = frontend.build_stencil_kernel(
                gauss_seidel_5pt_2d(), (16, 16), frontend.identity_body(4.0)
            )
            StencilCompiler(
                CompileOptions(subdomain_sizes=(8, 8), vectorize=4,
                               opt_level=opt_level)
            ).lower(module)
            return emit_module(module)

        assert len(emit(2).splitlines()) < len(emit(0).splitlines())
