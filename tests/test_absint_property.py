"""Property test (issue satellite): for randomly chosen legal grid and
tile configurations, the interval engine's proven access hull is exactly
the access range the checked interpreter enumerates on a small grid —
the static proof is neither unsound (too narrow) nor lossy (wider than
what executes)."""

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.absint import run_memory_safety
from repro.analysis.absint.interval import Interval
from repro.codegen.interpreter import Interpreter
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_9pt_2d

PATTERNS = {
    "5pt": gauss_seidel_5pt_2d,
    "9pt": gauss_seidel_9pt_2d,
}


@st.composite
def configs(draw):
    pattern = draw(st.sampled_from(sorted(PATTERNS)))
    n = draw(st.integers(min_value=8, max_value=16))
    sd = (
        draw(st.integers(min_value=2, max_value=n)),
        draw(st.integers(min_value=2, max_value=n)),
    )
    return pattern, n, sd


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(configs())
def test_proven_hull_equals_enumerated_range(config):
    pattern_name, n, subdomains = config
    make = PATTERNS[pattern_name]
    module = frontend.build_stencil_kernel(
        make(), (n, n), frontend.identity_body(float(make().num_accesses))
    )
    options = CompileOptions(
        subdomain_sizes=subdomains, parallel=True, vectorize=0,
        use_cache=False,
    )
    StencilCompiler(options).lower(module)

    report = run_memory_safety(module)
    assert report.diagnostics == [], [
        (d.code, d.message) for d in report.diagnostics
    ]

    interp = Interpreter(module, checked=True)
    rng = np.random.default_rng(n * 31 + subdomains[0])
    args = [rng.standard_normal((1, n, n)) for _ in range(3)]
    interp.run("kernel", *args)  # must not trap: the pipeline is legal
    assert interp.access_ranges

    # Every dynamically exercised access has a static proof, and the
    # proven hull is exactly the observed range.
    assert set(interp.access_ranges) <= set(report.proven)
    for key, ranges in interp.access_ranges.items():
        observed = tuple(Interval(lo, hi) for lo, hi in ranges)
        assert report.proven[key] == observed
