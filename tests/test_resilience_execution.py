"""Executor failure paths: structured RS005/RS006 diagnostics, watchdog."""

import time

import numpy as np
import pytest

from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.runtime.resilience import (
    FaultPlan,
    FaultSpec,
    clear_plan,
    injected,
)
from repro.runtime.resilience.execution import (
    ExecutionResult,
    execute_kernel,
    guarded_compile,
)
from repro.runtime.resilience.watchdog import (
    ExecutionTimeout,
    TimeoutDiagnostic,
    call_with_watchdog,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


def _lowered_module(shape=(8, 8)):
    module = frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), shape, frontend.identity_body(4.0)
    )
    StencilCompiler(CompileOptions()).lower(module)
    return module


def _args(shape=(8, 8)):
    x = np.random.default_rng(0).standard_normal((1,) + shape)
    return x, np.zeros_like(x), x.copy()


class _Hanging:
    """A kernel stand-in whose run() never finishes in time."""

    entry = "kernel"

    def run(self, *args):
        time.sleep(10.0)


class TestGuardedCompile:
    def test_clean_compile(self):
        kernel, diag = guarded_compile(_lowered_module())
        assert diag is None
        kernel.run(*_args())

    def test_missing_entry_is_rs005_not_a_crash(self):
        kernel, diag = guarded_compile(_lowered_module(), entry="nope")
        assert kernel is None
        assert diag.code == "RS005"
        assert diag.severity == "error"
        assert "nope" in diag.message

    def test_injected_compile_fault_is_rs005(self):
        with injected(FaultPlan([FaultSpec("executor.compile", at=1)])):
            kernel, diag = guarded_compile(_lowered_module())
        assert kernel is None
        assert diag.code == "RS005"
        assert "injected fault" in diag.message


class TestExecuteKernel:
    def test_clean_execution(self):
        kernel, _ = guarded_compile(_lowered_module())
        result = execute_kernel(kernel, *_args())
        assert result.ok
        assert len(result.values) == 1

    def test_kernel_raising_mid_execution_is_rs005(self):
        kernel, _ = guarded_compile(_lowered_module())
        with injected(FaultPlan([FaultSpec("executor.execute", at=1)])):
            result = execute_kernel(kernel, *_args())
        assert not result.ok
        assert result.values is None
        assert result.diagnostic.code == "RS005"
        assert "mid-execution" in result.diagnostic.message
        assert result.error is not None

    def test_bad_arguments_degrade_to_rs005(self):
        kernel, _ = guarded_compile(_lowered_module())
        result = execute_kernel(kernel)  # no arguments at all
        assert not result.ok
        assert result.diagnostic.code == "RS005"

    def test_watchdog_timeout_is_rs006(self):
        result = execute_kernel(
            _Hanging(), timeout=0.05, what="hanging kernel"
        )
        assert not result.ok
        assert result.diagnostic.code == "RS006"
        assert "hanging kernel" in result.diagnostic.message
        assert isinstance(result.error, ExecutionTimeout)
        info = result.error.info
        assert info.budget_seconds == 0.05
        assert info.elapsed_seconds >= 0.05

    def test_injected_hang_trips_watchdog(self):
        kernel, _ = guarded_compile(_lowered_module())

        class Wrapped:
            entry = "kernel"

            def run(self, *args):
                from repro.runtime.resilience.faults import maybe_inject
                maybe_inject("executor.hang")
                return kernel.run(*args)

        plan = FaultPlan([FaultSpec(
            "executor.hang", action="hang", hang_seconds=0.5
        )])
        with injected(plan):
            result = execute_kernel(Wrapped(), *_args(), timeout=0.05)
        assert result.diagnostic.code == "RS006"


class TestWatchdog:
    def test_returns_result_within_budget(self):
        assert call_with_watchdog(lambda: 41 + 1, 1.0) == 42

    def test_reraises_callable_exception(self):
        with pytest.raises(KeyError, match="inner"):
            call_with_watchdog(
                lambda: (_ for _ in ()).throw(KeyError("inner")), 1.0
            )

    def test_timeout_carries_structured_fields(self):
        with pytest.raises(ExecutionTimeout) as info:
            call_with_watchdog(
                lambda: time.sleep(10.0), 0.05, what="sleepy"
            )
        td = info.value.info
        assert isinstance(td, TimeoutDiagnostic)
        assert td.what == "sleepy"
        assert td.budget_seconds == 0.05
        diag = td.to_diagnostic()
        assert diag.code == "RS006"
        assert "wall-clock" in diag.message

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            call_with_watchdog(lambda: None, 0.0)


class TestExecutionResult:
    def test_ok_predicate(self):
        assert ExecutionResult([1]).ok
        assert not ExecutionResult(
            None, diagnostic=TimeoutDiagnostic("x", 1, 1).to_diagnostic()
        ).ok
