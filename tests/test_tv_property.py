"""Property tests tying the tile legalizer to the translation validator.

Two invariants, checked over randomized tile sizes with Hypothesis:

* **Legal implies certified** — whatever sizes the caller proposes, the
  tiling pass runs them through ``legalize_tile_sizes`` first, so the
  tiled loop always validates clean (the legalizer and the validator
  agree on what "legal" means).
* **Illegal implies a violation** — when genuinely illegal sizes are
  forced *past* the legalizer (both legalization entry points patched
  out, simulating a legalizer bug), the validator always produces a
  dependence-order violation with a concrete witness: the validator is
  an independent oracle, not a re-run of the legalizer.

The 9-point kernel drives the illegal direction: its ``(-1, 1)`` L
offset makes any tiling with both dimensions blocked (heights and widths
> 1 and below the extent) cyclically dependent, which the legalizer
normally repairs by pinning the row dimension to 1.
"""

from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tv import TranslationValidator
from repro.core import frontend
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_9pt_2d
from repro.core.tiling import TileStencilsPass, legalize_tile_sizes

_N = 24  # interior [1, 23) in both dimensions


def _module(make):
    return frontend.build_stencil_kernel(
        make(), (_N, _N), frontend.identity_body(4.0)
    )


def _tv_errors(make, sizes, with_groups=False):
    module = _module(make)
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    TileStencilsPass(sizes, with_groups=with_groups, level=0).run(module)
    tv.after_pass(module, "tile-stencils")
    return [d for d in tv.report.diagnostics if d.severity == "error"]


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.tuples(
        st.integers(min_value=1, max_value=_N),
        st.integers(min_value=1, max_value=_N),
    ),
    make=st.sampled_from([gauss_seidel_5pt_2d, gauss_seidel_9pt_2d]),
    with_groups=st.booleans(),
)
def test_legalized_tile_sizes_always_validate(sizes, make, with_groups):
    assert _tv_errors(make, sizes, with_groups) == []


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.tuples(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=2, max_value=12),
    )
)
def test_illegal_tile_sizes_forced_past_legalizer_always_violate(sizes):
    # Both dims blocked and smaller than the interior: the 9pt (-1, 1)
    # dependence crosses tile boundaries against the tile order. The
    # legalizer would pin sizes[0] to 1; neuter it and its internal
    # assertion so the illegal sizes reach codegen.
    assert list(legalize_tile_sizes(gauss_seidel_9pt_2d(), sizes)) != list(
        sizes
    )
    with mock.patch(
        "repro.core.tiling.legalize_tile_sizes",
        side_effect=lambda pattern, proposed: list(proposed),
    ), mock.patch(
        "repro.core.tiling._check_block_legality",
        side_effect=lambda pattern, tile_sizes: None,
    ):
        errors = _tv_errors(gauss_seidel_9pt_2d, sizes)
    assert errors, f"illegal tile sizes {sizes} validated clean"
    assert {d.code for d in errors} <= {"TV001", "TV002"}
    # Concrete witnesses: all but the "... and N more" overflow line
    # carry two rendered timestamps.
    assert any("[t=" in d.message for d in errors)
