"""Engine parity (issue acceptance): per-pass certificate verdicts of
the symbolic validator are identical to the enumerated path.

The two decision procedures share the certificate schema; on every
corpus pipeline the sequence of (pass, violations, per-site status)
records must match exactly — only the ``engine`` field and the
engine-specific counters may differ.
"""

import dataclasses

import pytest

from repro.analysis.corpus import build_corpus
from repro.core.pipeline import StencilCompiler

STEMS = ["quickstart", "sor_poisson", "inspect_pipeline"]


def _verdicts(entry, engine):
    options = dataclasses.replace(
        entry.options,
        validate_passes=True,
        use_cache=False,
        verify_engine=engine,
    )
    compiler = StencilCompiler(options)
    compiler.lower(entry.build())
    tv = compiler.pass_manager.validator
    assert tv is not None
    return [
        (
            cert["after_pass"],
            cert["violations"],
            tuple(
                (s["site"], s.get("status"), s.get("form"))
                for s in cert["sites"]
            ),
        )
        for cert in tv.certificates
    ]


@pytest.mark.parametrize("stem", STEMS)
def test_certificate_verdicts_match_enumerated(stem):
    for entry in build_corpus()[stem]:
        sym = _verdicts(entry, "symbolic")
        enum = _verdicts(entry, "enumerated")
        assert sym == enum
