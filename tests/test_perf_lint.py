"""Tests for the performance lint: PF findings and the ``--perf`` CLI.

The acceptance contract: ``--perf`` emits at least one true PF finding
(an error) on the deliberately mis-tiled ``perf_demo`` corpus and zero
PF *errors* on every canonical pipeline, and every finding carries the
predicted traffic / parallelism numbers.
"""

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.corpus import build_corpus, build_perf_demo_corpus
from repro.analysis.perf import (
    HALO_RATIO_THRESHOLD,
    analyze_stencils,
    perf_findings,
    predict,
)
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.machine.model import PY_NUMPY_BACKEND, XEON_6152


def _demo_findings(name):
    (entry,) = [
        e for e in build_perf_demo_corpus()["perf_demo"] if e.name == name
    ]
    model = XEON_6152
    out = []
    for op_path, report in analyze_stencils(
        entry.build(), entry.options, machine=model
    ):
        out.extend(perf_findings(report, model, op_path))
    return out


class TestPerfFindings:
    def test_mistiled_demo_raises_pf001_error(self):
        diags = _demo_findings("perf_demo[mistiled]")
        errors = [d for d in diags if d.severity == "error"]
        assert [d.code for d in errors] == ["PF001"]
        # The finding reads like a measurement: predicted working set
        # and sweep time are in the message.
        assert "MiB" in errors[0].message
        assert "ms/sweep" in errors[0].message
        assert errors[0].op_path == "cfd.stencilOp#0"

    def test_thin_demo_is_memory_bound_with_narrow_wavefronts(self):
        codes = {d.code for d in _demo_findings("perf_demo[thin]")}
        assert "PF006" in codes
        assert "PF003" in codes

    def test_strided_demo_loses_vectorization(self):
        diags = _demo_findings("perf_demo[strided]")
        codes = {d.code for d in diags}
        assert "PF005" in codes
        assert "PF004" in codes
        (pf004,) = [d for d in diags if d.code == "PF004"]
        assert f"{HALO_RATIO_THRESHOLD:.2f}" in pf004.message

    def test_canonical_corpus_has_no_pf_errors(self):
        for stem, entries in build_corpus().items():
            for entry in entries:
                for op_path, report in analyze_stencils(
                    entry.build(), entry.options, machine=PY_NUMPY_BACKEND
                ):
                    diags = perf_findings(
                        report, PY_NUMPY_BACKEND, op_path
                    )
                    errors = [d for d in diags if d.severity == "error"]
                    assert not errors, (
                        f"{entry.name}: unexpected PF errors "
                        f"{[d.code for d in errors]}"
                    )

    def test_pf003_carries_brent_ceiling(self):
        report = predict(
            gauss_seidel_5pt_2d(), (256, 256), (64, 64), machine=XEON_6152
        )
        assert report.wavefront is not None
        diags = perf_findings(report, XEON_6152)
        (pf003,) = [d for d in diags if d.code == "PF003"]
        ceiling = report.wavefront.brent_speedup(XEON_6152.cores)
        assert f"{ceiling:.1f}x" in pf003.message


class TestPerfCli:
    def test_perf_demo_fails_the_gate(self, capsys):
        assert main(["--perf", "perf_demo", "-q"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL] perf_demo[mistiled]" in out

    def test_canonical_stems_pass(self, capsys):
        code = main(
            ["--perf", "-q", "--machine", "py-numpy",
             "quickstart", "inspect_pipeline"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[ok] quickstart" in out

    def test_json_findings_carry_numbers(self, capsys):
        assert main(["--perf", "--json", "perf_demo"]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        diags = [json.loads(line) for line in lines]
        pf001 = [d for d in diags if d["code"] == "PF001"]
        assert pf001
        assert pf001[0]["severity"] == "error"
        assert "MiB" in pf001[0]["message"]
        assert pf001[0]["entry"] == "perf_demo[mistiled]"

    def test_github_annotations(self, capsys):
        main(["--perf", "--github", "perf_demo"])
        out = capsys.readouterr().out
        assert "::error file=examples/perf_demo.py,title=PF001" in out

    def test_machine_flag_overrides_entry(self, capsys):
        # A 1-core model never fires PF003 (wavefront width vs cores),
        # and the verdict line names the override.
        main(["--perf", "-q", "--machine", "py-numpy", "perf_demo"])
        out = capsys.readouterr().out
        assert "python-numpy backend" in out

    def test_perf_rejects_validate(self, capsys):
        with pytest.raises(SystemExit):
            main(["--perf", "--validate"])

    def test_machine_requires_perf(self, capsys):
        with pytest.raises(SystemExit):
            main(["--machine", "py-numpy"])

    def test_standard_lint_never_sees_perf_demo(self):
        with pytest.raises(SystemExit, match="no lint corpus"):
            main(["perf_demo"])


class TestAnalyzeStencils:
    def test_reports_one_per_stencil_op(self):
        corpus = build_corpus()
        (entry,) = [
            e for e in corpus["euler_lusgs"] if e.name == "euler_lusgs"
        ]
        reports = analyze_stencils(
            entry.build(), entry.options, machine="xeon-6152"
        )
        # LU-SGS has a forward and a backward sweep op.
        assert [path for path, _ in reports] == [
            "cfd.stencilOp#0", "cfd.stencilOp#1"
        ]
        for _, report in reports:
            assert report.nb_var == 5
            assert report.wavefront is not None  # parallel + subdomains

    def test_serial_options_have_no_wavefront(self):
        corpus = build_corpus()
        entry = corpus["sor_poisson"][0]
        for _, report in analyze_stencils(
            entry.build(), entry.options, machine="py-numpy"
        ):
            assert report.wavefront is None
