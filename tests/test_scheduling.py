"""Tests for wavefront scheduling (Eq. 3) and the affine alternative."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import scheduling
from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_9pt_2d,
    gauss_seidel_6pt_3d,
)


class TestLongestPathSchedule:
    def test_diagonal_wavefront_2d(self):
        # Classic Gauss-Seidel block dependences: theta(i, j) = i + j.
        theta = scheduling.longest_path_schedule((4, 4), [(-1, 0), (0, -1)])
        expected = np.add.outer(np.arange(4), np.arange(4))
        assert np.array_equal(theta, expected)

    def test_single_dependence_is_column_schedule(self):
        theta = scheduling.longest_path_schedule((3, 5), [(-1, 0)])
        assert np.array_equal(theta, np.tile(np.arange(3)[:, None], (1, 5)))

    def test_3d_diagonal(self):
        theta = scheduling.longest_path_schedule(
            (3, 3, 3), [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
        )
        i, j, k = np.meshgrid(np.arange(3), np.arange(3), np.arange(3), indexing="ij")
        assert np.array_equal(theta, i + j + k)

    def test_diagonal_dependence_offset(self):
        # Dependence (-1, 1): block (i, j) needs (i-1, j+1) first.
        theta = scheduling.longest_path_schedule((3, 3), [(-1, 1), (0, -1)])
        # Row 0: 0, 1, 2. Row 1 element (1,0) depends on (0,1) and nothing
        # to its left -> theta = 2.
        assert theta[0, 0] == 0
        assert theta[1, 0] == theta[0, 1] + 1
        scheduling.validate_schedule(
            (3, 3), [(-1, 1), (0, -1)], *scheduling.wavefront_groups(theta)
        )

    def test_backward_sweep_offsets(self):
        # Positive (backward-sweep) offsets: processed in reverse order.
        theta = scheduling.longest_path_schedule((4, 4), [(1, 0), (0, 1)])
        expected = np.add.outer(np.arange(3, -1, -1), np.arange(3, -1, -1))
        assert np.array_equal(theta, expected)

    def test_mixed_directions_rejected(self):
        with pytest.raises(ValueError, match="mix"):
            scheduling.longest_path_schedule((4, 4), [(-1, 0), (0, 1)])

    def test_self_dependence_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            scheduling.longest_path_schedule((4, 4), [(0, 0)])

    def test_no_dependences_all_parallel(self):
        theta = scheduling.longest_path_schedule((4, 4), [])
        assert np.array_equal(theta, np.zeros((4, 4), dtype=np.int64))
        offsets, indices = scheduling.wavefront_groups(theta)
        assert scheduling.schedule_latency(offsets) == 1
        assert scheduling.group_sizes(offsets) == [16]


class TestWavefrontGroups:
    def test_csr_structure(self):
        theta = scheduling.longest_path_schedule((3, 3), [(-1, 0), (0, -1)])
        offsets, indices = scheduling.wavefront_groups(theta)
        assert scheduling.schedule_latency(offsets) == 5  # 0..4 diagonals
        assert scheduling.group_sizes(offsets) == [1, 2, 3, 2, 1]
        # Group 0 is the origin block.
        assert list(indices[offsets[0] : offsets[1]]) == [0]

    def test_validate_accepts_valid(self):
        deps = [(-1, 0), (0, -1)]
        offsets, indices = scheduling.compute_parallel_blocks((4, 5), deps)
        scheduling.validate_schedule((4, 5), deps, offsets, indices)

    def test_validate_rejects_wrong_order(self):
        deps = [(-1, 0)]
        offsets, indices = scheduling.compute_parallel_blocks((3, 1), deps)
        # Reverse the groups: dependences now point forward.
        with pytest.raises(ValueError, match="earlier"):
            scheduling.validate_schedule((3, 1), deps, offsets, indices[::-1])

    def test_validate_rejects_missing_blocks(self):
        with pytest.raises(ValueError, match="exactly once"):
            scheduling.validate_schedule(
                (2, 2), [], np.array([0, 4]), np.array([0, 1, 2, 2])
            )


def _lex_negative_pool(rank):
    """All lexicographically negative offsets in [-2, 2]^rank."""
    import itertools

    pool = []
    for o in itertools.product(range(-2, 3), repeat=rank):
        first = next((c for c in o if c != 0), 0)
        if first < 0:
            pool.append(o)
    return pool


@st.composite
def _grid_and_offsets(draw):
    rank = draw(st.integers(2, 3))
    grid = tuple(draw(st.integers(1, 5)) for _ in range(rank))
    offsets = draw(
        st.lists(
            st.sampled_from(_lex_negative_pool(rank)),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    return grid, sorted(offsets)


class TestScheduleProperties:
    @given(_grid_and_offsets())
    @settings(max_examples=60, deadline=None)
    def test_longest_path_schedule_is_always_valid(self, grid_offsets):
        grid, offsets = grid_offsets
        csr_offsets, csr_indices = scheduling.compute_parallel_blocks(
            grid, offsets
        )
        scheduling.validate_schedule(grid, offsets, csr_offsets, csr_indices)

    @given(_grid_and_offsets())
    @settings(max_examples=40, deadline=None)
    def test_longest_path_is_optimal_latency(self, grid_offsets):
        """Eq. (3) yields the longest dependence path: every block's theta
        equals 1 + the max theta of its in-grid predecessors."""
        grid, offsets = grid_offsets
        theta = scheduling.longest_path_schedule(grid, offsets)
        import itertools

        for s in itertools.product(*(range(n) for n in grid)):
            preds = []
            for r in offsets:
                p = tuple(si + ri for si, ri in zip(s, r))
                if all(0 <= pi < ni for pi, ni in zip(p, grid)):
                    preds.append(theta[p])
            assert theta[s] == (max(preds) + 1 if preds else 0)


class TestAffineSchedule:
    def test_5pt_block_schedule_vector(self):
        n = scheduling.affine_schedule_vector([(-1, 0), (0, -1)], (8, 8))
        assert n == (1, 1)

    def test_affine_valid_but_possibly_slower(self):
        # 9-pt Gauss-Seidel with the *legal* tile shape 1 x T (§2.1): a
        # tile spanning several rows would create a cyclic block
        # dependence through the (-1, 1) offset.
        deps = gauss_seidel_9pt_2d().block_stencil_offsets([1, 4])
        grid = (24, 6)
        theta_graph = scheduling.longest_path_schedule(grid, deps)
        theta_affine = scheduling.affine_schedule(grid, deps)
        # Both must be valid schedules.
        for theta in (theta_graph, theta_affine):
            scheduling.validate_schedule(
                grid, deps, *scheduling.wavefront_groups(theta)
            )
        # Graph scheduling is latency-optimal: never more groups.
        assert theta_graph.max() <= theta_affine.max()

    def test_affine_handles_diagonal(self):
        n = scheduling.affine_schedule_vector([(-1, 1), (0, -1)], (4, 4))
        assert -(n[0] * -1 + n[1] * 1) >= 1
        assert -(n[0] * 0 + n[1] * -1) >= 1

    def test_affine_infeasible_raises(self):
        with pytest.raises(ValueError, match="no affine schedule"):
            scheduling.affine_schedule_vector(
                [(-1, 0), (1, 0)], (4, 4), max_coefficient=2
            )

    def test_empty_offsets(self):
        assert scheduling.affine_schedule_vector([], (4, 4)) == (0, 0)


class TestBlockStencilDerivation:
    """Fig. 1: element-level L patterns to block-level dependences."""

    def test_5pt_blocks(self):
        p = gauss_seidel_5pt_2d()
        assert p.block_stencil_offsets([8, 8]) == [(-1, 0), (0, -1)]

    def test_heat3d_blocks(self):
        p = gauss_seidel_6pt_3d()
        assert p.block_stencil_offsets([4, 4, 4]) == [
            (-1, 0, 0),
            (0, -1, 0),
            (0, 0, -1),
        ]

    def test_wide_offset_small_tile(self):
        # An L offset of -2 with tile size 1 reaches two blocks back.
        p = StencilPattern.from_offsets(2, l_offsets=[(-2, 0)])
        assert p.block_stencil_offsets([1, 4]) == [(-2, 0)]
        assert p.block_stencil_offsets([2, 4]) == [(-1, 0)]
        assert p.block_stencil_offsets([3, 4]) == [(-1, 0)]

    def test_corner_spill(self):
        # Offset (-1, -1) with 2x2 tiles: corners reach (-1,-1), (-1,0),
        # (0,-1) blocks.
        p = StencilPattern.from_offsets(2, l_offsets=[(-1, -1)])
        assert p.block_stencil_offsets([2, 2]) == [(-1, -1), (-1, 0), (0, -1)]
