"""Checkpoint/restart: cadence, disk tier, bit-identical solver resume."""

import numpy as np
import pytest

from repro.cfdlib import euler
from repro.cfdlib.heat import (
    checkpointed_heat3d,
    heat3d_reference,
    initial_temperature,
)
from repro.cfdlib.lusgs import (
    LUSGSConfig,
    checkpointed_lusgs,
    lusgs_reference,
    stable_dt,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.cfdlib.solvers import checkpointed_poisson_solve, solve_poisson
from repro.runtime.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    clear_plan,
    injected,
)
from repro.runtime.resilience.checkpoint import (
    CheckpointManager,
    run_checkpointed,
)
from repro.runtime.resilience.report import RecoveryReport


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


def _count_step(s, _k):
    return {"u": s["u"] + 1.0}


class TestCheckpointManager:
    def test_cadence(self):
        mgr = CheckpointManager(every=3)
        state = {"u": np.zeros(4)}
        run_checkpointed(_count_step, state, 10, manager=mgr)
        assert mgr.saved_steps == [3, 6, 9]

    def test_zero_cadence_disables_periodic_saves(self):
        mgr = CheckpointManager(every=0)
        run_checkpointed(_count_step, {"u": np.zeros(4)}, 10, manager=mgr)
        assert mgr.saved_steps == []

    def test_checkpoints_are_deep_copies(self):
        mgr = CheckpointManager(every=1)
        u = np.zeros(4)
        mgr.save(1, {"u": u})
        u[:] = 99.0
        assert np.all(mgr.latest.restore()["u"] == 0.0)

    def test_disk_round_trip_and_pruning(self, tmp_path):
        mgr = CheckpointManager(every=2, directory=tmp_path, keep=2)
        run_checkpointed(_count_step, {"u": np.zeros(4)}, 10, manager=mgr)
        files = sorted(p.name for p in tmp_path.glob("ckpt_*.npz"))
        assert files == ["ckpt_00000008.npz", "ckpt_00000010.npz"]
        fresh = CheckpointManager(every=2, directory=tmp_path)
        cp = fresh.load_latest()
        assert cp.step == 10
        np.testing.assert_array_equal(cp.arrays["u"], np.full(4, 10.0))

    def test_corrupt_disk_checkpoint_skipped(self, tmp_path):
        mgr = CheckpointManager(every=2, directory=tmp_path, keep=3)
        run_checkpointed(_count_step, {"u": np.zeros(4)}, 6, manager=mgr)
        (tmp_path / "ckpt_00000006.npz").write_bytes(b"\x00 not an npz")
        fresh = CheckpointManager(directory=tmp_path)
        assert fresh.load_latest().step == 4

    def test_clear_removes_disk_and_memory(self, tmp_path):
        mgr = CheckpointManager(every=1, directory=tmp_path)
        run_checkpointed(_count_step, {"u": np.zeros(4)}, 3, manager=mgr)
        mgr.clear()
        assert mgr.latest is None
        assert not list(tmp_path.glob("ckpt_*.npz"))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            CheckpointManager(every=-1)
        with pytest.raises(ValueError):
            CheckpointManager(keep=0)


class TestRunCheckpointed:
    def test_resume_skips_completed_steps(self):
        mgr = CheckpointManager(every=5)
        report = RecoveryReport()
        with injected(FaultPlan([FaultSpec("solver.sweep", at=8)])):
            with pytest.raises(InjectedFault):
                run_checkpointed(
                    _count_step, {"u": np.zeros(4)}, 10,
                    manager=mgr, site="solver.sweep", report=report,
                )
        assert mgr.latest.step == 5
        assert "RS007" in report.codes()
        resumed = run_checkpointed(
            _count_step, {"u": np.zeros(4)}, 10,
            manager=mgr, site="solver.sweep", report=report,
        )
        assert "RS008" in report.codes()
        np.testing.assert_array_equal(resumed["u"], np.full(4, 10.0))

    def test_resume_false_restarts_from_scratch(self):
        mgr = CheckpointManager(every=2)
        mgr.save(2, {"u": np.full(4, 2.0)})
        out = run_checkpointed(
            _count_step, {"u": np.zeros(4)}, 4, manager=mgr, resume=False
        )
        np.testing.assert_array_equal(out["u"], np.full(4, 4.0))


def _crash_then_resume(run, site, crash_at, manager):
    """Crash an instrumented solve at ``crash_at``, resume, return output."""
    with injected(FaultPlan([FaultSpec(site, at=crash_at)])):
        with pytest.raises(InjectedFault):
            run(manager)
    return run(manager)


class TestSolverResume:
    def test_poisson_resume_bit_identical(self, tmp_path):
        rng = np.random.default_rng(0)
        f = rng.standard_normal((10, 10))
        expected = checkpointed_poisson_solve(f, 12, method="sor", omega=1.5)

        mgr = CheckpointManager(every=4, directory=tmp_path / "pc")
        got = _crash_then_resume(
            lambda m: checkpointed_poisson_solve(
                f, 12, method="sor", omega=1.5, manager=m
            ),
            "solver.sweep", 9, mgr,
        )
        assert np.array_equal(got, expected)

    def test_poisson_checkpointed_matches_plain_solver(self):
        rng = np.random.default_rng(1)
        f = rng.standard_normal((10, 10))
        expected, _ = solve_poisson(
            f, method="sor", max_iterations=8, tolerance=0.0, omega=1.3
        )
        got = checkpointed_poisson_solve(f, 8, method="sor", omega=1.3)
        assert np.array_equal(got, expected)

    def test_heat3d_resume_bit_identical(self, tmp_path):
        t0 = initial_temperature(6)
        dt0 = np.zeros_like(t0)
        t_exp, dt_exp = heat3d_reference(t0, dt0, 6)

        mgr = CheckpointManager(every=2, directory=tmp_path / "hc")
        report = RecoveryReport()
        with injected(FaultPlan([FaultSpec("solver.heat-step", at=5)])):
            with pytest.raises(InjectedFault):
                checkpointed_heat3d(t0, dt0, 6, manager=mgr)
        t_got, dt_got = checkpointed_heat3d(
            t0, dt0, 6, manager=mgr, report=report
        )
        assert "RS008" in report.codes()
        assert np.array_equal(t_got, t_exp)
        assert np.array_equal(dt_got, dt_exp)

    def test_lusgs_resume_bit_identical(self, tmp_path):
        mesh = StructuredMesh((5, 5, 5), extent=(1.0, 1.0, 1.0))
        w0 = euler.density_wave((5, 5, 5), amplitude=0.05)
        config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh, cfl=1.0))
        expected = lusgs_reference(w0, config, 4)

        mgr = CheckpointManager(every=2, directory=tmp_path / "lc")
        got = _crash_then_resume(
            lambda m: checkpointed_lusgs(w0, config, 4, manager=m),
            "solver.lusgs-step", 4, mgr,
        )
        assert np.array_equal(got, expected)

    def test_uninterrupted_checkpointed_heat_matches_reference(self):
        t0 = initial_temperature(5, seed=3)
        dt0 = np.zeros_like(t0)
        t_exp, dt_exp = heat3d_reference(t0, dt0, 4)
        t_got, dt_got = checkpointed_heat3d(t0, dt0, 4)
        assert np.array_equal(t_got, t_exp)
        assert np.array_equal(dt_got, dt_exp)
