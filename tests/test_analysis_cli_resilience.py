"""The lint CLI degrades internal crashes to RS009 findings (satellite fix).

An exception escaping the analyzer machinery itself (not a pipeline
failure, which the driver already reports per entry) must never print a
raw traceback: it becomes a structured RS009 diagnostic, works under
``--json`` and ``--github``, and exits nonzero.
"""

import json

import pytest

import repro.analysis.__main__ as cli


class _ExplodingGate:
    """Stands in for AnalysisGate; crashes on construction."""

    def __init__(self, *args, **kwargs):
        raise ZeroDivisionError("synthetic analyzer crash")


@pytest.fixture
def crashing_analyzer(monkeypatch):
    monkeypatch.setattr(cli, "AnalysisGate", _ExplodingGate)


class TestInternalCrashHandling:
    def test_human_mode_reports_crash_without_traceback(
        self, crashing_analyzer, capsys
    ):
        code = cli.main(["quickstart"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Traceback" not in out
        assert "analyzer crashed" in out
        assert "RS009" in out
        assert "ZeroDivisionError" in out

    def test_json_mode_emits_structured_rs009(
        self, crashing_analyzer, capsys
    ):
        code = cli.main(["quickstart", "--json"])
        out = capsys.readouterr().out
        assert code == 1
        records = [json.loads(line) for line in out.splitlines()]
        (crash,) = [r for r in records if r.get("code") == "RS009"]
        assert crash["severity"] == "error"
        assert crash["entry"] == "quickstart"
        assert crash["file"] == "examples/quickstart.py"
        assert "ZeroDivisionError" in crash["message"]

    def test_github_mode_emits_error_annotation(
        self, crashing_analyzer, capsys
    ):
        code = cli.main(["quickstart", "--github"])
        out = capsys.readouterr().out
        assert code == 1
        (line,) = [ln for ln in out.splitlines() if ln.startswith("::error")]
        assert "title=RS009" in line
        assert "ZeroDivisionError" in line

    def test_crash_in_one_entry_does_not_stop_the_others(
        self, crashing_analyzer, capsys
    ):
        cli.main([])  # every stem: each entry crashes, none aborts the run
        out = capsys.readouterr().out
        assert "linted" in out.splitlines()[-1]

    def test_healthy_run_unaffected(self, capsys):
        code = cli.main(["quickstart", "-q"])
        out = capsys.readouterr().out
        assert code == 0
        assert "RS009" not in out
