"""Disk-tier hardening of the kernel cache: corruption, skew, quarantine."""

import json

import numpy as np
import pytest

from repro.codegen.cache import KernelCache, module_fingerprint
from repro.codegen.executor import compile_function
from repro.codegen.python_backend import EMITTER_VERSION
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.runtime.resilience import (
    FaultPlan,
    FaultSpec,
    clear_plan,
    injected,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


def _lowered_module(shape=(8, 8)):
    module = frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), shape, frontend.identity_body(4.0)
    )
    StencilCompiler(CompileOptions(vectorize=4)).lower(module)
    return module


def _populated_cache(tmp_path):
    """A persistent cache holding one entry; returns (cache, fingerprint)."""
    cache = KernelCache(persist=True, disk_dir=tmp_path)
    module = _lowered_module()
    fp = module_fingerprint(module)
    cache.put(fp, compile_function(module))
    return cache, fp


def _fresh_view(tmp_path):
    """A second cache over the same directory (forces the disk path)."""
    return KernelCache(persist=True, disk_dir=tmp_path)


class TestDiskRoundTrip:
    def test_disk_hit_promotes_and_runs(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        fresh = _fresh_view(tmp_path)
        kernel = fresh.get(fp)
        assert kernel is not None
        assert fresh.stats.disk_hits == 1
        x = np.random.default_rng(0).standard_normal((1, 8, 8))
        b = np.zeros_like(x)
        kernel.run(x, b, x.copy())

    def test_meta_records_checksum_and_emitter(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        meta = json.loads((tmp_path / f"{fp}.json").read_text())
        assert meta["emitter"] == EMITTER_VERSION
        assert len(meta["sha256"]) == 64
        assert meta["entry"] == "kernel"

    def test_no_tmp_files_left_behind(self, tmp_path):
        _populated_cache(tmp_path)
        assert not list(tmp_path.glob("*.tmp"))


class TestCorruptedEntries:
    def test_garbage_bytes_are_a_miss_not_a_crash(self, tmp_path):
        # The regression test demanded by the issue: flip the stored
        # source to garbage bytes; the load must quarantine + miss.
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.py").write_bytes(b"\x00\xff garbage \x9c\x01")
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert fresh.stats.quarantined == 1
        assert fresh.stats.misses == 1
        fp_logged, reason = fresh.quarantine_log[0]
        assert fp_logged == fp and reason  # decode or checksum failure

    def test_flipped_ascii_source_is_a_checksum_mismatch(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        path = tmp_path / f"{fp}.py"
        path.write_text(path.read_text() + "\n# flipped\n")
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert "checksum mismatch" in fresh.quarantine_log[0][1]

    def test_truncated_source_quarantined(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        path = tmp_path / f"{fp}.py"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert fresh.stats.quarantined == 1

    def test_emitter_version_skew_quarantined(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        meta_path = tmp_path / f"{fp}.json"
        meta = json.loads(meta_path.read_text())
        meta["emitter"] = "0-ancient"
        meta_path.write_text(json.dumps(meta))
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert "version skew" in fresh.quarantine_log[0][1]

    def test_wrong_entry_point_quarantined(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        meta_path = tmp_path / f"{fp}.json"
        meta = json.loads(meta_path.read_text())
        meta["entry"] = "no_such_function"
        meta_path.write_text(json.dumps(meta))
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert "entry point" in fresh.quarantine_log[0][1]

    def test_invalid_json_meta_quarantined(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.json").write_text("{not json")
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert fresh.stats.quarantined == 1

    def test_missing_meta_with_source_quarantined(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.json").unlink()
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert fresh.stats.quarantined == 1

    def test_missing_both_files_is_a_clean_miss(self, tmp_path):
        fresh = _fresh_view(tmp_path)
        assert fresh.get("0" * 64) is None
        assert fresh.stats.quarantined == 0
        assert fresh.stats.misses == 1


class TestQuarantine:
    def test_bad_entry_moved_to_quarantine_dir(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.py").write_bytes(b"\x00 garbage")
        fresh = _fresh_view(tmp_path)
        fresh.get(fp)
        qdir = tmp_path / "quarantine"
        assert (qdir / f"{fp}.py").exists()
        assert (qdir / f"{fp}.json").exists()
        assert not (tmp_path / f"{fp}.py").exists()

    def test_bad_entry_fails_at_most_once(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.py").write_bytes(b"\x00 garbage")
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        assert fresh.get(fp) is None  # now a clean miss, not re-quarantined
        assert fresh.stats.quarantined == 1

    def test_recompile_replaces_quarantined_entry(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.py").write_bytes(b"\x00 garbage")
        fresh = _fresh_view(tmp_path)
        assert fresh.get(fp) is None
        fresh.put(fp, compile_function(_lowered_module()))
        again = _fresh_view(tmp_path)
        assert again.get(fp) is not None

    def test_events_render_rs004(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        (tmp_path / f"{fp}.py").write_bytes(b"\x00 garbage")
        fresh = _fresh_view(tmp_path)
        fresh.get(fp)
        (event,) = fresh.events()
        assert event.code == "RS004"
        assert event.severity == "warning"
        assert fp[:12] in event.message


class TestInjectedDiskFaults:
    def test_disk_read_fault_degrades_to_miss(self, tmp_path):
        _, fp = _populated_cache(tmp_path)
        fresh = _fresh_view(tmp_path)
        with injected(FaultPlan([FaultSpec("cache.disk-read", at=1)])):
            assert fresh.get(fp) is None
        assert fresh.stats.disk_errors == 1
        # The entry itself is untouched: the next read succeeds.
        assert fresh.get(fp) is not None

    def test_disk_write_fault_degrades_to_memory_only(self, tmp_path):
        cache = KernelCache(persist=True, disk_dir=tmp_path)
        module = _lowered_module()
        fp = module_fingerprint(module)
        with injected(FaultPlan([FaultSpec("cache.disk-write", at=1)])):
            cache.put(fp, compile_function(module))
        assert cache.stats.disk_errors == 1
        assert not (tmp_path / f"{fp}.py").exists()
        # The in-memory tier still serves the kernel.
        assert cache.get(fp) is not None
