"""Tests for the content-addressed compiled-kernel cache."""

import numpy as np
import pytest

from repro.codegen.cache import (
    KernelCache,
    default_cache,
    module_fingerprint,
    set_default_cache,
)
from repro.codegen.executor import compile_function
from repro.codegen.python_backend import BackendError
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.baselines import naive


def _build_module(shape=(8, 8), d=4.0):
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), shape, frontend.identity_body(d)
    )


def _lowered_module(shape=(8, 8), d=4.0):
    module = _build_module(shape, d)
    StencilCompiler(CompileOptions(vectorize=4)).lower(module)
    return module


def _inputs(shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    full = (1,) + tuple(shape)
    x = rng.standard_normal(full)
    b = rng.standard_normal(full)
    return x, b, x.copy()


class TestFingerprint:
    def test_deterministic(self):
        f1 = module_fingerprint(_lowered_module(), "kernel", "opts")
        f2 = module_fingerprint(_lowered_module(), "kernel", "opts")
        assert f1 == f2
        assert len(f1) == 64  # sha256 hex

    def test_sensitive_to_every_component(self):
        module = _lowered_module()
        base = module_fingerprint(module, "kernel", "opts")
        assert module_fingerprint(_lowered_module(d=5.0), "kernel", "opts") != base
        assert module_fingerprint(module, "other", "opts") != base
        assert module_fingerprint(module, "kernel", "opts,O0") != base

    def test_stale_backend_version_invalidates(self):
        module = _lowered_module()
        current = module_fingerprint(module, "kernel", "opts")
        old = module_fingerprint(module, "kernel", "opts", backend_version="0-old")
        assert current != old
        cache = KernelCache()
        cache.put(old, compile_function(module))
        # After an emitter bump the fingerprint changes, so the stale
        # entry is simply unreachable: the new lookup misses.
        assert cache.get(current) is None
        assert cache.stats.misses == 1


class TestKernelCacheLRU:
    def _kernel(self):
        return compile_function(_lowered_module())

    def test_hit_miss_and_stats(self):
        cache = KernelCache()
        kernel = self._kernel()
        assert cache.get("fp") is None
        cache.put("fp", kernel)
        assert cache.get("fp") is kernel
        assert "fp" in cache and len(cache) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = KernelCache(max_entries=2)
        kernel = self._kernel()
        cache.put("a", kernel)
        cache.put("b", kernel)
        assert cache.get("a") is kernel  # refresh "a": "b" is now oldest
        cache.put("c", kernel)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_clear_resets_entries_and_stats(self):
        cache = KernelCache()
        cache.put("fp", self._kernel())
        cache.get("fp")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 0 and cache.stats.puts == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            KernelCache(max_entries=0)


class TestDiskPersistence:
    def test_roundtrip_through_disk(self, tmp_path):
        module = _lowered_module()
        fingerprint = module_fingerprint(module)
        writer = KernelCache(persist=True, disk_dir=tmp_path)
        writer.put(fingerprint, compile_function(module))
        assert (tmp_path / f"{fingerprint}.py").is_file()
        assert (tmp_path / f"{fingerprint}.json").is_file()

        # A fresh cache (fresh process stand-in) misses in memory, loads
        # the stored source from disk and promotes it into the LRU.
        reader = KernelCache(persist=True, disk_dir=tmp_path)
        kernel = reader.get(fingerprint)
        assert kernel is not None
        assert reader.stats.disk_hits == 1
        assert fingerprint in reader  # promoted

        x, b, y = _inputs()
        expected = naive.stencil_sweep_python(
            x, b, y.copy(), gauss_seidel_5pt_2d(), naive.identity_scalar_body(4.0)
        )
        (out,) = kernel(x, b, y)
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-12)

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = KernelCache(persist=True, disk_dir=tmp_path)
        (tmp_path / "deadbeef.py").write_text("x = 1\n")
        (tmp_path / "deadbeef.json").write_text("{not json")
        assert cache.get("deadbeef") is None

    def test_clear_disk(self, tmp_path):
        cache = KernelCache(persist=True, disk_dir=tmp_path)
        cache.put("fp", compile_function(_lowered_module()))
        cache.clear(disk=True)
        assert list(tmp_path.glob("*.py")) == []


class TestCompileFunctionIntegration:
    def test_cache_kwarg_short_circuits_emission(self):
        cache = KernelCache()
        module = _lowered_module()
        k1 = compile_function(module, cache=cache, options_key="k")
        k2 = compile_function(module, cache=cache, options_key="k")
        assert k2 is k1
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_missing_entry_raises_backend_error(self):
        module = _lowered_module()
        with pytest.raises(BackendError, match="no_such_fn"):
            compile_function(module, entry="no_such_fn")

    def test_compiled_kernel_repr(self):
        kernel = compile_function(_lowered_module())
        text = repr(kernel)
        assert "kernel" in text
        assert f"{len(kernel.source)} chars" in text


class TestStencilCompilerIntegration:
    def test_compile_uses_default_cache(self):
        previous = set_default_cache(KernelCache())
        try:
            cache = default_cache()
            options = CompileOptions(subdomain_sizes=(4, 4), vectorize=4)
            k1 = StencilCompiler(options).compile(_build_module())
            assert cache.stats.misses == 1 and cache.stats.puts == 1
            k2 = StencilCompiler(options).compile(_build_module())
            assert k2 is k1
            assert cache.stats.hits == 1
        finally:
            set_default_cache(previous)

    def test_distinct_options_do_not_collide(self):
        previous = set_default_cache(KernelCache())
        try:
            o_scalar = CompileOptions(vectorize=0)
            o_vector = CompileOptions(vectorize=4)
            k_scalar = StencilCompiler(o_scalar).compile(_build_module())
            k_vector = StencilCompiler(o_vector).compile(_build_module())
            assert k_scalar is not k_vector
            assert default_cache().stats.misses == 2

            x, b, y = _inputs()
            (out_scalar,) = k_scalar(x, b, y.copy())
            (out_vector,) = k_vector(x, b, y.copy())
            # Scalar vs. vectorized lowering reassociates sums, so agree
            # only up to rounding (bit-exactness is across opt levels).
            np.testing.assert_allclose(out_scalar, out_vector, rtol=1e-12)
        finally:
            set_default_cache(previous)

    def test_use_cache_false_bypasses_cache(self):
        previous = set_default_cache(KernelCache())
        try:
            options = CompileOptions(use_cache=False)
            StencilCompiler(options).compile(_build_module())
            stats = default_cache().stats
            assert stats.hits == 0 and stats.misses == 0 and stats.puts == 0
        finally:
            set_default_cache(previous)
