"""Cross-cutting integration tests: textual round-trips of real programs
and pipeline/backend interplay on the full solvers."""

import numpy as np

from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers
from repro.cfdlib.heat import build_heat3d_module, initial_temperature
from repro.cfdlib.lusgs import LUSGSConfig, build_lusgs_module, stable_dt
from repro.cfdlib.mesh import StructuredMesh
from repro.codegen.executor import compile_function
from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.ir import verify
from repro.ir.parser import parse_module
from repro.ir.printer import print_module


class TestTextualRoundTrip:
    """print -> parse -> print must be a fixed point on real programs,
    and the reparsed module must execute identically."""

    def test_lusgs_module_roundtrip(self):
        mesh = StructuredMesh((4, 4, 4))
        w0 = euler.density_wave((4, 4, 4), amplitude=0.05)
        config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh))
        module = build_lusgs_module(config, steps=1)
        text1 = print_module(module)
        reparsed = parse_module(text1)
        assert print_module(reparsed) == text1
        verify(reparsed)
        w_padded = add_ghost_layers(w0)
        (a,) = run_function(module, "lusgs", w_padded.copy())
        (b,) = run_function(reparsed, "lusgs", w_padded.copy())
        np.testing.assert_array_equal(a, b)

    def test_heat_module_roundtrip(self):
        module = build_heat3d_module(6, 1)
        text1 = print_module(module)
        reparsed = parse_module(text1)
        assert print_module(reparsed) == text1
        verify(reparsed)

    def test_lowered_module_roundtrip_and_compile(self):
        """A fully lowered (vectorized) module survives the text format
        and still compiles to the same results."""
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (10, 14), frontend.identity_body(4.0)
        )
        StencilCompiler(
            CompileOptions(tile_sizes=(4, 8), vectorize=4)
        ).lower(module)
        reparsed = parse_module(print_module(module))
        verify(reparsed)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 10, 14))
        b = rng.standard_normal((1, 10, 14))
        (expected,) = compile_function(module)(x, b, x.copy())
        (actual,) = compile_function(reparsed)(x, b, x.copy())
        np.testing.assert_array_equal(actual, expected)


class TestPipelineInterplay:
    def test_lower_then_interpret_equals_compile(self):
        """The same lowered IR through the interpreter and the backend."""
        module = build_heat3d_module(6, 1)
        StencilCompiler(
            CompileOptions(subdomain_sizes=(3, 3, 4), parallel=True,
                           vectorize=4)
        ).lower(module)
        t0 = initial_temperature(6)[None]
        dt0 = np.zeros_like(t0)
        (interp,) = run_function(module, "heat", t0, dt0)
        (compiled,) = compile_function(module, entry="heat")(t0, dt0)
        np.testing.assert_array_equal(interp, compiled)

    def test_two_independent_compilations_agree(self):
        """Different optimization configurations of the same program
        produce numerically close results (associativity differences
        only)."""
        mesh = StructuredMesh((5, 5, 5))
        w0 = euler.density_wave((5, 5, 5), amplitude=0.05)
        config = LUSGSConfig(mesh=mesh, dt=stable_dt(w0, mesh))
        results = []
        for options in (
            CompileOptions(vectorize=0),
            CompileOptions(
                subdomain_sizes=(3, 3, 5), tile_sizes=(2, 2, 5),
                fuse=True, parallel=True, vectorize=4,
            ),
        ):
            module = build_lusgs_module(config, steps=1)
            kernel = StencilCompiler(options).compile(module, entry="lusgs")
            (w,) = kernel(add_ghost_layers(w0))
            results.append(w)
        np.testing.assert_allclose(results[0], results[1], rtol=1e-9)

    def test_compile_options_pipeline_description(self):
        compiler = StencilCompiler(
            CompileOptions(
                subdomain_sizes=(4, 4), tile_sizes=(2, 2), fuse=True,
                parallel=True, vectorize=8,
            )
        )
        pm = compiler.build_pipeline()
        desc = pm.pipeline_description()
        assert "tile-stencils" in desc
        assert "fuse-structured-ops" in desc
        assert "vectorize-stencils<vf=8>" in desc
