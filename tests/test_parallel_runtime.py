"""The multithreaded wavefront runtime (`repro.runtime.parallel`).

Covers the dispatcher directly (CSR shapes the thread pool must survive
without deadlock, including the degenerate ones: 1-cell axes,
single-block meshes, empty groups), the legality gate / certification
plumbing through ``StencilCompiler.compile``, the RS010 degradation and
RS011 refusal paths, the schedule stamp, and bit-identicality of
parallel execution against both the sequential path and
``Interpreter(checked=True)``.
"""

import threading

import numpy as np
import pytest

from repro.cfdlib.heat import build_heat3d_module, initial_temperature
from repro.codegen.interpreter import Interpreter
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.scheduling import (
    ScheduleStamp,
    compute_parallel_blocks,
    extract_schedule_stamps,
    group_sizes,
    wavefront_groups,
)
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_6pt_3d
from repro.runtime.parallel import (
    dispatch_wavefronts,
    drain_events,
    get_num_threads,
    last_dispatch_stats,
    num_threads,
    set_num_threads,
)
from repro.runtime.resilience.faults import (
    FaultPlan,
    FaultSpec,
    clear_plan,
    injected,
)

OFFSETS_3D = [(-1, 0, 0), (0, -1, 0), (0, 0, -1)]


@pytest.fixture(autouse=True)
def _clean_runtime():
    yield
    clear_plan()
    set_num_threads(None)
    drain_events()


def _recording_block_fn(log):
    lock = threading.Lock()

    def block(lin):
        with lock:
            log.append(int(lin))

    return block


class TestDispatcher:
    def test_sequential_runs_all_blocks_in_order(self):
        offsets = np.array([0, 1, 3, 4])
        indices = np.array([2, 0, 3, 1])
        log = []
        with num_threads(1):
            stats = dispatch_wavefronts(
                offsets, indices, log.append, certified=True
            )
        assert log == [2, 0, 3, 1]
        assert stats.parallel_groups == 0
        assert stats.blocks == 4

    def test_parallel_executes_every_block_exactly_once(self):
        offsets, indices = compute_parallel_blocks((4, 4), [(-1, 0), (0, -1)])
        log = []
        with num_threads(4):
            stats = dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        assert sorted(log) == list(range(16))
        assert stats.parallel_groups > 0
        assert stats.blocks == 16

    def test_group_barrier_orders_cross_group_blocks(self):
        """No block of group g+1 may start before group g finished."""
        offsets, indices = compute_parallel_blocks((3, 3), [(-1, 0), (0, -1)])
        group_of = {}
        for g in range(len(offsets) - 1):
            for lin in indices[offsets[g]: offsets[g + 1]]:
                group_of[int(lin)] = g
        log = []
        with num_threads(4):
            dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        seen_groups = [group_of[lin] for lin in log]
        assert seen_groups == sorted(seen_groups)

    # ---- degenerate shapes the pool must survive without deadlock ----

    def test_empty_schedule(self):
        stats = dispatch_wavefronts(
            np.array([0]), np.array([], dtype=np.int64),
            lambda lin: None, certified=True,
        )
        assert stats.groups == 0 and stats.blocks == 0

    def test_empty_group_inside_schedule(self):
        """Repeated CSR offsets (an empty group) are skipped, not hung."""
        offsets = np.array([0, 2, 2, 4])
        indices = np.array([0, 1, 2, 3])
        log = []
        with num_threads(4):
            stats = dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        assert sorted(log) == [0, 1, 2, 3]
        assert stats.groups == 3

    def test_single_block_mesh(self):
        offsets, indices = compute_parallel_blocks((1, 1, 1), OFFSETS_3D)
        log = []
        with num_threads(8):
            stats = dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        assert log == [0]
        assert stats.inline_groups == 1

    def test_one_cell_axis_grid(self):
        """A (1, N) grid degenerates to a pure pipeline: every group has
        exactly one block, so dispatch stays inline at any thread count."""
        offsets, indices = compute_parallel_blocks((1, 5), [(-1, 0), (0, -1)])
        assert group_sizes(offsets) == [1] * 5
        log = []
        with num_threads(8):
            stats = dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        assert log == list(range(5))
        assert stats.parallel_groups == 0

    def test_more_threads_than_blocks(self):
        offsets, indices = compute_parallel_blocks((2, 2), [(-1, 0), (0, -1)])
        log = []
        with num_threads(64):
            dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        assert sorted(log) == [0, 1, 2, 3]

    # ---- refusal and degradation ----

    def test_uncertified_refusal(self):
        offsets, indices = compute_parallel_blocks((4, 4), [(-1, 0), (0, -1)])
        log = []
        drain_events()
        with num_threads(4):
            stats = dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=False
            )
        assert stats.refusal == "uncertified"
        assert stats.parallel_groups == 0
        assert sorted(log) == list(range(16))
        assert "RS011" in {d.code for d in drain_events()}

    def test_not_inplace_refusal(self):
        offsets, indices = compute_parallel_blocks((2, 2), [(-1, 0)])
        drain_events()
        with num_threads(2):
            stats = dispatch_wavefronts(
                offsets, indices, lambda lin: None,
                inplace=False, certified=True,
            )
        assert stats.refusal == "not-inplace"
        assert "RS011" in {d.code for d in drain_events()}

    def test_worker_fault_degrades_and_recovers_every_block(self):
        offsets, indices = compute_parallel_blocks((4, 4), [(-1, 0), (0, -1)])
        log = []
        drain_events()
        plan = FaultPlan([FaultSpec("parallel.worker", at=3)])
        with injected(plan), num_threads(4):
            stats = dispatch_wavefronts(
                offsets, indices, _recording_block_fn(log), certified=True
            )
        assert plan.fired
        assert stats.degraded and stats.worker_failures == 1
        assert stats.recovered_blocks >= 1
        # Degradation never loses or duplicates a block.
        assert sorted(log) == list(range(16))
        assert "RS010" in {d.code for d in drain_events()}

    def test_thread_knob_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "3")
        assert get_num_threads() == 3
        monkeypatch.setenv("REPRO_THREADS", "garbage")
        assert get_num_threads() == 1
        monkeypatch.setenv("REPRO_THREADS", "4,8")
        assert get_num_threads() == 4
        with num_threads(7):
            assert get_num_threads() == 7
        assert get_num_threads() == 4


class TestScheduleStamp:
    def test_stamp_matches_recomputed_schedule(self):
        stamp = ScheduleStamp(
            num_blocks=(3, 3),
            block_offsets=((-1, 0), (0, -1)),
            group_sizes=(1, 2, 3, 2, 1),
        )
        offsets, _ = stamp.csr()
        assert group_sizes(offsets) == list(stamp.group_sizes)
        assert stamp.num_groups == 5
        assert stamp.total_blocks == 9
        assert stamp.max_parallelism == 3

    def test_json_roundtrip(self):
        stamp = ScheduleStamp((2, 4), ((-1, 0),), (4, 4))
        assert ScheduleStamp.from_json(stamp.to_json()) == stamp

    def test_extracted_from_lowered_module(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_6pt_3d(), (12, 12, 12), frontend.identity_body(7.0)
        )
        options = CompileOptions(
            subdomain_sizes=(4, 4, 4), parallel=True, vectorize=4,
            use_cache=False,
        )
        StencilCompiler(options).lower(module)
        stamps = extract_schedule_stamps(module)
        assert len(stamps) == 1
        stamp = stamps[0]
        assert stamp.num_blocks == (3, 3, 3)
        expected_offsets, _ = compute_parallel_blocks((3, 3, 3), OFFSETS_3D)
        assert list(stamp.group_sizes) == group_sizes(expected_offsets)

    def test_compile_stamps_kernel(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        options = CompileOptions(
            subdomain_sizes=(4, 4), parallel=True, vectorize=4,
            use_cache=False,
        )
        kernel = StencilCompiler(options).compile(module)
        assert len(kernel.schedule) == 1
        assert kernel.schedule[0].num_blocks == (2, 2)


class TestCompiledParallelExecution:
    N = 16

    def _kernel(self, **overrides):
        options = CompileOptions(
            subdomain_sizes=(8, 8, 8), tile_sizes=(4, 4, 8), fuse=True,
            vectorize=8, parallel=True, use_cache=False, **overrides,
        )
        module = build_heat3d_module(self.N, steps=2, lam=0.1)
        return StencilCompiler(options).compile(module, entry="heat")

    def _args(self):
        t0 = initial_temperature(self.N, seed=3)
        dt0 = np.zeros((self.N, self.N, self.N))
        return t0[None], dt0[None]

    def test_gate_certifies_clean_module(self):
        kernel = self._kernel()
        assert kernel.parallel_certified
        assert kernel.parallel_diagnostics == []
        assert kernel.namespace["_PARALLEL_CERTIFIED"] is True

    def test_parallel_bit_identical_to_sequential(self):
        kernel = self._kernel()
        t0, dt0 = self._args()
        with num_threads(1):
            seq = kernel(t0.copy(), dt0.copy())
        for threads in (2, 4, 8):
            with num_threads(threads):
                par = kernel(t0.copy(), dt0.copy())
            stats = last_dispatch_stats()
            assert stats.parallel_groups > 0, f"threads={threads}"
            for s, p in zip(seq, par):
                assert np.array_equal(s, p), f"threads={threads}"

    def test_parallel_bit_identical_to_checked_interpreter(self):
        """`Interpreter(checked=True)` is the correctness oracle: the
        threaded compiled kernel must agree bit-for-bit on a small
        domain."""
        n = 8
        module = build_heat3d_module(n, steps=1, lam=0.1)
        t0 = initial_temperature(n, seed=5)[None]
        dt0 = np.zeros((1, n, n, n))
        oracle = Interpreter(module, checked=True).run(
            "heat", t0.copy(), dt0.copy()
        )
        options = CompileOptions(
            subdomain_sizes=(4, 4, 4), parallel=True, vectorize=4,
            use_cache=False,
        )
        kernel = StencilCompiler(options).compile(
            build_heat3d_module(n, steps=1, lam=0.1), entry="heat"
        )
        with num_threads(4):
            got = kernel(t0.copy(), dt0.copy())
        for o, g in zip(oracle, got):
            assert np.array_equal(np.asarray(o), np.asarray(g))

    def test_worker_fault_mid_run_still_bit_identical(self):
        kernel = self._kernel()
        t0, dt0 = self._args()
        with num_threads(1):
            seq = kernel(t0.copy(), dt0.copy())
        drain_events()
        with injected(
            FaultPlan([FaultSpec("parallel.worker", at=2)])
        ), num_threads(4):
            par = kernel(t0.copy(), dt0.copy())
        assert last_dispatch_stats() is not None
        assert "RS010" in {d.code for d in drain_events()}
        for s, p in zip(seq, par):
            assert np.array_equal(s, p)

    def test_sequential_default_without_knob(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        kernel = self._kernel()
        t0, dt0 = self._args()
        assert get_num_threads() == 1
        kernel(t0.copy(), dt0.copy())
        assert last_dispatch_stats().parallel_groups == 0
