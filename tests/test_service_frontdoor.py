"""The service front door (`repro.service.frontdoor`): wire-protocol
handling, option coercion, the stdio loop, and the TCP socket server.
"""

import asyncio
import io
import json

import numpy as np
import pytest

from repro.codegen.cache import KernelCache
from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.ir.printer import print_module
from repro.service import (
    CompileService,
    ServiceConfig,
    handle_request,
    options_from_json,
    serve_socket,
    serve_stdio,
)

SHAPE = (8, 8)
WIRE_OPTIONS = {"tile_sizes": [2, 2], "vectorize": 4}


def _module(shape=SHAPE):
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), shape, frontend.identity_body(4.0)
    )


def _ir(shape=SHAPE):
    return print_module(_module(shape))


def _service():
    return CompileService(ServiceConfig(), cache=KernelCache())


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    full = (1,) + SHAPE
    return rng.standard_normal(full), rng.standard_normal(full)


class TestOptionsFromJson:
    def test_none_passes_through(self):
        assert options_from_json(None) is None

    def test_lists_become_tuples(self):
        opts = options_from_json(
            {"subdomain_sizes": [4, 4], "tile_sizes": [2, 2]}
        )
        assert opts.subdomain_sizes == (4, 4)
        assert opts.tile_sizes == (2, 2)
        assert isinstance(opts, CompileOptions)

    def test_unknown_key_is_an_error(self):
        with pytest.raises(ValueError, match="unknown compile option"):
            options_from_json({"opt_leval": 2})


class TestHandleRequest:
    def test_compile_and_execute(self):
        x, b = _inputs()
        (expected,) = run_function(_module(), "kernel", x, b, x.copy())

        async def scenario():
            svc = _service()
            compiled = await handle_request(svc, {
                "op": "compile", "id": 1, "ir": _ir(),
                "options": WIRE_OPTIONS,
            })
            executed = await handle_request(svc, {
                "op": "execute", "id": 2, "ir": _ir(),
                "args": [x.tolist(), b.tolist(), x.tolist()],
                "options": WIRE_OPTIONS,
            })
            await svc.drain()
            return compiled, executed

        compiled, executed = asyncio.run(scenario())
        assert compiled["status"] == "ok" and compiled["id"] == 1
        assert compiled["fingerprint"]
        assert executed["status"] == "ok"
        np.testing.assert_allclose(
            np.asarray(executed["values"][0]), expected, rtol=1e-12
        )
        json.dumps(executed)  # the whole reply is JSON-serializable

    def test_stats_and_drain_ops(self):
        async def scenario():
            svc = _service()
            await handle_request(svc, {
                "op": "compile", "id": 1, "ir": _ir(),
                "options": WIRE_OPTIONS,
            })
            stats = await handle_request(svc, {"op": "stats", "id": 2})
            drained = await handle_request(svc, {"op": "drain", "id": 3})
            return stats, drained

        stats, drained = asyncio.run(scenario())
        assert stats["report"]["stats"]["completed"] == 1
        assert drained["status"] == "drained"

    def test_protocol_errors_are_structured(self):
        async def scenario():
            svc = _service()
            bad_op = await handle_request(svc, {"op": "nope", "id": 1})
            bad_opts = await handle_request(svc, {
                "op": "compile", "id": 2, "ir": _ir(),
                "options": {"bogus": 1},
            })
            bad_ir = await handle_request(svc, {
                "op": "compile", "id": 3, "ir": "not ir at all",
            })
            await svc.drain()
            return bad_op, bad_opts, bad_ir

        bad_op, bad_opts, bad_ir = asyncio.run(scenario())
        for reply in (bad_op, bad_opts, bad_ir):
            assert reply["status"] == "failed"
            assert reply["error"]
        assert bad_op["id"] == 1 and bad_ir["id"] == 3

    def test_deadline_travels_the_wire(self):
        async def scenario():
            svc = _service()
            reply = await handle_request(svc, {
                "op": "compile", "id": 1, "ir": _ir(),
                "deadline": 1e-4,
            })
            await svc.drain()
            return reply

        reply = asyncio.run(scenario())
        assert reply["status"] == "deadline"
        assert any(d["code"] == "RS013" for d in reply["diagnostics"])


class TestServeStdio:
    def _run(self, lines):
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        svc = _service()
        asyncio.run(serve_stdio(svc, stdin=stdin, stdout=stdout))
        replies = [
            json.loads(line)
            for line in stdout.getvalue().splitlines() if line.strip()
        ]
        return svc, replies

    def test_serves_lines_until_eof_then_drains(self):
        svc, replies = self._run([
            json.dumps({"op": "compile", "id": 1, "ir": _ir(),
                        "options": WIRE_OPTIONS}),
            json.dumps({"op": "compile", "id": 2, "ir": _ir(),
                        "options": WIRE_OPTIONS}),
        ])
        by_id = {r["id"]: r for r in replies}
        assert by_id[1]["status"] == "ok"
        assert by_id[2]["status"] == "ok"
        assert svc._closed  # EOF drained the service

    def test_bad_json_line_does_not_kill_the_session(self):
        svc, replies = self._run([
            "{this is not json",
            json.dumps({"op": "compile", "id": 2, "ir": _ir(),
                        "options": WIRE_OPTIONS}),
        ])
        failed = [r for r in replies if r["status"] == "failed"]
        served = [r for r in replies if r["status"] == "ok"]
        assert len(failed) == 1 and "bad JSON" in failed[0]["error"]
        assert len(served) == 1 and served[0]["id"] == 2

    def test_blank_lines_are_ignored(self):
        svc, replies = self._run([
            "",
            json.dumps({"op": "stats", "id": 1}),
            "   ",
        ])
        assert len(replies) == 1 and replies[0]["id"] == 1


class TestServeSocket:
    def test_socket_round_trip(self):
        x, b = _inputs()
        (expected,) = run_function(_module(), "kernel", x, b, x.copy())

        async def scenario():
            svc = _service()
            server = await serve_socket(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            requests = [
                {"op": "compile", "id": 1, "ir": _ir(),
                 "options": WIRE_OPTIONS},
                {"op": "execute", "id": 2, "ir": _ir(),
                 "args": [x.tolist(), b.tolist(), x.tolist()],
                 "options": WIRE_OPTIONS},
            ]
            for req in requests:
                writer.write((json.dumps(req) + "\n").encode())
            await writer.drain()
            replies = {}
            for _ in requests:
                line = await asyncio.wait_for(reader.readline(), 60)
                reply = json.loads(line)
                replies[reply["id"]] = reply
            writer.close()
            server.close()
            await server.wait_closed()
            await svc.drain()
            return replies

        replies = asyncio.run(scenario())
        assert replies[1]["status"] == "ok"
        assert replies[2]["status"] == "ok"
        np.testing.assert_allclose(
            np.asarray(replies[2]["values"][0]), expected, rtol=1e-12
        )

    def test_single_flight_across_connections(self):
        async def scenario():
            svc = _service()
            server = await serve_socket(svc, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]

            async def client(rid):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write((json.dumps({
                    "op": "compile", "id": rid, "ir": _ir(),
                    "options": WIRE_OPTIONS,
                }) + "\n").encode())
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), 60)
                writer.close()
                return json.loads(line)

            replies = await asyncio.gather(*[client(i) for i in range(4)])
            server.close()
            await server.wait_closed()
            await svc.drain()
            return svc, replies

        svc, replies = asyncio.run(scenario())
        assert all(r["status"] == "ok" for r in replies)
        # Four connections, one compilation: dedup spans the socket.
        assert svc.stats.compiles_started == 1
        assert svc.stats.single_flight_hits + svc.stats.cache_hits == 3
