"""The resilient compiler: snapshot retry, degradation chain, fallback."""

import numpy as np
import pytest

from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.runtime.resilience import (
    FaultPlan,
    FaultSpec,
    clear_plan,
    injected,
)
from repro.runtime.resilience.driver import (
    InterpreterKernel,
    ResilientCompiler,
    degradation_chain,
)
from repro.ir.printer import print_module

SHAPE = (8, 8)
OPTIONS = CompileOptions(
    subdomain_sizes=(4, 4),
    tile_sizes=(2, 2),
    fuse=True,
    vectorize=4,
    use_cache=False,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


def _module():
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), SHAPE, frontend.identity_body(4.0)
    )


def _inputs(seed=0):
    rng = np.random.default_rng(seed)
    full = (1,) + SHAPE
    return rng.standard_normal(full), rng.standard_normal(full)


def _reference(x, b):
    (expected,) = run_function(_module(), "kernel", x, b, x.copy())
    return expected


class TestDegradationChain:
    def test_walks_to_weakest_config(self):
        steps = list(degradation_chain(OPTIONS))
        labels = [label for label, _ in steps]
        assert labels[0] == "as-requested"
        assert "opt_level -> O0" in labels
        assert labels[-2] == "vectorization -> off"
        assert labels[-1] == "fusion -> off"
        last = steps[-1][1]
        assert last.opt_level == 0 and last.vectorize == 0 and not last.fuse

    def test_requested_options_unmutated(self):
        list(degradation_chain(OPTIONS))
        assert OPTIONS.vectorize == 4 and OPTIONS.fuse

    def test_already_weak_config_yields_only_itself(self):
        weak = CompileOptions(vectorize=0, fuse=False, opt_level=0)
        assert [label for label, _ in degradation_chain(weak)] == [
            "as-requested"
        ]


class TestCleanCompile:
    def test_no_faults_no_events(self):
        kernel, report = ResilientCompiler(OPTIONS).compile(_module())
        assert report.final == "compiled"
        assert not report.recovered and not report.degraded
        assert report.attempts[0].outcome == "ok"
        x, b = _inputs()
        (got,) = kernel.run(x, b, x.copy())
        np.testing.assert_allclose(got, _reference(x, b), rtol=1e-12)

    def test_input_module_not_consumed(self):
        module = _module()
        before = print_module(module)
        ResilientCompiler(OPTIONS).compile(module)
        assert print_module(module) == before


class TestSnapshotRetry:
    def test_transient_pass_fault_recovered(self):
        plan = FaultPlan([FaultSpec("pipeline.pass-run", at=3)])
        with injected(plan):
            kernel, report = ResilientCompiler(OPTIONS).compile(_module())
        assert plan.fired
        assert report.recovered  # RS001 in the event log
        assert not report.degraded  # retry succeeded at full config
        assert report.final == "compiled"
        x, b = _inputs(1)
        (got,) = kernel.run(x, b, x.copy())
        np.testing.assert_allclose(got, _reference(x, b), rtol=1e-12)

    def test_transient_verify_fault_recovered(self):
        plan = FaultPlan([FaultSpec("pipeline.verify", at=2)])
        with injected(plan):
            kernel, report = ResilientCompiler(OPTIONS).compile(_module())
        assert report.recovered
        assert report.final == "compiled"


class TestDegradation:
    def test_persistent_vectorize_fault_degrades_past_vectorization(self):
        # The vectorize pass always fails -> the chain must reach a
        # configuration that doesn't run it.
        plan = FaultPlan([FaultSpec(
            "pipeline.pass-run", at=1, times=10**6,
            match={"pass_name": "vectorize-stencils"},
        )])
        with injected(plan):
            kernel, report = ResilientCompiler(
                OPTIONS, max_retries=1, backoff_base=0.0
            ).compile(_module())
        assert report.degraded
        assert "RS002" in report.codes()
        assert report.final == "compiled"
        assert "vectorization -> off" in report.degradations
        assert "vf=" not in report.final_options
        x, b = _inputs(2)
        (got,) = kernel.run(x, b, x.copy())
        np.testing.assert_allclose(got, _reference(x, b), rtol=1e-12)

    def test_persistent_all_pass_fault_falls_back_to_interpreter(self):
        plan = FaultPlan([FaultSpec(
            "pipeline.pass-run", at=1, times=10**6
        )])
        with injected(plan):
            kernel, report = ResilientCompiler(
                OPTIONS, max_retries=0, backoff_base=0.0
            ).compile(_module())
        assert isinstance(kernel, InterpreterKernel)
        assert "RS003" in report.codes()
        assert report.final == "interpreter"
        x, b = _inputs(3)
        (got,) = kernel.run(x, b, x.copy())
        np.testing.assert_allclose(got, _reference(x, b), rtol=1e-12)

    def test_interpreter_kernel_reusable_across_calls(self):
        kernel = InterpreterKernel(print_module(_module()))
        x, b = _inputs(4)
        (a,) = kernel.run(x, b, x.copy())
        (c,) = kernel.run(x, b, x.copy())
        np.testing.assert_array_equal(a, c)


class TestCompileAndRun:
    def test_execution_fault_retried(self):
        plan = FaultPlan([FaultSpec("executor.execute", at=1)])
        x, b = _inputs(5)
        with injected(plan):
            values, report = ResilientCompiler(
                OPTIONS, backoff_base=0.0
            ).compile_and_run(
                _module(), lambda: (x.copy(), b.copy(), x.copy())
            )
        assert any(
            a.stage == "execute" and a.outcome == "failed"
            for a in report.attempts
        )
        np.testing.assert_allclose(values[0], _reference(x, b), rtol=1e-12)

    def test_persistent_execution_fault_falls_back_to_interpreter(self):
        plan = FaultPlan([FaultSpec(
            "executor.execute", at=1, times=10**6
        )])
        x, b = _inputs(6)
        with injected(plan):
            values, report = ResilientCompiler(
                OPTIONS, max_retries=1, backoff_base=0.0
            ).compile_and_run(
                _module(), lambda: (x.copy(), b.copy(), x.copy())
            )
        assert "RS003" in report.codes()
        assert report.final == "interpreter"
        np.testing.assert_allclose(values[0], _reference(x, b), rtol=1e-12)


class TestReport:
    def test_render_and_json_round_out(self):
        plan = FaultPlan([FaultSpec("pipeline.pass-run", at=1)])
        with injected(plan):
            _, report = ResilientCompiler(
                OPTIONS, backoff_base=0.0
            ).compile(_module())
        text = report.render()
        assert "recovery report: final=compiled" in text
        assert "RS001" in text
        blob = report.to_json()
        assert blob["final"] == "compiled"
        assert any(e["code"] == "RS001" for e in blob["events"])
        assert all(a["stage"] == "compile" for a in blob["attempts"])

    def test_json_round_trip_is_stable(self):
        """`from_json(to_json(r))` reproduces the report exactly — the
        service ships these over the wire (PR 10)."""
        from repro.runtime.resilience.report import RecoveryReport

        plan = FaultPlan([FaultSpec("pipeline.pass-run", at=1)])
        with injected(plan):
            _, report = ResilientCompiler(
                OPTIONS, backoff_base=0.0
            ).compile(_module())
        blob = report.to_json()
        clone = RecoveryReport.from_json(blob)
        assert clone.to_json() == blob
        assert clone.final == report.final
        assert clone.final_options == report.final_options
        assert clone.degradations == report.degradations
        assert clone.codes() == report.codes()
        assert len(clone.attempts) == len(report.attempts)
        for a, b in zip(clone.attempts, report.attempts):
            assert (a.options, a.outcome, a.stage) == (
                b.options, b.outcome, b.stage
            )
        # Event fields added in PR 10 survive the round trip too.
        for d_clone, d_orig in zip(clone.events, report.events):
            assert d_clone.code == d_orig.code
            assert d_clone.op_path == d_orig.op_path
            assert d_clone.after_pass == d_orig.after_pass

    def test_from_json_tolerates_pre_service_payloads(self):
        """Reports serialized before the service's extra event fields
        existed still deserialize (missing keys default)."""
        from repro.runtime.resilience.report import RecoveryReport

        legacy = {
            "final": "compiled",
            "final_options": "vf=4,O2",
            "degradations": [],
            "attempts": [{"options": "vf=4,O2", "outcome": "ok",
                          "stage": "compile", "error": ""}],
            "events": [{"code": "RS001", "severity": "warning",
                        "message": "retried"}],
        }
        clone = RecoveryReport.from_json(legacy)
        assert clone.final == "compiled"
        assert clone.codes() == ["RS001"]
        assert not clone.events[0].op_path
