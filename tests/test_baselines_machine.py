"""Tests for the Pluto/elsA baselines and the machine simulator."""

import numpy as np
import pytest

from repro.baselines import naive
from repro.baselines.elsa import elsa_solve, elsa_sweeps, subdomain_wavefront_sizes
from repro.baselines.pluto import (
    PlutoOptions,
    PlutoStencil,
    pluto_jacobi,
    spatial_skew_factors,
    time_skew_factors,
)
from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers, apply_periodic
from repro.cfdlib.lusgs import (
    LUSGSConfig,
    compute_rhs,
    lusgs_reference,
    lusgs_sweeps_reference,
    stable_dt,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
)
from repro.machine import (
    XEON_6152,
    WorkloadProfile,
    simulate_wavefront_execution,
    speedup_curve,
)
from repro.machine.simulator import cell_time_curve, profile_from_schedule


def _fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape), rng.standard_normal(shape)


class TestSkewFactors:
    def test_5pt_no_skew(self):
        assert spatial_skew_factors(gauss_seidel_5pt_2d()) == [0, 0]
        assert time_skew_factors(gauss_seidel_5pt_2d()) == [1, 1]

    def test_9pt_needs_spatial_skew(self):
        assert spatial_skew_factors(gauss_seidel_9pt_2d()) == [0, 1]

    def test_second_order_time_skew(self):
        assert time_skew_factors(gauss_seidel_9pt_2nd_order_2d()) == [2, 2]


class TestPlutoCorrectness:
    @pytest.mark.parametrize(
        "pattern_fn",
        [gauss_seidel_5pt_2d, gauss_seidel_9pt_2d, gauss_seidel_9pt_2nd_order_2d],
    )
    @pytest.mark.parametrize("variant", [1, 2])
    def test_matches_reference(self, pattern_fn, variant):
        pattern = pattern_fn()
        u, b = _fields((13, 14), seed=3)
        d = float(pattern.num_accesses)
        iterations = 3
        expected = naive.iterate(
            naive.gauss_seidel_sweep_python, u.copy(), b, pattern, d, iterations
        )
        kernel = PlutoStencil(
            pattern, d, PlutoOptions(variant=variant, tile_sizes=(4, 5))
        )
        actual = kernel.run(u, b, iterations)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)
        assert kernel.last_wavefront_sizes
        assert sum(kernel.last_wavefront_sizes) > 0

    def test_3d_heat_pattern(self):
        from repro.core.stencil import gauss_seidel_6pt_3d

        pattern = gauss_seidel_6pt_3d()
        u, b = _fields((7, 8, 7), seed=5)
        expected = naive.iterate(
            naive.gauss_seidel_sweep_python, u.copy(), b, pattern, 6.0, 2
        )
        kernel = PlutoStencil(
            pattern, 6.0, PlutoOptions(variant=2, tile_sizes=(3, 3, 3))
        )
        actual = kernel.run(u, b, 2)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_variant1_single_wavefront_structure(self):
        pattern = gauss_seidel_5pt_2d()
        u, b = _fields((10, 10), seed=7)
        kernel = PlutoStencil(
            pattern, 4.0, PlutoOptions(variant=1, tile_sizes=(4, 4), time_tile=2)
        )
        kernel.run(u, b, 4)
        sizes = kernel.last_wavefront_sizes
        # A wavefront profile rises then falls (diamond shape).
        assert max(sizes) >= sizes[0]
        assert max(sizes) >= sizes[-1]

    def test_jacobi_variant(self):
        pattern = jacobi_5pt_2d()
        u, b = _fields((12, 12), seed=9)
        expected = naive.iterate(naive.jacobi_sweep, u.copy(), b, pattern, 4.0, 3)
        actual = pluto_jacobi(u, b, pattern, 4.0, 3)
        np.testing.assert_allclose(actual, expected, rtol=1e-13)

    def test_bad_options(self):
        with pytest.raises(ValueError):
            PlutoOptions(variant=3)
        with pytest.raises(ValueError):
            PlutoStencil(gauss_seidel_5pt_2d(), 4.0, PlutoOptions(tile_sizes=(4,)))


class TestElsa:
    @pytest.fixture(scope="class")
    def case(self):
        mesh = StructuredMesh((5, 5, 5))
        w0 = euler.density_wave((5, 5, 5), amplitude=0.05)
        dt = stable_dt(w0, mesh, cfl=1.0)
        return LUSGSConfig(mesh=mesh, dt=dt), w0

    def test_sweeps_match_reference(self, case):
        config, w0 = case
        w = add_ghost_layers(w0)
        apply_periodic(w)
        rhs = compute_rhs(w, config)
        expected = lusgs_sweeps_reference(w, rhs, config)
        actual = elsa_sweeps(w, rhs, config)
        np.testing.assert_allclose(actual, expected, rtol=1e-11)

    def test_solve_matches_reference(self, case):
        config, w0 = case
        expected = lusgs_reference(w0, config, steps=2)
        actual = elsa_solve(w0, config, steps=2)
        np.testing.assert_allclose(actual, expected, rtol=1e-10)

    def test_wavefront_sizes(self):
        sizes = subdomain_wavefront_sizes([8, 8, 8], [4, 4, 4])
        assert sum(sizes) == 8
        assert sizes[0] == 1  # origin block alone in the first group


class TestMachineModel:
    def test_xeon_preset(self):
        assert XEON_6152.cores == 44
        assert XEON_6152.numa_nodes == 4
        assert XEON_6152.cores_per_numa == 11
        assert XEON_6152.l2_bytes == 1 << 20

    def test_numa_occupancy(self):
        assert XEON_6152.numa_nodes_used(1) == 1
        assert XEON_6152.numa_nodes_used(11) == 1
        assert XEON_6152.numa_nodes_used(12) == 2
        assert XEON_6152.numa_nodes_used(44) == 4

    def test_bandwidth_grows_with_nodes(self):
        assert XEON_6152.bandwidth_available(44) == pytest.approx(
            4 * XEON_6152.mem_bw_per_numa
        )


class TestSimulator:
    def _profile(self, compute_bound=True):
        # 16-group diagonal schedule, 1..16..1 diamond.
        sizes = list(range(1, 17)) + list(range(15, 0, -1))
        tile_bytes = 1e3 if compute_bound else 1e8
        return WorkloadProfile(
            wavefront_sizes=sizes,
            tile_seconds=1e-4,
            tile_bytes=tile_bytes,
            iterations=10,
        )

    def test_single_thread_time_is_work(self):
        p = self._profile()
        t = simulate_wavefront_execution(p, 1, XEON_6152)
        assert t == pytest.approx(p.total_tiles * p.tile_seconds)

    def test_speedup_monotonic_until_parallelism_limit(self):
        p = self._profile()
        curve = speedup_curve(p, XEON_6152, [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.5
        assert curve[4] > curve[2]
        assert curve[8] > curve[4]

    def test_speedup_bounded_by_max_group(self):
        p = self._profile()
        curve = speedup_curve(p, XEON_6152, [16, 44])
        # Max group has 16 tiles: no more than ~16x even at 44 threads
        # (critical path), with barrier costs pushing it lower.
        assert curve[44] <= 16.0

    def test_bandwidth_bound_kernel_scales_worse(self):
        compute = speedup_curve(self._profile(True), XEON_6152, [8])
        memory = speedup_curve(self._profile(False), XEON_6152, [8])
        assert memory[8] < compute[8]

    def test_bandwidth_recovers_across_numa_nodes(self):
        """Fig. 13's discussion: total bandwidth grows when spreading
        over more NUMA nodes."""
        p = self._profile(compute_bound=False)
        curve = speedup_curve(p, XEON_6152, [11, 44])
        assert curve[44] > curve[11]

    def test_cell_time_curve(self):
        p = self._profile()
        t = cell_time_curve(p, XEON_6152, [1, 2], num_cells=10_000)
        assert t[1] > 0
        # Perfect scaling keeps t_cell flat; overheads can only raise it.
        assert t[2] >= t[1] * 0.99

    def test_profile_from_schedule(self):
        from repro.core import scheduling

        offsets, _ = scheduling.compute_parallel_blocks(
            (4, 4), [(-1, 0), (0, -1)]
        )
        p = profile_from_schedule(offsets, 1e-5, 1e4, iterations=3)
        assert p.wavefront_sizes == [1, 2, 3, 4, 3, 2, 1]
        assert p.total_tiles == 16 * 3

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            simulate_wavefront_execution(self._profile(), 0, XEON_6152)
