"""Tests for the bufferization pass (tensors -> memrefs, §3.3)."""

import numpy as np
import pytest

from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.bufferization import BufferizationError, BufferizePass
from repro.core.lowering import LowerStencilsPass
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_6pt_3d
from repro.core.vectorization import VectorizeStencilsPass
from repro.ir import PassManager, verify
from repro.ir.printer import print_module
from repro.ir.types import MemRefType


def _fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _bufferized(pattern, shape, vectorize, iterations=1):
    module = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(float(pattern.num_accesses)),
        iterations=iterations,
    )
    passes = [
        VectorizeStencilsPass(4) if vectorize else LowerStencilsPass(),
        BufferizePass(),
    ]
    PassManager(passes).run(module)
    return module


class TestBufferization:
    @pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vector"])
    def test_semantics_preserved(self, vectorize):
        pattern = gauss_seidel_5pt_2d()
        shape = (1, 9, 13)
        module = _bufferized(pattern, shape, vectorize)
        reference = frontend.build_stencil_kernel(
            pattern, shape[1:], frontend.identity_body(4.0)
        )
        x, b = _fields(shape, 3)
        (expected,) = run_function(reference, "kernel", x, b, x.copy())
        (actual,) = run_function(module, "kernel", x, b, x.copy())
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_no_tensor_ops_remain(self):
        module = _bufferized(gauss_seidel_5pt_2d(), (1, 8, 8), True)
        text = print_module(module)
        assert "tensor." not in text
        assert "memref.load" in text or "memref.store" in text
        verify(module)

    def test_signature_is_memref(self):
        module = _bufferized(gauss_seidel_5pt_2d(), (1, 8, 8), False)
        fn = module.body.operations[0]
        assert all(
            isinstance(t, MemRefType) for t in fn.function_type.inputs
        )
        assert all(
            isinstance(t, MemRefType) for t in fn.function_type.results
        )

    def test_3d_iterated(self):
        pattern = gauss_seidel_6pt_3d()
        shape = (1, 6, 6, 7)
        module = _bufferized(pattern, shape, True, iterations=2)
        reference = frontend.build_stencil_kernel(
            pattern, shape[1:], frontend.identity_body(6.0), iterations=2
        )
        x, b = _fields(shape, 5)
        (expected,) = run_function(reference, "kernel", x, b, x.copy())
        (actual,) = run_function(module, "kernel", x, b, x.copy())
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_caller_arrays_preserved(self):
        """Function arguments are never mutated (the tensor contract)."""
        module = _bufferized(gauss_seidel_5pt_2d(), (1, 8, 8), True)
        x, b = _fields((1, 8, 8), 7)
        x0, b0 = x.copy(), b.copy()
        y0 = x.copy()
        y0_orig = y0.copy()
        run_function(module, "kernel", x, b, y0)
        np.testing.assert_array_equal(x, x0)
        np.testing.assert_array_equal(b, b0)
        np.testing.assert_array_equal(y0, y0_orig)

    def test_loop_carried_buffer_is_in_place(self):
        """The iterated kernel must not allocate one buffer per element
        insert: at most a handful of allocs (one per sweep plus slices)."""
        module = _bufferized(
            gauss_seidel_5pt_2d(), (1, 8, 8), False, iterations=3
        )
        text = print_module(module)
        assert text.count("memref.alloc") <= 4

    def test_unsupported_op_raises(self):
        # An unlowered stencil op cannot be bufferized.
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        with pytest.raises(
            (BufferizationError, RuntimeError), match="bufferize"
        ):
            PassManager([BufferizePass()]).run(module)
