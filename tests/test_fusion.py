"""Tests for producer/consumer fusion after tiling."""

import numpy as np
import pytest

from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.fusion import FuseProducersPass
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_6pt_3d
from repro.core.tiling import TileStencilsPass
from repro.dialects import arith, cfd, func, linalg, scf, tensor
from repro.ir import ModuleOp, OpBuilder, PassManager, verify
from repro.ir.printer import print_module
from repro.ir.types import FunctionType, TensorType, f64


def _build_producer_kernel(shape, with_face_iterator=False):
    """B = structured-producer(X); Y = stencil(X, B, X)."""
    pattern = gauss_seidel_5pt_2d()
    module = ModuleOp.create()
    b = OpBuilder.at_end(module.body)
    t = TensorType(list(shape), f64)
    fn = func.FuncOp.build(b, "kernel", FunctionType([t, t], [t]))
    fb = OpBuilder.at_end(fn.body)
    x, b_init = fn.arguments
    if with_face_iterator:
        prod = cfd.FaceIteratorOp.build(fb, x, b_init, axis=0)
        pb = OpBuilder.at_end(prod.body)
        left, right = prod.body.arguments
        cfd.CFDYieldOp.build(pb, [arith.subf(pb, right, left)])
    else:
        # B = 0.1 * (x shifted by (0, -1, 0)) + b_init, a shifted generic.
        prod = linalg.GenericOp.build(
            fb, [x], b_init, offsets=[(0, -1, 0)]
        )
        pb = OpBuilder.at_end(prod.body)
        xa, binit_a = prod.body.arguments
        c = arith.const_f64(pb, 0.1)
        linalg.LinalgYieldOp.build(
            pb, [arith.addf(pb, arith.mulf(pb, c, xa), binit_a)]
        )
    st = cfd.StencilOp.build(fb, x, prod.result(), x, pattern)
    frontend.attach_body(st, frontend.identity_body(4.0))
    func.ReturnOp.build(fb, [st.result()])
    return module


def _build_consumer_kernel(shape):
    """Y = stencil(X, B, X); OUT = pointwise(Y + T) with margins=halo."""
    pattern = gauss_seidel_5pt_2d()
    module = ModuleOp.create()
    b = OpBuilder.at_end(module.body)
    t = TensorType(list(shape), f64)
    fn = func.FuncOp.build(b, "kernel", FunctionType([t, t, t], [t, t]))
    fb = OpBuilder.at_end(fn.body)
    x, b_in, t_in = fn.arguments
    st = cfd.StencilOp.build(fb, x, b_in, x, pattern)
    frontend.attach_body(st, frontend.identity_body(4.0))
    upd = linalg.GenericOp.build(
        fb, [st.result()], t_in, margins=[(0, 0), (1, 1), (1, 1)]
    )
    ub = OpBuilder.at_end(upd.body)
    dy, t_old = upd.body.arguments
    linalg.LinalgYieldOp.build(ub, [arith.addf(ub, dy, t_old)])
    func.ReturnOp.build(fb, [st.result(), upd.result()])
    return module


def _fields(shape, seed=0, n=2):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(n)]


class TestProducerFusion:
    @pytest.mark.parametrize("with_face", [False, True])
    def test_fused_matches_unfused(self, with_face):
        shape = (1, 10, 11)
        reference = _build_producer_kernel(shape, with_face)
        fused = _build_producer_kernel(shape, with_face)
        pm = PassManager(
            [TileStencilsPass((4, 4)), FuseProducersPass()]
        )
        pm.run(fused)
        verify(fused)
        x, b0 = _fields(shape, seed=3)
        (expected,) = run_function(reference, "kernel", x, b0)
        (actual,) = run_function(fused, "kernel", x, b0)
        np.testing.assert_allclose(actual, expected, rtol=1e-13)

    def test_producer_moved_inside_loop(self):
        module = _build_producer_kernel((1, 8, 8))
        PassManager([TileStencilsPass((4, 4)), FuseProducersPass()]).run(module)
        fn = module.body.operations[0]
        top_level = [op.name for op in fn.body.operations]
        assert "linalg.generic" not in top_level
        loops = [op for op in module.walk() if op.name == "cfd.tiled_loop"]
        assert len(loops) == 1
        inner = [op.name for op in loops[0].body.operations]
        assert "linalg.generic" in inner

    def test_fill_producer(self):
        pattern = gauss_seidel_5pt_2d()
        shape = (1, 9, 9)
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType(list(shape), f64)
        fn = func.FuncOp.build(b, "kernel", FunctionType([t], [t]))
        fb = OpBuilder.at_end(fn.body)
        x = fn.arguments[0]
        empty = tensor.EmptyOp.build(fb, t).result()
        c = arith.const_f64(fb, 0.25)
        filled = linalg.FillOp.build(fb, c, empty)
        st = cfd.StencilOp.build(fb, x, filled.result(), x, pattern)
        frontend.attach_body(st, frontend.identity_body(4.0))
        func.ReturnOp.build(fb, [st.result()])
        reference_out = run_function(module.clone(), "kernel", *_fields(shape, 5, 1))
        PassManager([TileStencilsPass((3, 3)), FuseProducersPass()]).run(module)
        verify(module)
        fused_out = run_function(module, "kernel", *_fields(shape, 5, 1))
        np.testing.assert_allclose(fused_out[0], reference_out[0], rtol=1e-13)

    def test_wide_producer_not_fused(self):
        """A producer whose halo exceeds the stencil halo must stay out."""
        pattern = gauss_seidel_5pt_2d()  # halo 1
        shape = (1, 12, 12)
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType(list(shape), f64)
        fn = func.FuncOp.build(b, "kernel", FunctionType([t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        x, b_init = fn.arguments
        prod = linalg.GenericOp.build(
            fb, [x], b_init, offsets=[(0, -3, 0)]  # halo 3 > stencil halo 1
        )
        pb = OpBuilder.at_end(prod.body)
        linalg.LinalgYieldOp.build(pb, [prod.body.arguments[0]])
        st = cfd.StencilOp.build(fb, x, prod.result(), x, pattern)
        frontend.attach_body(st, frontend.identity_body(4.0))
        func.ReturnOp.build(fb, [st.result()])
        reference = module.clone()
        PassManager([TileStencilsPass((4, 4)), FuseProducersPass()]).run(module)
        fn2 = module.body.operations[0]
        assert any(op.name == "linalg.generic" for op in fn2.body.operations)
        x_v, b_v = _fields(shape, 7)
        (expected,) = run_function(reference, "kernel", x_v, b_v)
        (actual,) = run_function(module, "kernel", x_v, b_v)
        np.testing.assert_allclose(actual, expected, rtol=1e-13)


class TestConsumerFusion:
    def test_fused_matches_unfused(self):
        shape = (1, 10, 10)
        reference = _build_consumer_kernel(shape)
        fused = _build_consumer_kernel(shape)
        PassManager([TileStencilsPass((4, 4)), FuseProducersPass()]).run(fused)
        verify(fused)
        x, b0, t0 = _fields(shape, seed=9, n=3)
        expected = run_function(reference, "kernel", x, b0, t0)
        actual = run_function(fused, "kernel", x, b0, t0)
        for e, a in zip(expected, actual):
            np.testing.assert_allclose(a, e, rtol=1e-13)

    def test_consumer_moved_inside(self):
        module = _build_consumer_kernel((1, 8, 8))
        PassManager([TileStencilsPass((4, 4)), FuseProducersPass()]).run(module)
        fn = module.body.operations[0]
        top_level = [op.name for op in fn.body.operations]
        assert "linalg.generic" not in top_level
        loop = next(op for op in module.walk() if op.name == "cfd.tiled_loop")
        assert loop.num_outs == 2

    def test_wrong_margins_not_fused(self):
        """Margins that do not match the stencil write region stay out."""
        shape = (1, 10, 10)
        pattern = gauss_seidel_5pt_2d()
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType(list(shape), f64)
        fn = func.FuncOp.build(b, "kernel", FunctionType([t, t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        x, b_in, t_in = fn.arguments
        st = cfd.StencilOp.build(fb, x, b_in, x, pattern)
        frontend.attach_body(st, frontend.identity_body(4.0))
        upd = linalg.GenericOp.build(fb, [st.result()], t_in)  # margins 0
        ub = OpBuilder.at_end(upd.body)
        dy, t_old = upd.body.arguments
        linalg.LinalgYieldOp.build(ub, [arith.addf(ub, dy, t_old)])
        func.ReturnOp.build(fb, [upd.result()])
        reference = module.clone()
        PassManager([TileStencilsPass((4, 4)), FuseProducersPass()]).run(module)
        fn2 = module.body.operations[0]
        assert any(op.name == "linalg.generic" for op in fn2.body.operations)
        args = _fields(shape, 13, 3)
        (expected,) = run_function(reference, "kernel", *args)
        (actual,) = run_function(module, "kernel", *args)
        np.testing.assert_allclose(actual, expected, rtol=1e-13)


class TestHeatLikePipeline:
    """RHS producer + stencil + pointwise consumer in a time loop,
    tiled at two levels with wavefront groups and fully fused — the
    structure of the paper's (d) use case (Fig. 9/10)."""

    def _build(self, n, steps):
        pattern = gauss_seidel_6pt_3d()
        shape = (1, n, n, n)
        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType(list(shape), f64)
        fn = func.FuncOp.build(b, "heat", FunctionType([t, t], [t]))
        fb = OpBuilder.at_end(fn.body)
        t0, dt0 = fn.arguments
        lb = arith.const_index(fb, 0)
        ub = arith.const_index(fb, steps)
        one = arith.const_index(fb, 1)
        time_loop = scf.ForOp.build(fb, lb, ub, one, [t0, dt0])
        tb = OpBuilder.at_end(time_loop.body)
        t_cur, dt_cur = time_loop.iter_args
        # RHS = laplacian(T)
        zero = arith.const_f64(tb, 0.0)
        rhs_init = linalg.FillOp.build(
            tb, zero, tensor.empty_like(tb, t_cur)
        ).result()
        offsets = [
            (0, 0, 0, 0),
            (0, -1, 0, 0), (0, 1, 0, 0),
            (0, 0, -1, 0), (0, 0, 1, 0),
            (0, 0, 0, -1), (0, 0, 0, 1),
        ]
        rhs = linalg.GenericOp.build(
            tb, [t_cur] * 7, rhs_init, offsets=offsets
        )
        rb = OpBuilder.at_end(rhs.body)
        args = rhs.body.arguments
        six = arith.const_f64(rb, 6.0)
        total = args[1]
        for a in args[2:7]:
            total = arith.addf(rb, total, a)
        lap = arith.subf(rb, total, arith.mulf(rb, six, args[0]))
        linalg.LinalgYieldOp.build(rb, [lap])
        # Gauss-Seidel on dT
        st = cfd.StencilOp.build(
            tb, dt_cur, rhs.result(), dt_cur, gauss_seidel_6pt_3d()
        )

        def gs_body(builder, sargs):
            lam = arith.const_f64(builder, 0.1)
            d = arith.const_f64(builder, 1.0 / 0.1)
            z = arith.const_f64(builder, 0.0)
            return d, list(sargs[:-1]) + [z]

        frontend.attach_body(st, gs_body)
        # T update (margins = stencil halo)
        upd = linalg.GenericOp.build(
            tb, [st.result()], t_cur,
            margins=[(0, 0), (1, 1), (1, 1), (1, 1)],
        )
        ub_ = OpBuilder.at_end(upd.body)
        dy, told = upd.body.arguments
        linalg.LinalgYieldOp.build(ub_, [arith.addf(ub_, dy, told)])
        scf.YieldOp.build(tb, [upd.result(), st.result()])
        func.ReturnOp.build(fb, [time_loop.result(0)])
        return module

    def test_full_pipeline_semantics(self):
        n, steps = 8, 2
        reference = self._build(n, steps)
        optimized = self._build(n, steps)
        pm = PassManager(
            [
                TileStencilsPass((4, 4, 4), with_groups=True, level=0),
                FuseProducersPass(),
                TileStencilsPass((2, 2, 4), level=1),
                FuseProducersPass(),
            ]
        )
        pm.run(optimized)
        verify(optimized)
        rng = np.random.default_rng(21)
        t0 = rng.standard_normal((1, n, n, n))
        dt0 = np.zeros((1, n, n, n))
        (expected,) = run_function(reference, "heat", t0, dt0)
        (actual,) = run_function(optimized, "heat", t0, dt0)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_pipeline_ir_shape(self):
        module = self._build(6, 1)
        pm = PassManager(
            [
                TileStencilsPass((3, 3, 3), with_groups=True, level=0),
                FuseProducersPass(),
                TileStencilsPass((2, 2, 3), level=1),
                FuseProducersPass(),
            ]
        )
        pm.run(module)
        text = print_module(module)
        assert text.count("cfd.tiled_loop") >= 2
        assert "cfd.get_parallel_blocks" in text
        loops = [op for op in module.walk() if op.name == "cfd.tiled_loop"]
        outer = loops[0]
        # Consumer fused: outer loop carries dT and T outputs.
        assert outer.num_outs == 2
