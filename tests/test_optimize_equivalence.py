"""Property test: the optimizer never changes numerics.

For random stencil patterns and pipeline configurations, the kernel
compiled at ``opt_level=2`` (fold + CSE + LICM + DCE) must be
*bit-identical* to ``opt_level=0`` (optimizer off): every rewrite the
midend performs — merging duplicate expressions, hoisting invariant
slices, folding `x * 1.0` — preserves the exact IEEE result, not just an
approximation of it.
"""

import dataclasses
import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import StencilPattern


def _lex_pool(rank, reach, negative):
    pool = []
    for o in itertools.product(range(-reach, reach + 1), repeat=rank):
        first = next((c for c in o if c != 0), 0)
        if (first < 0) == negative and first != 0:
            pool.append(o)
    return pool


@st.composite
def _random_program(draw):
    rank = 2
    l_offsets = draw(
        st.lists(
            st.sampled_from(_lex_pool(rank, 2, True)),
            min_size=0,
            max_size=3,
            unique=True,
        )
    )
    u_offsets = draw(
        st.lists(
            st.sampled_from(_lex_pool(rank, 2, False)),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    pattern = StencilPattern.from_offsets(
        rank, l_offsets=l_offsets, u_offsets=u_offsets
    )
    shape = (
        draw(st.integers(6, 14)),
        draw(st.integers(6, 18)),
    )
    options = CompileOptions(
        subdomain_sizes=draw(st.sampled_from([None, (4, 4), (5, 8)])),
        tile_sizes=draw(st.sampled_from([None, (2, 4), (3, 5)])),
        fuse=draw(st.booleans()),
        parallel=draw(st.booleans()),
        vectorize=draw(st.sampled_from([0, 2, 4, 8])),
        use_cache=False,
    )
    seed = draw(st.integers(0, 10_000))
    return pattern, shape, options, seed


def _compile(pattern, shape, options, d):
    module = frontend.build_stencil_kernel(
        pattern, shape, frontend.identity_body(d)
    )
    return StencilCompiler(options).compile(module)


class TestOptimizerEquivalence:
    @given(_random_program())
    @settings(max_examples=25, deadline=None)
    def test_opt2_bit_identical_to_opt0(self, program):
        pattern, shape, options, seed = program
        d = float(pattern.num_accesses)
        k0 = _compile(
            pattern, shape, dataclasses.replace(options, opt_level=0), d
        )
        k2 = _compile(
            pattern, shape, dataclasses.replace(options, opt_level=2), d
        )
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1,) + shape)
        b = rng.standard_normal((1,) + shape)
        (out0,) = k0(x, b, x.copy())
        (out2,) = k2(x, b, x.copy())
        # Bit-identical, not merely close: == on every element (the
        # random inputs contain no NaNs).
        assert np.array_equal(out0, out2)
