"""Unit tests for arith/math/func/scf/tensor/memref/vector/linalg dialects."""

import pytest

from repro.dialects import arith, func, linalg, math, memref, scf, tensor, vector
from repro.ir import (
    FloatAttr,
    IntegerAttr,
    ModuleOp,
    OpBuilder,
    IRVerificationError,
    verify,
)
from repro.ir.types import (
    FunctionType,
    MemRefType,
    TensorType,
    VectorType,
    f64,
    i1,
    index,
)


@pytest.fixture()
def module():
    return ModuleOp.create()


@pytest.fixture()
def builder(module):
    return OpBuilder.at_end(module.body)


class TestArith:
    def test_constants(self, module, builder):
        c = arith.const_f64(builder, 3.5)
        assert c.type == f64
        i = arith.const_index(builder, 7)
        assert i.type == index
        verify(module)

    def test_binary_float_ops(self, module, builder):
        a = arith.const_f64(builder, 1.0)
        b = arith.const_f64(builder, 2.0)
        for fn in (arith.addf, arith.subf, arith.mulf, arith.divf):
            assert fn(builder, a, b).type == f64
        verify(module)

    def test_index_arith(self, module, builder):
        a = arith.const_index(builder, 10)
        b = arith.const_index(builder, 3)
        assert arith.floordivi(builder, a, b).type == index
        assert arith.minsi(builder, a, b).type == index
        verify(module)

    def test_float_op_rejects_index(self, module, builder):
        a = arith.const_index(builder, 1)
        arith.AddFOp.build(builder, a, a)
        with pytest.raises(IRVerificationError, match="float"):
            verify(module)

    def test_mixed_types_rejected(self, module, builder):
        a = arith.const_f64(builder, 1.0)
        b = arith.const_index(builder, 1)
        op = builder.create("arith.addf", [a, b], [f64])
        with pytest.raises(IRVerificationError):
            verify(module)

    def test_vector_elementwise_allowed(self, module, builder):
        vt = VectorType([8], f64)
        v = builder.create("test.vec", result_types=[vt]).result()
        s = arith.addf(builder, v, v)
        assert s.type == vt
        verify(module)

    def test_cmp_and_select(self, module, builder):
        a = arith.const_f64(builder, 1.0)
        b = arith.const_f64(builder, 2.0)
        cond = arith.CmpFOp.build(builder, "lt", a, b).result()
        assert cond.type == i1
        sel = arith.SelectOp.build(builder, cond, a, b).result()
        assert sel.type == f64
        verify(module)

    def test_bad_predicate_rejected(self, builder):
        a = arith.const_f64(builder, 1.0)
        with pytest.raises(ValueError, match="predicate"):
            arith.CmpFOp.build(builder, "sharper", a, a)

    def test_constant_type_result_must_match(self, module, builder):
        op = builder.create(
            "arith.constant", [], [index], {"value": FloatAttr(1.0)}
        )
        with pytest.raises(IRVerificationError):
            verify(module)


class TestMath:
    def test_unary_ops(self, module, builder):
        x = arith.const_f64(builder, 4.0)
        assert math.sqrt(builder, x).type == f64
        assert math.absf(builder, x).type == f64
        verify(module)

    def test_fma(self, module, builder):
        x = arith.const_f64(builder, 2.0)
        assert math.fma(builder, x, x, x).type == f64
        verify(module)

    def test_fma_arity(self, module, builder):
        x = arith.const_f64(builder, 2.0)
        builder.create("math.fma", [x, x], [f64])
        with pytest.raises(IRVerificationError):
            verify(module)


class TestFunc:
    def test_func_and_return(self, module, builder):
        ft = FunctionType([f64, f64], [f64])
        fn = func.FuncOp.build(builder, "add", ft)
        body_builder = OpBuilder.at_end(fn.body)
        s = arith.addf(body_builder, fn.arguments[0], fn.arguments[1])
        func.ReturnOp.build(body_builder, [s])
        assert fn.sym_name == "add"
        assert module.lookup_symbol("add") is fn
        verify(module)

    def test_return_type_mismatch(self, module, builder):
        ft = FunctionType([f64], [f64])
        fn = func.FuncOp.build(builder, "bad", ft)
        func.ReturnOp.build(OpBuilder.at_end(fn.body), [])
        with pytest.raises(IRVerificationError, match="signature"):
            verify(module)

    def test_call(self, module, builder):
        ft = FunctionType([f64], [f64])
        fn = func.FuncOp.build(builder, "id", ft)
        func.ReturnOp.build(OpBuilder.at_end(fn.body), [fn.arguments[0]])
        main = func.FuncOp.build(builder, "main", FunctionType([f64], [f64]))
        mb = OpBuilder.at_end(main.body)
        call = func.CallOp.build(mb, "id", [main.arguments[0]], [f64])
        func.ReturnOp.build(mb, [call.result()])
        assert call.callee == "id"
        assert call.resolve(module) is fn
        verify(module)


class TestScf:
    def test_for_loop_with_iter_args(self, module, builder):
        lb = arith.const_index(builder, 0)
        ub = arith.const_index(builder, 10)
        step = arith.const_index(builder, 1)
        init = arith.const_f64(builder, 0.0)
        loop = scf.ForOp.build(builder, lb, ub, step, [init])
        bb = OpBuilder.at_end(loop.body)
        acc = loop.iter_args[0]
        one = arith.const_f64(bb, 1.0)
        scf.YieldOp.build(bb, [arith.addf(bb, acc, one)])
        assert loop.induction_var.type == index
        assert loop.result().type == f64
        verify(module)

    def test_for_missing_yield_rejected(self, module, builder):
        lb = arith.const_index(builder, 0)
        loop = scf.ForOp.build(builder, lb, lb, lb, [])
        with pytest.raises(IRVerificationError, match="yield"):
            verify(module)

    def test_build_loop_nest(self, module, builder):
        zero = arith.const_index(builder, 0)
        ten = arith.const_index(builder, 10)
        one = arith.const_index(builder, 1)
        init = arith.const_f64(builder, 0.0)
        outer, inner_builder, ivs, args = scf.build_loop_nest(
            builder, [zero, zero], [ten, ten], [one, one], [init]
        )
        c = arith.const_f64(inner_builder, 1.0)
        scf.YieldOp.build(inner_builder, [arith.addf(inner_builder, args[0], c)])
        assert len(ivs) == 2
        assert outer.result().type == f64
        verify(module)

    def test_if_op(self, module, builder):
        a = arith.const_f64(builder, 1.0)
        cond = arith.CmpFOp.build(builder, "gt", a, a).result()
        if_op = scf.IfOp.build(builder, cond, [f64])
        tb = OpBuilder.at_end(if_op.then_block)
        scf.YieldOp.build(tb, [arith.const_f64(tb, 1.0)])
        eb = OpBuilder.at_end(if_op.else_block)
        scf.YieldOp.build(eb, [arith.const_f64(eb, 2.0)])
        verify(module)

    def test_parallel_op(self, module, builder):
        zero = arith.const_index(builder, 0)
        n = arith.const_index(builder, 8)
        one = arith.const_index(builder, 1)
        par = scf.ParallelOp.build(builder, [zero, zero], [n, n], [one, one])
        assert par.rank == 2
        assert len(par.induction_vars) == 2
        verify(module)


class TestTensor:
    def test_empty_extract_insert(self, module, builder):
        t = TensorType([4, 4], f64)
        buf = tensor.EmptyOp.build(builder, t).result()
        i = arith.const_index(builder, 1)
        x = tensor.ExtractOp.build(builder, buf, [i, i]).result()
        assert x.type == f64
        updated = tensor.InsertOp.build(builder, x, buf, [i, i]).result()
        assert updated.type == t
        verify(module)

    def test_empty_dynamic_sizes(self, module, builder):
        t = TensorType([1, -1], f64)
        n = arith.const_index(builder, 16)
        buf = tensor.EmptyOp.build(builder, t, [n]).result()
        assert str(buf.type) == "tensor<1x?xf64>"
        verify(module)

    def test_empty_missing_dynamic_size_rejected(self, module, builder):
        t = TensorType([1, -1], f64)
        builder.create("tensor.empty", [], [t])
        with pytest.raises(IRVerificationError, match="dynamic"):
            verify(module)

    def test_dim(self, module, builder):
        t = TensorType([4, 8], f64)
        buf = tensor.EmptyOp.build(builder, t).result()
        d = tensor.DimOp.build(builder, buf, 1)
        assert d.dim == 1
        assert d.result().type == index
        verify(module)

    def test_slice_roundtrip_types(self, module, builder):
        t = TensorType([16, 16], f64)
        buf = tensor.EmptyOp.build(builder, t).result()
        off = arith.const_index(builder, 4)
        size = arith.const_index(builder, 8)
        tile = tensor.ExtractSliceOp.build(
            builder, buf, [off, off], [size, size]
        )
        assert tile.rank == 2
        assert [o for o in tile.offsets] == [off, off]
        back = tensor.InsertSliceOp.build(
            builder, tile.result(), buf, [off, off], [size, size]
        )
        assert back.result().type == t
        verify(module)

    def test_extract_wrong_arity(self, module, builder):
        t = TensorType([4, 4], f64)
        buf = tensor.EmptyOp.build(builder, t).result()
        i = arith.const_index(builder, 0)
        builder.create("tensor.extract", [buf, i], [f64])
        with pytest.raises(IRVerificationError, match="rank"):
            verify(module)

    def test_empty_like_dynamic(self, module, builder):
        t = TensorType([1, -1, -1], f64)
        n = arith.const_index(builder, 8)
        src = tensor.EmptyOp.build(builder, t, [n, n]).result()
        like = tensor.empty_like(builder, src)
        assert like.type == t
        verify(module)


class TestMemref:
    def test_alloc_load_store(self, module, builder):
        t = MemRefType([8], f64)
        buf = memref.AllocOp.build(builder, t).result()
        i = arith.const_index(builder, 3)
        v = memref.LoadOp.build(builder, buf, [i]).result()
        memref.StoreOp.build(builder, v, buf, [i])
        memref.DeallocOp.build(builder, buf)
        verify(module)

    def test_subview(self, module, builder):
        t = MemRefType([16, 16], f64)
        buf = memref.AllocOp.build(builder, t).result()
        o = arith.const_index(builder, 2)
        s = arith.const_index(builder, 4)
        view = memref.SubViewOp.build(builder, buf, [o, o], [s, s])
        assert view.rank == 2
        verify(module)

    def test_copy_requires_memrefs(self, module, builder):
        t = TensorType([4], f64)
        buf = tensor.EmptyOp.build(builder, t).result()
        builder.create("memref.copy", [buf, buf])
        with pytest.raises(IRVerificationError, match="memref"):
            verify(module)


class TestVector:
    def test_transfer_read_write_tensor(self, module, builder):
        t = TensorType([4, 32], f64)
        vt = VectorType([8], f64)
        buf = tensor.EmptyOp.build(builder, t).result()
        i = arith.const_index(builder, 0)
        v = vector.TransferReadOp.build(builder, buf, [i, i], vt)
        assert v.vector_length == 8
        w = vector.TransferWriteOp.build(builder, v.result(), buf, [i, i])
        assert w.result().type == t
        verify(module)

    def test_transfer_write_memref_no_result(self, module, builder):
        t = MemRefType([32], f64)
        vt = VectorType([8], f64)
        buf = memref.AllocOp.build(builder, t).result()
        i = arith.const_index(builder, 0)
        v = vector.TransferReadOp.build(builder, buf, [i], vt)
        w = vector.TransferWriteOp.build(builder, v.result(), buf, [i])
        assert w.num_results == 0
        verify(module)

    def test_broadcast_extract(self, module, builder):
        vt = VectorType([4], f64)
        s = arith.const_f64(builder, 5.0)
        v = vector.BroadcastOp.build(builder, s, vt).result()
        lane = vector.VectorExtractOp.build(builder, v, 2)
        assert lane.position == 2
        assert lane.result().type == f64
        verify(module)

    def test_extract_position_bounds(self, module, builder):
        vt = VectorType([4], f64)
        s = arith.const_f64(builder, 5.0)
        v = vector.BroadcastOp.build(builder, s, vt).result()
        builder.create(
            "vector.extract", [v], [f64], {"position": IntegerAttr(9)}
        )
        with pytest.raises(IRVerificationError, match="range"):
            verify(module)

    def test_vector_fma(self, module, builder):
        vt = VectorType([8], f64)
        s = arith.const_f64(builder, 1.0)
        v = vector.BroadcastOp.build(builder, s, vt).result()
        r = vector.VectorFMAOp.build(builder, v, v, v)
        assert r.result().type == vt
        verify(module)


class TestLinalg:
    def test_generic_pointwise(self, module, builder):
        t = TensorType([8, 8], f64)
        a = tensor.EmptyOp.build(builder, t).result()
        init = tensor.EmptyOp.build(builder, t).result()
        g = linalg.GenericOp.build(builder, [a], init)
        bb = OpBuilder.at_end(g.body)
        two = arith.const_f64(bb, 2.0)
        linalg.LinalgYieldOp.build(bb, [arith.mulf(bb, g.body.arguments[0], two)])
        assert g.offsets == [(0, 0)]
        assert g.iteration_bounds([8, 8]) == [(0, 8), (0, 8)]
        verify(module)

    def test_generic_shifted_bounds(self, module, builder):
        t = TensorType([8, 8], f64)
        a = tensor.EmptyOp.build(builder, t).result()
        init = tensor.EmptyOp.build(builder, t).result()
        g = linalg.GenericOp.build(
            builder, [a, a, a], init, offsets=[(-1, 0), (0, 0), (1, 0)]
        )
        bb = OpBuilder.at_end(g.body)
        args = g.body.arguments
        s = arith.addf(bb, args[0], args[2])
        linalg.LinalgYieldOp.build(bb, [arith.addf(bb, s, args[1])])
        assert g.iteration_bounds([8, 8]) == [(1, 7), (0, 8)]
        verify(module)

    def test_fill(self, module, builder):
        t = TensorType([4], f64)
        init = tensor.EmptyOp.build(builder, t).result()
        zero = arith.const_f64(builder, 0.0)
        filled = linalg.FillOp.build(builder, zero, init)
        assert filled.result().type == t
        verify(module)

    def test_generic_offset_count_mismatch(self, module, builder):
        t = TensorType([4], f64)
        a = tensor.EmptyOp.build(builder, t).result()
        init = tensor.EmptyOp.build(builder, t).result()
        g = linalg.GenericOp.build(builder, [a], init, offsets=[(0,)])
        g.attributes["num_ins"] = IntegerAttr(1)
        from repro.ir.attributes import ArrayAttr

        g.attributes["offsets"] = ArrayAttr([])
        bb = OpBuilder.at_end(g.body)
        linalg.LinalgYieldOp.build(bb, [g.body.arguments[0]])
        with pytest.raises(IRVerificationError, match="offset"):
            verify(module)
