"""Unit tests for attributes, including the stencil-pattern storage."""

import pytest

from repro.ir.attributes import (
    ArrayAttr,
    BoolAttr,
    DenseIntElementsAttr,
    FloatAttr,
    IntegerAttr,
    StringAttr,
    TypeAttr,
    index_array_attr,
    int_attr,
)
from repro.ir.types import FunctionType, f32, f64, i64, index


class TestScalarAttrs:
    def test_integer_attr(self):
        a = IntegerAttr(42)
        assert a.value == 42
        assert a.type == i64
        assert str(a) == "42 : i64"

    def test_index_typed_integer_attr(self):
        a = IntegerAttr(3, index)
        assert str(a) == "3 : index"

    def test_float_attr(self):
        a = FloatAttr(1.5)
        assert a.value == 1.5
        assert a.type == f64
        assert str(a) == "1.5 : f64"

    def test_float_attr_f32(self):
        assert FloatAttr(2.0, f32) != FloatAttr(2.0, f64)

    def test_bool_attr(self):
        assert str(BoolAttr(True)) == "true"
        assert str(BoolAttr(False)) == "false"
        assert BoolAttr(True) == BoolAttr(True)
        assert BoolAttr(True) != BoolAttr(False)

    def test_string_attr_escaping(self):
        a = StringAttr('he said "hi"')
        assert str(a) == '"he said \\"hi\\""'

    def test_type_attr(self):
        a = TypeAttr(FunctionType([f64], [f64]))
        assert str(a) == "(f64) -> f64"

    def test_equality_and_hash(self):
        assert IntegerAttr(1) == IntegerAttr(1)
        assert IntegerAttr(1) != IntegerAttr(2)
        assert IntegerAttr(1) != FloatAttr(1.0)
        assert hash(IntegerAttr(1)) == hash(IntegerAttr(1))


class TestArrayAttr:
    def test_iteration_and_indexing(self):
        a = ArrayAttr([int_attr(1), int_attr(2)])
        assert len(a) == 2
        assert a[0] == int_attr(1)
        assert [e.value for e in a] == [1, 2]

    def test_rejects_non_attributes(self):
        with pytest.raises(TypeError):
            ArrayAttr([1, 2])  # type: ignore[list-item]

    def test_index_array_attr(self):
        a = index_array_attr([4, 8])
        assert all(e.type == index for e in a)
        assert [e.value for e in a] == [4, 8]


class TestDenseIntElements:
    def test_stencil_pattern_5pt(self):
        # The 5-point Gauss-Seidel pattern from Fig. 4 (left).
        pattern = [[0, -1, 0], [-1, 0, 1], [0, 1, 0]]
        a = DenseIntElementsAttr(pattern)
        assert a.shape == (3, 3)
        assert a.to_nested_lists() == pattern
        assert a.flat() == (0, -1, 0, -1, 0, 1, 0, 1, 0)
        assert str(a) == "dense<[[0, -1, 0], [-1, 0, 1], [0, 1, 0]]>"

    def test_3d_pattern(self):
        pattern = [
            [[0, 0, 0], [0, -1, 0], [0, 0, 0]],
            [[0, -1, 0], [-1, 0, 1], [0, 1, 0]],
            [[0, 0, 0], [0, 1, 0], [0, 0, 0]],
        ]
        a = DenseIntElementsAttr(pattern)
        assert a.shape == (3, 3, 3)
        assert a.to_nested_lists() == pattern

    def test_scalar(self):
        a = DenseIntElementsAttr(7)
        assert a.shape == ()
        assert a.flat() == (7,)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            DenseIntElementsAttr([[1, 2], [3]])

    def test_structural_equality(self):
        a = DenseIntElementsAttr([[1, 0], [0, 1]])
        b = DenseIntElementsAttr([[1, 0], [0, 1]])
        c = DenseIntElementsAttr([[1, 0], [1, 1]])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_values_are_immutable_copies(self):
        source = [[1, 2], [3, 4]]
        a = DenseIntElementsAttr(source)
        source[0][0] = 99
        assert a.to_nested_lists() == [[1, 2], [3, 4]]
