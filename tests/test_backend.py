"""Tests for the NumPy backend: emitted code vs interpreter vs reference."""

import numpy as np
import pytest

from repro.baselines import naive
from repro.codegen.executor import compile_function
from repro.codegen.interpreter import run_function
from repro.codegen.python_backend import BackendError, emit_module
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler, ablation_options
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
)


def _fields(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _reference(pattern, x, b, d, iterations=1):
    out = x.copy()
    for _ in range(iterations):
        out = naive.stencil_sweep_python(
            out.copy(), b, out, pattern, naive.identity_scalar_body(d)
        )
    return out


def _compile_and_run(pattern, shape, options, seed=0, iterations=1, d=None):
    d = d if d is not None else float(pattern.num_accesses)
    module = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), iterations=iterations
    )
    kernel = StencilCompiler(options).compile(module)
    x, b = _fields(shape, seed)
    (result,) = kernel(x, b, x.copy())
    expected = _reference(pattern, x, b, d, iterations)
    return result, expected, kernel


class TestBackendCorrectness:
    @pytest.mark.parametrize(
        "options",
        [
            CompileOptions(vectorize=0),
            CompileOptions(vectorize=4),
            CompileOptions(tile_sizes=(4, 5), vectorize=4),
            CompileOptions(
                subdomain_sizes=(6, 6), parallel=True, vectorize=4
            ),
            CompileOptions(
                subdomain_sizes=(6, 6),
                tile_sizes=(3, 6),
                fuse=True,
                parallel=True,
                vectorize=4,
            ),
        ],
        ids=["scalar", "vector", "tiled+vector", "parallel+vector", "full"],
    )
    def test_5pt_all_configs(self, options):
        result, expected, _ = _compile_and_run(
            gauss_seidel_5pt_2d(), (1, 14, 18), options
        )
        np.testing.assert_allclose(result, expected, rtol=1e-11)

    @pytest.mark.parametrize(
        "pattern_fn,shape",
        [
            (gauss_seidel_9pt_2d, (1, 10, 14)),
            (gauss_seidel_9pt_2nd_order_2d, (1, 13, 12)),
            (gauss_seidel_6pt_3d, (1, 7, 8, 10)),
            (jacobi_5pt_2d, (1, 9, 13)),
        ],
    )
    def test_all_patterns_full_pipeline(self, pattern_fn, shape):
        pattern = pattern_fn()
        options = CompileOptions(
            subdomain_sizes=(4,) * pattern.rank,
            tile_sizes=(2,) * (pattern.rank - 1) + (4,),
            fuse=True,
            parallel=True,
            vectorize=4,
        )
        result, expected, _ = _compile_and_run(pattern, shape, options)
        np.testing.assert_allclose(result, expected, rtol=1e-11)

    def test_iterated_kernel(self):
        result, expected, _ = _compile_and_run(
            gauss_seidel_5pt_2d(),
            (1, 10, 12),
            CompileOptions(vectorize=4),
            iterations=4,
        )
        np.testing.assert_allclose(result, expected, rtol=1e-10)

    def test_backward_sweep(self):
        pattern = gauss_seidel_5pt_2d().inverted()
        module = frontend.build_stencil_kernel(
            pattern, (10, 12), frontend.identity_body(4.0)
        )
        kernel = StencilCompiler(CompileOptions(vectorize=4)).compile(module)
        x, b = _fields((1, 10, 12), 5)
        (result,) = kernel(x, b, x.copy())
        expected = naive.stencil_sweep_python(
            x, b, x.copy(), pattern, naive.identity_scalar_body(4.0)
        )
        np.testing.assert_allclose(result, expected, rtol=1e-11)

    def test_symmetric_lusgs_structure(self):
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_symmetric_sweep_kernel(
            pattern, (9, 11), frontend.identity_body(4.0)
        )
        kernel = StencilCompiler(CompileOptions(vectorize=4)).compile(
            module, entry="symmetric_kernel"
        )
        x, b = _fields((1, 9, 11), 6)
        (result,) = kernel(x, b, x.copy())
        ref = naive.stencil_sweep_python(
            x, b, x.copy(), pattern, naive.identity_scalar_body(4.0)
        )
        ref = naive.stencil_sweep_python(
            ref, b, ref.copy(), pattern.inverted(),
            naive.identity_scalar_body(4.0),
        )
        np.testing.assert_allclose(result, ref, rtol=1e-11)

    def test_caller_arrays_not_mutated(self):
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (8, 8), frontend.identity_body(4.0)
        )
        kernel = StencilCompiler(CompileOptions(vectorize=4)).compile(module)
        x, b = _fields((1, 8, 8), 8)
        x0, b0 = x.copy(), b.copy()
        y0 = x.copy()
        y0_orig = y0.copy()
        kernel(x, b, y0)
        np.testing.assert_array_equal(x, x0)
        np.testing.assert_array_equal(b, b0)
        np.testing.assert_array_equal(y0, y0_orig)

    def test_matches_interpreter_exactly(self):
        """Backend and interpreter execute the same IR: results must agree
        to the last bit."""
        pattern = gauss_seidel_5pt_2d()
        module = frontend.build_stencil_kernel(
            pattern, (9, 13), frontend.identity_body(4.0)
        )
        StencilCompiler(CompileOptions(vectorize=4)).lower(module)
        kernel = compile_function(module)
        x, b = _fields((1, 9, 13), 11)
        (compiled,) = kernel(x, b, x.copy())
        (interpreted,) = run_function(module, "kernel", x, b, x.copy())
        np.testing.assert_array_equal(compiled, interpreted)


class TestHeatPipelineCompiled:
    def test_full_heat_pipeline(self):
        import tests.test_fusion as tf

        n, steps = 8, 2
        builder = tf.TestHeatLikePipeline()
        reference = builder._build(n, steps)
        optimized = builder._build(n, steps)
        options = CompileOptions(
            subdomain_sizes=(4, 4, 4),
            tile_sizes=(2, 2, 4),
            fuse=True,
            parallel=True,
            vectorize=4,
        )
        kernel = StencilCompiler(options).compile(optimized, entry="heat")
        rng = np.random.default_rng(31)
        t0 = rng.standard_normal((1, n, n, n))
        dt0 = np.zeros((1, n, n, n))
        (expected,) = run_function(reference, "heat", t0, dt0)
        (actual,) = kernel(t0, dt0)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    @pytest.mark.parametrize("tr", ["Tr1", "Tr2", "Tr3", "Tr4"])
    def test_ablation_configs(self, tr):
        import tests.test_fusion as tf

        n = 8
        builder = tf.TestHeatLikePipeline()
        reference = builder._build(n, 1)
        optimized = builder._build(n, 1)
        options = ablation_options(tr, (4, 4, 4), (2, 2, 4), vf=4)
        kernel = StencilCompiler(options).compile(optimized, entry="heat")
        rng = np.random.default_rng(37)
        t0 = rng.standard_normal((1, n, n, n))
        dt0 = np.zeros((1, n, n, n))
        (expected,) = run_function(reference, "heat", t0, dt0)
        (actual,) = kernel(t0, dt0)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)


class TestEmission:
    def test_unlowered_stencil_rejected(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
        )
        with pytest.raises(BackendError, match="cfd.stencilOp"):
            emit_module(module)

    def test_source_is_inspectable(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 16), frontend.identity_body(4.0)
        )
        kernel = StencilCompiler(CompileOptions(vectorize=8)).compile(module)
        assert "def kernel(" in kernel.source
        # The Fig. 2 structure: vectorized reads become NumPy slices.
        assert ":" in kernel.source
        assert "import numpy" in kernel.source

    def test_scalar_config_has_no_slices_in_stencil(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (8, 16), frontend.identity_body(4.0)
        )
        compiler = StencilCompiler(CompileOptions(vectorize=0))
        compiler.lower(module)
        source = emit_module(module)
        # No vector reads in the scalar configuration.
        assert "_np.full" not in source

    def test_options_describe(self):
        o = CompileOptions(
            subdomain_sizes=(8, 16), tile_sizes=(4, 8), fuse=True,
            parallel=True, vectorize=8,
        )
        s = o.describe()
        assert "subdomains=8x16+groups" in s
        assert "tiles=4x8" in s
        assert "fuse" in s
        assert "vf=8" in s
