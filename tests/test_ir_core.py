"""Unit tests for operations, blocks, regions, builder, use-def chains."""

import pytest

from repro.ir.attributes import FloatAttr, StringAttr
from repro.ir.block import Block, Region, single_block_region
from repro.ir.builder import InsertionPoint, OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation, OpRegistry, create_operation
from repro.ir.types import f64, index
from repro.ir.values import BlockArgument, OpResult


def _make_add(builder, lhs, rhs):
    return builder.create("arith.addf", [lhs, rhs], [f64])


class TestOperationBasics:
    def test_results_are_typed_and_indexed(self):
        op = create_operation("test.op", result_types=[f64, index])
        assert op.num_results == 2
        assert isinstance(op.result(0), OpResult)
        assert op.result(0).type == f64
        assert op.result(1).type == index
        assert op.result(1).index == 1

    def test_operand_use_tracking(self):
        a = create_operation("test.def", result_types=[f64])
        b = create_operation("test.use", operands=[a.result(), a.result()])
        assert a.result().num_uses == 2
        assert a.result().users() == [b]

    def test_set_operand_updates_uses(self):
        a = create_operation("test.def", result_types=[f64])
        c = create_operation("test.def2", result_types=[f64])
        b = create_operation("test.use", operands=[a.result()])
        b.set_operand(0, c.result())
        assert not a.result().has_uses
        assert c.result().num_uses == 1

    def test_replace_all_uses_with(self):
        a = create_operation("test.def", result_types=[f64])
        c = create_operation("test.def2", result_types=[f64])
        u1 = create_operation("test.u1", operands=[a.result()])
        u2 = create_operation("test.u2", operands=[a.result(), a.result()])
        a.result().replace_all_uses_with(c.result())
        assert not a.result().has_uses
        assert c.result().num_uses == 3
        assert u1.operand(0) is c.result()
        assert u2.operand(1) is c.result()

    def test_erase_requires_no_uses(self):
        a = create_operation("test.def", result_types=[f64])
        create_operation("test.use", operands=[a.result()])
        block = Block()
        # a is not in a block; insert it so erase has something to remove.
        block.append(a)
        with pytest.raises(ValueError):
            a.erase()

    def test_erase_drops_operand_uses(self):
        block = Block()
        a = block.append(create_operation("test.def", result_types=[f64]))
        b = block.append(create_operation("test.use", operands=[a.result()]))
        b.erase()
        assert not a.result().has_uses
        assert len(block) == 1

    def test_non_value_operand_rejected(self):
        with pytest.raises(TypeError):
            create_operation("test.op", operands=[3.14])  # type: ignore[list-item]


class TestBlocksAndRegions:
    def test_block_arguments(self):
        block = Block(arg_types=[f64, index])
        assert len(block.arguments) == 2
        assert isinstance(block.arguments[0], BlockArgument)
        assert block.arguments[1].type == index
        extra = block.add_argument(f64)
        assert extra.index == 2

    def test_erase_unused_argument_renumbers(self):
        block = Block(arg_types=[f64, f64, f64])
        block.erase_argument(1)
        assert [a.index for a in block.arguments] == [0, 1]

    def test_erase_used_argument_rejected(self):
        block = Block(arg_types=[f64])
        create_operation("test.use", operands=[block.arguments[0]])
        with pytest.raises(ValueError):
            block.erase_argument(0)

    def test_insert_before_after(self):
        block = Block()
        a = block.append(create_operation("test.a"))
        c = block.append(create_operation("test.c"))
        b = create_operation("test.b")
        block.insert_before(c, b)
        assert [op.name for op in block] == ["test.a", "test.b", "test.c"]
        d = create_operation("test.d")
        block.insert_after(a, d)
        assert [op.name for op in block] == [
            "test.a",
            "test.d",
            "test.b",
            "test.c",
        ]

    def test_op_cannot_be_in_two_blocks(self):
        b1, b2 = Block(), Block()
        op = b1.append(create_operation("test.a"))
        with pytest.raises(ValueError):
            b2.append(op)

    def test_region_structure(self):
        region = single_block_region(arg_types=[f64])
        op = create_operation("test.with_region", regions=[region])
        assert op.region(0).entry_block.arguments[0].type == f64
        assert region.parent is op
        assert region.entry_block.parent is region

    def test_parent_op_chain(self):
        module = ModuleOp.create()
        inner = module.body.append(
            create_operation("test.inner", regions=[single_block_region()])
        )
        leaf = inner.region(0).entry_block.append(create_operation("test.leaf"))
        assert leaf.parent_op() is inner
        assert inner.parent_op() is module
        assert module.is_ancestor_of(leaf)
        assert not leaf.is_ancestor_of(module)

    def test_walk_is_preorder(self):
        module = ModuleOp.create()
        a = module.body.append(
            create_operation("test.a", regions=[single_block_region()])
        )
        a.region(0).entry_block.append(create_operation("test.nested"))
        module.body.append(create_operation("test.b"))
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "test.a", "test.nested", "test.b"]


class TestBuilder:
    def test_builds_in_order(self):
        block = Block(arg_types=[f64, f64])
        builder = OpBuilder.at_end(block)
        x, y = block.arguments
        s = _make_add(builder, x, y)
        t = _make_add(builder, s.result(), y)
        assert [op.name for op in block] == ["arith.addf", "arith.addf"]
        assert t.operand(0) is s.result()

    def test_insertion_before_anchor(self):
        block = Block()
        last = block.append(create_operation("test.last"))
        builder = OpBuilder.before(last)
        builder.create("test.first")
        builder.create("test.second")
        assert [op.name for op in block] == [
            "test.first",
            "test.second",
            "test.last",
        ]

    def test_at_context_manager_restores(self):
        b1, b2 = Block(), Block()
        builder = OpBuilder.at_end(b1)
        with builder.at(InsertionPoint.at_end(b2)):
            builder.create("test.inner")
        builder.create("test.outer")
        assert [op.name for op in b1] == ["test.outer"]
        assert [op.name for op in b2] == ["test.inner"]

    def test_builder_without_ip_raises(self):
        with pytest.raises(ValueError):
            OpBuilder().create("test.x")


class TestClone:
    def test_clone_remaps_nested_values(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        outer = builder.create(
            "test.outer",
            result_types=[f64],
            regions=[single_block_region(arg_types=[f64])],
        )
        inner_block = outer.region(0).entry_block
        inner_builder = OpBuilder.at_end(inner_block)
        add = _make_add(
            inner_builder, inner_block.arguments[0], inner_block.arguments[0]
        )
        clone = outer.clone()
        cloned_add = clone.region(0).entry_block.operations[0]
        assert cloned_add is not add
        assert cloned_add.operand(0) is clone.region(0).entry_block.arguments[0]
        # The original is untouched.
        assert add.operand(0) is inner_block.arguments[0]

    def test_clone_remaps_free_operands_through_map(self):
        ext = create_operation("test.def", result_types=[f64])
        repl = create_operation("test.def2", result_types=[f64])
        user = create_operation("test.use", operands=[ext.result()])
        clone = user.clone({ext.result(): repl.result()})
        assert clone.operand(0) is repl.result()
        assert user.operand(0) is ext.result()

    def test_clone_preserves_attributes(self):
        op = create_operation(
            "test.op", attributes={"name": StringAttr("k"), "v": FloatAttr(2.0)}
        )
        clone = op.clone()
        assert clone.attributes == op.attributes
        assert clone.attributes is not op.attributes


class TestModule:
    def test_lookup_symbol(self):
        module = ModuleOp.create()
        f = module.body.append(
            create_operation(
                "func.func", attributes={"sym_name": StringAttr("main")}
            )
        )
        assert module.lookup_symbol("main") is f
        assert module.lookup_symbol("missing") is None

    def test_registry_returns_module_class(self):
        assert OpRegistry.lookup("builtin.module") is ModuleOp
        op = create_operation("builtin.module", regions=[single_block_region()])
        assert isinstance(op, ModuleOp)
