"""Concurrent writers on the shared disk tiers (PR 10).

The kernel cache, the certificate memo and the checkpoint manager all
write atomically (temp file + ``os.replace``) into directories that a
fleet of service workers — threads in one process, or separate
processes — may share. These tests hammer each tier from both kinds of
writer and assert the crash-safety invariants:

* readers never observe a torn entry (every read is a valid entry or a
  clean miss),
* nothing valid is ever quarantined, and a corrupt entry is moved
  aside at most once (no double-quarantine),
* the last write for a key wins and remains loadable afterwards.
"""

import json
import multiprocessing
import threading

import numpy as np

from repro.codegen.cache import KernelCache
from repro.codegen.certificates import CertificateMemo
from repro.codegen.executor import compile_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.runtime.resilience.checkpoint import CheckpointManager

N_THREADS = 6
N_PROCS = 4
ROUNDS = 8
FINGERPRINTS = [c * 64 for c in "abcd"]


def _module():
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
    )


def _kernel():
    module = _module()
    StencilCompiler(CompileOptions(vectorize=4)).lower(module)
    return module, compile_function(module)


def _run_threads(worker, n=N_THREADS):
    errors = []

    def guarded(idx):
        try:
            worker(idx)
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=guarded, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


def _run_processes(target, args_per_proc):
    ctx = multiprocessing.get_context("fork")
    procs = [ctx.Process(target=target, args=args) for args in args_per_proc]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    codes = [p.exitcode for p in procs]
    assert all(c == 0 for c in codes), f"worker exit codes: {codes}"


# ---- kernel cache ---------------------------------------------------------


def _cache_process_worker(disk_dir, idx):
    module, kernel = _kernel()
    cache = KernelCache(persist=True, disk_dir=disk_dir)
    for round_ in range(ROUNDS):
        fp = FINGERPRINTS[(idx + round_) % len(FINGERPRINTS)]
        cache.put(fp, kernel)
        fresh = KernelCache(persist=True, disk_dir=disk_dir)
        got = fresh.get(FINGERPRINTS[(idx + round_ + 1) % len(FINGERPRINTS)])
        # A concurrent reader sees a valid entry or a clean miss —
        # never a quarantine (atomic writes leave no torn state).
        assert fresh.stats.quarantined == 0, fresh.quarantine_log
        if got is not None:
            assert callable(got)
    assert cache.stats.disk_errors == 0


class TestKernelCacheConcurrency:
    def test_threaded_writers_shared_instance(self, tmp_path):
        module, kernel = _kernel()
        cache = KernelCache(persist=True, disk_dir=tmp_path)

        def worker(idx):
            for round_ in range(ROUNDS):
                fp = FINGERPRINTS[(idx + round_) % len(FINGERPRINTS)]
                cache.put(fp, kernel)
                assert cache.get(fp) is not None

        _run_threads(worker)
        assert cache.stats.quarantined == 0
        assert cache.stats.disk_errors == 0
        # Every fingerprint is durably readable by a new process.
        reborn = KernelCache(persist=True, disk_dir=tmp_path)
        for fp in FINGERPRINTS:
            assert reborn.get(fp) is not None
        assert reborn.stats.quarantined == 0

    def test_threaded_writers_separate_instances(self, tmp_path):
        """Separate cache instances over one directory — the service's
        N-workers-one-disk shape."""
        module, kernel = _kernel()

        def worker(idx):
            cache = KernelCache(persist=True, disk_dir=tmp_path)
            for round_ in range(ROUNDS):
                fp = FINGERPRINTS[(idx + round_) % len(FINGERPRINTS)]
                cache.put(fp, kernel)
                fresh = KernelCache(persist=True, disk_dir=tmp_path)
                fresh.get(FINGERPRINTS[idx % len(FINGERPRINTS)])
                assert fresh.stats.quarantined == 0, fresh.quarantine_log

        _run_threads(worker)
        assert not (tmp_path / "quarantine").exists()

    def test_process_writers(self, tmp_path):
        _run_processes(
            _cache_process_worker,
            [(tmp_path, i) for i in range(N_PROCS)],
        )
        reborn = KernelCache(persist=True, disk_dir=tmp_path)
        for fp in FINGERPRINTS:
            assert reborn.get(fp) is not None
        assert reborn.stats.quarantined == 0
        assert not (tmp_path / "quarantine").exists()

    def test_corrupt_entry_quarantined_at_most_once(self, tmp_path):
        module, kernel = _kernel()
        seed = KernelCache(persist=True, disk_dir=tmp_path)
        for fp in FINGERPRINTS:
            seed.put(fp, kernel)
        victim = FINGERPRINTS[0]
        src = tmp_path / f"{victim}.py"
        src.write_text(src.read_text()[:40])  # torn entry

        def worker(idx):
            cache = KernelCache(persist=True, disk_dir=tmp_path)
            for _ in range(ROUNDS):
                assert cache.get(victim) is None

        _run_threads(worker)
        # The entry was moved aside exactly once; the main dir is clean
        # and every healthy entry survived the stampede.
        qdir = tmp_path / "quarantine"
        assert not src.exists()
        assert len(list(qdir.glob(f"{victim}*"))) <= 2  # .py + .json
        reborn = KernelCache(persist=True, disk_dir=tmp_path)
        for fp in FINGERPRINTS[1:]:
            assert reborn.get(fp) is not None
        assert reborn.stats.quarantined == 0


# ---- certificate memo -----------------------------------------------------


def _memo_process_worker(disk_dir, idx):
    memo = CertificateMemo(disk_dir=disk_dir)
    levels = ["after-pipeline", "after-every-pass"]
    for round_ in range(ROUNDS):
        fp = FINGERPRINTS[(idx + round_) % len(FINGERPRINTS)]
        memo.record(
            fp,
            check_level=levels[round_ % 2],
            validated=bool(round_ % 2),
        )
        fresh = CertificateMemo(disk_dir=disk_dir)
        cert = fresh.get(fp)
        assert cert is not None
        assert fresh.stats.quarantined == 0, fresh.quarantine_log
    assert memo.stats.disk_errors == 0


class TestCertificateMemoConcurrency:
    def test_threaded_widening_converges(self, tmp_path):
        memo = CertificateMemo(disk_dir=tmp_path)

        def worker(idx):
            for round_ in range(ROUNDS):
                fp = FINGERPRINTS[(idx + round_) % len(FINGERPRINTS)]
                if idx % 2:
                    memo.record(fp, check_level="after-pipeline")
                else:
                    memo.record(fp, validated=True)
                assert memo.get(fp) is not None

        _run_threads(worker)
        # Widening from racing writers converges to the union.
        reborn = CertificateMemo(disk_dir=tmp_path)
        for fp in FINGERPRINTS:
            cert = reborn.get(fp)
            assert cert.covers_gate("after-pipeline")
            assert cert.validated
        assert reborn.stats.quarantined == 0

    def test_threaded_separate_memos_never_tear(self, tmp_path):
        def worker(idx):
            memo = CertificateMemo(disk_dir=tmp_path)
            for round_ in range(ROUNDS):
                fp = FINGERPRINTS[(idx + round_) % len(FINGERPRINTS)]
                memo.record(fp, validated=True)
                fresh = CertificateMemo(disk_dir=tmp_path)
                cert = fresh.get(fp)
                assert cert is not None and cert.validated
                assert fresh.stats.quarantined == 0, fresh.quarantine_log

        _run_threads(worker)
        # Every disk entry is internally consistent (checksum matches).
        for path in tmp_path.glob("*.cert.json"):
            wrapper = json.loads(path.read_text())
            payload = json.dumps(wrapper["cert"], sort_keys=True)
            import hashlib

            digest = hashlib.sha256(payload.encode()).hexdigest()
            assert wrapper["sha256"] == digest

    def test_process_writers(self, tmp_path):
        _run_processes(
            _memo_process_worker,
            [(tmp_path, i) for i in range(N_PROCS)],
        )
        reborn = CertificateMemo(disk_dir=tmp_path)
        for fp in FINGERPRINTS:
            assert reborn.get(fp) is not None
        assert reborn.stats.quarantined == 0
        assert not (tmp_path / "quarantine").exists()


# ---- checkpoint manager ---------------------------------------------------


def _checkpoint_process_worker(directory, idx):
    mgr = CheckpointManager(every=1, directory=directory, keep=50)
    for step in range(1, ROUNDS + 1):
        arrays = {"state": np.full((16, 16), float(step), dtype=np.float64)}
        mgr.save(step, arrays)


class TestCheckpointConcurrency:
    def test_threaded_writers_latest_always_loadable(self, tmp_path):
        def worker(idx):
            mgr = CheckpointManager(every=1, directory=tmp_path, keep=50)
            for step in range(1, ROUNDS + 1):
                mgr.save(
                    step,
                    {"state": np.full((16, 16), float(step))},
                )

        _run_threads(worker)
        fresh = CheckpointManager(every=1, directory=tmp_path, keep=50)
        cp = fresh.load_latest()
        assert cp is not None
        # The loaded checkpoint is self-consistent: its arrays carry
        # exactly the value its step number promises (no torn mix).
        assert np.all(cp.arrays["state"] == float(cp.step))

    def test_process_writers_resume_is_consistent(self, tmp_path):
        _run_processes(
            _checkpoint_process_worker,
            [(tmp_path, i) for i in range(N_PROCS)],
        )
        fresh = CheckpointManager(every=1, directory=tmp_path, keep=50)
        cp = fresh.load_latest()
        assert cp is not None
        assert cp.step == ROUNDS
        assert np.all(cp.arrays["state"] == float(cp.step))


# ---- the service over a shared disk cache ---------------------------------


class TestServiceSharedCache:
    def test_two_services_one_disk_cache(self, tmp_path):
        """Two service instances (think: two processes) sharing a disk
        cache dir: the second gets warm hits off the first's work."""
        import asyncio

        from repro.service import CompileService, ServiceConfig

        async def scenario():
            first = CompileService(
                ServiceConfig(),
                cache=KernelCache(persist=True, disk_dir=tmp_path),
            )
            r1 = await first.compile(_module())
            await first.drain()
            second = CompileService(
                ServiceConfig(),
                cache=KernelCache(persist=True, disk_dir=tmp_path),
            )
            r2 = await second.compile(_module())
            await second.drain()
            return first, second, r1, r2

        first, second, r1, r2 = asyncio.run(scenario())
        assert r1.ok and r2.ok
        assert r1.fingerprint == r2.fingerprint
        assert second.stats.compiles_started == 0
        assert second.stats.cache_hits == 1
