"""The in-bounds prover and its dynamic oracle (the checked interpreter).

Two acceptance properties from the issue:

* canonical pipelines carry a full set of in-bounds proofs — zero
  IP011–IP015 diagnostics and a bounded proven hull for every access;
* the checked interpreter is the ground truth: every access it observes
  lies inside the statically proven range, and every out-of-bounds
  mutant it traps dynamically is also flagged statically.
"""

import numpy as np
import pytest

from repro.analysis.absint import run_memory_safety
from repro.analysis.absint.interval import Interval, box_contains, box_is_bounded
from repro.codegen.interpreter import Interpreter, OutOfBoundsError
from repro.core import frontend
from repro.core.lowering import LowerStencilsPass
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_9pt_2d
from repro.dialects import arith
from repro.ir import OpBuilder

SHAPE = (1, 24, 24)


def _tiled_module(make=gauss_seidel_5pt_2d, **overrides):
    module = frontend.build_stencil_kernel(
        make(), SHAPE[1:], frontend.identity_body(float(make().num_accesses))
    )
    options = CompileOptions(
        subdomain_sizes=(12, 12), parallel=True, vectorize=0, use_cache=False,
        **overrides,
    )
    StencilCompiler(options).lower(module)
    return module


def _fields(seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(SHAPE),
        rng.standard_normal(SHAPE),
        rng.standard_normal(SHAPE),
    )


def _observed_box(ranges):
    return tuple(Interval(lo, hi) for lo, hi in ranges)


class TestStaticProofs:
    @pytest.mark.parametrize(
        "make", [gauss_seidel_5pt_2d, gauss_seidel_9pt_2d], ids=["5pt", "9pt"]
    )
    def test_tiled_pipeline_fully_proven(self, make):
        report = run_memory_safety(_tiled_module(make))
        assert report.diagnostics == []
        assert report.proven, "no accesses were proven"
        assert all(box_is_bounded(box) for box in report.proven.values())

    def test_scalar_lowering_fully_proven(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), SHAPE[1:], frontend.identity_body(4.0)
        )
        LowerStencilsPass().run(module)
        report = run_memory_safety(module)
        assert report.diagnostics == []
        assert report.proven

    def test_enumeration_limit_degrades_to_notes(self):
        # With tile enumeration forced off, window extents become
        # symbolic: proofs must degrade to IP010 notes plus the IP017
        # precision-cliff attribution, never errors and never silent
        # passes. (An explicit limit forces the enumerated engine.)
        report = run_memory_safety(_tiled_module(), enumeration_limit=1)
        assert report.diagnostics, "unprovable accesses passed silently"
        assert {d.code for d in report.diagnostics} == {"IP010", "IP017"}
        assert all(d.severity == "note" for d in report.diagnostics)
        assert report.engine_mode == "enumerated"
        (cliff,) = [d for d in report.diagnostics if d.code == "IP017"]
        assert "exceeds the enumeration limit" in cliff.message
        assert "hull bounds only" in cliff.message


class TestDynamicOracle:
    """`Interpreter(checked=True)` records the exact per-op access hulls;
    the static prover must cover every one of them."""

    @pytest.mark.parametrize(
        "make", [gauss_seidel_5pt_2d, gauss_seidel_9pt_2d], ids=["5pt", "9pt"]
    )
    def test_observed_inside_proven(self, make):
        module = _tiled_module(make)
        report = run_memory_safety(module)
        assert report.diagnostics == []

        interp = Interpreter(module, checked=True)
        interp.run("kernel", *_fields(1))
        assert interp.access_ranges, "checked run observed no accesses"

        shared = set(report.proven) & set(interp.access_ranges)
        assert shared == set(interp.access_ranges), (
            "dynamically exercised accesses missing a static proof"
        )
        for key in shared:
            observed = _observed_box(interp.access_ranges[key])
            assert box_contains(report.proven[key], observed)

    def test_oob_mutant_trapped_and_flagged(self):
        # The off-by-one-halo mutant (see test_analysis_mutants): the
        # window loses its -1 halo row, so the sweep reads local index -1.
        module = _tiled_module()
        for op in module.walk():
            if op.name != "arith.subi":
                continue
            rhs = op.operand(1)
            if (
                rhs.op is not None
                and rhs.op.name == "arith.constant"
                and rhs.op.attributes["value"].value == 1
                and any(
                    u.name == "arith.maxsi" for u in op.result().users()
                )
            ):
                builder = OpBuilder.before(op)
                op.set_operand(1, arith.const_index(builder, 0))
                break

        report = run_memory_safety(module)
        assert "IP011" in {d.code for d in report.diagnostics}

        with pytest.raises(OutOfBoundsError):
            Interpreter(module, checked=True).run("kernel", *_fields(2))

    def test_unchecked_interpreter_does_not_trap(self):
        # Without checked=True the same run silently wraps around — the
        # exact failure mode the oracle exists to expose.
        module = _tiled_module()
        interp = Interpreter(module)
        interp.run("kernel", *_fields(3))
        assert interp.access_ranges == {}
