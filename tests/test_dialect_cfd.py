"""Unit tests for the cfd dialect ops and the StencilPattern model."""

import pytest

from repro.core.stencil import (
    StencilPattern,
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    jacobi_5pt_2d,
)
from repro.dialects import arith, cfd, tensor
from repro.ir import IRVerificationError, ModuleOp, OpBuilder, verify
from repro.ir.parser import parse_module
from repro.ir.printer import print_module
from repro.ir.types import TensorType, f64


@pytest.fixture()
def module():
    return ModuleOp.create()


@pytest.fixture()
def builder(module):
    return OpBuilder.at_end(module.body)


def _build_gs5(builder, shape=(1, 8, 8)):
    """A 5-point Gauss-Seidel stencilOp with identity contributions."""
    t = TensorType(list(shape), f64)
    x = tensor.EmptyOp.build(builder, t).result()
    b = tensor.EmptyOp.build(builder, t).result()
    y = tensor.EmptyOp.build(builder, t).result()
    pattern = gauss_seidel_5pt_2d()
    op = cfd.StencilOp.build(builder, x, b, y, pattern)
    bb = OpBuilder.at_end(op.body)
    d = arith.const_f64(bb, 4.0)
    zero = arith.const_f64(bb, 0.0)
    args = list(op.body.arguments)
    # contributions: neighbors pass through, center contributes nothing
    cfd.CFDYieldOp.build(bb, [d] + args[:-1] + [zero])
    return op


class TestStencilOp:
    def test_build_shape(self, module, builder):
        op = _build_gs5(builder)
        assert op.nb_var == 1
        assert op.sweep == 1
        assert op.space_rank == 2
        # 4 accesses + 1 center, nv = 1
        assert len(op.body.arguments) == 5
        verify(module)

    def test_pattern_roundtrip(self, module, builder):
        op = _build_gs5(builder)
        p = op.pattern
        assert p.l_offsets == [(-1, 0), (0, -1)]
        assert sorted(p.u_offsets) == [(0, 1), (1, 0)]

    def test_print_parse_roundtrip(self, module, builder):
        _build_gs5(builder)
        text = print_module(module)
        assert "cfd.stencilOp" in text
        assert "dense<[[0, -1, 0], [-1, 0, 1], [0, 1, 0]]>" in text
        reparsed = parse_module(text)
        assert print_module(reparsed) == text
        verify(reparsed)
        op = reparsed.body.operations[3]
        assert isinstance(op, cfd.StencilOp)
        assert op.pattern.l_offsets == [(-1, 0), (0, -1)]

    def test_wrong_yield_count_rejected(self, module, builder):
        t = TensorType([1, 8, 8], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        b = tensor.EmptyOp.build(builder, t).result()
        y = tensor.EmptyOp.build(builder, t).result()
        op = cfd.StencilOp.build(builder, x, b, y, gauss_seidel_5pt_2d())
        bb = OpBuilder.at_end(op.body)
        cfd.CFDYieldOp.build(bb, [arith.const_f64(bb, 1.0)])
        with pytest.raises(IRVerificationError, match="yield"):
            verify(module)

    def test_rank_mismatch_rejected(self, module, builder):
        t = TensorType([1, 8], f64)  # rank 2, but pattern rank 2 needs rank 3
        x = tensor.EmptyOp.build(builder, t).result()
        b = tensor.EmptyOp.build(builder, t).result()
        y = tensor.EmptyOp.build(builder, t).result()
        op = cfd.StencilOp.build(builder, x, b, y, gauss_seidel_5pt_2d())
        bb = OpBuilder.at_end(op.body)
        args = list(op.body.arguments)
        cfd.CFDYieldOp.build(
            bb, [arith.const_f64(bb, 1.0)] + args
        )
        with pytest.raises(IRVerificationError, match="rank"):
            verify(module)

    def test_multivar_arg_count(self, module, builder):
        t = TensorType([2, 8, 8], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        b = tensor.EmptyOp.build(builder, t).result()
        y = tensor.EmptyOp.build(builder, t).result()
        op = cfd.StencilOp.build(
            builder, x, b, y, gauss_seidel_5pt_2d(), nb_var=2
        )
        # (4 accesses + 1 center) * 2 vars
        assert len(op.body.arguments) == 10
        bb = OpBuilder.at_end(op.body)
        cfd.CFDYieldOp.build(
            bb, [arith.const_f64(bb, 1.0)] + list(op.body.arguments)
        )
        verify(module)


class TestFaceIteratorOp:
    def test_build(self, module, builder):
        t = TensorType([1, 8, 8], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        b = tensor.EmptyOp.build(builder, t).result()
        op = cfd.FaceIteratorOp.build(builder, x, b, axis=0)
        assert op.axis == 0
        assert len(op.body.arguments) == 2
        bb = OpBuilder.at_end(op.body)
        flux = arith.subf(bb, op.body.arguments[1], op.body.arguments[0])
        cfd.CFDYieldOp.build(bb, [flux])
        verify(module)

    def test_axis_bounds(self, module, builder):
        t = TensorType([1, 8, 8], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        b = tensor.EmptyOp.build(builder, t).result()
        op = cfd.FaceIteratorOp.build(builder, x, b, axis=2)  # only 0..1 valid
        bb = OpBuilder.at_end(op.body)
        cfd.CFDYieldOp.build(bb, [op.body.arguments[0]])
        with pytest.raises(IRVerificationError, match="axis"):
            verify(module)


class TestTiledLoopOp:
    def test_build_and_accessors(self, module, builder):
        t = TensorType([1, 16, 16], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        y = tensor.EmptyOp.build(builder, t).result()
        zero = arith.const_index(builder, 0)
        n = arith.const_index(builder, 16)
        four = arith.const_index(builder, 4)
        loop = cfd.TiledLoopOp.build(
            builder, [zero, zero], [n, n], [four, four], [x], [y]
        )
        assert loop.rank == 2
        assert loop.num_ins == 1
        assert loop.num_outs == 1
        assert not loop.has_groups
        assert loop.ins == [x]
        assert loop.outs == [y]
        assert len(loop.induction_vars) == 2
        assert loop.in_args[0].type == t
        bb = OpBuilder.at_end(loop.body)
        cfd.CFDYieldOp.build(bb, [loop.out_args[0]])
        verify(module)

    def test_with_groups(self, module, builder):

        t = TensorType([1, 16, 16], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        y = tensor.EmptyOp.build(builder, t).result()
        zero = arith.const_index(builder, 0)
        n = arith.const_index(builder, 16)
        four = arith.const_index(builder, 4)
        nb = arith.const_index(builder, 4)
        gp = cfd.GetParallelBlocksOp.build(
            builder, [nb, nb], [(-1, 0), (0, -1)]
        )
        loop = cfd.TiledLoopOp.build(
            builder,
            [zero, zero],
            [n, n],
            [four, four],
            [x],
            [y],
            groups=[gp.result(0), gp.result(1)],
        )
        assert loop.has_groups
        offsets, indices = loop.group_operands
        assert offsets is gp.result(0)
        assert indices is gp.result(1)
        bb = OpBuilder.at_end(loop.body)
        cfd.CFDYieldOp.build(bb, [loop.out_args[0]])
        verify(module)

    def test_yield_arity_enforced(self, module, builder):
        t = TensorType([1, 8, 8], f64)
        x = tensor.EmptyOp.build(builder, t).result()
        y = tensor.EmptyOp.build(builder, t).result()
        zero = arith.const_index(builder, 0)
        loop = cfd.TiledLoopOp.build(
            builder, [zero], [zero], [zero], [x], [y]
        )
        OpBuilder.at_end(loop.body).create("cfd.yield", [])
        with pytest.raises(IRVerificationError, match="yield"):
            verify(module)


class TestGetParallelBlocks:
    def test_block_offsets_roundtrip(self, module, builder):
        n = arith.const_index(builder, 4)
        op = cfd.GetParallelBlocksOp.build(
            builder, [n, n], [(-1, 0), (0, -1), (-1, -1)]
        )
        assert sorted(op.block_offsets) == [(-1, -1), (-1, 0), (0, -1)]
        verify(module)

    def test_rejects_positive_entries(self, module, builder):
        from repro.ir.attributes import DenseIntElementsAttr

        n = arith.const_index(builder, 4)
        op = cfd.GetParallelBlocksOp.build(builder, [n, n], [(-1, 0)])
        op.attributes["block_stencil"] = DenseIntElementsAttr(
            [[0, 1, 0], [0, 0, 0], [0, 0, 0]]
        )
        with pytest.raises(IRVerificationError, match="0 or -1"):
            verify(module)


class TestStencilPattern:
    def test_five_point(self):
        p = gauss_seidel_5pt_2d()
        assert p.rank == 2
        assert p.is_in_place
        assert p.num_accesses == 4
        assert p.radii == (1, 1)
        assert p.negative_distance_dims() == []

    def test_nine_point_negative_distance(self):
        p = gauss_seidel_9pt_2d()
        assert p.num_accesses == 8
        # (-1, 1) in L gives a negative dependence distance along dim 1.
        assert p.negative_distance_dims() == [1]

    def test_second_order(self):
        p = gauss_seidel_9pt_2nd_order_2d()
        assert p.radii == (2, 2)
        assert len(p.l_offsets) == 4
        assert len(p.u_offsets) == 4
        assert p.negative_distance_dims() == []

    def test_heat_3d(self):
        p = gauss_seidel_6pt_3d()
        assert p.rank == 3
        assert p.num_accesses == 6
        assert p.interior_bounds([8, 8, 8]) == [(1, 7), (1, 7), (1, 7)]

    def test_jacobi_not_in_place(self):
        p = jacobi_5pt_2d()
        assert not p.is_in_place
        assert p.l_offsets == []

    def test_invalid_l_offset_rejected(self):
        # (1, 0) is lexicographically positive: invalid for a forward sweep.
        with pytest.raises(ValueError, match="lexicographically"):
            StencilPattern.from_offsets(2, l_offsets=[(1, 0)])

    def test_backward_sweep_validation(self):
        # For a backward sweep, L offsets must be lexicographically positive.
        StencilPattern.from_offsets(2, l_offsets=[(1, 0)], sweep=-1)
        with pytest.raises(ValueError, match="lexicographically"):
            StencilPattern.from_offsets(2, l_offsets=[(-1, 0)], sweep=-1)

    def test_inverted_mirrors_pattern(self):
        p = gauss_seidel_5pt_2d()
        q = p.inverted()
        assert q.sweep == -1
        assert sorted(q.l_offsets) == [(0, 1), (1, 0)]
        assert sorted(q.u_offsets) == [(-1, 0), (0, -1)]
        # Double inversion is the identity.
        assert p.inverted().inverted() == p

    def test_center_must_be_zero(self):
        with pytest.raises(ValueError, match="center"):
            StencilPattern([[0, 0, 0], [0, -1, 0], [0, 0, 0]])

    def test_even_extent_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            StencilPattern([[0, -1], [0, 1]])

    def test_entry_values_validated(self):
        with pytest.raises(ValueError, match="-1, 0 or 1"):
            StencilPattern([[0, 2, 0], [0, 0, 0], [0, 0, 0]])

    def test_interior_bounds_asymmetric(self):
        p = StencilPattern.from_offsets(
            2, l_offsets=[(-2, 0)], u_offsets=[(0, 1)]
        )
        assert p.interior_bounds([10, 10]) == [(2, 10), (0, 9)]

    def test_block_stencil_offsets_5pt(self):
        p = gauss_seidel_5pt_2d()
        # Tiles of 4x4: L offsets (-1,0) and (0,-1) map to block offsets
        # (-1,0)/(0,0) and (0,-1)/(0,0); nonzero ones only.
        assert p.block_stencil_offsets([4, 4]) == [(-1, 0), (0, -1)]

    def test_block_stencil_offsets_9pt_diagonal(self):
        p = gauss_seidel_9pt_2d()
        # With the legal 1 x T tile shape (§2.1), the (-1, 1) L offset
        # produces block offsets (-1, 0) and (-1, 1) — all lex-negative.
        blocks = p.block_stencil_offsets([1, 4])
        assert (-1, 1) in blocks
        assert (-1, 0) in blocks
        assert all(next(c for c in b if c != 0) < 0 for b in blocks)

    def test_block_stencil_offsets_9pt_illegal_tile_detected(self):
        # Tiles spanning several rows expose a lexicographically positive
        # block offset (0, 1): a dependence cycle. The tiling legalizer
        # must avoid such shapes.
        p = gauss_seidel_9pt_2d()
        blocks = p.block_stencil_offsets([4, 1])
        assert (0, 1) in blocks

    def test_eq_and_hash(self):
        assert gauss_seidel_5pt_2d() == gauss_seidel_5pt_2d()
        assert gauss_seidel_5pt_2d() != gauss_seidel_9pt_2d()
