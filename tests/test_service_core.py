"""The compile service (`repro.service`): single-flight dedup,
admission control, load shedding, deadlines, drain, and the stats
surface.

No pytest-asyncio in the environment: each test drives its own event
loop with ``asyncio.run`` — which also proves the service needs nothing
beyond a plain loop.
"""

import asyncio
from dataclasses import replace

import numpy as np
import pytest

from repro.codegen.cache import KernelCache
from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.service import (
    CompileService,
    ServiceConfig,
    ServiceReport,
    ServiceResponse,
    percentile,
)
from repro.service.server import ServiceClosed

SHAPE = (8, 8)
OPTIONS = CompileOptions(
    subdomain_sizes=(4, 4), tile_sizes=(2, 2), fuse=True, vectorize=4,
)


def _module(shape=SHAPE):
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), shape, frontend.identity_body(4.0)
    )


def _service(**overrides):
    config = ServiceConfig(**{"options": OPTIONS, **overrides})
    return CompileService(config, cache=KernelCache())


def _inputs(shape=SHAPE, seed=0):
    rng = np.random.default_rng(seed)
    full = (1,) + shape
    return rng.standard_normal(full), rng.standard_normal(full)


class TestSingleFlight:
    def test_eight_identical_requests_one_compilation(self):
        async def scenario():
            svc = _service()
            resps = await asyncio.gather(
                *[svc.compile(_module()) for _ in range(8)]
            )
            await svc.drain()
            return svc, resps

        svc, resps = asyncio.run(scenario())
        assert all(r.ok for r in resps)
        assert svc.stats.compiles_started == 1
        assert svc.stats.single_flight_hits == 7
        assert svc.stats.single_flight_hit_rate == pytest.approx(7 / 8)
        # All eight share the one compiled artifact.
        assert len({id(r.kernel) for r in resps}) == 1

    def test_distinct_fingerprints_do_not_share_flights(self):
        async def scenario():
            svc = _service(workers=2)
            resps = await asyncio.gather(
                svc.compile(_module((8, 8))),
                svc.compile(_module((10, 8))),
            )
            await svc.drain()
            return svc, resps

        svc, resps = asyncio.run(scenario())
        assert all(r.ok for r in resps)
        assert svc.stats.compiles_started == 2
        assert svc.stats.single_flight_hits == 0
        assert resps[0].fingerprint != resps[1].fingerprint

    def test_warm_requests_hit_the_cache_without_queueing(self):
        async def scenario():
            svc = _service()
            cold = await svc.compile(_module())
            warm = await svc.compile(_module())
            await svc.drain()
            return svc, cold, warm

        svc, cold, warm = asyncio.run(scenario())
        assert cold.ok and warm.ok
        assert svc.stats.compiles_started == 1
        assert svc.stats.cache_hits == 1

    def test_options_key_the_flight(self):
        """Different options on the same module are different work."""

        async def scenario():
            svc = _service(workers=2)
            resps = await asyncio.gather(
                svc.compile(_module(), options=OPTIONS),
                svc.compile(
                    _module(), options=replace(OPTIONS, vectorize=0)
                ),
            )
            await svc.drain()
            return svc, resps

        svc, resps = asyncio.run(scenario())
        assert all(r.ok for r in resps)
        assert svc.stats.compiles_started == 2


class TestAdmissionControl:
    def test_backpressure_rejects_with_retry_hint(self):
        async def scenario():
            svc = _service(max_queue=1, shed_watermark=1.0, shed_floor=1.0)
            resps = await asyncio.gather(
                *[svc.compile(_module((8 + 2 * i, 8))) for i in range(4)]
            )
            await svc.drain()
            return svc, resps

        svc, resps = asyncio.run(scenario())
        rejected = [r for r in resps if r.status == "rejected"]
        served = [r for r in resps if r.ok]
        assert served and rejected
        assert len(served) + len(rejected) == 4
        for r in rejected:
            assert "RS012" in r.codes()
            assert r.retry_after is not None and r.retry_after > 0
        assert svc.stats.rejected_backpressure == len(rejected)

    def test_rejection_is_not_an_exception(self):
        async def scenario():
            svc = _service(max_queue=1, shed_watermark=1.0, shed_floor=1.0)
            resps = await asyncio.gather(
                *[svc.compile(_module((8 + 2 * i, 8))) for i in range(3)]
            )
            await svc.drain()
            return resps

        resps = asyncio.run(scenario())
        assert all(isinstance(r, ServiceResponse) for r in resps)


class TestLoadShedding:
    def test_pressure_walks_the_degradation_chain(self):
        async def scenario():
            svc = _service(
                max_queue=4, shed_watermark=0.25, shed_floor=0.75, workers=1
            )
            resps = await asyncio.gather(
                *[svc.compile(_module((8 + 2 * i, 8))) for i in range(5)]
            )
            await svc.drain()
            return svc, resps

        svc, resps = asyncio.run(scenario())
        assert all(r.ok for r in resps)
        # First request full quality; pressure then sheds to O0, and at
        # the floor to the interpreter. Every decision is recorded.
        assert resps[0].degraded_to is None
        assert svc.stats.shed.get("opt_level -> O0", 0) >= 1
        assert svc.stats.shed.get("interpreter", 0) >= 1
        shed = [r for r in resps if r.degraded_to]
        assert all("RS015" in r.codes() for r in shed)

    def test_interpreter_shed_still_computes_correctly(self):
        async def scenario():
            svc = _service(max_queue=1, shed_watermark=0.0, shed_floor=0.0)
            return await svc.compile(_module()), svc

        resp, svc = asyncio.run(scenario())
        assert resp.ok and resp.degraded_to == "interpreter"
        x, b = _inputs()
        (expected,) = run_function(_module(), "kernel", x, b, x.copy())
        (got,) = resp.kernel.run(x.copy(), b.copy(), x.copy())
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_degraded_kernel_not_cached_under_full_quality_key(self):
        """An O0-shed compile must not alias a later full-quality hit."""

        async def scenario():
            svc = _service(
                max_queue=4, shed_watermark=0.25, shed_floor=1.0, workers=1
            )
            first = await asyncio.gather(
                *[svc.compile(_module((8 + 2 * i, 8))) for i in range(3)]
            )
            shed = next(r for r in first if r.degraded_to)
            # Re-request the shed module at full quality, uncontended.
            idx = first.index(shed)
            quiet = await svc.compile(_module((8 + 2 * idx, 8)))
            await svc.drain()
            return shed, quiet

        shed, quiet = asyncio.run(scenario())
        assert shed.ok and quiet.ok
        assert quiet.degraded_to is None
        assert quiet.fingerprint != shed.fingerprint


class TestDeadlines:
    def test_deadline_expiry_is_structured(self):
        async def scenario():
            svc = _service()
            resp = await svc.compile(_module(), deadline=1e-4)
            await svc.drain()
            return svc, resp

        svc, resp = asyncio.run(scenario())
        assert resp.status == "deadline"
        assert "RS013" in resp.codes()
        assert svc.stats.deadlines_expired == 1

    def test_waiter_deadline_does_not_kill_the_shared_flight(self):
        async def scenario():
            svc = _service()
            impatient, patient = await asyncio.gather(
                svc.compile(_module(), deadline=1e-4),
                svc.compile(_module()),
            )
            await svc.drain()
            return svc, impatient, patient

        svc, impatient, patient = asyncio.run(scenario())
        assert impatient.status == "deadline"
        assert patient.ok
        assert svc.stats.compiles_started == 1


class TestDrain:
    def test_drain_finishes_inflight_and_rejects_newcomers(self):
        async def scenario():
            svc = _service()
            first = asyncio.ensure_future(svc.compile(_module()))
            while not svc._flights:
                await asyncio.sleep(0.001)
            drain = asyncio.ensure_future(svc.drain())
            await asyncio.sleep(0)
            late = await svc.compile(_module((10, 8)))
            inflight = await first
            await drain
            return svc, inflight, late

        svc, inflight, late = asyncio.run(scenario())
        assert inflight.ok
        assert late.status == "rejected"
        assert "RS016" in late.codes()
        assert svc.stats.rejected_draining == 1

    def test_drain_is_idempotent_and_closes(self):
        async def scenario():
            svc = _service()
            await svc.drain()
            await svc.drain()
            with pytest.raises(ServiceClosed):
                await svc.compile(_module())

        asyncio.run(scenario())


class TestExecute:
    def test_execute_matches_interpreter_reference(self):
        x, b = _inputs()
        (expected,) = run_function(_module(), "kernel", x, b, x.copy())

        async def scenario():
            svc = _service()
            resp = await svc.execute(
                _module(), lambda: (x.copy(), b.copy(), x.copy())
            )
            await svc.drain()
            return svc, resp

        svc, resp = asyncio.run(scenario())
        assert resp.ok
        np.testing.assert_allclose(resp.values[0], expected, rtol=1e-12)
        assert svc.stats.executions == 1

    def test_each_execute_request_runs_exactly_once(self):
        x, b = _inputs()

        async def scenario():
            svc = _service()
            resps = await asyncio.gather(*[
                svc.execute(
                    _module(), lambda: (x.copy(), b.copy(), x.copy())
                )
                for _ in range(4)
            ])
            await svc.drain()
            return svc, resps

        svc, resps = asyncio.run(scenario())
        assert all(r.ok for r in resps)
        # One shared compilation, but four independent executions.
        assert svc.stats.compiles_started == 1
        assert svc.stats.executions == 4


class TestStatsSurface:
    def test_snapshot_and_render(self):
        async def scenario():
            svc = _service()
            await asyncio.gather(*[svc.compile(_module()) for _ in range(4)])
            await svc.compile(_module((10, 8)), deadline=1e-5)
            await svc.drain()
            return svc

        svc = asyncio.run(scenario())
        snap = svc.snapshot()
        for key in (
            "queue_depth", "inflight", "single_flight_hit_rate",
            "p50_latency", "p99_latency", "shed", "degradations",
            "completed", "deadlines_expired",
        ):
            assert key in snap
        assert snap["queue_depth"] == 0 and snap["inflight"] == 0
        assert snap["completed"] == 4
        assert snap["p99_latency"] >= snap["p50_latency"] >= 0.0
        text = svc.report().render()
        assert "single-flight hit rate" in text
        assert "p50" in text and "p99" in text

    def test_service_report_json_round_trip(self):
        async def scenario():
            svc = _service(max_queue=1, shed_watermark=1.0, shed_floor=1.0)
            await asyncio.gather(
                *[svc.compile(_module((8 + 2 * i, 8))) for i in range(3)]
            )
            await svc.drain()
            return svc.report()

        report = asyncio.run(scenario())
        assert report.codes()  # at least the RS012 rejections
        clone = ServiceReport.from_json(report.to_json())
        assert clone.to_json() == report.to_json()
        assert clone.codes() == report.codes()
        assert clone.stats == report.stats

    def test_per_request_summaries_are_bounded(self):
        async def scenario():
            svc = _service(latency_window=4)
            for _ in range(8):
                await svc.compile(_module())
            await svc.drain()
            return svc

        svc = asyncio.run(scenario())
        assert len(svc.report().requests) == 4
        assert len(svc.stats.latencies) == 4


class TestPercentile:
    def test_empty_and_bounds(self):
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 50) == pytest.approx(50.0, abs=1.0)


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServiceConfig(shed_watermark=0.9, shed_floor=0.5)
        with pytest.raises(ValueError):
            ServiceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ServiceConfig(jitter=-0.1)
