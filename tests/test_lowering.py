"""Tests for scalar lowering to scf loops (Fig. 5 canonical form)."""

import numpy as np
import pytest

from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.fusion import FuseProducersPass
from repro.core.lowering import LowerStencilsPass, LowerStructuredPass
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
)
from repro.core.tiling import TileStencilsPass
from repro.ir import PassManager, verify
from repro.ir.printer import print_module


def _fields(shape, seed=0, n=2):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(n)]


def _check(pattern, shape, passes, seed=0, iterations=1, nb_var=1, d=None):
    d = d if d is not None else float(pattern.num_accesses)
    reference = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), nb_var=nb_var,
        iterations=iterations,
    )
    lowered = frontend.build_stencil_kernel(
        pattern, shape[1:], frontend.identity_body(d), nb_var=nb_var,
        iterations=iterations,
    )
    PassManager(passes).run(lowered)
    assert not any(op.name == "cfd.stencilOp" for op in lowered.walk())
    x, b = _fields(shape, seed)
    (expected,) = run_function(reference, "kernel", x, b, x.copy())
    (actual,) = run_function(lowered, "kernel", x, b, x.copy())
    np.testing.assert_allclose(actual, expected, rtol=1e-12)
    verify(lowered)
    return lowered


class TestScalarLowering:
    @pytest.mark.parametrize(
        "pattern_fn,shape",
        [
            (gauss_seidel_5pt_2d, (1, 9, 10)),
            (gauss_seidel_9pt_2d, (1, 8, 9)),
            (gauss_seidel_9pt_2nd_order_2d, (1, 11, 10)),
            (gauss_seidel_6pt_3d, (1, 6, 7, 6)),
        ],
    )
    def test_matches_reference(self, pattern_fn, shape):
        lowered = _check(pattern_fn(), shape, [LowerStencilsPass()])
        text = print_module(lowered)
        assert "scf.for" in text
        assert "tensor.extract" in text
        assert "tensor.insert" in text

    def test_backward_sweep(self):
        _check(gauss_seidel_5pt_2d().inverted(), (1, 9, 9), [LowerStencilsPass()])

    def test_multivar(self):
        _check(gauss_seidel_5pt_2d(), (2, 8, 8), [LowerStencilsPass()], nb_var=2)

    def test_after_tiling(self):
        lowered = _check(
            gauss_seidel_5pt_2d(),
            (1, 12, 12),
            [TileStencilsPass((4, 4)), LowerStencilsPass()],
        )
        text = print_module(lowered)
        assert "cfd.tiled_loop" in text

    def test_after_tiling_with_groups(self):
        _check(
            gauss_seidel_5pt_2d(),
            (1, 10, 10),
            [TileStencilsPass((3, 3), with_groups=True), LowerStencilsPass()],
        )

    def test_iterated(self):
        _check(
            gauss_seidel_5pt_2d(), (1, 8, 8), [LowerStencilsPass()],
            iterations=3,
        )


class TestStructuredLowering:
    def test_heat_like_full_scalar(self):
        """The producer/consumer pipeline fully lowered to scalar loops."""
        import tests.test_fusion as tf

        shape = (1, 8, 8)
        reference = tf._build_producer_kernel(shape)
        lowered = tf._build_producer_kernel(shape)
        PassManager(
            [
                TileStencilsPass((4, 4)),
                FuseProducersPass(),
                LowerStencilsPass(),
                LowerStructuredPass(),
            ]
        ).run(lowered)
        assert not any(
            op.name in ("cfd.stencilOp", "linalg.generic")
            for op in lowered.walk()
        )
        x, b0 = _fields(shape, 3)
        (expected,) = run_function(reference, "kernel", x, b0)
        (actual,) = run_function(lowered, "kernel", x, b0)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_face_iterator_lowering(self):
        import tests.test_fusion as tf

        shape = (1, 8, 9)
        reference = tf._build_producer_kernel(shape, with_face_iterator=True)
        lowered = tf._build_producer_kernel(shape, with_face_iterator=True)
        PassManager([LowerStencilsPass(), LowerStructuredPass()]).run(lowered)
        assert not any(
            op.name == "cfd.faceIteratorOp" for op in lowered.walk()
        )
        x, b0 = _fields(shape, 5)
        (expected,) = run_function(reference, "kernel", x, b0)
        (actual,) = run_function(lowered, "kernel", x, b0)
        np.testing.assert_allclose(actual, expected, rtol=1e-12)

    def test_fill_lowering(self):
        from repro.dialects import arith, func, linalg, tensor as tdial
        from repro.ir import ModuleOp, OpBuilder
        from repro.ir.types import FunctionType, TensorType, f64

        module = ModuleOp.create()
        b = OpBuilder.at_end(module.body)
        t = TensorType([4, 5], f64)
        fn = func.FuncOp.build(b, "f", FunctionType([], [t]))
        fb = OpBuilder.at_end(fn.body)
        init = tdial.EmptyOp.build(fb, t).result()
        c = arith.const_f64(fb, 2.5)
        filled = linalg.FillOp.build(fb, c, init)
        func.ReturnOp.build(fb, [filled.result()])
        PassManager([LowerStructuredPass()]).run(module)
        assert not any(op.name == "linalg.fill" for op in module.walk())
        (out,) = run_function(module, "f")
        np.testing.assert_array_equal(out, np.full((4, 5), 2.5))
