"""End-to-end tests: generated heat and LU-SGS solvers vs references."""

import numpy as np
import pytest

from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers
from repro.cfdlib.heat import (
    build_heat3d_module,
    heat3d_reference,
    initial_temperature,
)
from repro.cfdlib.lusgs import (
    LUSGSConfig,
    backward_pattern,
    build_lusgs_module,
    compute_rhs,
    forward_pattern,
    lusgs_reference,
    lusgs_sweeps_reference,
    stable_dt,
)
from repro.cfdlib.mesh import StructuredMesh
from repro.codegen.interpreter import run_function
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.ir import verify


class TestHeat3D:
    def test_ir_matches_reference(self):
        n, steps = 8, 2
        module = build_heat3d_module(n, steps)
        verify(module)
        t0 = initial_temperature(n)
        dt0 = np.zeros((n, n, n))
        (result,) = run_function(
            module, "heat", t0[None], dt0[None]
        )
        expected, _ = heat3d_reference(t0, dt0, steps)
        np.testing.assert_allclose(result[0], expected, rtol=1e-12)

    def test_compiled_matches_reference(self):
        n, steps = 10, 2
        module = build_heat3d_module(n, steps)
        options = CompileOptions(
            subdomain_sizes=(5, 5, 5),
            tile_sizes=(3, 3, 5),
            fuse=True,
            parallel=True,
            vectorize=4,
        )
        kernel = StencilCompiler(options).compile(module, entry="heat")
        t0 = initial_temperature(n, seed=1)
        dt0 = np.zeros((n, n, n))
        (result,) = kernel(t0[None], dt0[None])
        expected, _ = heat3d_reference(t0, dt0, steps)
        np.testing.assert_allclose(result[0], expected, rtol=1e-11)

    def test_heat_diffuses(self):
        """Physics: the implicit step damps the dominant mode."""
        n, steps = 12, 4
        t0 = initial_temperature(n, seed=2)
        expected, _ = heat3d_reference(t0, np.zeros_like(t0), steps)
        # Total 'energy' of interior fluctuations must not grow.
        assert np.var(expected[1:-1] * 1.0) <= np.var(t0[1:-1]) * 1.01


class TestLUSGSPatterns:
    def test_forward_pattern_shape(self):
        p = forward_pattern()
        assert p.rank == 3
        assert len(p.l_offsets) == 3
        assert not p.u_offsets
        assert p.sweep == 1

    def test_backward_pattern_initial_reads(self):
        p = backward_pattern()
        assert p.sweep == -1
        assert sorted(p.dependent_l_offsets) == [(0, 0, 1), (0, 1, 0), (1, 0, 0)]
        assert sorted(p.initial_l_offsets) == [
            (-1, 0, 0), (0, -1, 0), (0, 0, -1),
        ]
        # Anti-dependences fold onto the dependence side for scheduling.
        assert sorted(p.schedule_relevant_offsets()) == [
            (0, 0, 1), (0, 1, 0), (1, 0, 0),
        ]


@pytest.fixture(scope="module")
def small_case():
    mesh = StructuredMesh((5, 5, 5), extent=(1.0, 1.0, 1.0))
    w0 = euler.density_wave((5, 5, 5), amplitude=0.05)
    dt = stable_dt(w0, mesh, cfl=1.0)
    return LUSGSConfig(mesh=mesh, dt=dt), w0


class TestLUSGSReference:
    def test_uniform_flow_is_steady(self):
        mesh = StructuredMesh((4, 4, 4))
        w0 = euler.uniform_flow((4, 4, 4), velocity=(0.4, 0.2, 0.1))
        config = LUSGSConfig(mesh=mesh, dt=0.01)
        w = lusgs_reference(w0, config, steps=2)
        np.testing.assert_allclose(w, w0, rtol=1e-12)

    def test_rhs_is_conservative(self, small_case):
        config, w0 = small_case
        w = add_ghost_layers(w0)
        from repro.cfdlib.boundary import apply_periodic

        apply_periodic(w)
        rhs = compute_rhs(w, config)
        # On a periodic box every face flux cancels: interior + ghost
        # contributions sum to zero per variable.
        inner = (slice(None),) + (slice(1, -1),) * 3
        # Fold the ghost contributions onto their periodic images.
        total = rhs[inner].sum(axis=(1, 2, 3))
        ghost_total = rhs.sum(axis=(1, 2, 3)) - total
        np.testing.assert_allclose(total + ghost_total, 0.0, atol=1e-10)

    def test_sweeps_reduce_implicit_residual(self, small_case):
        """One forward+backward sweep must reduce || (D+L+U) dW - RHS ||
        relative to dW = 0 (it is an approximate linear solve)."""
        config, w0 = small_case
        w = add_ghost_layers(w0)
        from repro.cfdlib.boundary import apply_periodic
        from repro.cfdlib.lusgs import diagonal_and_radii

        apply_periodic(w)
        rhs = compute_rhs(w, config)
        dw = lusgs_sweeps_reference(w, rhs, config)
        d_arr, coeffs = diagonal_and_radii(w, config)
        inner = (slice(None),) + (slice(1, -1),) * 3
        # Residual of the linearized system on the interior.
        res = rhs.copy()
        res -= d_arr * dw
        for axis, c in enumerate(coeffs):
            lo = [slice(None)] * 4
            hi = [slice(None)] * 4
            lo[axis + 1] = slice(0, -2)
            hi[axis + 1] = slice(2, None)
            mid = [slice(None)] * 4
            mid[axis + 1] = slice(1, -1)
            res[tuple(mid)] += c[tuple(mid[1:])] * (
                dw[tuple(lo)] + dw[tuple(hi)]
            )
        res0 = np.linalg.norm(rhs[inner])
        res1 = np.linalg.norm(res[inner])
        assert res1 < res0

    def test_density_stays_positive(self, small_case):
        config, w0 = small_case
        w = lusgs_reference(w0, config, steps=3)
        euler.validate_state(w)


class TestLUSGSGenerated:
    def test_interpreted_matches_reference(self, small_case):
        config, w0 = small_case
        module = build_lusgs_module(config, steps=1)
        verify(module)
        w_padded = add_ghost_layers(w0)
        (result,) = run_function(module, "lusgs", w_padded)
        expected = lusgs_reference(w0, config, steps=1)
        inner = (slice(None),) + (slice(1, -1),) * 3
        np.testing.assert_allclose(result[inner], expected, rtol=1e-10)

    def test_compiled_matches_reference(self, small_case):
        config, w0 = small_case
        module = build_lusgs_module(config, steps=2)
        options = CompileOptions(
            subdomain_sizes=(4, 4, 4),
            tile_sizes=(2, 2, 4),
            fuse=True,
            parallel=True,
            vectorize=4,
        )
        kernel = StencilCompiler(options).compile(module, entry="lusgs")
        (result,) = kernel(add_ghost_layers(w0))
        expected = lusgs_reference(w0, config, steps=2)
        inner = (slice(None),) + (slice(1, -1),) * 3
        np.testing.assert_allclose(result[inner], expected, rtol=1e-9)

    def test_compiled_scalar_config(self, small_case):
        config, w0 = small_case
        module = build_lusgs_module(config, steps=1)
        kernel = StencilCompiler(CompileOptions(vectorize=0)).compile(
            module, entry="lusgs"
        )
        (result,) = kernel(add_ghost_layers(w0))
        expected = lusgs_reference(w0, config, steps=1)
        inner = (slice(None),) + (slice(1, -1),) * 3
        np.testing.assert_allclose(result[inner], expected, rtol=1e-10)

    def test_fig14_graph_ops_present(self, small_case):
        """Fig. 14: the LU-SGS graph uses faceIterator, two stencils with
        opposite sweeps, and the pointwise update."""
        config, _ = small_case
        module = build_lusgs_module(config, steps=1)
        names = [op.name for op in module.walk()]
        assert names.count("cfd.faceIteratorOp") == 3
        stencils = [
            op for op in module.walk() if op.name == "cfd.stencilOp"
        ]
        assert len(stencils) == 2
        assert {s.sweep for s in stencils} == {1, -1}
        assert any(op.name == "linalg.generic" for op in module.walk())
