"""Degenerate CSR schedules and machine-model resolution (PR 8
satellites): :func:`profile_from_schedule` on empty / single-tile /
one-wide payloads, the simulator's handling of empty wavefront groups,
and the ``REPRO_MACHINE`` override order."""

import numpy as np
import pytest

from repro.machine.model import (
    LOCAL_SINGLE_CORE,
    MACHINE_ENV,
    MACHINE_PRESETS,
    PY_NUMPY_BACKEND,
    XEON_6152,
    host_machine_model,
    resolve_machine_model,
)
from repro.machine.simulator import (
    WorkloadProfile,
    profile_from_schedule,
    simulate_wavefront_execution,
)


class TestProfileFromScheduleDegenerates:
    def test_empty_offsets(self):
        for offsets in ([], [0], np.array([], dtype=np.int64)):
            profile = profile_from_schedule(offsets, 1e-3, 1e3)
            assert profile.wavefront_sizes == []
            assert profile.total_tiles == 0

    def test_single_tile(self):
        profile = profile_from_schedule([0, 1], 1e-3, 1e3)
        assert profile.wavefront_sizes == [1]
        assert profile.total_tiles == 1

    def test_one_wide_wavefronts(self):
        offsets = list(range(9))  # 8 groups of exactly one tile
        profile = profile_from_schedule(offsets, 1e-3, 1e3)
        assert profile.wavefront_sizes == [1] * 8
        assert profile.total_tiles == 8

    def test_empty_groups_preserved_but_harmless(self):
        profile = profile_from_schedule([0, 0, 3, 3, 5], 1e-3, 1e3)
        assert profile.wavefront_sizes == [0, 3, 0, 2]
        assert profile.total_tiles == 5

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            profile_from_schedule([0, 4, 2], 1e-3, 1e3)

    def test_iterations_multiply_tiles(self):
        profile = profile_from_schedule([0, 2, 4], 1e-3, 1e3, iterations=3)
        assert profile.total_tiles == 12


class TestSimulatorDegenerates:
    def test_empty_schedule_takes_no_time(self):
        profile = WorkloadProfile([], 1e-3, 1e3)
        assert simulate_wavefront_execution(profile, 4, XEON_6152) == 0.0

    def test_empty_groups_accrue_no_barriers(self):
        with_empties = WorkloadProfile([0, 4, 0, 0, 4, 0], 1e-3, 1e3)
        dense = WorkloadProfile([4, 4], 1e-3, 1e3)
        t_a = simulate_wavefront_execution(with_empties, 8, XEON_6152)
        t_b = simulate_wavefront_execution(dense, 8, XEON_6152)
        assert t_a == pytest.approx(t_b)

    def test_negative_group_size_rejected(self):
        profile = WorkloadProfile([2, -1], 1e-3, 1e3)
        with pytest.raises(ValueError, match="negative"):
            simulate_wavefront_execution(profile, 2, XEON_6152)

    def test_one_wide_wavefronts_never_speed_up(self):
        profile = WorkloadProfile([1] * 16, 1e-3, 1e3)
        t1 = simulate_wavefront_execution(profile, 1, XEON_6152)
        t8 = simulate_wavefront_execution(profile, 8, XEON_6152)
        # Serial chain plus barrier costs: more threads cannot help.
        assert t8 >= t1


class TestMachineResolution:
    def test_explicit_preset_wins(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "py-numpy")
        assert resolve_machine_model("xeon-6152") is XEON_6152

    def test_env_pins_preset(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "py-numpy")
        assert resolve_machine_model() is PY_NUMPY_BACKEND
        assert host_machine_model() is PY_NUMPY_BACKEND

    def test_host_forces_calibration_over_env(self, monkeypatch):
        monkeypatch.setenv(MACHINE_ENV, "xeon-6152")
        model = resolve_machine_model("host")
        assert model not in (XEON_6152, PY_NUMPY_BACKEND)
        assert model.cores >= 1

    def test_unset_env_calibrates_host(self, monkeypatch):
        monkeypatch.delenv(MACHINE_ENV, raising=False)
        model = resolve_machine_model()
        assert model.cores >= 1
        assert model.numa_nodes >= 1

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown machine preset"):
            resolve_machine_model("cray-1")

    def test_preset_table_is_consistent(self):
        assert MACHINE_PRESETS["single-core"] is LOCAL_SINGLE_CORE
        for name, model in MACHINE_PRESETS.items():
            assert model.cores >= 1
            assert model.l2_bytes > 0
            assert model.l3_bytes_total == (
                model.l3_bytes_per_numa * model.numa_nodes
            )
