"""The seeded-mutant corpus: the acceptance gate of the analyzer.

Twelve mutants spanning the three corruption families of the issue —
illegal tile sizes, wrong sweep order/direction, corrupted CSR
wavefronts — plus declared-vs-derived mismatches and a lowering-bug
stand-in. The analyzer must detect 100% of them, each with its stable
``IP0xx`` code, while producing zero diagnostics on the unmutated
pipelines (checked both here and in ``test_analysis_pipeline``)."""

import pytest

from repro.analysis import analyze_module, check_csr_schedule
from repro.analysis.dependence import (
    compare_access_sets,
    extract_loop_access_set,
    pattern_access_set,
)
from repro.core import frontend
from repro.core.lowering import LowerStencilsPass
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.scheduling import compute_parallel_blocks
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_9pt_2d
from repro.dialects import arith
from repro.ir import OpBuilder
from repro.ir.attributes import BoolAttr, DenseIntElementsAttr, IntegerAttr


def _frontend_module(make=gauss_seidel_5pt_2d):
    return frontend.build_stencil_kernel(
        make(), (24, 24), frontend.identity_body(4.0)
    )


def _lowered_module(make=gauss_seidel_5pt_2d, subdomains=(12, 12)):
    module = _frontend_module(make)
    options = CompileOptions(
        subdomain_sizes=subdomains, parallel=True, vectorize=0, use_cache=False
    )
    StencilCompiler(options).lower(module)
    return module


def _only(module, name):
    ops = [op for op in module.walk() if op.name == name]
    assert ops, f"no {name} in module"
    return ops[0]


def _error_codes(module):
    return sorted(
        {d.code for d in analyze_module(module).diagnostics if d.is_error}
    )


# --- family 1: wrong sweep order / traversal direction ---------------------


def mutant_sweep_flipped():
    module = _frontend_module()
    _only(module, "cfd.stencilOp").attributes["sweep"] = IntegerAttr(-1)
    return _error_codes(module), "IP001"


def mutant_sweep_invalid_value():
    module = _frontend_module()
    _only(module, "cfd.stencilOp").attributes["sweep"] = IntegerAttr(2)
    return _error_codes(module), "IP001"


def mutant_center_tagged_l():
    module = _frontend_module()
    op = _only(module, "cfd.stencilOp")
    box = op.attributes["stencil"].to_nested_lists()
    box[1][1] = -1  # the update now reads the cell it writes
    op.attributes["stencil"] = DenseIntElementsAttr(box)
    return _error_codes(module), "IP001"


def mutant_loop_reverse_flipped():
    module = _lowered_module()
    loop = _only(module, "cfd.tiled_loop")
    loop.attributes["reverse"] = BoolAttr(not loop.reverse)
    return _error_codes(module), "IP001"


# --- family 2: illegal tile sizes ------------------------------------------


def mutant_step_unpinned_9pt():
    module = _lowered_module(gauss_seidel_9pt_2d)
    loop = _only(module, "cfd.tiled_loop")
    builder = OpBuilder.before(loop)
    loop.set_operand(4, arith.const_index(builder, 4))  # steps[0]: 1 -> 4
    return _error_codes(module), "IP002"


def mutant_stencil_widened_behind_tiles():
    # The loop was tiled for the 5pt pattern; sneak the 9pt L pattern
    # (with its (-1, 1) offset) into the stamped attributes, as a buggy
    # rewrite changing a pattern after tiling would.
    module = _lowered_module(gauss_seidel_5pt_2d, subdomains=(12, 12))
    loop = _only(module, "cfd.tiled_loop")
    loop.attributes["stencil"] = DenseIntElementsAttr(
        [[-1, -1, -1], [-1, 0, 1], [1, 1, 1]]
    )
    return _error_codes(module), "IP002"


# --- family 3: corrupted CSR wavefronts ------------------------------------

_NB = (3, 3)
_DEPS = [(-1, 0), (0, -1)]


def _csr():
    offsets, indices = compute_parallel_blocks(_NB, _DEPS)
    return list(offsets), list(indices)


def _csr_codes(offsets, indices):
    diags = check_csr_schedule(_NB, _DEPS, offsets, indices)
    return sorted({d.code for d in diags if d.is_error})


def mutant_csr_groups_merged():
    offsets, indices = _csr()
    del offsets[1]
    return _csr_codes(offsets, indices), "IP004"


def mutant_csr_swapped_across_groups():
    offsets, indices = _csr()
    i, j = offsets[1], offsets[2]  # first entry of group 1 and of group 2
    indices[i], indices[j] = indices[j], indices[i]
    codes = _csr_codes(offsets, indices)
    # The dependent moved before its predecessor: flagged as a same-group
    # race or an order inversion depending on which neighbor moved.
    return codes, ("IP004", "IP007")


def mutant_csr_dropped_subdomain():
    offsets, indices = _csr()
    del indices[-1]
    offsets = [min(o, len(indices)) for o in offsets]
    return _csr_codes(offsets, indices), "IP005"


def mutant_csr_duplicated_subdomain():
    offsets, indices = _csr()
    indices.append(indices[0])
    offsets[-1] += 1
    return _csr_codes(offsets, indices), "IP006"


def mutant_csr_out_of_range():
    offsets, indices = _csr()
    indices[0] = 42
    return _csr_codes(offsets, indices), "IP009"


def mutant_get_parallel_blocks_understated():
    module = _lowered_module()
    gp = _only(module, "cfd.get_parallel_blocks")
    gp.attributes["block_stencil"] = DenseIntElementsAttr(
        [[0, 0, 0], [-1, 0, 0], [0, 0, 0]]
    )
    return _error_codes(module), "IP008"


# --- family 4: a lowering bug (dependence cross-check) ---------------------


def mutant_lowered_read_shifted():
    module = _frontend_module()
    op = _only(module, "cfd.stencilOp")
    expected = pattern_access_set(op)
    LowerStencilsPass().run(module)
    for nest_op in module.walk():
        if nest_op.name != "arith.addi":
            continue
        rhs = nest_op.operand(1)
        if (
            rhs.op.name == "arith.constant"
            and rhs.op.attributes["value"].value == -1
        ):
            builder = OpBuilder.before(nest_op)
            nest_op.set_operand(1, arith.const_index(builder, -2))
            break
    actual = extract_loop_access_set(module)
    diags = compare_access_sets(expected, actual)
    return sorted({d.code for d in diags if d.is_error}), "IP003"


MUTANTS = [
    mutant_sweep_flipped,
    mutant_sweep_invalid_value,
    mutant_center_tagged_l,
    mutant_loop_reverse_flipped,
    mutant_step_unpinned_9pt,
    mutant_stencil_widened_behind_tiles,
    mutant_csr_groups_merged,
    mutant_csr_swapped_across_groups,
    mutant_csr_dropped_subdomain,
    mutant_csr_duplicated_subdomain,
    mutant_csr_out_of_range,
    mutant_get_parallel_blocks_understated,
    mutant_lowered_read_shifted,
]


class TestMutantCorpus:
    def test_corpus_size(self):
        assert len(MUTANTS) >= 10

    @pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.__name__)
    def test_mutant_detected_with_stable_code(self, mutant):
        codes, expected = mutant()
        assert codes, f"{mutant.__name__} produced no error diagnostics"
        expected = (expected,) if isinstance(expected, str) else expected
        assert set(codes) & set(expected), (
            f"{mutant.__name__}: expected one of {expected}, got {codes}"
        )

    def test_zero_false_positives_on_unmutated_modules(self):
        """The exact modules the mutants corrupt are clean beforehand."""
        assert _error_codes(_frontend_module()) == []
        assert _error_codes(_frontend_module(gauss_seidel_9pt_2d)) == []
        assert _error_codes(_lowered_module()) == []
        assert _error_codes(_lowered_module(gauss_seidel_9pt_2d)) == []
        offsets, indices = _csr()
        assert _csr_codes(offsets, indices) == []
