"""The seeded-mutant corpus: the acceptance gate of the analyzer.

Mutants spanning the corruption families of the issues — illegal tile
sizes, wrong sweep order/direction, corrupted CSR wavefronts,
declared-vs-derived mismatches, a lowering-bug stand-in, out-of-bounds
accesses (shrunk allocation, off-by-one halo, widened stencil offset)
and uninitialized reads. The analyzer must detect 100% of them, each
with its stable ``IP0xx`` code, while producing zero diagnostics on the
unmutated pipelines (checked both here and in
``test_analysis_pipeline``)."""

import pytest

from repro.analysis import analyze_module, check_csr_schedule
from repro.analysis.tv import TranslationValidator
from repro.cfdlib.heat import build_heat3d_module
from repro.analysis.dependence import (
    compare_access_sets,
    extract_loop_access_set,
    pattern_access_set,
)
from repro.core import frontend
from repro.core.bufferization import BufferizePass
from repro.core.fusion import FuseProducersPass
from repro.core.lowering import LowerStencilsPass
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.tiling import TileStencilsPass
from repro.core.scheduling import compute_parallel_blocks
from repro.core.stencil import gauss_seidel_5pt_2d, gauss_seidel_9pt_2d
from repro.dialects import arith, memref
from repro.ir import OpBuilder
from repro.ir.attributes import BoolAttr, DenseIntElementsAttr, IntegerAttr
from repro.ir.types import MemRefType, f64


def _frontend_module(make=gauss_seidel_5pt_2d):
    return frontend.build_stencil_kernel(
        make(), (24, 24), frontend.identity_body(4.0)
    )


def _lowered_module(make=gauss_seidel_5pt_2d, subdomains=(12, 12)):
    module = _frontend_module(make)
    options = CompileOptions(
        subdomain_sizes=subdomains, parallel=True, vectorize=0, use_cache=False
    )
    StencilCompiler(options).lower(module)
    return module


def _only(module, name):
    ops = [op for op in module.walk() if op.name == name]
    assert ops, f"no {name} in module"
    return ops[0]


def _error_codes(module):
    return sorted(
        {d.code for d in analyze_module(module).diagnostics if d.is_error}
    )


# --- family 1: wrong sweep order / traversal direction ---------------------


def mutant_sweep_flipped():
    module = _frontend_module()
    _only(module, "cfd.stencilOp").attributes["sweep"] = IntegerAttr(-1)
    return _error_codes(module), "IP001"


def mutant_sweep_invalid_value():
    module = _frontend_module()
    _only(module, "cfd.stencilOp").attributes["sweep"] = IntegerAttr(2)
    return _error_codes(module), "IP001"


def mutant_center_tagged_l():
    module = _frontend_module()
    op = _only(module, "cfd.stencilOp")
    box = op.attributes["stencil"].to_nested_lists()
    box[1][1] = -1  # the update now reads the cell it writes
    op.attributes["stencil"] = DenseIntElementsAttr(box)
    return _error_codes(module), "IP001"


def mutant_loop_reverse_flipped():
    module = _lowered_module()
    loop = _only(module, "cfd.tiled_loop")
    loop.attributes["reverse"] = BoolAttr(not loop.reverse)
    return _error_codes(module), "IP001"


# --- family 2: illegal tile sizes ------------------------------------------


def mutant_step_unpinned_9pt():
    module = _lowered_module(gauss_seidel_9pt_2d)
    loop = _only(module, "cfd.tiled_loop")
    builder = OpBuilder.before(loop)
    loop.set_operand(4, arith.const_index(builder, 4))  # steps[0]: 1 -> 4
    return _error_codes(module), "IP002"


def mutant_stencil_widened_behind_tiles():
    # The loop was tiled for the 5pt pattern; sneak the 9pt L pattern
    # (with its (-1, 1) offset) into the stamped attributes, as a buggy
    # rewrite changing a pattern after tiling would.
    module = _lowered_module(gauss_seidel_5pt_2d, subdomains=(12, 12))
    loop = _only(module, "cfd.tiled_loop")
    loop.attributes["stencil"] = DenseIntElementsAttr(
        [[-1, -1, -1], [-1, 0, 1], [1, 1, 1]]
    )
    return _error_codes(module), "IP002"


# --- family 3: corrupted CSR wavefronts ------------------------------------

_NB = (3, 3)
_DEPS = [(-1, 0), (0, -1)]


def _csr():
    offsets, indices = compute_parallel_blocks(_NB, _DEPS)
    return list(offsets), list(indices)


def _csr_codes(offsets, indices):
    diags = check_csr_schedule(_NB, _DEPS, offsets, indices)
    return sorted({d.code for d in diags if d.is_error})


def mutant_csr_groups_merged():
    offsets, indices = _csr()
    del offsets[1]
    return _csr_codes(offsets, indices), "IP004"


def mutant_csr_swapped_across_groups():
    offsets, indices = _csr()
    i, j = offsets[1], offsets[2]  # first entry of group 1 and of group 2
    indices[i], indices[j] = indices[j], indices[i]
    codes = _csr_codes(offsets, indices)
    # The dependent moved before its predecessor: flagged as a same-group
    # race or an order inversion depending on which neighbor moved.
    return codes, ("IP004", "IP007")


def mutant_csr_dropped_subdomain():
    offsets, indices = _csr()
    del indices[-1]
    offsets = [min(o, len(indices)) for o in offsets]
    return _csr_codes(offsets, indices), "IP005"


def mutant_csr_duplicated_subdomain():
    offsets, indices = _csr()
    indices.append(indices[0])
    offsets[-1] += 1
    return _csr_codes(offsets, indices), "IP006"


def mutant_csr_out_of_range():
    offsets, indices = _csr()
    indices[0] = 42
    return _csr_codes(offsets, indices), "IP009"


def mutant_get_parallel_blocks_understated():
    module = _lowered_module()
    gp = _only(module, "cfd.get_parallel_blocks")
    gp.attributes["block_stencil"] = DenseIntElementsAttr(
        [[0, 0, 0], [-1, 0, 0], [0, 0, 0]]
    )
    return _error_codes(module), "IP008"


# --- family 4: a lowering bug (dependence cross-check) ---------------------


def mutant_lowered_read_shifted():
    module = _frontend_module()
    op = _only(module, "cfd.stencilOp")
    expected = pattern_access_set(op)
    LowerStencilsPass().run(module)
    for nest_op in module.walk():
        if nest_op.name != "arith.addi":
            continue
        rhs = nest_op.operand(1)
        if (
            rhs.op.name == "arith.constant"
            and rhs.op.attributes["value"].value == -1
        ):
            builder = OpBuilder.before(nest_op)
            nest_op.set_operand(1, arith.const_index(builder, -2))
            break
    actual = extract_loop_access_set(module)
    diags = compare_access_sets(expected, actual)
    return sorted({d.code for d in diags if d.is_error}), "IP003"


# --- family 5: out-of-bounds accesses (the absint bounds client) -----------


def mutant_oob_shrunk_allocation():
    # Shrink the x-window slice by one row: the stencil's +1 halo row is
    # still read by the sweep, but the window no longer holds it.
    module = _lowered_module()
    window = _only(module, "tensor.extract_slice")
    builder = OpBuilder.before(window)
    shrunk = arith.subi(
        builder, window.operand(5), arith.const_index(builder, 1)
    )
    window.set_operand(5, shrunk)
    return _error_codes(module), "IP011"


def mutant_oob_off_by_one_halo():
    # Drop the halo from the window's lower bound (iv - 1 becomes iv - 0):
    # the sweep's core start stays put, so its -1 reads land at local
    # index -1.
    module = _lowered_module()
    for op in module.walk():
        if op.name != "arith.subi":
            continue
        rhs = op.operand(1)
        if (
            rhs.op is not None
            and rhs.op.name == "arith.constant"
            and rhs.op.attributes["value"].value == 1
            and any(u.name == "arith.maxsi" for u in op.result().users())
        ):
            builder = OpBuilder.before(op)
            op.set_operand(1, arith.const_index(builder, 0))
            break
    return _error_codes(module), "IP011"


def mutant_oob_widened_stencil_offset():
    # Same corruption as mutant_lowered_read_shifted (-1 read becomes -2),
    # but caught by the interval engine as an out-of-bounds proof failure
    # rather than by the dependence cross-check: the sweep starts at row 1,
    # so the widened offset reads row -1.
    module = _frontend_module()
    LowerStencilsPass().run(module)
    for op in module.walk():
        if op.name != "arith.addi":
            continue
        rhs = op.operand(1)
        if (
            rhs.op is not None
            and rhs.op.name == "arith.constant"
            and rhs.op.attributes["value"].value == -1
        ):
            builder = OpBuilder.before(op)
            op.set_operand(1, arith.const_index(builder, -2))
            break
    return _error_codes(module), "IP011"


# --- family 5b: affine-specific miscompiles --------------------------------
#
# Corruption shapes chosen to stress exactly the places a buggy affine
# translation would get wrong — an inequality bound off by one, a dropped
# stride constraint, swapped coefficients in the access map. Each asserts
# that the symbolic engine AND the enumerated oracle both flag it: a bug
# in either engine (or a silent divergence between them) fails the test.


def _error_codes_both_engines(module):
    """Error codes agreed on by the symbolic and enumerated engines."""
    per_engine = {
        eng: sorted({
            d.code
            for d in analyze_module(module, engine=eng).diagnostics
            if d.is_error
        })
        for eng in ("symbolic", "enumerated")
    }
    for eng, codes in per_engine.items():
        assert codes, f"{eng} engine missed the miscompile"
    return sorted(set(per_engine["symbolic"]) & set(per_engine["enumerated"]))


def mutant_affine_off_by_one_bound():
    # Drop the -1 from a sweep loop's upper bound (24-1 becomes 24): the
    # +1 halo read of the last iteration lands exactly one row past the
    # window — the boundary a `<` vs `<=` slip in the affine inequality
    # translation would miss.
    module = _frontend_module()
    LowerStencilsPass().run(module)
    for op in module.walk():
        if op.name == "scf.for":
            ub = op.operand(1)
            if ub.op is not None and ub.op.name == "arith.subi":
                op.set_operand(1, ub.op.operand(0))
                break
    return _error_codes_both_engines(module), "IP011"


def mutant_affine_dropped_stride():
    # Double the innermost sweep step: every other column is never
    # written. Only an engine that models the stride constraint of the
    # written progression (not just its hull) can see the gap.
    results = []
    for eng in ("symbolic", "enumerated"):
        module = _frontend_module()
        tv = TranslationValidator(fail_fast=False, engine=eng)
        tv.begin(module)
        LowerStencilsPass().run(module)
        inner = [op for op in module.walk() if op.name == "scf.for"][-1]
        builder = OpBuilder.before(inner)
        inner.set_operand(2, arith.const_index(builder, 2))
        tv.after_pass(module, "lower-stencils")
        codes = _tv_codes(tv)
        assert codes, f"{eng} engine missed the dropped stride"
        results.append(set(codes))
    return sorted(results[0] & results[1]), "TV003"


def mutant_affine_swapped_coefficient():
    # Swap the two space offsets of a sub-domain window on an asymmetric
    # 8x12 tiling: the access map's coefficient columns are exchanged, so
    # later windows land transposed and escape the domain — invisible to
    # any check that treats the dimensions symmetrically.
    module = _frontend_module()
    options = CompileOptions(
        subdomain_sizes=(8, 12), parallel=True, vectorize=0, use_cache=False
    )
    StencilCompiler(options).lower(module)
    window = _only(module, "tensor.extract_slice")
    a, b = window.operand(2), window.operand(3)
    window.set_operand(2, b)
    window.set_operand(3, a)
    return _error_codes_both_engines(module), "IP012"


# --- family 6: uninitialized reads -----------------------------------------


def _bufferized_module():
    module = _frontend_module()
    LowerStencilsPass().run(module)
    BufferizePass().run(module)
    return module


def mutant_uninit_partially_written():
    # Erase the copy-on-write seeding the insert's destination buffer:
    # the only remaining write is the single-point store, so the
    # full-extent copy out of it reads uninitialized interior.
    module = _bufferized_module()
    for op in list(module.walk()):
        if op.name != "memref.copy":
            continue
        dst = op.operand(1)
        if (
            dst.op is not None
            and dst.op.name == "memref.alloc"
            and any(u.name == "memref.store" for u in dst.users())
        ):
            op.erase()
            break
    return _error_codes(module), "IP013"


def mutant_uninit_never_written():
    # A read of a fresh allocation that no write can ever precede.
    module = _bufferized_module()
    ret = _only(module, "func.return")
    builder = OpBuilder.before(ret)
    buf = memref.AllocOp.build(builder, MemRefType((4, 4), f64)).result()
    memref.LoadOp.build(
        builder,
        buf,
        [arith.const_index(builder, 1), arith.const_index(builder, 2)],
    )
    return _error_codes(module), "IP013"


# --- family 7: miscompiles caught by translation validation ----------------
#
# These corruptions leave the IR structurally valid and (mostly) pass the
# semantic lint: each one silently reorders or drops statement instances,
# which only the per-pass dependence-preservation check can see. Every
# mutant returns the TV codes from the validator's collected report, and
# each violation carries a concrete witness (two statement instances with
# their timestamps) naming the offending pass.


def _tv_codes(tv):
    return sorted(
        {d.code for d in tv.report.diagnostics if d.severity == "error"}
    )


def mutant_tv_tile_order_reversed():
    # Flip the tile traversal direction after tiling: the forward
    # Gauss-Seidel dependences now point against the tile order.
    module = _frontend_module()
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    TileStencilsPass((12, 12), with_groups=False, level=0).run(module)
    loop = _only(module, "cfd.tiled_loop")
    loop.attributes["reverse"] = BoolAttr(not loop.reverse)
    tv.after_pass(module, "tile-stencils")
    return _tv_codes(tv), "TV001"


def mutant_tv_fusion_halo_dropped():
    # Shrink the fused producer's computed window by one plane: the
    # consumer stencil still reads the halo cell the producer no longer
    # recomputes per tile.
    module = build_heat3d_module(12, 1)
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    TileStencilsPass((5, 5, 5), level=0).run(module)
    FuseProducersPass().run(module)
    loop = _only(module, "cfd.tiled_loop")
    inner = next(
        op for op in loop.walk() if op.name == "cfd.stencilOp"
    )
    producer = inner.b.op  # the fused laplacian generic
    assert producer.name == "linalg.generic"
    out_init = producer.operand(producer.num_ins).op  # zero-seeding fill
    out_slice = out_init.init.op  # the per-tile window slice
    assert out_slice.name == "tensor.extract_slice"
    last_size = out_slice.num_operands - 1
    builder = OpBuilder.before(out_slice)
    shrunk = arith.subi(
        builder, out_slice.operand(last_size), arith.const_index(builder, 1)
    )
    out_slice.set_operand(last_size, shrunk)
    tv.after_pass(module, "fuse-structured-ops")
    return _tv_codes(tv), "TV004"


def mutant_tv_wavefront_merged_early():
    # Understate the inter-tile dependences the wavefront schedule was
    # built from: the replayed groups now run dependent tiles
    # concurrently.
    module = _frontend_module()
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    TileStencilsPass((12, 12), with_groups=True, level=0).run(module)
    gp = _only(module, "cfd.get_parallel_blocks")
    gp.attributes["block_stencil"] = DenseIntElementsAttr(
        [[0, 0, 0], [-1, 0, 0], [0, 0, 0]]  # drops the (0, -1) dependence
    )
    tv.after_pass(module, "tile-stencils")
    return _tv_codes(tv), "TV002"


def mutant_tv_loop_interchange():
    # Transpose the store coordinates in the lowered nest, simulating a
    # loop interchange: legal for the symmetric 5-point pattern, but the
    # 9-point kernel's (-1, 1) dependence crosses the new order.
    module = _frontend_module(gauss_seidel_9pt_2d)
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    LowerStencilsPass().run(module)
    for op in list(module.walk()):
        if op.name == "tensor.insert":
            i, j = op.operand(3), op.operand(4)
            op.set_operand(3, j)
            op.set_operand(4, i)
    tv.after_pass(module, "lower-stencils")
    return _tv_codes(tv), "TV001"


def mutant_tv_dce_live_store():
    # An over-eager DCE stand-in: forward the insert's destination past
    # the insert and erase it, dropping every write of the sweep.
    module = _frontend_module()
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    LowerStencilsPass().run(module)
    insert = _only(module, "tensor.insert")
    insert.result().replace_all_uses_with(insert.operand(1))
    insert.erase()
    tv.after_pass(module, "dce")
    return _tv_codes(tv), "TV003"


def mutant_tv_bufferized_write_reordered():
    # Mirror the innermost store's column coordinate after bufferization
    # (j -> 23 - j over the interior [1, 23)): writes stay inside the box
    # and bijective, but the column order now runs against the (0, -1)
    # dependence.
    module = _frontend_module()
    tv = TranslationValidator(fail_fast=False)
    tv.begin(module)
    LowerStencilsPass().run(module)
    BufferizePass().run(module)
    store = _only(module, "memref.store")
    last = store.num_operands - 1
    builder = OpBuilder.before(store)
    mirrored = arith.subi(
        builder, arith.const_index(builder, 23), store.operand(last)
    )
    store.set_operand(last, mirrored)
    tv.after_pass(module, "bufferize")
    codes = _tv_codes(tv)
    assert any(
        d.after_pass == "bufferize"
        for d in tv.report.diagnostics
        if d.severity == "error"
    ), "violation does not name the offending pass"
    return codes, "TV001"


MUTANTS = [
    mutant_sweep_flipped,
    mutant_sweep_invalid_value,
    mutant_center_tagged_l,
    mutant_loop_reverse_flipped,
    mutant_step_unpinned_9pt,
    mutant_stencil_widened_behind_tiles,
    mutant_csr_groups_merged,
    mutant_csr_swapped_across_groups,
    mutant_csr_dropped_subdomain,
    mutant_csr_duplicated_subdomain,
    mutant_csr_out_of_range,
    mutant_get_parallel_blocks_understated,
    mutant_lowered_read_shifted,
    mutant_oob_shrunk_allocation,
    mutant_oob_off_by_one_halo,
    mutant_oob_widened_stencil_offset,
    mutant_affine_off_by_one_bound,
    mutant_affine_dropped_stride,
    mutant_affine_swapped_coefficient,
    mutant_uninit_partially_written,
    mutant_uninit_never_written,
    mutant_tv_tile_order_reversed,
    mutant_tv_fusion_halo_dropped,
    mutant_tv_wavefront_merged_early,
    mutant_tv_loop_interchange,
    mutant_tv_dce_live_store,
    mutant_tv_bufferized_write_reordered,
]


class TestMutantCorpus:
    def test_corpus_size(self):
        assert len(MUTANTS) >= 10

    @pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.__name__)
    def test_mutant_detected_with_stable_code(self, mutant):
        codes, expected = mutant()
        assert codes, f"{mutant.__name__} produced no error diagnostics"
        expected = (expected,) if isinstance(expected, str) else expected
        assert set(codes) & set(expected), (
            f"{mutant.__name__}: expected one of {expected}, got {codes}"
        )

    def test_zero_false_positives_on_unmutated_modules(self):
        """The exact modules the mutants corrupt are clean beforehand."""
        assert _error_codes(_frontend_module()) == []
        assert _error_codes(_frontend_module(gauss_seidel_9pt_2d)) == []
        assert _error_codes(_lowered_module()) == []
        assert _error_codes(_lowered_module(gauss_seidel_9pt_2d)) == []
        assert _error_codes(_bufferized_module()) == []
        scalar = _frontend_module()
        LowerStencilsPass().run(scalar)
        assert _error_codes(scalar) == []
        offsets, indices = _csr()
        assert _csr_codes(offsets, indices) == []

    @pytest.mark.parametrize("with_groups", [False, True], ids=["seq", "wf"])
    def test_zero_tv_false_positives_on_unmutated_tiling(self, with_groups):
        """The exact pipelines the TV mutants corrupt certify clean."""
        module = _frontend_module()
        tv = TranslationValidator(fail_fast=False)
        tv.begin(module)
        TileStencilsPass(
            (12, 12), with_groups=with_groups, level=0
        ).run(module)
        tv.after_pass(module, "tile-stencils")
        assert _tv_codes(tv) == []
        assert all(not c["violations"] for c in tv.certificates)

    @pytest.mark.parametrize(
        "make", [gauss_seidel_5pt_2d, gauss_seidel_9pt_2d], ids=["5pt", "9pt"]
    )
    def test_zero_tv_false_positives_on_unmutated_lowering(self, make):
        module = _frontend_module(make)
        tv = TranslationValidator(fail_fast=False)
        tv.begin(module)
        LowerStencilsPass().run(module)
        tv.after_pass(module, "lower-stencils")
        BufferizePass().run(module)
        tv.after_pass(module, "bufferize")
        assert _tv_codes(tv) == []
        assert all(not c["violations"] for c in tv.certificates)

    def test_zero_tv_false_positives_on_unmutated_heat3d_fusion(self):
        module = build_heat3d_module(12, 1)
        tv = TranslationValidator(fail_fast=False)
        tv.begin(module)
        TileStencilsPass((5, 5, 5), level=0).run(module)
        tv.after_pass(module, "tile-stencils")
        FuseProducersPass().run(module)
        tv.after_pass(module, "fuse-structured-ops")
        assert _tv_codes(tv) == []

    def test_tv_witness_names_instances_and_pass(self):
        """A TV violation carries two concrete statement instances with
        rendered timestamps and names the offending pass."""
        module = _frontend_module()
        tv = TranslationValidator(fail_fast=False)
        tv.begin(module)
        TileStencilsPass((12, 12), with_groups=False, level=0).run(module)
        loop = _only(module, "cfd.tiled_loop")
        loop.attributes["reverse"] = BoolAttr(not loop.reverse)
        tv.after_pass(module, "tile-stencils")
        errors = [d for d in tv.report.diagnostics if d.severity == "error"]
        assert errors
        witness = errors[0].message
        assert errors[0].after_pass == "tile-stencils"
        # Two instances, each with a rendered timestamp:
        # "... source instance (1, 12) [t=s0.s0.s1.s12] is scheduled
        #  after its target (1, 13) [t=s0.s-1.s1.s1]".
        assert witness.count("[t=") == 2
        assert "source instance" in witness and "target" in witness
