"""Tests for the static performance prover (PR 8 tentpole).

The affine footprint engine is checked against a brute-force per-tile
enumeration (the thing it replaces), and :func:`predict`'s derived
quantities are checked against hand-computed values on known stencils.
"""

import pytest

from repro.analysis.affine.footprint import (
    DimWindows,
    box_cells,
    dim_windows,
    sweep_footprint,
    window_extent,
)
from repro.analysis.perf import (
    predict,
    static_cost,
    wavefront_profile,
    wavefront_profile_from_csr,
)
from repro.analysis.perf.model import MAX_PROFILE_TILES, pattern_halos
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_9pt_2d,
)
from repro.machine.model import PY_NUMPY_BACKEND, XEON_6152


def brute_dim(n, lo, hi, tile, halo_lo, halo_hi):
    """Reference per-tile enumeration of one dimension's windows."""
    core = max(0, hi - lo)
    if core == 0:
        return DimWindows(0, 0, 0, 0)
    tiles = -(-core // tile)
    ws = []
    for k in range(tiles):
        s = lo + k * tile
        e = min(s + tile, hi)
        w_lo = max(0, s - halo_lo)
        w_hi = min(n - 1, e - 1 + halo_hi)
        ws.append(max(0, w_hi - w_lo + 1))
    return DimWindows(tiles, core, sum(ws), max(ws))


class TestFootprintEngine:
    def test_box_cells(self):
        assert box_cells([4, 5]) == 20
        assert box_cells([7]) == 7
        assert box_cells([3, 0, 5]) == 0
        assert box_cells([3, -1]) == 0

    def test_window_extent_clips_to_allocation(self):
        assert window_extent(10, -2, 4) == 5   # clipped at 0
        assert window_extent(10, 7, 12) == 3   # clipped at n-1
        assert window_extent(10, 2, 5) == 4    # interior
        assert window_extent(10, 12, 15) == 0  # fully outside
        assert window_extent(10, 5, 3) == 0    # inverted

    @pytest.mark.parametrize(
        "n,lo,hi,tile,hl,hh",
        [
            (64, 1, 63, 16, 1, 1),    # tiles=4: small-grid path
            (512, 1, 511, 16, 1, 1),  # tiles=32: interior-run collapse
            (512, 1, 511, 7, 2, 3),   # ragged last tile, asymmetric halo
            (100, 0, 100, 9, 1, 0),   # interior == allocation
            (33, 1, 32, 40, 1, 1),    # single tile wider than the core
            (10, 3, 7, 2, 5, 5),      # halo clipped on every tile
            (1000, 1, 999, 1, 1, 1),  # tile size 1, 998 tiles
            (6, 2, 3, 1, 0, 0),       # one-cell core
        ],
    )
    def test_dim_windows_matches_brute_force(self, n, lo, hi, tile, hl, hh):
        assert dim_windows(n, lo, hi, tile, hl, hh) == brute_dim(
            n, lo, hi, tile, hl, hh
        )

    def test_empty_core(self):
        assert dim_windows(10, 5, 5, 4, 1, 1) == DimWindows(0, 0, 0, 0)

    def test_sweep_footprint_matches_2d_enumeration(self):
        n = (40, 50)
        interior = ((1, 39), (1, 49))
        tiles = (8, 13)
        halos = ((1, 1), (1, 1))
        fp = sweep_footprint(n, interior, tiles, halos)
        d0 = brute_dim(n[0], *interior[0], tiles[0], *halos[0])
        d1 = brute_dim(n[1], *interior[1], tiles[1], *halos[1])
        assert fp.tile_grid == (d0.tiles, d1.tiles)
        assert fp.num_tiles == d0.tiles * d1.tiles
        assert fp.core_cells == d0.core * d1.core
        # Separability: Σ_tiles Π_d w_d = Π_d Σ_k w_{d,k}.
        assert fp.window_cells == d0.window_sum * d1.window_sum
        assert fp.max_tile_window_cells == d0.window_max * d1.window_max
        assert fp.halo_cells == fp.window_cells - fp.core_cells > 0

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            sweep_footprint((10, 10), ((1, 9),), (4, 4), ((1, 1), (1, 1)))


class TestWavefrontProfile:
    def test_from_csr(self):
        wf = wavefront_profile_from_csr([0, 1, 3, 6, 8, 9])
        assert wf.num_tiles == 9
        assert wf.num_groups == 5
        assert wf.max_width == 3
        assert wf.mean_width == pytest.approx(9 / 5)

    def test_from_csr_drops_empty_groups(self):
        wf = wavefront_profile_from_csr([0, 0, 2, 2, 5])
        assert wf.num_tiles == 5
        assert wf.num_groups == 2
        assert wf.max_width == 3

    def test_from_csr_rejects_decreasing(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            wavefront_profile_from_csr([0, 3, 1])

    def test_from_csr_empty(self):
        for offsets in ([], [0], [7]):
            wf = wavefront_profile_from_csr(offsets)
            assert wf.num_tiles == 0
            assert wf.num_groups == 0
            assert wf.max_width == 0
            assert wf.mean_width == 0.0
            assert wf.brent_speedup(8) == 1.0

    def test_brent_bound(self):
        wf = wavefront_profile_from_csr([0, 1, 3, 6, 8, 9])
        # T1=9, T_inf=5 groups: ceiling 9/5 regardless of extra threads.
        assert wf.brent_speedup(44) == pytest.approx(9 / 5)
        # With p=1 the bound is exactly 1.
        assert wf.brent_speedup(1) == pytest.approx(1.0)

    def test_gs5_diagonal_wavefronts(self):
        # Deps {(-1,0),(0,-1)} on a g0 x g1 grid: g0+g1-1 anti-diagonal
        # groups, widest min(g0, g1).
        wf = wavefront_profile(gauss_seidel_5pt_2d(), (4, 6), (8, 8))
        assert wf.num_tiles == 24
        assert wf.num_groups == 4 + 6 - 1
        assert wf.max_width == 4

    def test_oversized_grid_skipped(self):
        grid = (MAX_PROFILE_TILES, 2)
        assert wavefront_profile(gauss_seidel_5pt_2d(), grid, (1, 1)) is None


class TestPredict:
    def test_report_fields_are_exact(self):
        p = gauss_seidel_5pt_2d()
        r = predict(p, (64, 64), (16, 32), machine=XEON_6152, vf=8)
        assert r.tile_grid == (4, 2)
        assert r.num_tiles == 8
        assert r.sweep_core_cells == 62 * 62
        assert r.flops == 62 * 62 * (2 * 4 + 2)
        assert r.halo_ratio == pytest.approx(
            (r.sweep_window_cells - r.sweep_core_cells) / r.sweep_core_cells
        )
        # 64x64 of 3 tensors is 96 KiB: cache resident, no DRAM term.
        assert r.cache_resident
        assert r.bytes_dram == 0
        assert r.t_dram == 0.0
        assert r.operational_intensity > 0
        assert r.innermost_extent == 32
        assert r.unit_stride_innermost
        assert r.vector_utilization == 1.0  # 32 is a multiple of VF=8
        assert r.pinned_dims == ()
        assert r.predicted_seconds > 0
        assert r.predicted_ms == pytest.approx(r.predicted_seconds * 1e3)
        assert r.wavefront is not None
        assert r.wavefront.num_tiles == 8

    def test_large_domain_streams_dram(self):
        p = gauss_seidel_5pt_2d()
        r = predict(p, (4096, 4096), (64, 512), machine=XEON_6152)
        # 402 MB of live data > 128 MB LLC: the compulsory stream term.
        assert not r.cache_resident
        assert r.bytes_dram == 4096 * 4096 * 3 * 8
        assert r.t_dram > 0
        assert r.operational_intensity == pytest.approx(
            r.flops / r.bytes_dram
        )

    def test_pinned_dims_reported_for_9pt(self):
        p = gauss_seidel_9pt_2d()
        r = predict(p, (64, 64), (1, 32), machine=XEON_6152)
        assert 0 in r.pinned_dims

    def test_innermost_one_is_not_unit_stride(self):
        r = predict(
            gauss_seidel_5pt_2d(), (64, 64), (16, 1), machine=XEON_6152
        )
        assert not r.unit_stride_innermost
        assert r.innermost_extent == 1

    def test_wavefront_skippable(self):
        r = predict(
            gauss_seidel_5pt_2d(), (64, 64), (16, 16),
            machine=XEON_6152, with_wavefront=False,
        )
        assert r.wavefront is None

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            predict(gauss_seidel_5pt_2d(), (64, 64, 64), (8, 8, 8))

    def test_machine_accepts_preset_name(self):
        r = predict(
            gauss_seidel_5pt_2d(), (32, 32), (8, 8), machine="py-numpy"
        )
        assert r.machine_name == PY_NUMPY_BACKEND.name

    def test_to_json_round_trips_wavefront(self):
        r = predict(
            gauss_seidel_5pt_2d(), (64, 64), (16, 16), machine=XEON_6152
        )
        blob = r.to_json()
        assert blob["tile_grid"] == [4, 4]
        assert blob["wavefront"]["num_groups"] == r.wavefront.num_groups

    def test_static_cost_is_prediction(self):
        p = gauss_seidel_5pt_2d()
        cost = static_cost(p, (128, 128), (16, 32), machine=PY_NUMPY_BACKEND)
        r = predict(
            p, (128, 128), (16, 32), machine=PY_NUMPY_BACKEND,
            with_wavefront=False,
        )
        assert cost == r.predicted_seconds

    def test_halos_from_pattern(self):
        assert pattern_halos(gauss_seidel_5pt_2d()) == ((1, 1), (1, 1))
