"""The §2.1 in-place legality checker, and its agreement with the
production legalizer (a property test: the checker and
``legalize_tile_sizes`` were derived independently, so agreement is
evidence both encode the paper's restriction)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    block_offset_range,
    check_sweep_order,
    check_tiled_loop,
    illegal_block_offsets,
    tile_sizes_legal,
)
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    sor_5pt_2d,
)
from repro.core.tiling import legalize_tile_sizes
from repro.ir.attributes import BoolAttr, IntegerAttr


def _lowered(pattern, shape, **options):
    module = frontend.build_stencil_kernel(
        pattern, shape, frontend.identity_body(4.0)
    )
    opts = CompileOptions(use_cache=False, vectorize=0, **options)
    StencilCompiler(opts).lower(module)
    return module


def _tiled_loops(module):
    return [op for op in module.walk() if op.name == "cfd.tiled_loop"]


class TestBlockOffsetRange:
    def test_center(self):
        assert list(block_offset_range(0, 4)) == [0]

    def test_negative_one(self):
        # An element one to the left can stay in-block or cross one back.
        assert list(block_offset_range(-1, 4)) == [-1, 0]

    def test_positive_crossing(self):
        assert list(block_offset_range(1, 1)) == [1]
        assert list(block_offset_range(1, 4)) == [0, 1]

    def test_size_one_pins_exact(self):
        for o in (-3, -1, 0, 2):
            assert list(block_offset_range(o, 1)) == [o]


class TestIllegalBlockOffsets:
    def test_9pt_rectangular_tiles_are_illegal(self):
        """The paper's example: (-1, 1) crosses forward unless dim 0 has
        tile size 1 (the 1 x 128 choice)."""
        p = gauss_seidel_9pt_2d()
        bad = illegal_block_offsets(p.l_offsets, 1, False, (16, 128))
        assert ((-1, 1), (0, 1)) in bad

    def test_9pt_paper_tiles_are_legal(self):
        p = gauss_seidel_9pt_2d()
        assert illegal_block_offsets(p.l_offsets, 1, False, (1, 128)) == []

    def test_5pt_any_tiles_legal(self):
        p = gauss_seidel_5pt_2d()
        for sizes in ((1, 1), (4, 8), (16, 128)):
            assert illegal_block_offsets(p.l_offsets, 1, False, sizes) == []

    def test_backward_sweep_mirrors(self):
        p = gauss_seidel_9pt_2d().inverted()
        assert illegal_block_offsets(p.l_offsets, -1, False, (16, 128))
        assert not illegal_block_offsets(p.l_offsets, -1, False, (1, 128))


PATTERNS_2D = [
    gauss_seidel_5pt_2d,
    gauss_seidel_9pt_2d,
    gauss_seidel_9pt_2nd_order_2d,
    sor_5pt_2d,
]


class TestCheckerLegalizerAgreement:
    """Satellite property: a tile-size vector is rejected by the checker
    iff ``legalize_tile_sizes`` changes it, and legalized vectors always
    pass the checker."""

    @settings(max_examples=200, deadline=None)
    @given(
        make=st.sampled_from(PATTERNS_2D),
        sizes=st.tuples(
            st.integers(min_value=1, max_value=9),
            st.integers(min_value=1, max_value=9),
        ),
        invert=st.booleans(),
    )
    def test_2d(self, make, sizes, invert):
        pattern = make().inverted() if invert else make()
        legalized = legalize_tile_sizes(pattern, sizes)
        assert (legalized == list(sizes)) == tile_sizes_legal(pattern, sizes)
        assert tile_sizes_legal(pattern, legalized)

    @settings(max_examples=100, deadline=None)
    @given(
        sizes=st.tuples(
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=1, max_value=6),
            st.integers(min_value=1, max_value=6),
        ),
        invert=st.booleans(),
    )
    def test_3d(self, sizes, invert):
        pattern = gauss_seidel_6pt_3d()
        if invert:
            pattern = pattern.inverted()
        legalized = legalize_tile_sizes(pattern, sizes)
        assert (legalized == list(sizes)) == tile_sizes_legal(pattern, sizes)
        assert tile_sizes_legal(pattern, legalized)


class TestCheckSweepOrder:
    def test_canonical_clean(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (12, 12), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        assert check_sweep_order(op) == []

    def test_flipped_sweep_is_ip001(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (12, 12), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        op.attributes["sweep"] = IntegerAttr(-1)
        diags = check_sweep_order(op)
        assert len(diags) == 2  # both L offsets are on the wrong side
        assert all(d.code == "IP001" and d.is_error for d in diags)
        assert all("cfd.stencilOp" in d.op_path for d in diags)

    def test_invalid_sweep_value_is_ip001(self):
        module = frontend.build_stencil_kernel(
            gauss_seidel_5pt_2d(), (12, 12), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        op.attributes["sweep"] = IntegerAttr(0)
        (diag,) = check_sweep_order(op)
        assert diag.code == "IP001" and "neither" in diag.message

    def test_wrong_side_tolerated_with_initial_reads(self):
        # The LU-SGS structure: L reads on both sides, declared as
        # initial-content reads (anti-dependences).
        from repro.core.stencil import StencilPattern

        pattern = StencilPattern.from_offsets(
            2,
            l_offsets=[(-1, 0), (0, -1), (0, 1), (1, 0)],
            allow_initial_reads=True,
        )
        module = frontend.build_stencil_kernel(
            pattern, (12, 12), frontend.identity_body(4.0)
        )
        (op,) = [o for o in module.walk() if o.name == "cfd.stencilOp"]
        assert op.attributes["allow_initial_reads"].value
        assert check_sweep_order(op) == []


class TestCheckTiledLoop:
    def test_canonical_pipeline_clean(self):
        module = _lowered(
            gauss_seidel_9pt_2d(),
            (24, 24),
            subdomain_sizes=(12, 12),
            tile_sizes=(6, 6),
            parallel=True,
        )
        loops = _tiled_loops(module)
        assert loops, "pipeline must produce tiled loops"
        for loop in loops:
            assert check_tiled_loop(loop) == []

    def test_corrupted_step_is_ip002(self):
        module = _lowered(
            gauss_seidel_9pt_2d(), (24, 24), subdomain_sizes=(12, 12)
        )
        (loop,) = _tiled_loops(module)
        # The legalizer pinned dim 0 to size 1; un-pin it behind its back.
        assert loop.steps[0].op.attributes["value"].value == 1
        loop.steps[0].op.attributes["value"] = IntegerAttr(4)
        diags = check_tiled_loop(loop)
        assert any(d.code == "IP002" for d in diags)
        assert all(d.is_error for d in diags)

    def test_flipped_reverse_is_ip001(self):
        module = _lowered(
            gauss_seidel_5pt_2d(), (24, 24), subdomain_sizes=(12, 12)
        )
        (loop,) = _tiled_loops(module)
        loop.attributes["reverse"] = BoolAttr(True)
        diags = check_tiled_loop(loop)
        assert [d.code for d in diags] == ["IP001"]
        assert "reverse" in diags[0].message

    def test_stamped_attrs_survive_lowering_and_fusion(self):
        module = _lowered(
            gauss_seidel_5pt_2d(),
            (24, 24),
            subdomain_sizes=(12, 12),
            tile_sizes=(4, 8),
            fuse=True,
            parallel=True,
        )
        loops = _tiled_loops(module)
        assert loops
        for loop in loops:
            assert loop.stamped_stencil is not None
            assert loop.stamped_tile_sizes in ([12, 12], [4, 8])

    def test_loop_without_stencil_info_is_skipped(self):
        module = _lowered(
            gauss_seidel_5pt_2d(), (24, 24), subdomain_sizes=(12, 12)
        )
        (loop,) = _tiled_loops(module)
        for key in ("stencil", "nbVar", "sweep", "allow_initial_reads",
                    "tile_sizes"):
            loop.attributes.pop(key, None)
        assert check_tiled_loop(loop) == []
