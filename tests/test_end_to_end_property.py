"""End-to-end property test: random pattern x random pipeline config,
compiled output vs the pure-Python reference sweep."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import StencilPattern


def _lex_pool(rank, reach, negative):
    import itertools

    pool = []
    for o in itertools.product(range(-reach, reach + 1), repeat=rank):
        first = next((c for c in o if c != 0), 0)
        if (first < 0) == negative and first != 0:
            pool.append(o)
    return pool


@st.composite
def _random_program(draw):
    rank = 2
    l_offsets = draw(
        st.lists(
            st.sampled_from(_lex_pool(rank, 2, True)),
            min_size=0,
            max_size=3,
            unique=True,
        )
    )
    u_offsets = draw(
        st.lists(
            st.sampled_from(_lex_pool(rank, 2, False)),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    pattern = StencilPattern.from_offsets(
        rank, l_offsets=l_offsets, u_offsets=u_offsets
    )
    shape = (
        draw(st.integers(6, 14)),
        draw(st.integers(6, 18)),
    )
    options = CompileOptions(
        subdomain_sizes=draw(
            st.sampled_from([None, (4, 4), (5, 8)])
        ),
        tile_sizes=draw(st.sampled_from([None, (2, 4), (3, 5)])),
        fuse=draw(st.booleans()),
        parallel=draw(st.booleans()),
        vectorize=draw(st.sampled_from([0, 2, 4, 8])),
    )
    seed = draw(st.integers(0, 10_000))
    return pattern, shape, options, seed


class TestEndToEndProperty:
    @given(_random_program())
    @settings(max_examples=25, deadline=None)
    def test_compiled_matches_reference(self, program):
        pattern, shape, options, seed = program
        d = float(pattern.num_accesses)
        module = frontend.build_stencil_kernel(
            pattern, shape, frontend.identity_body(d)
        )
        kernel = StencilCompiler(options).compile(module)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1,) + shape)
        b = rng.standard_normal((1,) + shape)
        (actual,) = kernel(x, b, x.copy())
        expected = naive.stencil_sweep_python(
            x, b, x.copy(), pattern, naive.identity_scalar_body(d)
        )
        np.testing.assert_allclose(actual, expected, rtol=1e-10, atol=1e-12)


def test_lazy_core_exports():
    """`repro.core` exposes the compiler lazily (PEP 562)."""
    import repro.core as core

    assert core.StencilCompiler.__name__ == "StencilCompiler"
    assert core.CompileOptions.__name__ == "CompileOptions"
    with pytest.raises(AttributeError):
        core.not_a_thing
