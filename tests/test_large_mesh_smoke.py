"""Large-mesh smoke (issue satellite): symbolic verification beyond the
enumeration limit.

A 512x512 sweep has ~262k statement instances — far past both the
absint tile-grid enumeration limit (4096) and anything the enumerated
TV path could walk in a smoke test's budget. With the affine engine
forced on, the full gate + validator must certify it cleanly, answering
every query symbolically.
"""

from repro.analysis.absint.engine import ENUMERATION_LIMIT
from repro.analysis.analyzer import analyze_module
from repro.analysis.tv import TranslationValidator
from repro.core import frontend
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.core.tiling import TileStencilsPass

MESH = (512, 512)


def _build():
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), MESH, frontend.identity_body(4.0)
    )


def test_mesh_exceeds_the_enumeration_limit():
    assert MESH[0] * MESH[1] > ENUMERATION_LIMIT


def test_symbolic_tv_certifies_a_tiling_past_the_limit():
    module = _build()
    tv = TranslationValidator(fail_fast=False, engine="symbolic")
    tv.begin(module)
    TileStencilsPass(
        (MESH[0] // 2, MESH[1] // 2), with_groups=False, level=0
    ).run(module)
    tv.after_pass(module, "tile-stencils")
    assert not tv.report.has_errors
    for cert in tv.certificates:
        assert cert["violations"] == 0
        for s in cert["sites"]:
            assert s.get("engine") == "symbolic"
            assert s["status"] == "certified"


def test_symbolic_gate_is_clean_past_the_limit():
    module = _build()
    TileStencilsPass(
        (MESH[0] // 2, MESH[1] // 2), with_groups=False, level=0
    ).run(module)
    report = analyze_module(module, engine="symbolic")
    assert not any(d.is_error for d in report.diagnostics), [
        d.render() for d in report.diagnostics if d.is_error
    ]
