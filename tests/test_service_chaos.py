"""Chaos accounting for the compile service.

The invariant under every injected fault: **no request is lost and no
request is double-executed**. A submitted request reaches exactly one
terminal state — it completes, completes degraded with the degradation
recorded, or is rejected with an explicit RS012–RS016 diagnostic. The
fault sites swept here are the service's own
(``service.queue`` / ``service.leader`` / ``service.drain``) plus a
hung leader abandoned by the watchdog; the pipeline/executor sites
underneath are already swept by ``test_resilience_chaos.py`` and
compose through :class:`ResilientCompiler` unchanged.

Seeded like the rest of the chaos suite: ``$CHAOS_SEED`` (CI sweeps a
matrix) fixes the firing invocation, so failures replay exactly.
"""

import asyncio
import os

import numpy as np
import pytest

from repro.codegen.cache import KernelCache
from repro.codegen.interpreter import run_function
from repro.core import frontend
from repro.core.pipeline import CompileOptions
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.runtime.resilience import FaultPlan, clear_plan, injected
from repro.service import CompileService, ServiceConfig
from repro.service.requests import STATUSES

SEED = int(os.environ.get("CHAOS_SEED", "0"))
SHAPE = (8, 8)
OPTIONS = CompileOptions(
    subdomain_sizes=(4, 4), tile_sizes=(2, 2), fuse=True, vectorize=4,
    use_cache=False,
)
SERVICE_SITES = ("service.queue", "service.leader", "service.drain")


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    clear_plan()


def _module(shape=SHAPE):
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), shape, frontend.identity_body(4.0)
    )


def _service(**overrides):
    config = ServiceConfig(**{
        "options": OPTIONS, "backoff_base": 0.0, "max_retries": 4,
        **overrides,
    })
    return CompileService(config, cache=KernelCache())


def _assert_accounting(svc, resps, submitted):
    """The invariant: every request terminal, explained, counted once."""
    assert len(resps) == submitted, "a request was lost"
    for r in resps:
        assert r.status in STATUSES
        if r.status == "rejected":
            codes = set(r.codes())
            assert codes & {"RS012", "RS016"}, (
                f"rejection without an explicit diagnostic: {codes}"
            )
            if "RS012" in codes:
                assert r.retry_after is not None
        elif r.status == "deadline":
            assert "RS013" in r.codes()
        elif r.status == "failed":
            assert r.codes(), "failure without a diagnostic"
    st = svc.stats
    terminal = (
        st.completed + st.failed + st.rejected_backpressure
        + st.rejected_draining + st.deadlines_expired
    )
    assert terminal == submitted, (
        f"accounting leak: {terminal} terminal states for "
        f"{submitted} requests\n{svc.report().render()}"
    )
    # Degradations that happened were recorded per request.
    for r in resps:
        if r.ok and r.degraded_to is not None:
            assert set(r.codes()) & {"RS002", "RS003", "RS015"}, (
                f"unrecorded degradation {r.degraded_to!r}"
            )


async def _mixed_workload(svc, rounds=4, width=3):
    """Concurrent identical + distinct requests, several rounds."""
    resps = []
    submitted = 0
    for i in range(rounds):
        batch = [svc.compile(_module()) for _ in range(width)]
        batch.append(svc.compile(_module((10, 8))))
        submitted += len(batch)
        resps.extend(await asyncio.gather(*batch))
    await svc.drain()
    return resps, submitted


@pytest.mark.parametrize("site", SERVICE_SITES)
def test_accounting_invariant_under_fault(site):
    plan = FaultPlan.seeded(site, seed=SEED)

    async def scenario():
        if site == "service.drain":
            # A fresh service per round (a drained service stays
            # closed); each drain injects once per in-flight
            # fingerprint, so four rounds guarantee the seeded plan
            # fires within its window.
            rounds = []
            for _ in range(4):
                svc = _service()
                tasks = [
                    asyncio.ensure_future(svc.compile(_module())),
                    asyncio.ensure_future(svc.compile(_module((10, 8)))),
                ]
                while not svc._flights and not all(
                    t.done() for t in tasks
                ):
                    await asyncio.sleep(0.001)
                await svc.drain()
                rounds.append((svc, await asyncio.gather(*tasks)))
            return rounds
        svc = _service()
        resps, submitted = await _mixed_workload(svc)
        return [(svc, resps)]

    with injected(plan):
        rounds = asyncio.run(scenario())
    assert plan.fired, "the seeded fault never fired"
    for svc, batch in rounds:
        _assert_accounting(svc, batch, len(batch))
    svc, resps = rounds[-1]
    resps = [r for _, batch in rounds for r in batch]
    events = {d.code for s, _ in rounds for d in s._events}
    if site == "service.queue":
        # The faulted admission became an explicit RS012 rejection.
        assert svc.stats.rejected_backpressure >= 1
    if site == "service.leader":
        # The crashed leader's waiters re-dispatched exactly once per
        # failure round and every request still succeeded.
        assert svc.stats.redispatches >= 1
        assert "RS014" in events
        assert all(r.ok for r in resps)
    if site == "service.drain":
        # The injected drain fault became a finding, not a lost request.
        assert "RS009" in events
        assert all(r.ok for r in resps)


def test_hung_leader_is_abandoned_and_redispatched():
    """A leader that hangs is watchdog-killed; its waiters promote a
    new leader and every request completes (RS014, exactly-once)."""
    plan = FaultPlan.seeded(
        "service.leader", seed=SEED, action="hang", hang_seconds=0.6
    )

    async def scenario():
        svc = _service(compile_watchdog=0.1, workers=2)
        resps = []
        for _ in range(4):
            resps.extend(await asyncio.gather(
                *[svc.compile(_module()) for _ in range(3)]
            ))
        await svc.drain()
        return svc, resps

    with injected(plan):
        svc, resps = asyncio.run(scenario())
    assert plan.fired
    assert all(r.ok for r in resps)
    assert svc.stats.redispatches >= 1
    _assert_accounting(svc, resps, len(resps))


def test_results_correct_under_leader_faults():
    """Fault-recovered compilations still compute the right answer."""
    rng = np.random.default_rng(SEED)
    full = (1,) + SHAPE
    x, b = rng.standard_normal(full), rng.standard_normal(full)
    (expected,) = run_function(_module(), "kernel", x, b, x.copy())
    plan = FaultPlan.seeded("service.leader", seed=SEED)

    async def scenario():
        svc = _service()
        resps = []
        for _ in range(4):
            resps.extend(await asyncio.gather(*[
                svc.execute(
                    _module(), lambda: (x.copy(), b.copy(), x.copy())
                )
                for _ in range(2)
            ]))
        await svc.drain()
        return svc, resps

    with injected(plan):
        svc, resps = asyncio.run(scenario())
    assert plan.fired
    for r in resps:
        assert r.ok
        np.testing.assert_allclose(r.values[0], expected, rtol=1e-12)
    # Executions happened exactly once per request: no double execution.
    assert svc.stats.executions == len(resps)


def test_deadline_storm_loses_nothing():
    """Aggressive deadlines expire structurally; the rest complete."""

    async def scenario():
        svc = _service()
        batch = [
            svc.compile(_module(), deadline=1e-4 if i % 2 else None)
            for i in range(8)
        ]
        resps = await asyncio.gather(*batch)
        await svc.drain()
        return svc, resps

    svc, resps = asyncio.run(scenario())
    _assert_accounting(svc, resps, 8)
    assert any(r.status == "deadline" for r in resps)
    assert any(r.ok for r in resps)
    # The shared flight survived the impatient waiters.
    assert svc.stats.compiles_started == 1
