"""Unit tests for the type system."""

import pytest

from repro.ir.types import (
    DYNAMIC,
    F32Type,
    F64Type,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    TensorType,
    VectorType,
    f32,
    f64,
    i1,
    i32,
    i64,
    index,
    memref_of,
    tensor_of,
    vector_of,
)


class TestScalarTypes:
    def test_singletons_equal_fresh_instances(self):
        assert index == IndexType()
        assert f64 == F64Type()
        assert f32 == F32Type()
        assert i64 == IntegerType(64)

    def test_distinct_types_unequal(self):
        assert f64 != f32
        assert i32 != i64
        assert index != i64
        assert f64 != index

    def test_integer_width_validation(self):
        with pytest.raises(ValueError):
            IntegerType(0)
        with pytest.raises(ValueError):
            IntegerType(-8)

    def test_hashable_and_usable_as_dict_key(self):
        table = {f64: "double", i1: "bool", index: "idx"}
        assert table[F64Type()] == "double"
        assert table[IntegerType(1)] == "bool"

    def test_str(self):
        assert str(f64) == "f64"
        assert str(i32) == "i32"
        assert str(index) == "index"
        assert str(NoneType()) == "none"


class TestShapedTypes:
    def test_tensor_str_and_shape(self):
        t = TensorType([2, 3], f64)
        assert str(t) == "tensor<2x3xf64>"
        assert t.rank == 2
        assert t.has_static_shape()
        assert t.num_elements() == 6

    def test_dynamic_dims(self):
        t = TensorType([1, DYNAMIC, DYNAMIC], f64)
        assert str(t) == "tensor<1x?x?xf64>"
        assert not t.has_static_shape()
        assert t.is_dynamic_dim(1)
        assert not t.is_dynamic_dim(0)
        with pytest.raises(ValueError):
            t.num_elements()

    def test_invalid_negative_dim(self):
        with pytest.raises(ValueError):
            TensorType([2, -3], f64)

    def test_memref_vs_tensor_unequal(self):
        assert TensorType([4], f64) != MemRefType([4], f64)

    def test_vector_requires_static_shape(self):
        with pytest.raises(ValueError):
            VectorType([DYNAMIC], f64)
        v = VectorType([8], f64)
        assert str(v) == "vector<8xf64>"

    def test_rank0_tensor(self):
        t = TensorType([], f64)
        assert t.rank == 0
        assert str(t) == "tensor<f64>"
        assert t.num_elements() == 1

    def test_equality_is_structural(self):
        assert TensorType([2, 2], f64) == TensorType([2, 2], f64)
        assert TensorType([2, 2], f64) != TensorType([2, 2], f32)
        assert TensorType([2, 2], f64) != TensorType([2, 3], f64)

    def test_convenience_constructors_default_f64(self):
        assert tensor_of([5]).element_type == f64
        assert memref_of([5]).element_type == f64
        assert vector_of(8) == VectorType([8], f64)


class TestFunctionType:
    def test_single_result_str(self):
        ft = FunctionType([f64, f64], [f64])
        assert str(ft) == "(f64, f64) -> f64"

    def test_multi_result_str(self):
        ft = FunctionType([index], [index, index])
        assert str(ft) == "(index) -> (index, index)"

    def test_no_result_str(self):
        ft = FunctionType([f64], [])
        assert str(ft) == "(f64) -> ()"

    def test_equality(self):
        assert FunctionType([f64], [f64]) == FunctionType([f64], [f64])
        assert FunctionType([f64], [f64]) != FunctionType([f32], [f64])
