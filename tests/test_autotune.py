"""Tests for the L2-bounded tile-size autotuner (§2.1)."""

import pytest

from repro.core.autotune import (
    autotune,
    candidate_tile_sizes,
    model_cost,
    timed_measure,
)
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
)
from repro.core.tiling import tile_footprint_bytes


class TestCandidates:
    def test_all_candidates_fit_cache(self):
        cands = candidate_tile_sizes(
            gauss_seidel_5pt_2d(), (512, 512), cache_bytes=64 * 1024
        )
        assert cands
        for c in cands:
            assert tile_footprint_bytes(c, nb_var=1) <= 64 * 1024

    def test_all_candidates_legal(self):
        cands = candidate_tile_sizes(gauss_seidel_9pt_2d(), (256, 256))
        assert cands
        # The in-place restriction: every 9pt candidate has leading size 1.
        assert all(c[0] == 1 for c in cands)

    def test_candidates_bounded_by_domain(self):
        cands = candidate_tile_sizes(gauss_seidel_5pt_2d(), (16, 16))
        assert all(c[0] <= 16 and c[1] <= 16 for c in cands)

    def test_nb_var_shrinks_pool(self):
        small = candidate_tile_sizes(
            gauss_seidel_6pt_3d(), (64, 64, 64), nb_var=5,
            cache_bytes=256 * 1024,
        )
        large = candidate_tile_sizes(
            gauss_seidel_6pt_3d(), (64, 64, 64), nb_var=1,
            cache_bytes=256 * 1024,
        )
        assert len(small) < len(large)


class TestModelCost:
    def test_prefers_vf_multiple_innermost(self):
        p = gauss_seidel_5pt_2d()
        aligned = model_cost((32, 64), p, vf=8)
        ragged = model_cost((32, 60), p, vf=8)
        assert aligned < ragged

    def test_penalizes_thin_tiles(self):
        p = gauss_seidel_5pt_2d()
        # Same volume, higher surface-to-volume for the thin shape.
        assert model_cost((2, 128), p, vf=8) > model_cost((16, 16), p, vf=8)


class TestAutotune:
    def test_model_based_choice_is_legal_and_cached(self):
        result = autotune(gauss_seidel_9pt_2d(), (512, 512))
        assert result.tile_sizes[0] == 1
        assert result.candidates_tried == len(result.trace)
        assert result.cost == min(c for _, c in result.trace)

    def test_measured_mode_picks_minimum(self):
        costs = {}

        def fake_measure(sizes):
            # Pretend (4, 8) is the fastest.
            cost = 0.1 if sizes == (4, 8) else 1.0
            costs[sizes] = cost
            return cost

        result = autotune(
            gauss_seidel_5pt_2d(), (8, 8), measure=fake_measure
        )
        assert result.tile_sizes == (4, 8)
        assert result.cost == 0.1

    def test_max_candidates_truncates(self):
        result = autotune(
            gauss_seidel_5pt_2d(), (256, 256), max_candidates=5
        )
        assert result.candidates_tried == 5

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError, match="cache"):
            autotune(
                gauss_seidel_5pt_2d(), (64, 64), cache_bytes=8
            )

    def test_timed_measure_runs_kernel(self):
        calls = []

        def factory(sizes):
            def run():
                calls.append(sizes)

            return run

        measure = timed_measure(factory, repeats=2)
        t = measure((4, 4))
        assert t >= 0
        assert calls == [(4, 4)] * 2
