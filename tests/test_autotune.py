"""Tests for the L2-bounded tile-size autotuner (§2.1)."""

import pytest

from repro.core.autotune import (
    autotune,
    candidate_tile_sizes,
    static_cost,
    timed_measure,
)
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
)
from repro.core.tiling import tile_footprint_bytes
from repro.machine.model import PY_NUMPY_BACKEND, XEON_6152


class TestCandidates:
    def test_all_candidates_fit_cache(self):
        cands = candidate_tile_sizes(
            gauss_seidel_5pt_2d(), (512, 512), cache_bytes=64 * 1024
        )
        assert cands
        for c in cands:
            assert tile_footprint_bytes(c, nb_var=1) <= 64 * 1024

    def test_all_candidates_legal(self):
        cands = candidate_tile_sizes(gauss_seidel_9pt_2d(), (256, 256))
        assert cands
        # The in-place restriction: every 9pt candidate has leading size 1.
        assert all(c[0] == 1 for c in cands)

    def test_candidates_bounded_by_domain(self):
        cands = candidate_tile_sizes(gauss_seidel_5pt_2d(), (16, 16))
        assert all(c[0] <= 16 and c[1] <= 16 for c in cands)

    def test_nb_var_shrinks_pool(self):
        small = candidate_tile_sizes(
            gauss_seidel_6pt_3d(), (64, 64, 64), nb_var=5,
            cache_bytes=256 * 1024,
        )
        large = candidate_tile_sizes(
            gauss_seidel_6pt_3d(), (64, 64, 64), nb_var=1,
            cache_bytes=256 * 1024,
        )
        assert len(small) < len(large)

    def test_cache_bound_defaults_to_machine_l2(self):
        explicit = candidate_tile_sizes(
            gauss_seidel_5pt_2d(), (512, 512),
            cache_bytes=XEON_6152.l2_bytes,
        )
        defaulted = candidate_tile_sizes(
            gauss_seidel_5pt_2d(), (512, 512), machine=XEON_6152
        )
        assert explicit == defaulted


class TestStaticCost:
    """The prover-backed cost that replaced the ad-hoc closed form."""

    def test_prefers_vf_multiple_innermost(self):
        p = gauss_seidel_5pt_2d()
        aligned = static_cost(
            (32, 64), p, (512, 512), vf=8, machine=PY_NUMPY_BACKEND
        )
        ragged = static_cost(
            (32, 60), p, (512, 512), vf=8, machine=PY_NUMPY_BACKEND
        )
        assert aligned < ragged

    def test_penalizes_short_innermost_tiles(self):
        p = gauss_seidel_5pt_2d()
        # Same volume; the short innermost extent wastes vector lanes and
        # multiplies per-call overhead.
        thin = static_cost(
            (128, 2), p, (512, 512), vf=8, machine=PY_NUMPY_BACKEND
        )
        square = static_cost(
            (16, 16), p, (512, 512), vf=8, machine=PY_NUMPY_BACKEND
        )
        assert thin > square

    def test_cost_is_seconds_and_positive(self):
        cost = static_cost(
            (16, 32), gauss_seidel_5pt_2d(), (128, 128),
            machine=PY_NUMPY_BACKEND,
        )
        assert 0 < cost < 60.0

    def test_more_halo_traffic_costs_more(self):
        p = gauss_seidel_5pt_2d()
        # Thin leading tiles re-read whole rows of halo per tile.
        thin = static_cost(
            (1, 256), p, (512, 512), machine=PY_NUMPY_BACKEND
        )
        fat = static_cost(
            (64, 256), p, (512, 512), machine=PY_NUMPY_BACKEND
        )
        assert thin > fat


class TestAutotune:
    def test_static_choice_is_legal_and_traced(self):
        result = autotune(
            gauss_seidel_9pt_2d(), (512, 512), machine=PY_NUMPY_BACKEND
        )
        assert result.tile_sizes[0] == 1
        assert result.candidates_tried == len(result.trace)
        assert result.cost == min(c for _, c in result.trace)

    def test_measured_mode_picks_minimum(self):
        costs = {}

        def fake_measure(sizes):
            # Pretend (4, 8) is the fastest.
            cost = 0.1 if sizes == (4, 8) else 1.0
            costs[sizes] = cost
            return cost

        result = autotune(
            gauss_seidel_5pt_2d(), (8, 8), measure=fake_measure
        )
        assert result.tile_sizes == (4, 8)
        assert result.cost == 0.1

    def test_max_candidates_truncates(self):
        result = autotune(
            gauss_seidel_5pt_2d(), (256, 256), max_candidates=5,
            machine=PY_NUMPY_BACKEND,
        )
        assert result.candidates_tried == 5

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError, match="cache"):
            autotune(
                gauss_seidel_5pt_2d(), (64, 64), cache_bytes=8
            )

    def test_timed_measure_runs_kernel(self):
        calls = []

        def factory(sizes):
            def run():
                calls.append(sizes)

            return run

        measure = timed_measure(factory, repeats=2)
        t = measure((4, 4))
        assert t >= 0
        assert calls == [(4, 4)] * 2
