"""The translation validator: schedules, certificates, and the corpus.

Covers the symbolic-schedule machinery (`repro.ir.schedule`), the
instance extraction over every supported IR form, the certificate
plumbing through `PassManager`/`CompileOptions`, and the acceptance
criterion: every canonical example pipeline certifies clean after every
pass with ``validate_passes=True``.
"""

import dataclasses

import pytest

from repro.analysis.corpus import build_corpus
from repro.analysis.tv import (
    TranslationValidationError,
    TranslationValidator,
    capture_reference,
    find_site_roots,
)
from repro.core import frontend
from repro.core.bufferization import BufferizePass
from repro.core.lowering import LowerStencilsPass
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.core.tiling import TileStencilsPass
from repro.core.vectorization import VectorizeStencilsPass
from repro.ir import PassManager
from repro.ir.attributes import BoolAttr
from repro.ir.schedule import (
    AFTER,
    BEFORE,
    CONCURRENT,
    PAR,
    SEQ,
    compare_timestamps,
    render_timestamp,
)


def _module(n=24):
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (n, n), frontend.identity_body(4.0)
    )


class TestTimestamps:
    def test_sequential_lexicographic(self):
        assert compare_timestamps(((SEQ, 1),), ((SEQ, 2),)) == BEFORE
        assert compare_timestamps(((SEQ, 2),), ((SEQ, 1),)) == AFTER
        assert compare_timestamps(
            ((SEQ, 1), (SEQ, 9)), ((SEQ, 2), (SEQ, 0))
        ) == BEFORE

    def test_parallel_components_are_concurrent(self):
        assert compare_timestamps(((PAR, 1),), ((PAR, 2),)) == CONCURRENT
        # A shared sequential prefix still orders distinct groups.
        assert compare_timestamps(
            ((SEQ, 0), (PAR, 1)), ((SEQ, 1), (PAR, 0))
        ) == BEFORE

    def test_equal_and_prefix_are_concurrent(self):
        ts = ((SEQ, 1), (SEQ, 2))
        assert compare_timestamps(ts, ts) == CONCURRENT
        assert compare_timestamps(((SEQ, 1),), ts) == CONCURRENT

    def test_flag_mismatch_is_conservative(self):
        assert compare_timestamps(((SEQ, 1),), ((PAR, 1),)) == CONCURRENT

    def test_render(self):
        assert render_timestamp(((SEQ, 0), (PAR, 7), (SEQ, -1))) == (
            "s0.p7.s-1"
        )


class TestCaptureAndSites:
    def test_capture_stamps_and_finds_sites(self):
        module = _module()
        sites = capture_reference(module)
        assert len(sites) == 1
        (site,) = sites
        assert site.box == ((1, 23), (1, 23))
        assert site.nv == 1
        assert site.flow_offsets == [(-1, 0), (0, -1)]
        roots = find_site_roots(module)
        assert [tv_id for tv_id, _ in roots] == [0]

    def test_stamp_survives_tiling_and_lowering(self):
        module = _module()
        capture_reference(module)
        TileStencilsPass((12, 12), with_groups=False, level=0).run(module)
        assert [i for i, _ in find_site_roots(module)] == [0]
        LowerStencilsPass().run(module)
        assert [i for i, _ in find_site_roots(module)] == [0]

    def test_stamp_survives_bufferization(self):
        module = _module()
        capture_reference(module)
        LowerStencilsPass().run(module)
        BufferizePass().run(module)
        assert [i for i, _ in find_site_roots(module)] == [0]

    def test_stamp_survives_vectorization(self):
        module = _module()
        capture_reference(module)
        VectorizeStencilsPass(8).run(module)
        assert [i for i, _ in find_site_roots(module)] == [0]


class TestValidator:
    def test_frontend_baseline_certifies(self):
        module = _module()
        tv = TranslationValidator()
        tv.begin(module)
        (cert,) = tv.certificates
        assert cert["after_pass"] == "frontend"
        assert cert["violations"] == 0
        (site,) = cert["sites"]
        assert site["status"] == "certified"
        assert site["cells"] == 22 * 22
        assert site["flow_edges"] > 0

    def test_fail_fast_raises_naming_the_pass(self):
        module = _module()
        tv = TranslationValidator()  # fail_fast by default
        tv.begin(module)
        TileStencilsPass((12, 12), with_groups=False, level=0).run(module)
        loop = next(o for o in module.walk() if o.name == "cfd.tiled_loop")
        loop.attributes["reverse"] = BoolAttr(not loop.reverse)
        with pytest.raises(TranslationValidationError) as exc:
            tv.after_pass(module, "tile-stencils")
        assert exc.value.after_pass == "tile-stencils"
        assert "TV001" in str(exc.value)
        assert "[t=" in str(exc.value)

    def test_lost_site_is_tv005(self):
        module = _module()
        tv = TranslationValidator(fail_fast=False)
        tv.begin(module)
        op = next(o for o in module.walk() if o.name == "cfd.stencilOp")
        op.result().replace_all_uses_with(op.y_init)
        op.erase()
        tv.after_pass(module, "dce")
        assert "TV005" in {d.code for d in tv.report.diagnostics}

    def test_instance_limit_degrades_to_note(self):
        module = _module()
        tv = TranslationValidator(fail_fast=False, instance_limit=10)
        tv.begin(module)
        diags = tv.report.diagnostics
        assert diags and all(d.code == "TV006" for d in diags)
        assert all(d.severity == "note" for d in diags)
        (cert,) = tv.certificates
        assert cert["sites"][0]["status"] == "skipped"


class TestPipelineIntegration:
    OPTIONS = CompileOptions(
        subdomain_sizes=(12, 12),
        tile_sizes=(4, 8),
        fuse=True,
        parallel=True,
        vectorize=8,
        validate_passes=True,
        use_cache=False,
    )

    def test_validator_timed_in_pass_manager(self):
        compiler = StencilCompiler(self.OPTIONS)
        compiler.lower(_module())
        pm = compiler.pass_manager
        assert PassManager.VALIDATE_TIMING_KEY in pm.timings
        # begin + one snapshot per pass.
        assert pm.invocations[PassManager.VALIDATE_TIMING_KEY] == (
            len(pm.passes) + 1
        )
        report = pm.timing_report()
        assert PassManager.VALIDATE_TIMING_KEY in report
        assert f"x{len(pm.passes) + 1}" in report

    def test_certificates_cover_every_pass(self):
        compiler = StencilCompiler(self.OPTIONS)
        compiler.lower(_module())
        tv = compiler.pass_manager.validator
        labels = [c["after_pass"] for c in tv.certificates]
        assert labels[0] == "frontend"
        assert labels[1:] == [p.name for p in compiler.pass_manager.passes]
        assert all(c["violations"] == 0 for c in tv.certificates)

    def test_validate_passes_reaches_cache_key(self):
        on = dataclasses.replace(self.OPTIONS, validate_passes=True)
        off = dataclasses.replace(self.OPTIONS, validate_passes=False)
        assert on.cache_key() != off.cache_key()


def _corpus_entries():
    for stem, entries in build_corpus().items():
        for i, entry in enumerate(entries):
            yield pytest.param(entry, id=f"{stem}-{i}")


class TestCorpusCertifiesClean:
    """The acceptance criterion: all canonical example pipelines pass
    per-pass translation validation with zero violations and zero
    degraded (TV006) sites."""

    @pytest.mark.parametrize("entry", _corpus_entries())
    def test_entry_certifies_clean(self, entry):
        options = dataclasses.replace(
            entry.options, validate_passes=True, use_cache=False
        )
        compiler = StencilCompiler(options)
        compiler.lower(entry.build())  # fail-fast: raises on violation
        tv = compiler.pass_manager.validator
        assert tv.certificates
        assert all(c["violations"] == 0 for c in tv.certificates)
        assert not tv.report.diagnostics  # not even TV006 notes
        for cert in tv.certificates:
            assert all(
                s["status"] == "certified" for s in cert["sites"]
            ), cert
