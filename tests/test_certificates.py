"""The verification-certificate memo (`repro.codegen.certificates`).

A fingerprint certified clean must not pay for the analysis gate, the
translation validator or the parallel race check again — even when the
kernel cache itself misses (cleared, evicted, or a fresh process with a
shared memo)."""

import numpy as np

from repro.codegen.cache import KernelCache, set_default_cache
from repro.codegen.certificates import (
    Certificate,
    CertificateMemo,
    default_memo,
    set_default_memo,
)
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d

import pytest


@pytest.fixture(autouse=True)
def _fresh_state():
    prev_cache = set_default_cache(KernelCache())
    prev_memo = set_default_memo(CertificateMemo())
    yield
    set_default_cache(prev_cache)
    set_default_memo(prev_memo)


def _module():
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
    )


def _options(**overrides):
    base = dict(
        subdomain_sizes=(4, 4), tile_sizes=(2, 2), fuse=True, vectorize=4,
    )
    base.update(overrides)
    return CompileOptions(**base)


class TestCertificate:
    def test_covers_gate(self):
        cert = Certificate(check_levels={"after-pipeline"})
        assert cert.covers_gate("off")
        assert cert.covers_gate("after-pipeline")
        assert not cert.covers_gate("after-every-pass")
        # A per-pass record subsumes the end-of-pipeline gate.
        strict = Certificate(check_levels={"after-every-pass"})
        assert strict.covers_gate("after-pipeline")
        assert strict.covers_gate("after-every-pass")
        assert not Certificate().covers_gate("after-pipeline")

    def test_record_widens(self):
        memo = CertificateMemo()
        memo.record("fp", check_level="after-pipeline")
        memo.record("fp", validated=True)
        memo.record("fp", parallel_clean=True)
        cert = memo.peek("fp")
        assert cert.check_levels == {"after-pipeline"}
        assert cert.validated
        assert cert.parallel_clean is True
        assert len(memo) == 1


class TestMemoSkipsVerification:
    def test_gate_skipped_on_certified_recompile(self):
        options = _options(check_level="after-pipeline")
        compiler = StencilCompiler(options)
        compiler.compile(_module())
        assert compiler.pass_manager.gate is not None

        # Kernel cache cleared, memo kept: the pipeline re-runs but the
        # gate must not.
        set_default_cache(KernelCache())
        again = StencilCompiler(options)
        again.compile(_module())
        assert again.pass_manager.gate is None
        assert default_memo().stats.hits >= 1

    def test_validator_skipped_on_certified_recompile(self):
        options = _options(validate_passes=True)
        compiler = StencilCompiler(options)
        compiler.compile(_module())
        assert compiler.pass_manager.validator is not None

        set_default_cache(KernelCache())
        again = StencilCompiler(options)
        again.compile(_module())
        assert again.pass_manager.validator is None

    def test_parallel_certificate_reused(self):
        options = _options(parallel=True)
        kernel = StencilCompiler(options).compile(_module())
        assert kernel.parallel_certified
        assert default_memo().stats.records == 1

        set_default_cache(KernelCache())
        kernel2 = StencilCompiler(options).compile(_module())
        assert kernel2.parallel_certified
        # Re-certified from the memo, not a second analysis record.
        assert default_memo().stats.records == 1

    def test_different_options_do_not_share_certificates(self):
        StencilCompiler(
            _options(check_level="after-pipeline")
        ).compile(_module())
        set_default_cache(KernelCache())
        other = StencilCompiler(
            _options(check_level="after-pipeline", vectorize=8)
        )
        other.compile(_module())
        # Different fingerprint: the gate ran again.
        assert other.pass_manager.gate is not None
        assert len(default_memo()) == 2

    def test_stricter_request_not_covered_by_weaker_record(self):
        StencilCompiler(
            _options(check_level="after-pipeline")
        ).compile(_module())
        set_default_cache(KernelCache())
        # Same options except the (stricter) check level -> different
        # fingerprint and a fresh gate run anyway; the point is that no
        # false sharing can occur through cache_key().
        strict = StencilCompiler(_options(check_level="after-every-pass"))
        strict.compile(_module())
        assert strict.pass_manager.gate is not None

    def test_certified_compile_is_numerically_unchanged(self):
        options = _options(
            check_level="after-pipeline", validate_passes=True
        )
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 8, 8))
        b = rng.standard_normal((1, 8, 8))
        k1 = StencilCompiler(options).compile(_module())
        (out1,) = k1(x.copy(), b.copy(), x.copy())
        set_default_cache(KernelCache())
        k2 = StencilCompiler(options).compile(_module())
        (out2,) = k2(x.copy(), b.copy(), x.copy())
        assert np.array_equal(out1, out2)
