"""The verification-certificate memo (`repro.codegen.certificates`).

A fingerprint certified clean must not pay for the analysis gate, the
translation validator or the parallel race check again — even when the
kernel cache itself misses (cleared, evicted, or a fresh process with a
shared memo)."""

import numpy as np

from repro.codegen.cache import KernelCache, set_default_cache
from repro.codegen.certificates import (
    Certificate,
    CertificateMemo,
    default_memo,
    set_default_memo,
)
from repro.core import frontend
from repro.core.pipeline import CompileOptions, StencilCompiler
from repro.core.stencil import gauss_seidel_5pt_2d

import pytest


@pytest.fixture(autouse=True)
def _fresh_state():
    prev_cache = set_default_cache(KernelCache())
    prev_memo = set_default_memo(CertificateMemo())
    yield
    set_default_cache(prev_cache)
    set_default_memo(prev_memo)


def _module():
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (8, 8), frontend.identity_body(4.0)
    )


def _options(**overrides):
    base = dict(
        subdomain_sizes=(4, 4), tile_sizes=(2, 2), fuse=True, vectorize=4,
    )
    base.update(overrides)
    return CompileOptions(**base)


class TestCertificate:
    def test_covers_gate(self):
        cert = Certificate(check_levels={"after-pipeline"})
        assert cert.covers_gate("off")
        assert cert.covers_gate("after-pipeline")
        assert not cert.covers_gate("after-every-pass")
        # A per-pass record subsumes the end-of-pipeline gate.
        strict = Certificate(check_levels={"after-every-pass"})
        assert strict.covers_gate("after-pipeline")
        assert strict.covers_gate("after-every-pass")
        assert not Certificate().covers_gate("after-pipeline")

    def test_record_widens(self):
        memo = CertificateMemo()
        memo.record("fp", check_level="after-pipeline")
        memo.record("fp", validated=True)
        memo.record("fp", parallel_clean=True)
        cert = memo.peek("fp")
        assert cert.check_levels == {"after-pipeline"}
        assert cert.validated
        assert cert.parallel_clean is True
        assert len(memo) == 1


class TestMemoSkipsVerification:
    def test_gate_skipped_on_certified_recompile(self):
        options = _options(check_level="after-pipeline")
        compiler = StencilCompiler(options)
        compiler.compile(_module())
        assert compiler.pass_manager.gate is not None

        # Kernel cache cleared, memo kept: the pipeline re-runs but the
        # gate must not.
        set_default_cache(KernelCache())
        again = StencilCompiler(options)
        again.compile(_module())
        assert again.pass_manager.gate is None
        assert default_memo().stats.hits >= 1

    def test_validator_skipped_on_certified_recompile(self):
        options = _options(validate_passes=True)
        compiler = StencilCompiler(options)
        compiler.compile(_module())
        assert compiler.pass_manager.validator is not None

        set_default_cache(KernelCache())
        again = StencilCompiler(options)
        again.compile(_module())
        assert again.pass_manager.validator is None

    def test_parallel_certificate_reused(self):
        options = _options(parallel=True)
        kernel = StencilCompiler(options).compile(_module())
        assert kernel.parallel_certified
        assert default_memo().stats.records == 1

        set_default_cache(KernelCache())
        kernel2 = StencilCompiler(options).compile(_module())
        assert kernel2.parallel_certified
        # Re-certified from the memo, not a second analysis record.
        assert default_memo().stats.records == 1

    def test_different_options_do_not_share_certificates(self):
        StencilCompiler(
            _options(check_level="after-pipeline")
        ).compile(_module())
        set_default_cache(KernelCache())
        other = StencilCompiler(
            _options(check_level="after-pipeline", vectorize=8)
        )
        other.compile(_module())
        # Different fingerprint: the gate ran again.
        assert other.pass_manager.gate is not None
        assert len(default_memo()) == 2

    def test_stricter_request_not_covered_by_weaker_record(self):
        StencilCompiler(
            _options(check_level="after-pipeline")
        ).compile(_module())
        set_default_cache(KernelCache())
        # Same options except the (stricter) check level -> different
        # fingerprint and a fresh gate run anyway; the point is that no
        # false sharing can occur through cache_key().
        strict = StencilCompiler(_options(check_level="after-every-pass"))
        strict.compile(_module())
        assert strict.pass_manager.gate is not None

    def test_certified_compile_is_numerically_unchanged(self):
        options = _options(
            check_level="after-pipeline", validate_passes=True
        )
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 8, 8))
        b = rng.standard_normal((1, 8, 8))
        k1 = StencilCompiler(options).compile(_module())
        (out1,) = k1(x.copy(), b.copy(), x.copy())
        set_default_cache(KernelCache())
        k2 = StencilCompiler(options).compile(_module())
        (out2,) = k2(x.copy(), b.copy(), x.copy())
        assert np.array_equal(out1, out2)


class TestDiskTier:
    """The checksummed, quarantined disk tier (PR 10): certificates
    survive process boundaries and corruption fails safe."""

    def _cert_files(self, tmp_path):
        return sorted(tmp_path.glob("*.cert.json"))

    def test_record_writes_through_and_survives_restart(self, tmp_path):
        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("f" * 64, check_level="after-pipeline", validated=True)
        assert len(self._cert_files(tmp_path)) == 1
        # A "new process": fresh memo over the same directory.
        reborn = CertificateMemo(disk_dir=tmp_path)
        cert = reborn.get("f" * 64)
        assert cert is not None
        assert cert.covers_gate("after-pipeline")
        assert cert.validated
        assert reborn.stats.disk_hits == 1

    def test_memory_tier_still_hits_first(self, tmp_path):
        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("a" * 64, validated=True)
        self._cert_files(tmp_path)[0].unlink()  # disk gone
        assert memo.get("a" * 64) is not None  # memory still serves
        assert memo.stats.disk_hits == 0

    def test_widening_rewrites_the_disk_entry(self, tmp_path):
        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("b" * 64, check_level="after-pipeline")
        memo.record("b" * 64, validated=True)
        reborn = CertificateMemo(disk_dir=tmp_path)
        cert = reborn.get("b" * 64)
        assert cert.covers_gate("after-pipeline") and cert.validated

    def test_truncated_entry_quarantined_once(self, tmp_path):
        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("c" * 64, validated=True)
        path = self._cert_files(tmp_path)[0]
        path.write_text(path.read_text()[:20])  # torn write
        reborn = CertificateMemo(disk_dir=tmp_path)
        assert reborn.get("c" * 64) is None
        assert reborn.stats.quarantined == 1
        assert not self._cert_files(tmp_path)  # moved aside
        assert (tmp_path / "quarantine" / path.name).exists()
        # Quarantine is terminal: the next miss is clean, not a re-trip.
        assert reborn.get("c" * 64) is None
        assert reborn.stats.quarantined == 1
        codes = [d.code for d in reborn.events()]
        assert codes == ["RS004"]

    def test_checksum_mismatch_quarantined(self, tmp_path):
        import json as _json

        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("d" * 64, validated=True)
        path = self._cert_files(tmp_path)[0]
        wrapper = _json.loads(path.read_text())
        wrapper["cert"]["validated"] = False  # flipped bit, stale sum
        path.write_text(_json.dumps(wrapper))
        reborn = CertificateMemo(disk_dir=tmp_path)
        assert reborn.get("d" * 64) is None
        assert reborn.stats.quarantined == 1
        assert reborn.quarantine_log[0][1].startswith(
            "CorruptCertificateEntry"
        )

    def test_schema_skew_quarantined(self, tmp_path):
        import json as _json

        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("e" * 64, validated=True)
        path = self._cert_files(tmp_path)[0]
        wrapper = _json.loads(path.read_text())
        wrapper["schema"] = 999
        path.write_text(_json.dumps(wrapper))
        reborn = CertificateMemo(disk_dir=tmp_path)
        assert reborn.get("e" * 64) is None
        assert reborn.stats.quarantined == 1

    def test_injected_write_fault_degrades_to_memory_only(self, tmp_path):
        from repro.runtime.resilience import FaultPlan, FaultSpec, injected

        memo = CertificateMemo(disk_dir=tmp_path)
        plan = FaultPlan([FaultSpec(
            "cache.disk-write", at=1, match={"kind": "certificate"},
        )])
        with injected(plan):
            memo.record("1" * 64, validated=True)
        assert plan.fired
        assert memo.stats.disk_errors == 1
        assert not self._cert_files(tmp_path)  # nothing written
        assert memo.get("1" * 64) is not None  # memory unaffected

    def test_injected_read_fault_is_a_miss_not_a_crash(self, tmp_path):
        from repro.runtime.resilience import FaultPlan, FaultSpec, injected

        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("2" * 64, validated=True)
        reborn = CertificateMemo(disk_dir=tmp_path)
        plan = FaultPlan([FaultSpec(
            "cache.disk-read", at=1, match={"kind": "certificate"},
        )])
        with injected(plan):
            assert reborn.get("2" * 64) is None
        assert plan.fired
        assert reborn.stats.disk_errors == 1
        # The entry itself is intact: a clean read still hits.
        assert reborn.get("2" * 64) is not None

    def test_clear_disk_false_keeps_entries(self, tmp_path):
        memo = CertificateMemo(disk_dir=tmp_path)
        memo.record("3" * 64, validated=True)
        memo.clear()
        assert len(memo) == 0
        assert memo.get("3" * 64) is not None  # reloaded from disk
        memo.clear(disk=True)
        memo.clear()
        assert memo.get("3" * 64) is None

    def test_validation_skipped_across_processes(self, tmp_path):
        """The service's warm verified path: a validated pipeline in
        'process one' never re-validates in 'process two'."""
        options = _options(check_level="after-pipeline",
                           validate_passes=True)
        set_default_memo(CertificateMemo(disk_dir=tmp_path))
        first = StencilCompiler(options)
        first.compile(_module())
        assert first.pass_manager.gate is not None
        # Process two: fresh memo (same dir), fresh kernel cache.
        set_default_memo(CertificateMemo(disk_dir=tmp_path))
        set_default_cache(KernelCache())
        second = StencilCompiler(options)
        second.compile(_module())
        assert second.pass_manager.gate is None  # certificate skipped it
        assert default_memo().stats.disk_hits >= 1
