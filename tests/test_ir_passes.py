"""Tests for the verifier, the rewrite driver and the pass manager."""

import pytest

from repro.ir.block import Block, single_block_region
from repro.ir.builder import OpBuilder
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation, create_operation
from repro.ir.pass_manager import Pass, PassManager
from repro.ir.rewriter import (
    PatternRewriter,
    RewritePattern,
    apply_patterns_greedily,
)
from repro.ir.types import f64
from repro.ir.verifier import IRVerificationError, verify


def _module_with(ops_builder):
    module = ModuleOp.create()
    ops_builder(OpBuilder.at_end(module.body), module.body)
    return module


class TestVerifier:
    def test_valid_module_passes(self):
        def build(builder, body):
            a = builder.create("test.def", result_types=[f64])
            builder.create("test.use", [a.result()])

        verify(_module_with(build))

    def test_use_before_def_rejected(self):
        module = ModuleOp.create()
        a = create_operation("test.def", result_types=[f64])
        use = create_operation("test.use", [a.result()])
        module.body.append(use)
        module.body.append(a)
        with pytest.raises(IRVerificationError, match="dominate"):
            verify(module)

    def test_nested_region_sees_outer_values(self):
        def build(builder, body):
            a = builder.create("test.def", result_types=[f64])
            region = single_block_region()
            loop = builder.create("test.loop", regions=[region])
            inner = OpBuilder.at_end(region.entry_block)
            inner.create("test.use", [a.result()])

        verify(_module_with(build))

    def test_outer_cannot_see_inner_values(self):
        module = ModuleOp.create()
        builder = OpBuilder.at_end(module.body)
        region = single_block_region()
        builder.create("test.loop", regions=[region])
        inner = OpBuilder.at_end(region.entry_block)
        hidden = inner.create("test.def", result_types=[f64])
        builder.create("test.use", [hidden.result()])
        with pytest.raises(IRVerificationError, match="dominate"):
            verify(module)

    def test_corrupt_use_def_detected(self):
        def build(builder, body):
            a = builder.create("test.def", result_types=[f64])
            builder.create("test.use", [a.result()])

        module = _module_with(build)
        # Corrupt the chain behind the API's back.
        definer = module.body.operations[0]
        definer.result().uses.clear()
        with pytest.raises(IRVerificationError, match="use-def"):
            verify(module)

    def test_op_specific_verifier_runs(self):
        class BadOp(Operation):
            OP_NAME = "test.bad_unregistered"

            def verify_(self):
                raise ValueError("this op is always invalid")

        module = ModuleOp.create()
        op = Operation.__new__(BadOp)
        Operation.__init__(op, "test.bad_unregistered")
        module.body.append(op)
        with pytest.raises(IRVerificationError, match="always invalid"):
            verify(module)


class _FoldDouble(RewritePattern):
    """Rewrite test.double(x) into arith.addf(x, x)."""

    op_name = "test.double"

    def match_and_rewrite(self, op, rewriter):
        add = rewriter.create("arith.addf", [op.operand(0), op.operand(0)], [f64])
        rewriter.replace_op(op, [add.result()])
        return True


class _EraseDead(RewritePattern):
    op_name = "test.dead"

    def match_and_rewrite(self, op, rewriter):
        rewriter.erase_op(op)
        return True


class TestRewriter:
    def test_replace_op(self):
        def build(builder, body):
            a = builder.create("test.def", result_types=[f64])
            d = builder.create("test.double", [a.result()], [f64])
            builder.create("test.use", [d.result()])

        module = _module_with(build)
        assert apply_patterns_greedily(module, [_FoldDouble()])
        names = [op.name for op in module.body.operations]
        assert names == ["test.def", "arith.addf", "test.use"]
        verify(module)

    def test_fixpoint_over_chain(self):
        def build(builder, body):
            a = builder.create("test.def", result_types=[f64])
            x = a.result()
            for _ in range(4):
                x = builder.create("test.double", [x], [f64]).result()
            builder.create("test.use", [x])

        module = _module_with(build)
        apply_patterns_greedily(module, [_FoldDouble()])
        assert all(op.name != "test.double" for op in module.walk())
        verify(module)

    def test_no_match_returns_false(self):
        module = _module_with(lambda b, _: b.create("test.other"))
        assert not apply_patterns_greedily(module, [_FoldDouble()])

    def test_erase_pattern(self):
        module = _module_with(lambda b, _: b.create("test.dead"))
        apply_patterns_greedily(module, [_EraseDead()])
        assert len(module.body) == 0

    def test_replace_count_mismatch_rejected(self):
        op = create_operation("test.op", result_types=[f64, f64])
        Block().append(op)
        with pytest.raises(ValueError, match="replacement values"):
            PatternRewriter().replace_op(op, [])

    def test_nonconverging_pattern_detected(self):
        class Loop(RewritePattern):
            op_name = "test.spin"

            def match_and_rewrite(self, op, rewriter):
                new = rewriter.create("test.spin")
                rewriter.erase_op(op)
                return True

        module = _module_with(lambda b, _: b.create("test.spin"))
        with pytest.raises(RuntimeError, match="converge"):
            apply_patterns_greedily(module, [Loop()], max_iterations=10)


class TestPassManager:
    def test_runs_in_order_and_times(self):
        order = []

        class P(Pass):
            def __init__(self, name):
                self.name = name

            def run(self, module):
                order.append(self.name)

        pm = PassManager([P("one"), P("two")])
        pm.run(ModuleOp.create())
        assert order == ["one", "two"]
        assert set(pm.timings) == {"one", "two"}
        assert pm.pipeline_description() == "one -> two"

    def test_verify_each_catches_corruption(self):
        class Corrupt(Pass):
            name = "corrupt"

            def run(self, module):
                a = create_operation("test.def", result_types=[f64])
                use = create_operation("test.use", [a.result()])
                module.body.append(use)  # use before def: invalid
                module.body.append(a)

        pm = PassManager([Corrupt()])
        with pytest.raises(RuntimeError, match="after pass 'corrupt'"):
            pm.run(ModuleOp.create())

    def test_verify_each_off(self):
        class Corrupt(Pass):
            name = "corrupt"

            def run(self, module):
                a = create_operation("test.def", result_types=[f64])
                use = create_operation("test.use", [a.result()])
                module.body.append(use)
                module.body.append(a)

        pm = PassManager([Corrupt()], verify_each=False)
        pm.run(ModuleOp.create())  # no exception
