"""The must-fail mutant corpus: every FE code has a kernel that trips it.

``build_frontend_corpus`` carries one deliberately broken kernel per
FE001–FE012; each must produce exactly its expected code, and the good
stems (the ported examples) must analyze, build through the FE012
cross-check, and pass the analysis gate with zero diagnostics.
"""

import pytest

from repro.analysis.diagnostics import REGISTRY
from repro.frontend.corpus import build_frontend_corpus

_CORPUS = build_frontend_corpus()
_MUTANTS = _CORPUS["fe_mutants"]
_GOOD = [
    entry
    for stem, entries in sorted(_CORPUS.items())
    if stem != "fe_mutants"
    for entry in entries
]


def test_corpus_covers_every_fe_code():
    fe_codes = {c for c in REGISTRY if c.startswith("FE")}
    expected = {code for entry in _MUTANTS for code in entry.expect_codes}
    assert expected == fe_codes


@pytest.mark.parametrize("entry", _MUTANTS, ids=lambda e: e.name)
def test_mutant_fails_with_its_code(entry):
    report = entry.run()
    assert report.has_errors, f"{entry.name} analyzed clean"
    codes = {d.code for d in report.diagnostics}
    for code in entry.expect_codes:
        assert code in codes, f"{entry.name}: expected {code}, got {codes}"


@pytest.mark.parametrize("entry", _MUTANTS, ids=lambda e: e.name)
def test_mutant_diagnostics_are_registered(entry):
    report = entry.run()
    for diag in report.diagnostics:
        assert diag.code in REGISTRY


@pytest.mark.parametrize("entry", _GOOD, ids=lambda e: e.name)
def test_good_entry_is_clean(entry):
    report = entry.run()
    assert not report.diagnostics, [
        f"{d.code}: {d.message}" for d in report.diagnostics
    ]


def test_mutant_reports_carry_source_locations():
    # Source-level mutants must point at the offending construct: every
    # frontend diagnostic carries a location and a caret excerpt.
    for entry in _MUTANTS:
        if entry.name.endswith("[FE012]"):
            continue  # cross-check fires on IR, not on a source span
        report = entry.run()
        fe_diags = [d for d in report.diagnostics if d.code.startswith("FE")]
        assert fe_diags
        assert any("^" in (d.excerpt or "") for d in fe_diags), entry.name
