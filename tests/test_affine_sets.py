"""Property tests (issue satellite): the affine library vs brute force.

For randomly generated small affine sets — boxes refined by arbitrary
linear inequalities, equalities and stride (divisibility) constraints —
the symbolic emptiness / containment / overlap verdicts must be exactly
equal to brute-force enumeration over all integer points. The same
oracle covers the block-dependence client: the lex-disjunct
decomposition of :mod:`repro.analysis.affine.blockdep` must list exactly
the violating corner alignments the enumerated §2.1 scan finds.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.affine import AffineSet, AffineUnknown, LinExpr
from repro.analysis.affine.blockdep import (
    block_offset_bounds,
    violating_blocks,
    violation_witness,
)
from repro.analysis.affine.sets import enumerate_points
from repro.analysis.dependence import lex_sign

# ---------------------------------------------------------------------------
# Random small affine sets with a known finite bounding box.
# ---------------------------------------------------------------------------


@st.composite
def boxed_sets(draw, names, bounds, strides=True):
    # Stride constraints add *existential* quotient variables: emptiness,
    # sampling and enumerate_points all quantify them existentially, but
    # contains/overlaps treat every variable as shared — so the pairwise
    # properties are stated (and the provers only use them) on
    # quotient-free sets.
    s = AffineSet.box(names, bounds)
    kinds = ["ge", "eq"] + (["stride"] if strides else [])
    for i in range(draw(st.integers(min_value=0, max_value=3))):
        coeffs = {
            v: draw(st.integers(min_value=-3, max_value=3)) for v in names
        }
        e = LinExpr(draw(st.integers(min_value=-6, max_value=6)), coeffs)
        kind = draw(st.sampled_from(kinds))
        if kind == "ge":
            s = s.and_ge0(e)
        elif kind == "eq":
            s = s.and_eq0(e)
        else:
            s = s.and_stride(
                e, draw(st.integers(min_value=2, max_value=4)), f"q{i}"
            )
    return s


@st.composite
def set_pairs(draw, strides=True):
    rank = draw(st.integers(min_value=1, max_value=3))
    names = [f"x{d}" for d in range(rank)]
    bounds = []
    for _ in range(rank):
        lo = draw(st.integers(min_value=-4, max_value=3))
        hi = lo + draw(st.integers(min_value=0, max_value=5))
        bounds.append((lo, hi))
    a = draw(boxed_sets(names, bounds, strides=strides))
    b = draw(boxed_sets(names, bounds, strides=strides))
    return names, bounds, a, b


def _points(s, names, bounds):
    return {
        tuple(env[v] for v in names)
        for env in enumerate_points([s], names, bounds)
    }


@settings(max_examples=200, deadline=None)
@given(set_pairs())
def test_emptiness_matches_enumeration(case):
    names, bounds, a, _ = case
    assert a.is_empty() == (not _points(a, names, bounds))


@settings(max_examples=200, deadline=None)
@given(set_pairs())
def test_sample_point_is_a_member(case):
    names, bounds, a, _ = case
    env = a.sample_point()
    pts = _points(a, names, bounds)
    if env is None:
        assert not pts
    else:
        assert tuple(env.get(v, 0) for v in names) in pts


@settings(max_examples=200, deadline=None)
@given(set_pairs(strides=False))
def test_containment_matches_enumeration(case):
    names, bounds, a, b = case
    assert a.contains(b) == (_points(b, names, bounds) <= _points(a, names, bounds))


@settings(max_examples=200, deadline=None)
@given(set_pairs(strides=False))
def test_overlap_matches_enumeration(case):
    names, bounds, a, b = case
    assert a.overlaps(b) == bool(
        _points(a, names, bounds) & _points(b, names, bounds)
    )


@settings(max_examples=150, deadline=None)
@given(set_pairs())
def test_bounds_are_exact_extremes(case):
    names, bounds, a, _ = case
    pts = _points(a, names, bounds)
    for d, v in enumerate(names):
        try:
            lo, hi = a.bounds(LinExpr.var(v))
        except AffineUnknown:
            continue  # no verdict claimed: nothing to falsify
        if pts:
            vals = {p[d] for p in pts}
            assert lo == min(vals) and hi == max(vals)


# ---------------------------------------------------------------------------
# The block-dependence client vs the enumerated §2.1 corner scan.
# ---------------------------------------------------------------------------


@st.composite
def block_cases(draw):
    rank = draw(st.integers(min_value=1, max_value=3))
    offset = tuple(
        draw(st.integers(min_value=-5, max_value=5)) for _ in range(rank)
    )
    tiles = tuple(
        draw(st.sampled_from([1, 2, 3, 4, 7, 16])) for _ in range(rank)
    )
    sweep = draw(st.sampled_from([1, -1]))
    return offset, sweep, tiles


def _enumerated_violations(offset, sweep, tiles):
    import itertools

    per_dim = []
    for d in range(len(tiles)):
        lo, hi = block_offset_bounds(offset[d], tiles[d])
        per_dim.append(range(lo, hi + 1))
    return sorted(
        b
        for b in itertools.product(*per_dim)
        if any(c != 0 for c in b)
        and lex_sign(tuple(c * sweep for c in b)) >= 0
    )


@settings(max_examples=300, deadline=None)
@given(block_cases())
def test_lex_disjuncts_match_corner_scan(case):
    offset, sweep, tiles = case
    expected = _enumerated_violations(offset, sweep, tiles)
    assert violating_blocks(offset, sweep, tiles) == expected
    witness = violation_witness(offset, sweep, tiles)
    assert (witness is None) == (not expected)
    if witness is not None:
        assert witness in expected
