"""End-to-end: @stencil programs through the full compilation pipeline,
the frontend-version cache fingerprint, the FE012 gate, and the
``--frontend`` CLI.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.baselines import naive
from repro.core.pipeline import CompileOptions
from repro.core.stencil import StencilPattern
from repro.frontend import FRONTEND_VERSION, FrontendError, stencil


@stencil
def _gs5(u, b, i, j):
    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
               + u[i, j + 1] + u[i + 1, j]) / 4.0


def test_program_compile_matches_naive_reference():
    n, iterations = 34, 3
    # validate_passes runs per-pass translation validation over the
    # frontend-built IR: the CI frontend-lint job leans on this test as
    # its full-pipeline leg.
    options = CompileOptions(
        subdomain_sizes=(16, 16), tile_sizes=(8, 8), fuse=True, vectorize=8,
        validate_passes=True,
    )
    kernel = _gs5.compile((n, n), options=options, iterations=iterations)
    rng = np.random.default_rng(7)
    x = rng.standard_normal((1, n, n))
    b = rng.standard_normal((1, n, n))
    (y,) = kernel(x, b, x.copy())
    expected = x[0].copy()
    for _ in range(iterations):
        expected = naive.gauss_seidel_sweep_python(
            expected, b[0], _gs5.pattern, 4.0
        )
    assert float(np.abs(y[0] - expected).max()) < 1e-10


def test_frontend_version_participates_in_cache_key():
    base = CompileOptions()
    stamped = dataclasses.replace(base, frontend_version=FRONTEND_VERSION)
    assert base.cache_key() != stamped.cache_key()
    assert FRONTEND_VERSION in stamped.cache_key()


def test_compile_respects_explicit_frontend_version():
    # A caller pinning its own frontend_version must not be overridden;
    # compiling still works end-to-end.
    options = CompileOptions(frontend_version="fe-custom", use_cache=False)
    kernel = _gs5.compile((12, 12), options=options)
    x = np.zeros((1, 12, 12))
    (y,) = kernel(x, x, x.copy())
    assert y.shape == (1, 12, 12)


def test_fe012_tamper_gates_build():
    tampered = StencilPattern.from_offsets(
        2, l_offsets=[(-1, 0)], u_offsets=[(0, -1), (0, 1), (1, 0)]
    )
    with pytest.raises(FrontendError) as exc:
        _gs5.build_module((16, 16), _pattern_override=tampered)
    assert any(
        d.code == "FE012" for d in exc.value.report.diagnostics
    )


def test_cli_frontend_examples_pass(capsys):
    rc = analysis_main(["--frontend", "quickstart"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "frontend-linted" in out


def test_cli_frontend_mutants_fail(capsys):
    rc = analysis_main(["--frontend", "fe_mutants"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FE012" in out


def test_cli_frontend_rejects_other_modes(capsys):
    with pytest.raises(SystemExit):
        analysis_main(["--frontend", "--perf"])


def test_cli_frontend_json_is_machine_readable(capsys):
    import json

    rc = analysis_main(["--frontend", "--json", "fe_mutants"])
    out = capsys.readouterr().out
    assert rc == 1
    records = [json.loads(line) for line in out.splitlines() if line]
    codes = {r["code"] for r in records}
    assert {"FE001", "FE012"} <= codes
