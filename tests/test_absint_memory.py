"""The memref-level clients: uninitialized reads (IP013) and the replay
of bufferization's in-place reuse decisions (IP014/IP015)."""

import pytest

from repro.analysis.absint import run_memory_safety
from repro.core import frontend
from repro.core.bufferization import BufferizePass, _Bufferizer
from repro.core.lowering import LowerStencilsPass
from repro.core.stencil import gauss_seidel_5pt_2d
from repro.core.vectorization import VectorizeStencilsPass
from repro.dialects import arith, func, memref, tensor
from repro.ir import ModuleOp, OpBuilder
from repro.ir.attributes import IntegerAttr
from repro.ir.types import FunctionType, MemRefType, TensorType, f64


def _bufferized(vectorize=False):
    module = frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (24, 24), frontend.identity_body(4.0)
    )
    (VectorizeStencilsPass(4) if vectorize else LowerStencilsPass()).run(module)
    BufferizePass().run(module)
    return module


def _codes(module):
    return sorted({d.code for d in run_memory_safety(module).diagnostics})


def _empty_func(name="f", inputs=(), results=()):
    module = ModuleOp.create()
    builder = OpBuilder.at_end(module.body)
    fn = func.FuncOp.build(
        builder, name, FunctionType(list(inputs), list(results))
    )
    return module, fn, OpBuilder.at_end(fn.body)


class TestUninitRead:
    @pytest.mark.parametrize("vectorize", [False, True], ids=["scalar", "vector"])
    def test_bufferized_pipeline_clean(self, vectorize):
        assert _codes(_bufferized(vectorize)) == []

    def test_read_with_no_preceding_write(self):
        module, _, b = _empty_func()
        buf = memref.AllocOp.build(b, MemRefType((4, 4), f64)).result()
        memref.LoadOp.build(
            b, buf, [arith.const_index(b, 1), arith.const_index(b, 2)]
        )
        func.ReturnOp.build(b)
        assert _codes(module) == ["IP013"]
        (diag,) = run_memory_safety(module).diagnostics
        assert "no write can precede" in diag.message

    def test_read_escaping_the_written_hull(self):
        module, _, b = _empty_func()
        src = memref.AllocOp.build(b, MemRefType((4, 4), f64)).result()
        dst = memref.AllocOp.build(b, MemRefType((4, 4), f64)).result()
        one = arith.const_index(b, 1)
        memref.StoreOp.build(b, arith.const_f64(b, 2.0), src, [one, one])
        memref.CopyOp.build(b, src, dst)  # reads all 16 cells of src
        func.ReturnOp.build(b)
        assert _codes(module) == ["IP013"]
        (diag,) = run_memory_safety(module).diagnostics
        assert "never fully initialized" in diag.message

    def test_full_initialization_is_clean(self):
        module, _, b = _empty_func(inputs=[MemRefType((4, 4), f64)])
        arg = module.body.operations[0].arguments[0]
        buf = memref.AllocOp.build(b, MemRefType((4, 4), f64)).result()
        memref.CopyOp.build(b, arg, buf)
        memref.LoadOp.build(
            b, buf, [arith.const_index(b, 3), arith.const_index(b, 3)]
        )
        func.ReturnOp.build(b)
        assert _codes(module) == []


class _AlwaysStealBufferizer(_Bufferizer):
    """A deliberately broken bufferizer: reuses every destination buffer
    in place, even when the consumed tensor is still live."""

    def _consume(self, builder, op, index):
        return self.mapping[op.operand(index)]


def _insert_then_read_old():
    """``t1 = insert(c, t); a = extract(t); b = extract(t1)`` — the read
    of ``t`` is only correct if the insert got a private copy."""
    t = TensorType((4, 4), f64)
    module, fn, b = _empty_func(inputs=[t], results=[f64])
    (arg,) = fn.arguments
    one = arith.const_index(b, 1)
    t1 = tensor.InsertOp.build(
        b, arith.const_f64(b, 7.0), arg, [one, one]
    ).result()
    a = tensor.ExtractOp.build(b, arg, [one, one]).result()
    c = tensor.ExtractOp.build(b, t1, [one, one]).result()
    func.ReturnOp.build(b, [arith.addf(b, a, c)])
    return module, fn


class TestClobber:
    def test_correct_bufferization_is_clean(self):
        module, fn = _insert_then_read_old()
        _Bufferizer().bufferize_function(fn)
        assert _codes(module) == []

    def test_always_steal_clobbers_live_value(self):
        module, fn = _insert_then_read_old()
        _AlwaysStealBufferizer().bufferize_function(fn)
        assert "IP014" in _codes(module)
        messages = [
            d.message for d in run_memory_safety(module).diagnostics
            if d.code == "IP014"
        ]
        assert any("clobbers a live value" in m for m in messages)

    def test_unrelated_lineage_warns_ip015(self):
        # Corrupt one load's lineage stamp to a serial the derivation
        # graph has never seen: the reuse becomes unverifiable.
        module = _bufferized()
        load = next(op for op in module.walk() if op.name == "memref.load"
                    if "absint_reads" in op.attributes)
        load.attributes["absint_reads"] = IntegerAttr(999)
        diags = run_memory_safety(module).diagnostics
        assert {d.code for d in diags} == {"IP015"}
        assert all(d.severity == "warning" for d in diags)
