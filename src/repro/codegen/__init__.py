"""Execution backends.

* :mod:`repro.codegen.interpreter` — a reference interpreter defining the
  executable semantics of every dialect (the ground truth all
  transformations are tested against);
* :mod:`repro.codegen.python_backend` — the production backend: lowered IR
  is emitted as Python/NumPy source where ``vector`` ops become array
  slices (the "vector unit" of this reproduction);
* :mod:`repro.codegen.executor` — compiles emitted source and provides
  the callable ``CompiledKernel``;
* :mod:`repro.codegen.cache` — the content-addressed compiled-kernel
  cache (in-memory LRU + optional on-disk persistence).
"""

from repro.codegen.interpreter import Interpreter, run_function
from repro.codegen.executor import CompiledKernel, compile_function
from repro.codegen.cache import (
    CacheStats,
    KernelCache,
    default_cache,
    module_fingerprint,
    set_default_cache,
)
from repro.codegen.python_backend import BackendError, EMITTER_VERSION

__all__ = [
    "Interpreter",
    "run_function",
    "CompiledKernel",
    "compile_function",
    "CacheStats",
    "KernelCache",
    "default_cache",
    "module_fingerprint",
    "set_default_cache",
    "BackendError",
    "EMITTER_VERSION",
]
