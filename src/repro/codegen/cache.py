"""Content-addressed cache of compiled kernels.

Compiling a kernel means running the whole pass pipeline and re-emitting
Python source — for the autotuner sweeps and the Fig. 11-13 benchmarks,
which recompile the same four kernels dozens of times per process, that
cost dominates end-to-end time. This module caches :class:`CompiledKernel`
objects under a *content address*:

    fingerprint = sha256(printed IR || entry || options key || backend version)

so a hit is possible only when the input module, the compilation options
and the emitter that produced the cached source are all identical. Stale
entries are invalidated structurally — a changed emitter version changes
every fingerprint, so old entries simply never match again.

Two tiers:

* an in-memory LRU (:class:`KernelCache`), the default, process-local;
* optional on-disk persistence (``persist=True``) under
  ``~/.cache/repro-stencils/`` (override with ``$REPRO_CACHE_DIR``): the
  emitted source is stored next to a small metadata file and re-``exec``'d
  on load, which is orders of magnitude cheaper than re-lowering.

The disk tier is hardened: entries are written atomically (temp file +
rename) with a SHA-256 checksum of the source in the metadata, and loads
verify the checksum, the emitter version and the entry point before
``exec``-ing anything. A truncated, corrupted or version-skewed entry is
*quarantined* (moved to ``<disk_dir>/quarantine/``) and treated as a
cache miss — the kernel simply recompiles and the fresh entry replaces
the bad one, so a bad file can fail at most once. Disk I/O failures
(including injected ``cache.disk-read`` / ``cache.disk-write`` faults)
degrade the cache to memory-only; they never crash a compile.

The process-wide default instance (:func:`default_cache`) is what
``StencilCompiler.compile`` consults when ``CompileOptions.use_cache``
is set; tests and benchmarks swap it with :func:`set_default_cache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.codegen.executor import CompiledKernel
from repro.codegen.python_backend import EMITTER_VERSION
from repro.ir.module import ModuleOp
from repro.ir.printer import print_module
from repro.runtime.resilience.faults import InjectedFault, maybe_inject


class CorruptCacheEntry(Exception):
    """A disk entry failed checksum/version/entry-point validation."""


def _source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def default_disk_dir() -> Path:
    """The on-disk cache root (``$REPRO_CACHE_DIR`` overrides)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root).expanduser()
    return Path("~/.cache/repro-stencils").expanduser()


def module_fingerprint(
    module: ModuleOp,
    entry: str = "kernel",
    options_key: str = "",
    backend_version: str = EMITTER_VERSION,
) -> str:
    """The content address of one (module, entry, options, emitter) tuple.

    ``options_key`` must identify the *complete* compilation
    configuration — callers pass ``CompileOptions.cache_key()``, which is
    built from every option field, not the lossy human-oriented
    ``describe()`` string — otherwise two configurations that lower
    differently would alias to one cached kernel.
    """
    digest = hashlib.sha256()
    for part in (print_module(module), entry, options_key, backend_version):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Counters of one :class:`KernelCache` instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    puts: int = 0
    #: Disk entries that failed validation and were moved to quarantine.
    quarantined: int = 0
    #: Disk reads/writes that failed outright (I/O error or injected
    #: fault); the cache degraded to memory-only for that operation.
    disk_errors: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KernelCache:
    """An LRU of compiled kernels keyed by :func:`module_fingerprint`.

    Thread-safe: the benchmark harness compiles from worker threads.
    With ``persist=True`` every entry is also written to ``disk_dir``
    (defaulting to :func:`default_disk_dir`), and lookups that miss in
    memory fall through to disk, re-``exec`` the stored source and
    promote the kernel back into the LRU.
    """

    def __init__(
        self,
        max_entries: int = 256,
        persist: bool = False,
        disk_dir: Optional[Path] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir else (
            default_disk_dir() if persist else None
        )
        self.stats = CacheStats()
        #: ``(fingerprint, reason)`` per quarantined disk entry.
        self.quarantine_log: List[Tuple[str, str]] = []
        self._entries: "OrderedDict[str, CompiledKernel]" = OrderedDict()
        self._lock = threading.Lock()

    # ---- lookup ---------------------------------------------------------

    def get(self, fingerprint: str) -> Optional[CompiledKernel]:
        with self._lock:
            kernel = self._entries.get(fingerprint)
            if kernel is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                return kernel
        kernel = self._load_from_disk(fingerprint)
        with self._lock:
            if kernel is not None:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(fingerprint, kernel)
            else:
                self.stats.misses += 1
        return kernel

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ---- insertion ------------------------------------------------------

    def put(self, fingerprint: str, kernel: CompiledKernel) -> None:
        with self._lock:
            self.stats.puts += 1
            self._insert(fingerprint, kernel)
        if self.disk_dir is not None:
            self._store_to_disk(fingerprint, kernel)

    def _insert(self, fingerprint: str, kernel: CompiledKernel) -> None:
        self._entries[fingerprint] = kernel
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()
        if disk and self.disk_dir is not None and self.disk_dir.is_dir():
            for path in self.disk_dir.glob("*.py"):
                path.unlink(missing_ok=True)
            for path in self.disk_dir.glob("*.json"):
                path.unlink(missing_ok=True)

    # ---- disk tier ------------------------------------------------------

    def _paths(self, fingerprint: str) -> tuple:
        assert self.disk_dir is not None
        return (
            self.disk_dir / f"{fingerprint}.py",
            self.disk_dir / f"{fingerprint}.json",
        )

    def _store_to_disk(self, fingerprint: str, kernel: CompiledKernel) -> None:
        source_path, meta_path = self._paths(fingerprint)
        meta = json.dumps({
            "entry": kernel.entry,
            "emitter": EMITTER_VERSION,
            "sha256": _source_digest(kernel.source),
            "parallel_certified": bool(
                getattr(kernel, "parallel_certified", False)
            ),
            "schedule": [
                s.to_json() for s in getattr(kernel, "schedule", [])
            ],
        })
        try:
            maybe_inject("cache.disk-write", fingerprint=fingerprint)
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            # Atomic writes: a crash mid-write can never leave a torn
            # entry under the final name. The temp name is unique per
            # writer (pid + thread), so concurrent writers of the same
            # fingerprint never interleave on one temp file — last
            # rename wins and every rename installs a complete entry.
            suffix = f".{os.getpid()}.{threading.get_ident()}.tmp"
            for path, text in ((source_path, kernel.source), (meta_path, meta)):
                tmp = path.with_name(path.name + suffix)
                tmp.write_text(text)
                os.replace(tmp, path)
        except (OSError, InjectedFault):
            self.stats.disk_errors += 1  # degrade to memory-only

    def _load_from_disk(self, fingerprint: str) -> Optional[CompiledKernel]:
        if self.disk_dir is None:
            return None
        source_path, meta_path = self._paths(fingerprint)
        try:
            maybe_inject("cache.disk-read", fingerprint=fingerprint)
        except InjectedFault:
            self.stats.disk_errors += 1
            return None
        if not (source_path.exists() or meta_path.exists()):
            return None  # clean miss: the pair was never written
        try:
            meta = json.loads(meta_path.read_text())
            source = source_path.read_text()
            if meta.get("emitter") != EMITTER_VERSION:
                raise CorruptCacheEntry(
                    f"emitter version skew: entry has "
                    f"{meta.get('emitter')!r}, current is {EMITTER_VERSION!r}"
                )
            if meta.get("sha256") != _source_digest(source):
                raise CorruptCacheEntry(
                    "source checksum mismatch (truncated or corrupted entry)"
                )
            namespace: Dict[str, Any] = {}
            exec(compile(source, "<repro-cached>", "exec"), namespace)  # noqa: S102
            namespace["__source__"] = source
            entry = meta.get("entry")
            if not isinstance(entry, str) or entry not in namespace:
                raise CorruptCacheEntry(
                    f"cached namespace lacks entry point {entry!r}"
                )
            kernel = CompiledKernel(source, namespace, entry)
            if meta.get("parallel_certified"):
                kernel.certify_parallel()
            if meta.get("schedule"):
                from repro.core.scheduling import ScheduleStamp

                kernel.schedule = [
                    ScheduleStamp.from_json(s) for s in meta["schedule"]
                ]
        except Exception as exc:  # noqa: BLE001 - any bad entry is a miss
            self._quarantine(fingerprint, f"{type(exc).__name__}: {exc}")
            return None
        return kernel

    def _quarantine(self, fingerprint: str, reason: str) -> None:
        """Move a bad entry aside so it can fail at most once."""
        self.stats.quarantined += 1
        self.quarantine_log.append((fingerprint, reason))
        qdir = self.disk_dir / "quarantine"
        for path in self._paths(fingerprint):
            try:
                if path.exists():
                    qdir.mkdir(parents=True, exist_ok=True)
                    os.replace(path, qdir / path.name)
            except OSError:
                try:  # cannot even move it: drop it so it never re-trips
                    path.unlink(missing_ok=True)
                except OSError:
                    pass

    def events(self) -> List[Any]:
        """RS004 diagnostics for every quarantined entry (lazy import so
        the cache module itself stays analysis-free)."""
        from repro.analysis.diagnostics import Diagnostic

        return [
            Diagnostic(
                "RS004",
                f"quarantined disk-cache entry {fp[:12]}…: {reason}",
                severity="warning",
            )
            for fp, reason in self.quarantine_log
        ]


_default_cache = KernelCache()
_default_lock = threading.Lock()


def default_cache() -> KernelCache:
    """The process-wide cache used by ``StencilCompiler.compile``."""
    return _default_cache


def set_default_cache(cache: KernelCache) -> KernelCache:
    """Swap the process-wide cache (returns the previous one)."""
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous
