"""Reference interpreter: the executable semantics of the IR.

Every operation of every dialect has a handler here; the high-level cfd
operations (``stencilOp``, ``faceIteratorOp``) are implemented directly
from their mathematical definition (Eq. 2), which makes this interpreter
the ground truth that tiling, fusion, scheduling, vectorization and the
NumPy backend are all tested against.

Value semantics: tensors are immutable SSA values. The interpreter avoids
gratuitous copies with a single-use ownership rule — an operand array may
be mutated in place only when it is the operand's *last* (sole) use and
the producer lives in the consuming op's own block; otherwise it is
copied first. Memrefs are plain mutable ``numpy`` arrays and ``subview``
returns an aliasing view.

``Interpreter(module, checked=True)`` additionally validates every
element, slice, vector and structured-op access against the accessed
array's extents *before* performing it (NumPy would silently wrap
negative indices) and raises :class:`OutOfBoundsError` on escape. Each
checked op also records the hull of every index range it touched in
:attr:`Interpreter.access_ranges`, keyed by ``id(op)`` — the dynamic
oracle the abstract-interpretation analyzer
(:mod:`repro.analysis.absint`) is tested against: every observed range
must lie inside the statically proven one.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core import scheduling
from repro.dialects.cfd import FaceIteratorOp, GetParallelBlocksOp, StencilOp, TiledLoopOp
from repro.dialects.func import FuncOp
from repro.dialects.linalg import GenericOp
from repro.ir.block import Block
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.values import OpResult, Value


class InterpreterError(Exception):
    """Raised on malformed or unsupported IR at execution time."""


class OutOfBoundsError(InterpreterError):
    """A checked-mode access escaped its array (``checked=True`` only)."""


#: Handlers: op name -> callable(interpreter, op) evaluating the op.
_HANDLERS: Dict[str, Callable[["Interpreter", Operation], None]] = {}


def handler(name: str):
    def wrap(fn):
        _HANDLERS[name] = fn
        return fn

    return wrap


class Interpreter:
    """Executes functions of a module on NumPy/scalar values."""

    def __init__(self, module: ModuleOp, checked: bool = False) -> None:
        self.module = module
        self.env: Dict[int, Any] = {}
        self.checked = checked
        #: id(op) -> per-dimension [lo, hi] hull of every access the op
        #: performed, inclusive on both ends (checked mode only).
        self.access_ranges: Dict[int, List[Tuple[int, int]]] = {}

    def check_access(
        self,
        op: Operation,
        shape: Sequence[int],
        box: Sequence[Tuple[int, int]],
    ) -> None:
        """Checked mode: trap an escaping access, else record its hull.

        ``box`` is the inclusive per-dimension index range the op is
        about to touch. Validated explicitly because NumPy would wrap a
        negative index around instead of failing.
        """
        if not self.checked:
            return
        box = [(int(lo), int(hi)) for lo, hi in box]
        for d, ((lo, hi), n) in enumerate(zip(box, shape)):
            if lo < 0 or hi > n - 1:
                raise OutOfBoundsError(
                    f"{op.name} accesses [{lo}, {hi}] along dimension {d} "
                    f"of an array of extent {n}"
                )
        hull = self.access_ranges.get(id(op))
        if hull is None:
            self.access_ranges[id(op)] = box
        else:
            self.access_ranges[id(op)] = [
                (min(a, lo), max(b, hi))
                for (a, b), (lo, hi) in zip(hull, box)
            ]

    # ---- environment ----------------------------------------------------

    def get(self, value: Value) -> Any:
        try:
            return self.env[id(value)]
        except KeyError:
            raise InterpreterError(f"unbound value {value!r}") from None

    def set(self, value: Value, obj: Any) -> None:
        self.env[id(value)] = obj

    def consume_array(self, op: Operation, operand_index: int) -> np.ndarray:
        """The operand's array, mutable by the caller.

        Steals the buffer only when the value is an :class:`OpResult`
        defined in the consuming op's own block with this as its single
        use — then its previous binding is provably dead. Block arguments
        are never stolen: their array may alias a value owned by an outer
        scope (a function argument, a loop's initial iter operand), which
        must not be mutated.
        """
        value = op.operand(operand_index)
        arr = self.get(value)
        if (
            isinstance(value, OpResult)
            and value.num_uses == 1
            and value.owner_block() is op.parent
        ):
            return arr
        return arr.copy()

    # ---- execution -------------------------------------------------------

    def run(self, func_name: str, *args: Any) -> List[Any]:
        func = self.module.lookup_symbol(func_name)
        if not isinstance(func, FuncOp):
            raise InterpreterError(f"no function named {func_name!r}")
        if len(args) != len(func.arguments):
            raise InterpreterError(
                f"{func_name} expects {len(func.arguments)} arguments, got {len(args)}"
            )
        coerced = [_coerce(a) for a in args]
        return self.eval_block(func.body, coerced)

    def eval_block(self, block: Block, args: Sequence[Any]) -> List[Any]:
        """Execute a block; returns the terminator's operand values."""
        if len(args) != len(block.arguments):
            raise InterpreterError(
                f"block expects {len(block.arguments)} arguments, got {len(args)}"
            )
        for formal, actual in zip(block.arguments, args):
            self.set(formal, actual)
        for op in block.operations:
            self.eval_op(op)
        term = block.terminator
        if term is None:
            return []
        return [self.get(o) for o in term.operands]

    def eval_op(self, op: Operation) -> None:
        fn = _HANDLERS.get(op.name)
        if fn is None:
            raise InterpreterError(f"no interpreter handler for {op.name!r}")
        fn(self, op)

    def eval_region_scalars(
        self, block: Block, args: Sequence[float]
    ) -> List[float]:
        """Evaluate a payload region (stencil/flux body) on scalars."""
        return self.eval_block(block, list(args))


def run_function(module: ModuleOp, name: str, *args: Any) -> List[Any]:
    """One-shot convenience wrapper around :class:`Interpreter`."""
    return Interpreter(module).run(name, *args)


def _coerce(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value
    return value


# ---------------------------------------------------------------------------
# Terminators (no-ops: the enclosing construct reads their operands).
# ---------------------------------------------------------------------------

for _name in ("scf.yield", "cfd.yield", "linalg.yield", "func.return"):

    @handler(_name)
    def _terminator(interp: Interpreter, op: Operation) -> None:
        pass


# ---------------------------------------------------------------------------
# arith + math
# ---------------------------------------------------------------------------


@handler("arith.constant")
def _constant(interp, op):
    interp.set(op.result(), op.attributes["value"].value)


def _binary(fn):
    def run(interp, op):
        interp.set(op.result(), fn(interp.get(op.operand(0)), interp.get(op.operand(1))))

    return run


_HANDLERS["arith.addf"] = _binary(lambda a, b: a + b)
_HANDLERS["arith.subf"] = _binary(lambda a, b: a - b)
_HANDLERS["arith.mulf"] = _binary(lambda a, b: a * b)
_HANDLERS["arith.divf"] = _binary(lambda a, b: a / b)
_HANDLERS["arith.maximumf"] = _binary(np.maximum)
_HANDLERS["arith.minimumf"] = _binary(np.minimum)
_HANDLERS["arith.addi"] = _binary(lambda a, b: a + b)
_HANDLERS["arith.subi"] = _binary(lambda a, b: a - b)
_HANDLERS["arith.muli"] = _binary(lambda a, b: a * b)
_HANDLERS["arith.floordivi"] = _binary(lambda a, b: a // b)
_HANDLERS["arith.remi"] = _binary(lambda a, b: a % b)
_HANDLERS["arith.minsi"] = _binary(min)
_HANDLERS["arith.maxsi"] = _binary(max)


@handler("arith.negf")
def _negf(interp, op):
    interp.set(op.result(), -interp.get(op.operand(0)))


_CMP = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _cmp(interp, op):
    fn = _CMP[op.attributes["predicate"].value]
    interp.set(op.result(), bool(fn(interp.get(op.operand(0)), interp.get(op.operand(1)))))


_HANDLERS["arith.cmpf"] = _cmp
_HANDLERS["arith.cmpi"] = _cmp


@handler("arith.select")
def _select(interp, op):
    cond = interp.get(op.operand(0))
    interp.set(
        op.result(),
        interp.get(op.operand(1)) if cond else interp.get(op.operand(2)),
    )


@handler("arith.index_cast")
def _index_cast(interp, op):
    interp.set(op.result(), int(interp.get(op.operand(0))))


@handler("arith.sitofp")
def _sitofp(interp, op):
    interp.set(op.result(), float(interp.get(op.operand(0))))


_HANDLERS["math.sqrt"] = lambda i, op: i.set(op.result(), np.sqrt(i.get(op.operand(0))))
_HANDLERS["math.absf"] = lambda i, op: i.set(op.result(), np.abs(i.get(op.operand(0))))
_HANDLERS["math.exp"] = lambda i, op: i.set(op.result(), np.exp(i.get(op.operand(0))))
_HANDLERS["math.log"] = lambda i, op: i.set(op.result(), np.log(i.get(op.operand(0))))
_HANDLERS["math.powf"] = _binary(lambda a, b: a**b)


@handler("math.fma")
def _fma(interp, op):
    a, b, c = (interp.get(op.operand(i)) for i in range(3))
    interp.set(op.result(), a * b + c)


# ---------------------------------------------------------------------------
# func
# ---------------------------------------------------------------------------


@handler("func.func")
def _func(interp, op):
    pass  # functions execute when called


@handler("func.call")
def _call(interp, op):
    callee = interp.module.lookup_symbol(op.attributes["callee"].value)
    if not isinstance(callee, FuncOp):
        raise InterpreterError(f"call to unknown function {op.attributes['callee']}")
    args = [interp.get(o) for o in op.operands]
    results = interp.eval_block(callee.body, args)
    for res, val in zip(op.results, results):
        interp.set(res, val)


# ---------------------------------------------------------------------------
# scf
# ---------------------------------------------------------------------------


@handler("scf.for")
def _for(interp, op):
    lb = int(interp.get(op.operand(0)))
    ub = int(interp.get(op.operand(1)))
    step = int(interp.get(op.operand(2)))
    if step <= 0:
        raise InterpreterError("scf.for requires a positive step")
    carried = [interp.get(o) for o in op.operands[3:]]
    body = op.regions[0].entry_block
    for iv in range(lb, ub, step):
        carried = interp.eval_block(body, [iv] + carried)
    for res, val in zip(op.results, carried):
        interp.set(res, val)


@handler("scf.if")
def _if(interp, op):
    cond = interp.get(op.operand(0))
    block = op.regions[0].entry_block if cond else op.regions[1].entry_block
    results = interp.eval_block(block, [])
    for res, val in zip(op.results, results):
        interp.set(res, val)


@handler("scf.parallel")
def _parallel(interp, op):
    rank = op.num_operands // 3
    lbs = [int(interp.get(op.operand(i))) for i in range(rank)]
    ubs = [int(interp.get(op.operand(rank + i))) for i in range(rank)]
    steps = [int(interp.get(op.operand(2 * rank + i))) for i in range(rank)]
    body = op.regions[0].entry_block
    for ivs in itertools.product(
        *(range(lb, ub, st) for lb, ub, st in zip(lbs, ubs, steps))
    ):
        interp.eval_block(body, list(ivs))


# ---------------------------------------------------------------------------
# tensor
# ---------------------------------------------------------------------------


@handler("tensor.empty")
def _tensor_empty(interp, op):
    t = op.result().type
    shape = list(t.shape)
    dyn = iter(int(interp.get(o)) for o in op.operands)
    shape = [next(dyn) if d == -1 else d for d in shape]
    interp.set(op.result(), np.zeros(shape, dtype=np.float64))


@handler("tensor.dim")
def _tensor_dim(interp, op):
    arr = interp.get(op.operand(0))
    interp.set(op.result(), int(arr.shape[op.attributes["dim"].value]))


@handler("tensor.extract")
def _tensor_extract(interp, op):
    arr = interp.get(op.operand(0))
    idx = tuple(int(interp.get(o)) for o in op.operands[1:])
    interp.check_access(op, arr.shape, [(i, i) for i in idx])
    interp.set(op.result(), float(arr[idx]))


@handler("tensor.insert")
def _tensor_insert(interp, op):
    arr = interp.consume_array(op, 1)
    idx = tuple(int(interp.get(o)) for o in op.operands[2:])
    interp.check_access(op, arr.shape, [(i, i) for i in idx])
    arr[idx] = interp.get(op.operand(0))
    interp.set(op.result(), arr)


@handler("tensor.extract_slice")
def _tensor_extract_slice(interp, op):
    arr = interp.get(op.operand(0))
    rank = (op.num_operands - 1) // 2
    offs = [int(interp.get(o)) for o in op.operands[1 : 1 + rank]]
    sizes = [int(interp.get(o)) for o in op.operands[1 + rank :]]
    interp.check_access(
        op, arr.shape, [(o, max(o, o + s - 1)) for o, s in zip(offs, sizes)]
    )
    slices = tuple(slice(o, o + s) for o, s in zip(offs, sizes))
    interp.set(op.result(), arr[slices].copy())


@handler("tensor.insert_slice")
def _tensor_insert_slice(interp, op):
    tile = interp.get(op.operand(0))
    dest = interp.consume_array(op, 1)
    rank = (op.num_operands - 2) // 2
    offs = [int(interp.get(o)) for o in op.operands[2 : 2 + rank]]
    sizes = [int(interp.get(o)) for o in op.operands[2 + rank :]]
    interp.check_access(
        op, dest.shape, [(o, max(o, o + s - 1)) for o, s in zip(offs, sizes)]
    )
    slices = tuple(slice(o, o + s) for o, s in zip(offs, sizes))
    dest[slices] = tile
    interp.set(op.result(), dest)


# ---------------------------------------------------------------------------
# memref
# ---------------------------------------------------------------------------


@handler("memref.alloc")
def _alloc(interp, op):
    t = op.result().type
    dyn = iter(int(interp.get(o)) for o in op.operands)
    shape = [next(dyn) if d == -1 else d for d in t.shape]
    interp.set(op.result(), np.zeros(shape, dtype=np.float64))


@handler("memref.dealloc")
def _dealloc(interp, op):
    pass


@handler("memref.load")
def _load(interp, op):
    arr = interp.get(op.operand(0))
    idx = tuple(int(interp.get(o)) for o in op.operands[1:])
    interp.check_access(op, arr.shape, [(i, i) for i in idx])
    interp.set(op.result(), float(arr[idx]))


@handler("memref.store")
def _store(interp, op):
    arr = interp.get(op.operand(1))
    idx = tuple(int(interp.get(o)) for o in op.operands[2:])
    interp.check_access(op, arr.shape, [(i, i) for i in idx])
    arr[idx] = interp.get(op.operand(0))


@handler("memref.subview")
def _subview(interp, op):
    arr = interp.get(op.operand(0))
    rank = (op.num_operands - 1) // 2
    offs = [int(interp.get(o)) for o in op.operands[1 : 1 + rank]]
    sizes = [int(interp.get(o)) for o in op.operands[1 + rank :]]
    interp.check_access(
        op, arr.shape, [(o, max(o, o + s - 1)) for o, s in zip(offs, sizes)]
    )
    slices = tuple(slice(o, o + s) for o, s in zip(offs, sizes))
    interp.set(op.result(), arr[slices])  # an aliasing view, not a copy


@handler("memref.copy")
def _memref_copy(interp, op):
    src = interp.get(op.operand(0))
    dst = interp.get(op.operand(1))
    dst[...] = src


@handler("memref.dim")
def _memref_dim(interp, op):
    arr = interp.get(op.operand(0))
    interp.set(op.result(), int(arr.shape[op.attributes["dim"].value]))


# ---------------------------------------------------------------------------
# vector
# ---------------------------------------------------------------------------


@handler("vector.transfer_read")
def _transfer_read(interp, op):
    arr = interp.get(op.operand(0))
    idx = [int(interp.get(o)) for o in op.operands[1:]]
    vf = op.result().type.shape[0]
    lead, last = tuple(idx[:-1]), idx[-1]
    interp.check_access(
        op, arr.shape, [(i, i) for i in lead] + [(last, last + vf - 1)]
    )
    interp.set(op.result(), arr[lead + (slice(last, last + vf),)].copy())


@handler("vector.transfer_write")
def _transfer_write(interp, op):
    vec = interp.get(op.operand(0))
    idx = [int(interp.get(o)) for o in op.operands[2:]]
    lead, last = tuple(idx[:-1]), idx[-1]
    window = lead + (slice(last, last + len(vec)),)
    box = [(i, i) for i in lead] + [(last, last + len(vec) - 1)]
    if op.num_results:  # tensor destination: functional update
        dest = interp.consume_array(op, 1)
        interp.check_access(op, dest.shape, box)
        dest[window] = vec
        interp.set(op.result(), dest)
    else:  # memref destination: in-place
        dest = interp.get(op.operand(1))
        interp.check_access(op, dest.shape, box)
        dest[window] = vec


@handler("vector.broadcast")
def _broadcast(interp, op):
    n = op.result().type.shape[0]
    interp.set(op.result(), np.full(n, interp.get(op.operand(0)), dtype=np.float64))


@handler("vector.extract")
def _vector_extract(interp, op):
    vec = interp.get(op.operand(0))
    interp.set(op.result(), float(vec[op.attributes["position"].value]))


@handler("vector.fma")
def _vector_fma(interp, op):
    a, b, c = (interp.get(op.operand(i)) for i in range(3))
    interp.set(op.result(), a * b + c)


# ---------------------------------------------------------------------------
# linalg
# ---------------------------------------------------------------------------


@handler("linalg.generic")
def _generic(interp, op: GenericOp):
    n = op.num_ins
    ins = [interp.get(v) for v in op.operands[:n]]
    out = interp.consume_array(op, n)
    offsets = op.offsets
    bounds = op.iteration_bounds(out.shape)
    body = op.regions[0].entry_block
    if interp.checked and all(hi > lo for lo, hi in bounds):
        for arr, off in zip(ins, offsets):
            interp.check_access(
                op, arr.shape,
                [(lo + o, hi - 1 + o) for (lo, hi), o in zip(bounds, off)],
            )
        interp.check_access(op, out.shape, [(lo, hi - 1) for lo, hi in bounds])
    for i in itertools.product(*(range(lo, hi) for lo, hi in bounds)):
        args = [
            float(a[tuple(ii + oi for ii, oi in zip(i, off))])
            for a, off in zip(ins, offsets)
        ]
        args.append(float(out[i]))
        out[i] = interp.eval_block(body, args)[0]
    interp.set(op.result(), out)


@handler("linalg.fill")
def _fill(interp, op):
    out = interp.consume_array(op, 1)
    out[...] = interp.get(op.operand(0))
    interp.set(op.result(), out)


# ---------------------------------------------------------------------------
# cfd — the reference semantics of the paper's operations
# ---------------------------------------------------------------------------


@handler("cfd.stencilOp")
def _stencil(interp, op: StencilOp):
    x = interp.get(op.operand(0))
    b = interp.get(op.operand(1))
    y = interp.consume_array(op, 2)
    pattern = op.pattern
    nv = op.nb_var
    space_shape = y.shape[1:]
    bounds = pattern.interior_bounds(space_shape)
    if op.has_bounds:
        los = [int(interp.get(v)) for v in op.bounds_lo]
        his = [int(interp.get(v)) for v in op.bounds_hi]
        if interp.checked and not any(h <= l for l, h in zip(los, his)):
            # Validate the *declared* window (the lowered loops honour it
            # verbatim; the interior clamp below is interpreter-only).
            k = pattern.rank
            halo_lo = [max([0] + [-o[d] for o, _ in pattern.accesses])
                       for d in range(k)]
            halo_hi = [max([0] + [o[d] for o, _ in pattern.accesses])
                       for d in range(k)]
            write_box = [(0, nv - 1)] + [(l, h - 1) for l, h in zip(los, his)]
            read_box = [(0, nv - 1)] + [
                (l - hl, h - 1 + hh)
                for l, h, hl, hh in zip(los, his, halo_lo, halo_hi)
            ]
            interp.check_access(op, x.shape, read_box)
            interp.check_access(op, y.shape, read_box)
            interp.check_access(op, b.shape, write_box)
        bounds = [
            (max(lo, wl), min(hi, wh))
            for (lo, hi), wl, wh in zip(bounds, los, his)
        ]
    ranges = [range(lo, hi) for lo, hi in bounds]
    if pattern.sweep == -1:
        ranges = [range(hi - 1, lo - 1, -1) for lo, hi in bounds]
    body = op.regions[0].entry_block
    accesses = pattern.accesses
    for i in itertools.product(*ranges):
        args: List[float] = []
        for offset, tag in accesses:
            src = y if tag == -1 else x
            pos = tuple(ii + oi for ii, oi in zip(i, offset))
            for v in range(nv):
                args.append(float(src[(v,) + pos]))
        for v in range(nv):
            args.append(float(x[(v,) + i]))
        outs = interp.eval_block(body, args)
        d = outs[0]
        contribs = outs[1:]
        for v in range(nv):
            total = float(b[(v,) + i])
            for a in range(len(accesses) + 1):
                total += contribs[a * nv + v]
            y[(v,) + i] = total / d
    interp.set(op.result(), y)


@handler("cfd.faceIteratorOp")
def _face_iterator(interp, op: FaceIteratorOp):
    x = interp.get(op.operand(0))
    b = interp.consume_array(op, 1)
    axis = op.axis
    nv = op.nb_var
    space_shape = x.shape[1:]
    body = op.regions[0].entry_block
    face_ranges = [
        range(n - 1) if d == axis else range(n)
        for d, n in enumerate(space_shape)
    ]
    for i in itertools.product(*face_ranges):
        j = tuple(ii + (1 if d == axis else 0) for d, ii in enumerate(i))
        args = [float(x[(v,) + i]) for v in range(nv)]
        args += [float(x[(v,) + j]) for v in range(nv)]
        flux = interp.eval_block(body, args)
        for v in range(nv):
            b[(v,) + i] -= flux[v]
            b[(v,) + j] += flux[v]
    interp.set(op.result(), b)


@handler("cfd.tiled_loop")
def _tiled_loop(interp, op: TiledLoopOp):
    k = op.rank
    lbs = [int(interp.get(v)) for v in op.lbs]
    ubs = [int(interp.get(v)) for v in op.ubs]
    steps = [int(interp.get(v)) for v in op.steps]
    ins = [interp.get(v) for v in op.ins]
    outs = [interp.get(v).copy() for v in op.outs]
    body = op.regions[0].entry_block
    grid = [
        max(0, -(-(ub - lb) // st)) for lb, ub, st in zip(lbs, ubs, steps)
    ]
    if op.has_groups:
        group_offsets = np.asarray(interp.get(op.group_operands[0]))
        group_indices = np.asarray(interp.get(op.group_operands[1]))
        order = [
            scheduling.delinearize(int(linear), grid)
            for g in range(len(group_offsets) - 1)
            for linear in group_indices[group_offsets[g] : group_offsets[g + 1]]
        ]
    else:
        order = list(itertools.product(*(range(n) for n in grid)))
        if op.reverse:
            order.reverse()
    for coords in order:
        ivs = [lb + c * st for lb, c, st in zip(lbs, coords, steps)]
        outs = interp.eval_block(body, ivs + ins + outs)
    for res, val in zip(op.results, outs):
        interp.set(res, val)


@handler("cfd.get_parallel_blocks")
def _get_parallel_blocks(interp, op: GetParallelBlocksOp):
    num_blocks = [int(interp.get(o)) for o in op.operands]
    offsets, indices = scheduling.compute_parallel_blocks(
        num_blocks, op.block_offsets
    )
    interp.set(op.result(0), offsets)
    interp.set(op.result(1), indices)
