"""Verification-certificate memo: pay for analysis once per fingerprint.

The analysis gate (``check_level``), the per-pass translation validator
(``validate_passes``) and the parallel-safety race check all re-run on
every compile, even when the *identical* (module, entry, options,
emitter) tuple was already certified clean in this process. This memo
keys a small certificate record on the same sha256 fingerprint the
kernel cache uses (:func:`repro.codegen.cache.module_fingerprint`), so a
re-compile of a certified fingerprint skips the gate and the validator
— the expensive part of a verified build — while still lowering and
emitting if the kernel cache itself missed.

A certificate asserts only what was actually proven: the check level
the gate ran at, whether translation validation passed, and whether the
parallel race check came back clean. A compile requesting *more*
verification than the record covers runs the missing checks and widens
the record.

Disk tier (PR 10): with ``disk_dir`` set, every record is also written
through to ``<disk_dir>/<fingerprint>.cert.json`` so a pipeline
certified clean in one process never re-validates in another — the
warm path of the compile service with ``validate_passes=True``. The
tier is hardened exactly like the kernel cache's: entries are written
atomically (temp file + rename) with a SHA-256 checksum of the
certificate payload plus a schema version, loads validate both before
trusting anything, and a truncated/corrupted/version-skewed entry is
quarantined (moved to ``<disk_dir>/quarantine/``) and treated as a
miss. I/O failures — including injected ``cache.disk-read`` /
``cache.disk-write`` faults, which fire here with
``kind="certificate"`` context — degrade the memo to memory-only; they
never crash a compile.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.runtime.resilience.faults import InjectedFault, maybe_inject

#: Bump when the on-disk certificate payload shape changes; skewed
#: entries are quarantined like corrupted ones.
CERT_SCHEMA_VERSION = 1


class CorruptCertificateEntry(Exception):
    """A disk certificate failed checksum/schema validation."""


@dataclass
class Certificate:
    """What one fingerprint has been proven to satisfy."""

    #: Check levels the analysis gate passed at ("after-pipeline",
    #: "after-every-pass").
    check_levels: Set[str] = field(default_factory=set)
    #: Per-pass translation validation passed.
    validated: bool = False
    #: The parallel race check found no IP-diagnostic. ``None`` means
    #: the check never ran; ``False`` means it ran and found problems
    #: (memoized too — a dirty module stays refused without re-analysis).
    parallel_clean: Optional[bool] = None

    def covers_gate(self, check_level: str) -> bool:
        if check_level == "off":
            return True
        if check_level == "after-pipeline":
            # A stricter per-pass run subsumes the end-of-pipeline gate.
            return bool(self.check_levels)
        return check_level in self.check_levels

    def to_json(self) -> Dict[str, Any]:
        """Canonical JSON payload (sorted, so the checksum is stable)."""
        return {
            "check_levels": sorted(self.check_levels),
            "validated": self.validated,
            "parallel_clean": self.parallel_clean,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Certificate":
        check_levels = data.get("check_levels")
        if not isinstance(check_levels, list) or not all(
            isinstance(c, str) for c in check_levels
        ):
            raise CorruptCertificateEntry("check_levels must be a string list")
        validated = data.get("validated")
        if not isinstance(validated, bool):
            raise CorruptCertificateEntry("validated must be a bool")
        parallel_clean = data.get("parallel_clean")
        if parallel_clean is not None and not isinstance(parallel_clean, bool):
            raise CorruptCertificateEntry("parallel_clean must be bool/null")
        return cls(set(check_levels), validated, parallel_clean)


def _payload_digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class MemoStats:
    hits: int = 0
    misses: int = 0
    records: int = 0
    #: Memory misses satisfied by the disk tier.
    disk_hits: int = 0
    #: Disk reads/writes that failed outright (I/O error or injected
    #: fault); the memo degraded to memory-only for that operation.
    disk_errors: int = 0
    #: Disk entries that failed validation and were quarantined.
    quarantined: int = 0


class CertificateMemo:
    """Thread-safe fingerprint -> :class:`Certificate` map.

    With ``disk_dir`` set, records write through to a checksummed disk
    tier and memory misses fall through to it, so certificates survive
    process boundaries (see the module docstring).
    """

    def __init__(self, disk_dir: Optional[Path] = None) -> None:
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self._entries: Dict[str, Certificate] = {}
        self.stats = MemoStats()
        #: ``(fingerprint, reason)`` per quarantined disk entry.
        self.quarantine_log: List[Tuple[str, str]] = []
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> Optional[Certificate]:
        with self._lock:
            cert = self._entries.get(fingerprint)
            if cert is not None:
                self.stats.hits += 1
                return cert
        cert = self._load_from_disk(fingerprint)
        with self._lock:
            if cert is not None:
                # A concurrent record may have widened the in-memory
                # entry meanwhile; never narrow it with the disk copy.
                existing = self._entries.get(fingerprint)
                if existing is not None:
                    cert = existing
                else:
                    self._entries[fingerprint] = cert
                self.stats.hits += 1
                self.stats.disk_hits += 1
            else:
                self.stats.misses += 1
            return cert

    def peek(self, fingerprint: str) -> Optional[Certificate]:
        """Lookup without touching the hit/miss counters (memory only)."""
        with self._lock:
            return self._entries.get(fingerprint)

    def record(
        self,
        fingerprint: str,
        check_level: Optional[str] = None,
        validated: bool = False,
        parallel_clean: Optional[bool] = None,
    ) -> Certificate:
        """Widen (or create) the certificate for ``fingerprint``."""
        with self._lock:
            cert = self._entries.get(fingerprint)
            if cert is None:
                cert = Certificate()
                self._entries[fingerprint] = cert
                self.stats.records += 1
            if check_level and check_level != "off":
                cert.check_levels.add(check_level)
            if validated:
                cert.validated = True
            if parallel_clean is not None:
                cert.parallel_clean = parallel_clean
            snapshot = cert.to_json()
        if self.disk_dir is not None:
            self._store_to_disk(fingerprint, snapshot)
        return cert

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = MemoStats()
            self.quarantine_log = []
        if disk and self.disk_dir is not None and self.disk_dir.is_dir():
            for path in self.disk_dir.glob("*.cert.json"):
                path.unlink(missing_ok=True)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ---- disk tier ------------------------------------------------------

    def _path(self, fingerprint: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{fingerprint}.cert.json"

    def _store_to_disk(self, fingerprint: str, snapshot: Dict[str, Any]) -> None:
        payload = json.dumps(snapshot, sort_keys=True)
        text = json.dumps({
            "schema": CERT_SCHEMA_VERSION,
            "sha256": _payload_digest(payload),
            "cert": snapshot,
        }, sort_keys=True)
        path = self._path(fingerprint)
        try:
            maybe_inject(
                "cache.disk-write", fingerprint=fingerprint, kind="certificate"
            )
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            # Atomic write: a crash mid-write can never leave a torn
            # certificate under the final name. Unique temp name per
            # writer (pid + thread) so concurrent recorders of the same
            # fingerprint never interleave on one temp file.
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            tmp.write_text(text)
            os.replace(tmp, path)
        except (OSError, InjectedFault):
            with self._lock:
                self.stats.disk_errors += 1  # degrade to memory-only

    def _load_from_disk(self, fingerprint: str) -> Optional[Certificate]:
        if self.disk_dir is None:
            return None
        path = self._path(fingerprint)
        try:
            maybe_inject(
                "cache.disk-read", fingerprint=fingerprint, kind="certificate"
            )
        except InjectedFault:
            with self._lock:
                self.stats.disk_errors += 1
            return None
        if not path.exists():
            return None  # clean miss: never recorded on disk
        try:
            wrapper = json.loads(path.read_text())
            if wrapper.get("schema") != CERT_SCHEMA_VERSION:
                raise CorruptCertificateEntry(
                    f"schema skew: entry has {wrapper.get('schema')!r}, "
                    f"current is {CERT_SCHEMA_VERSION!r}"
                )
            snapshot = wrapper.get("cert")
            payload = json.dumps(snapshot, sort_keys=True)
            if wrapper.get("sha256") != _payload_digest(payload):
                raise CorruptCertificateEntry(
                    "payload checksum mismatch (truncated or corrupted "
                    "certificate)"
                )
            return Certificate.from_json(snapshot)
        except Exception as exc:  # noqa: BLE001 - any bad entry is a miss
            self._quarantine(fingerprint, f"{type(exc).__name__}: {exc}")
            return None

    def _quarantine(self, fingerprint: str, reason: str) -> None:
        """Move a bad entry aside so it can fail at most once."""
        with self._lock:
            self.stats.quarantined += 1
            self.quarantine_log.append((fingerprint, reason))
        qdir = self.disk_dir / "quarantine"
        path = self._path(fingerprint)
        try:
            if path.exists():
                qdir.mkdir(parents=True, exist_ok=True)
                os.replace(path, qdir / path.name)
        except OSError:
            try:  # cannot even move it: drop it so it never re-trips
                path.unlink(missing_ok=True)
            except OSError:
                pass

    def events(self) -> List[Any]:
        """RS004 diagnostics for every quarantined certificate (lazy
        import mirrors :meth:`repro.codegen.cache.KernelCache.events`)."""
        from repro.analysis.diagnostics import Diagnostic

        return [
            Diagnostic(
                "RS004",
                f"quarantined disk certificate {fp[:12]}…: {reason}",
                severity="warning",
            )
            for fp, reason in self.quarantine_log
        ]


_default_memo = CertificateMemo()
_default_lock = threading.Lock()


def default_memo() -> CertificateMemo:
    """The process-wide memo ``StencilCompiler.compile`` consults."""
    return _default_memo


def set_default_memo(memo: CertificateMemo) -> CertificateMemo:
    """Swap the process-wide memo (returns the previous one)."""
    global _default_memo
    with _default_lock:
        previous = _default_memo
        _default_memo = memo
    return previous
