"""Verification-certificate memo: pay for analysis once per fingerprint.

The analysis gate (``check_level``), the per-pass translation validator
(``validate_passes``) and the parallel-safety race check all re-run on
every compile, even when the *identical* (module, entry, options,
emitter) tuple was already certified clean in this process. This memo
keys a small certificate record on the same sha256 fingerprint the
kernel cache uses (:func:`repro.codegen.cache.module_fingerprint`), so a
re-compile of a certified fingerprint skips the gate and the validator
— the expensive part of a verified build — while still lowering and
emitting if the kernel cache itself missed.

A certificate asserts only what was actually proven: the check level
the gate ran at, whether translation validation passed, and whether the
parallel race check came back clean. A compile requesting *more*
verification than the record covers runs the missing checks and widens
the record.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class Certificate:
    """What one fingerprint has been proven to satisfy."""

    #: Check levels the analysis gate passed at ("after-pipeline",
    #: "after-every-pass").
    check_levels: Set[str] = field(default_factory=set)
    #: Per-pass translation validation passed.
    validated: bool = False
    #: The parallel race check found no IP-diagnostic. ``None`` means
    #: the check never ran; ``False`` means it ran and found problems
    #: (memoized too — a dirty module stays refused without re-analysis).
    parallel_clean: Optional[bool] = None

    def covers_gate(self, check_level: str) -> bool:
        if check_level == "off":
            return True
        if check_level == "after-pipeline":
            # A stricter per-pass run subsumes the end-of-pipeline gate.
            return bool(self.check_levels)
        return check_level in self.check_levels


@dataclass
class MemoStats:
    hits: int = 0
    misses: int = 0
    records: int = 0


class CertificateMemo:
    """Thread-safe fingerprint -> :class:`Certificate` map."""

    def __init__(self) -> None:
        self._entries: Dict[str, Certificate] = {}
        self.stats = MemoStats()
        self._lock = threading.Lock()

    def get(self, fingerprint: str) -> Optional[Certificate]:
        with self._lock:
            cert = self._entries.get(fingerprint)
            if cert is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return cert

    def peek(self, fingerprint: str) -> Optional[Certificate]:
        """Lookup without touching the hit/miss counters."""
        with self._lock:
            return self._entries.get(fingerprint)

    def record(
        self,
        fingerprint: str,
        check_level: Optional[str] = None,
        validated: bool = False,
        parallel_clean: Optional[bool] = None,
    ) -> Certificate:
        """Widen (or create) the certificate for ``fingerprint``."""
        with self._lock:
            cert = self._entries.get(fingerprint)
            if cert is None:
                cert = Certificate()
                self._entries[fingerprint] = cert
                self.stats.records += 1
            if check_level and check_level != "off":
                cert.check_levels.add(check_level)
            if validated:
                cert.validated = True
            if parallel_clean is not None:
                cert.parallel_clean = parallel_clean
            return cert

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = MemoStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_default_memo = CertificateMemo()
_default_lock = threading.Lock()


def default_memo() -> CertificateMemo:
    """The process-wide memo ``StencilCompiler.compile`` consults."""
    return _default_memo


def set_default_memo(memo: CertificateMemo) -> CertificateMemo:
    """Swap the process-wide memo (returns the previous one)."""
    global _default_memo
    with _default_lock:
        previous = _default_memo
        _default_memo = memo
    return previous
