"""Compile emitted Python source and wrap it as a callable kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro.codegen.python_backend import BackendError, emit_module
from repro.ir.module import ModuleOp
from repro.runtime.resilience.faults import maybe_inject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.codegen.cache import KernelCache


class CompiledKernel:
    """A compiled entry point of a lowered module.

    Calling the kernel returns the tuple of function results. The
    generated source is kept on ``.source`` for inspection (tests assert
    on it; EXPERIMENTS.md quotes it).
    """

    def __init__(self, source: str, namespace: Dict[str, Any], entry: str) -> None:
        self.source = source
        self.namespace = namespace
        self.entry = entry
        self._fn: Callable = namespace[entry]
        #: Set by :meth:`certify_parallel` once the race analyzer has
        #: cleared the lowered module; until then the runtime dispatcher
        #: executes wavefront groups sequentially.
        self.parallel_certified = False
        #: Diagnostics that blocked certification (empty when certified
        #: or never gated).
        self.parallel_diagnostics: List[Any] = []
        #: Static wavefront schedules stamped by the compiler
        #: (:class:`repro.core.scheduling.ScheduleStamp` per grouped
        #: loop with statically known extents).
        self.schedule: List[Any] = []

    def certify_parallel(self) -> None:
        """Allow multi-threaded wavefront dispatch for this kernel.

        Flips the module-level ``_PARALLEL_CERTIFIED`` flag the emitted
        dispatch calls read, so certification survives re-entry and is
        shared by every function in the namespace.
        """
        self.parallel_certified = True
        self.namespace["_PARALLEL_CERTIFIED"] = True

    def __call__(self, *args: Any):
        maybe_inject("executor.execute", entry=self.entry)
        maybe_inject("executor.hang", entry=self.entry)
        return self._fn(*args)

    def run(self, *args: Any) -> List[Any]:
        return list(self(*args))

    def __repr__(self) -> str:
        return (
            f"CompiledKernel(entry={self.entry!r}, "
            f"source={len(self.source)} chars)"
        )


def compile_module(module: ModuleOp) -> Dict[str, Any]:
    """Emit and exec a module; returns its namespace."""
    maybe_inject("executor.compile")
    source = emit_module(module)
    namespace: Dict[str, Any] = {}
    code = compile(source, "<repro-generated>", "exec")
    exec(code, namespace)  # noqa: S102 - this is the JIT of the backend
    namespace["__source__"] = source
    return namespace


def compile_function(
    module: ModuleOp,
    entry: str = "kernel",
    cache: Optional["KernelCache"] = None,
    options_key: str = "",
) -> CompiledKernel:
    """Emit the module and return the named function as a kernel.

    With ``cache`` set, the lowered module's printed IR (plus ``entry``
    and ``options_key``) is fingerprinted first and a hit skips emission
    entirely; ``StencilCompiler.compile`` additionally fingerprints the
    *unlowered* module so hits skip the pass pipeline too.
    """
    fingerprint = None
    if cache is not None:
        from repro.codegen.cache import module_fingerprint

        fingerprint = module_fingerprint(module, entry, options_key)
        kernel = cache.get(fingerprint)
        if kernel is not None:
            return kernel
    namespace = compile_module(module)
    if entry not in namespace:
        raise BackendError(f"module defines no function {entry!r}")
    kernel = CompiledKernel(namespace["__source__"], namespace, entry)
    if cache is not None and fingerprint is not None:
        cache.put(fingerprint, kernel)
    return kernel
