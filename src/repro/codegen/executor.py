"""Compile emitted Python source and wrap it as a callable kernel."""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.codegen.python_backend import emit_module
from repro.ir.module import ModuleOp


class CompiledKernel:
    """A compiled entry point of a lowered module.

    Calling the kernel returns the tuple of function results. The
    generated source is kept on ``.source`` for inspection (tests assert
    on it; EXPERIMENTS.md quotes it).
    """

    def __init__(self, source: str, namespace: Dict[str, Any], entry: str) -> None:
        self.source = source
        self.namespace = namespace
        self.entry = entry
        self._fn: Callable = namespace[entry]

    def __call__(self, *args: Any):
        return self._fn(*args)

    def run(self, *args: Any) -> List[Any]:
        return list(self._fn(*args))


def compile_module(module: ModuleOp) -> Dict[str, Any]:
    """Emit and exec a module; returns its namespace."""
    source = emit_module(module)
    namespace: Dict[str, Any] = {}
    code = compile(source, "<repro-generated>", "exec")
    exec(code, namespace)  # noqa: S102 - this is the JIT of the backend
    namespace["__source__"] = source
    return namespace


def compile_function(module: ModuleOp, entry: str = "kernel") -> CompiledKernel:
    """Emit the module and return the named function as a kernel."""
    namespace = compile_module(module)
    if entry not in namespace:
        raise KeyError(f"module defines no function {entry!r}")
    return CompiledKernel(namespace["__source__"], namespace, entry)
