"""The NumPy backend: emit lowered IR as executable Python source.

This plays the role of MLIR's LLVM lowering in the reproduction: the
final, optimized IR (scf loops + tensor/vector ops + ``cfd.tiled_loop``)
is translated into Python where

* ``vector.transfer_read/write`` and whole-array ``linalg.generic`` /
  ``cfd.faceIteratorOp`` emissions become NumPy slice operations — the
  "vector unit" (C speed);
* scalar loops become Python ``for`` loops — the "scalar unit" (slow),
  so the vectorized-vs-scalar performance shape of the paper carries
  over;
* ``cfd.tiled_loop`` becomes a grid loop, its CSR wavefront groups a
  group-ordered loop.

Buffer ownership: tensors are SSA values, but emitting a copy per
``tensor.insert`` would be quadratic. The emitter runs a static
ownership analysis — a value's buffer may be mutated in place iff the
binding *owns* it (the producer created it fresh) and the mutating op is
the value's last use in block order; otherwise a ``.copy()`` is emitted.
Function arguments are never owned, so caller arrays are never mutated.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.dialects.cfd import TiledLoopOp
from repro.dialects.linalg import GenericOp
from repro.ir.block import Block
from repro.ir.module import ModuleOp
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType
from repro.ir.values import Value


#: Version of the emission strategy. Part of every kernel-cache
#: fingerprint: bump it whenever emitted code changes for the same IR, so
#: persisted cache entries from older emitters are never reused.
EMITTER_VERSION = "2"


class BackendError(Exception):
    """Raised when the module still contains unlowered operations or
    lacks the requested entry point."""


_BINOPS = {
    "arith.addf": "+",
    "arith.subf": "-",
    "arith.mulf": "*",
    "arith.divf": "/",
    "arith.addi": "+",
    "arith.subi": "-",
    "arith.muli": "*",
    "arith.floordivi": "//",
    "arith.remi": "%",
}

_CMPOPS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

_MATH_FUNCS = {
    "math.sqrt": "_np.sqrt",
    "math.absf": "_np.abs",
    "math.exp": "_np.exp",
    "math.log": "_np.log",
}


def _is_buffer(t) -> bool:
    return isinstance(t, (TensorType, MemRefType))


class Emitter:
    """Emits one module as Python source."""

    def __init__(self, module: ModuleOp) -> None:
        self.module = module
        self.lines: List[str] = []
        self.indent = 0
        self.names: Dict[int, str] = {}
        self.owned: Dict[int, bool] = {}
        self.counter = 0

    # ---- infrastructure -------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def name(self, value: Value) -> str:
        key = id(value)
        if key not in self.names:
            self.names[key] = self.fresh()
        return self.names[key]

    def bind(self, value: Value, expr: str, owned: bool = False) -> str:
        n = self.name(value)
        self.emit(f"{n} = {expr}")
        self.owned[id(value)] = owned
        return n

    def is_owned(self, value: Value) -> bool:
        return self.owned.get(id(value), False)

    # ---- ownership ------------------------------------------------------

    @staticmethod
    def _position_in(block: Block, op: Operation) -> int:
        """Index in ``block`` of ``op``'s ancestor that lives in it."""
        current = op
        while current.parent is not block:
            current = current.parent_op()
            if current is None:
                return -1
        return block.index_of(current)

    def can_steal(self, value: Value, consumer: Operation) -> bool:
        """May ``consumer`` mutate ``value``'s buffer in place?"""
        if not self.is_owned(value):
            return False
        if sum(1 for u in value.uses if u.owner is consumer) > 1:
            return False  # e.g. the same tensor as both input and output
        block = value.owner_block()
        if block is None:
            return False
        my_pos = self._position_in(block, consumer)
        if my_pos < 0:
            return False
        for use in value.uses:
            if use.owner is consumer:
                continue
            other = self._position_in(block, use.owner)
            if other < 0 or other >= my_pos:
                return False
        return True

    def consume(self, op: Operation, operand_index: int) -> str:
        """An expression for a buffer the caller may mutate."""
        value = op.operand(operand_index)
        n = self.name(value)
        if self.can_steal(value, op):
            return n
        return f"{n}.copy()"

    # ---- top level -------------------------------------------------------

    def run(self) -> str:
        self.emit("import numpy as _np")
        self.emit(
            "from repro.core.scheduling import compute_parallel_blocks "
            "as _compute_parallel_blocks"
        )
        self.emit(
            "from repro.runtime.parallel import dispatch_wavefronts "
            "as _dispatch_wavefronts"
        )
        # Flipped to True by CompiledKernel.certify_parallel() once the
        # race analyzer has cleared the lowered module; the dispatcher
        # refuses multi-thread execution until then.
        self.emit("_PARALLEL_CERTIFIED = False")
        self.emit("")
        for op in self.module.body.operations:
            if op.name == "func.func":
                self.emit_function(op)
            else:
                raise BackendError(f"unexpected top-level op {op.name}")
        return "\n".join(self.lines) + "\n"

    def emit_function(self, fn) -> None:
        args = fn.body.arguments
        arg_names = []
        for i, a in enumerate(args):
            n = f"arg{i}_{self.fresh('f')}"
            self.names[id(a)] = n
            self.owned[id(a)] = isinstance(a.type, MemRefType)
            arg_names.append(n)
        self.emit(f"def {fn.sym_name}({', '.join(arg_names)}):")
        self.indent += 1
        if not fn.body.operations:
            self.emit("pass")
        self.emit_block_body(fn.body)
        term = fn.body.terminator
        if term is not None and term.name == "func.return":
            rets = ", ".join(self.name(v) for v in term.operands)
            self.emit(f"return ({rets},)" if term.operands else "return ()")
        self.indent -= 1
        self.emit("")

    def emit_block_body(self, block: Block) -> None:
        term = block.terminator
        for op in block.operations:
            if op is term and op.name in (
                "func.return",
                "scf.yield",
                "cfd.yield",
                "linalg.yield",
            ):
                break
            self.emit_op(op)

    # ---- dispatch ---------------------------------------------------------

    def emit_op(self, op: Operation) -> None:
        handler = getattr(self, "_emit_" + op.name.replace(".", "_"), None)
        if handler is None:
            raise BackendError(f"no backend emission for {op.name!r}")
        handler(op)

    # ---- arith / math -----------------------------------------------------

    def _emit_arith_constant(self, op) -> None:
        self.bind(op.result(), repr(op.attributes["value"].value))

    def _binary(self, op, symbol: str) -> None:
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"({a} {symbol} {b})")

    def _emit_arith_negf(self, op) -> None:
        self.bind(op.result(), f"(-{self.name(op.operand(0))})")

    def _emit_arith_minsi(self, op) -> None:
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"({a} if {a} < {b} else {b})")

    def _emit_arith_maxsi(self, op) -> None:
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"({a} if {a} > {b} else {b})")

    def _emit_arith_maximumf(self, op) -> None:
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"_np.maximum({a}, {b})")

    def _emit_arith_minimumf(self, op) -> None:
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"_np.minimum({a}, {b})")

    def _emit_cmp(self, op) -> None:
        sym = _CMPOPS[op.attributes["predicate"].value]
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"({a} {sym} {b})")

    _emit_arith_cmpf = _emit_cmp
    _emit_arith_cmpi = _emit_cmp

    def _emit_arith_select(self, op) -> None:
        c = self.name(op.operand(0))
        a, b = self.name(op.operand(1)), self.name(op.operand(2))
        self.bind(op.result(), f"({a} if {c} else {b})")

    def _emit_arith_index_cast(self, op) -> None:
        self.bind(op.result(), f"int({self.name(op.operand(0))})")

    def _emit_arith_sitofp(self, op) -> None:
        self.bind(op.result(), f"float({self.name(op.operand(0))})")

    def _emit_math_fma(self, op) -> None:
        a, b, c = (self.name(op.operand(i)) for i in range(3))
        self.bind(op.result(), f"({a} * {b} + {c})")

    def _emit_math_powf(self, op) -> None:
        a, b = self.name(op.operand(0)), self.name(op.operand(1))
        self.bind(op.result(), f"({a} ** {b})")

    # ---- func ----------------------------------------------------------------

    def _emit_func_call(self, op) -> None:
        callee = op.attributes["callee"].value
        args = ", ".join(self.name(o) for o in op.operands)
        if op.num_results == 0:
            self.emit(f"{callee}({args})")
            return
        names = [self.name(r) for r in op.results]
        self.emit(f"{', '.join(names)}, = {callee}({args})")
        for r in op.results:
            self.owned[id(r)] = _is_buffer(r.type)

    # ---- scf -------------------------------------------------------------------

    def _emit_scf_for(self, op) -> None:
        lb, ub, step = (self.name(op.operand(i)) for i in range(3))
        carried: List[str] = []
        for arg, init in zip(op.body.arguments[1:], op.operands[3:]):
            n = self.name(arg)
            if _is_buffer(init.type) and isinstance(init.type, TensorType):
                self.emit(f"{n} = {self.consume(op, op.operands.index(init))}")
            else:
                self.emit(f"{n} = {self.name(init)}")
            self.owned[id(arg)] = True
            carried.append(n)
        iv = self.name(op.body.arguments[0])
        self.emit(f"for {iv} in range({lb}, {ub}, {step}):")
        self.indent += 1
        self.emit_block_body(op.body)
        term = op.body.terminator
        for n, y in zip(carried, term.operands):
            yn = self.name(y)
            if yn != n:
                self.emit(f"{n} = {yn}")
        if not op.body.operations or len(op.body.operations) == 1:
            self.emit("pass")
        self.indent -= 1
        for res, n in zip(op.results, carried):
            self.bind(res, n, owned=True)

    def _emit_scf_if(self, op) -> None:
        res_names = [self.name(r) for r in op.results]
        self.emit(f"if {self.name(op.operand(0))}:")
        self.indent += 1
        self.emit_block_body(op.then_block)
        t_term = op.then_block.terminator
        for n, y in zip(res_names, t_term.operands):
            self.emit(f"{n} = {self.name(y)}")
        if len(op.then_block.operations) == 0:
            self.emit("pass")
        if not res_names and len(op.then_block.operations) <= 1:
            self.emit("pass")
        self.indent -= 1
        if len(op.regions) > 1:
            self.emit("else:")
            self.indent += 1
            self.emit_block_body(op.else_block)
            e_term = op.else_block.terminator
            for n, y in zip(res_names, e_term.operands):
                self.emit(f"{n} = {self.name(y)}")
            if not res_names and len(op.else_block.operations) <= 1:
                self.emit("pass")
            self.indent -= 1
        for r in op.results:
            self.owned[id(r)] = False  # conservative: may alias either side

    def _emit_scf_parallel(self, op) -> None:
        rank = op.num_operands // 3
        lbs = [self.name(op.operand(i)) for i in range(rank)]
        ubs = [self.name(op.operand(rank + i)) for i in range(rank)]
        steps = [self.name(op.operand(2 * rank + i)) for i in range(rank)]
        for d in range(rank):
            iv = self.name(op.body.arguments[d])
            self.emit(f"for {iv} in range({lbs[d]}, {ubs[d]}, {steps[d]}):")
            self.indent += 1
        self.emit_block_body(op.body)
        if len(op.body.operations) <= 1:
            self.emit("pass")
        self.indent -= rank

    # ---- tensor -----------------------------------------------------------------

    def _shape_expr(self, op, result_type) -> str:
        dims = []
        dyn = iter(self.name(o) for o in op.operands)
        for d in result_type.shape:
            dims.append(next(dyn) if d == -1 else str(d))
        return "(" + ", ".join(dims) + ("," if len(dims) == 1 else "") + ")"

    def _emit_tensor_empty(self, op) -> None:
        shape = self._shape_expr(op, op.result().type)
        self.bind(op.result(), f"_np.zeros({shape})", owned=True)

    def _emit_tensor_dim(self, op) -> None:
        d = op.attributes["dim"].value
        self.bind(op.result(), f"{self.name(op.operand(0))}.shape[{d}]")

    def _emit_tensor_extract(self, op) -> None:
        idx = ", ".join(self.name(o) for o in op.operands[1:])
        self.bind(op.result(), f"{self.name(op.operand(0))}[{idx}]")

    def _emit_tensor_insert(self, op) -> None:
        dest_expr = self.consume(op, 1)
        n = self.name(op.result())
        idx = ", ".join(self.name(o) for o in op.operands[2:])
        self.emit(f"{n} = {dest_expr}")
        self.emit(f"{n}[{idx}] = {self.name(op.operand(0))}")
        self.owned[id(op.result())] = True

    def _slice_expr(self, offs: Sequence[str], sizes: Sequence[str]) -> str:
        return ", ".join(f"{o}:{o} + {s}" for o, s in zip(offs, sizes))

    def _emit_tensor_extract_slice(self, op) -> None:
        rank = (op.num_operands - 1) // 2
        offs = [self.name(o) for o in op.operands[1 : 1 + rank]]
        sizes = [self.name(o) for o in op.operands[1 + rank :]]
        src = self.name(op.operand(0))
        self.bind(
            op.result(),
            f"{src}[{self._slice_expr(offs, sizes)}].copy()",
            owned=True,
        )

    def _emit_tensor_insert_slice(self, op) -> None:
        rank = (op.num_operands - 2) // 2
        offs = [self.name(o) for o in op.operands[2 : 2 + rank]]
        sizes = [self.name(o) for o in op.operands[2 + rank :]]
        dest = op.operand(1)
        if self.can_steal(dest, op):
            # Pure in-place store: the result *is* the destination
            # buffer, so alias the SSA name instead of emitting a
            # rebinding assignment (grouped loop bodies rely on this —
            # a rebind-free body can run its blocks concurrently).
            n = self.name(dest)
            self.names[id(op.result())] = n
        else:
            n = self.name(op.result())
            self.emit(f"{n} = {self.name(dest)}.copy()")
        self.emit(
            f"{n}[{self._slice_expr(offs, sizes)}] = {self.name(op.operand(0))}"
        )
        self.owned[id(op.result())] = True

    # ---- memref ----------------------------------------------------------

    def _emit_memref_alloc(self, op) -> None:
        shape = self._shape_expr(op, op.result().type)
        self.bind(op.result(), f"_np.zeros({shape})", owned=True)

    def _emit_memref_dealloc(self, op) -> None:
        self.emit(f"del {self.name(op.operand(0))}")

    def _emit_memref_load(self, op) -> None:
        idx = ", ".join(self.name(o) for o in op.operands[1:])
        self.bind(op.result(), f"{self.name(op.operand(0))}[{idx}]")

    def _emit_memref_store(self, op) -> None:
        idx = ", ".join(self.name(o) for o in op.operands[2:])
        self.emit(
            f"{self.name(op.operand(1))}[{idx}] = {self.name(op.operand(0))}"
        )

    def _emit_memref_subview(self, op) -> None:
        rank = (op.num_operands - 1) // 2
        offs = [self.name(o) for o in op.operands[1 : 1 + rank]]
        sizes = [self.name(o) for o in op.operands[1 + rank :]]
        src = self.name(op.operand(0))
        self.bind(op.result(), f"{src}[{self._slice_expr(offs, sizes)}]")

    def _emit_memref_copy(self, op) -> None:
        self.emit(
            f"{self.name(op.operand(1))}[...] = {self.name(op.operand(0))}"
        )

    def _emit_memref_dim(self, op) -> None:
        d = op.attributes["dim"].value
        self.bind(op.result(), f"{self.name(op.operand(0))}.shape[{d}]")

    # ---- vector -----------------------------------------------------------

    def _emit_vector_transfer_read(self, op) -> None:
        vf = op.result().type.shape[0]
        idx = [self.name(o) for o in op.operands[1:]]
        lead = ", ".join(idx[:-1])
        last = idx[-1]
        src = self.name(op.operand(0))
        prefix = f"{lead}, " if lead else ""
        self.bind(op.result(), f"{src}[{prefix}{last}:{last} + {vf}]")

    def _emit_vector_transfer_write(self, op) -> None:
        idx = [self.name(o) for o in op.operands[2:]]
        lead = ", ".join(idx[:-1])
        last = idx[-1]
        vec = self.name(op.operand(0))
        vf_expr = f"len({vec})"
        prefix = f"{lead}, " if lead else ""
        window = f"{prefix}{last}:{last} + {vf_expr}"
        if op.num_results:
            dest_expr = self.consume(op, 1)
            n = self.name(op.result())
            self.emit(f"{n} = {dest_expr}")
            self.emit(f"{n}[{window}] = {vec}")
            self.owned[id(op.result())] = True
        else:
            self.emit(f"{self.name(op.operand(1))}[{window}] = {vec}")

    def _emit_vector_broadcast(self, op) -> None:
        vf = op.result().type.shape[0]
        self.bind(
            op.result(),
            f"_np.full({vf}, {self.name(op.operand(0))})",
            owned=True,
        )

    def _emit_vector_extract(self, op) -> None:
        pos = op.attributes["position"].value
        self.bind(op.result(), f"{self.name(op.operand(0))}[{pos}]")

    def _emit_vector_fma(self, op) -> None:
        a, b, c = (self.name(op.operand(i)) for i in range(3))
        self.bind(op.result(), f"({a} * {b} + {c})")

    # ---- linalg (vectorized whole-array emission) ---------------------------

    def _emit_linalg_fill(self, op) -> None:
        out_expr = self.consume(op, 1)
        n = self.name(op.result())
        self.emit(f"{n} = {out_expr}")
        self.emit(f"{n}[...] = {self.name(op.operand(0))}")
        self.owned[id(op.result())] = True

    def _emit_linalg_generic(self, op: GenericOp) -> None:
        n_ins = op.num_ins
        offsets = op.offsets
        margins = op.margins
        rank = op.out_init.type.rank  # type: ignore[union-attr]
        out_expr = self.consume(op, n_ins)
        out = self.name(op.result())
        self.emit(f"{out} = {out_expr}")
        self.owned[id(op.result())] = True
        los, his = [], []
        for d in range(rank):
            lo = max([0] + [-o[d] for o in offsets])
            hi = max([0] + [o[d] for o in offsets])
            m_lo, m_hi = margins[d]
            los.append(max(lo, m_lo))
            his.append(max(hi, m_hi))

        def window(off: Sequence[int]) -> str:
            parts = []
            for d in range(rank):
                lo = los[d] + off[d]
                hi_shift = his[d] - off[d]
                hi = f"{out}.shape[{d}] - {hi_shift}" if hi_shift else f"{out}.shape[{d}]"
                parts.append(f"{lo}:{hi}")
            return ", ".join(parts)

        arg_exprs = [
            f"{self.name(in_v)}[{window(off)}]"
            for in_v, off in zip(op.operands[:n_ins], offsets)
        ]
        domain = window([0] * rank)
        arg_exprs.append(f"{out}[{domain}]")
        result = self._emit_elementwise_region(op.body, arg_exprs)
        self.emit(f"{out}[{domain}] = {result[0]}")

    def _emit_cfd_faceIteratorOp(self, op) -> None:
        nv = op.attributes["nbVar"].value
        axis = op.attributes["axis"].value + 1
        rank = op.operand(0).type.rank  # type: ignore[union-attr]
        b_expr = self.consume(op, 1)
        b = self.name(op.result())
        self.emit(f"{b} = {b_expr}")
        self.owned[id(op.result())] = True
        x = self.name(op.operand(0))

        def face_window(side: int, v: int) -> str:
            parts = [str(v)]
            for d in range(1, rank):
                if d == axis:
                    parts.append(":-1" if side == 0 else "1:")
                else:
                    parts.append(":")
            return ", ".join(parts)

        arg_exprs = [f"{x}[{face_window(0, v)}]" for v in range(nv)]
        arg_exprs += [f"{x}[{face_window(1, v)}]" for v in range(nv)]
        fluxes = self._emit_elementwise_region(op.regions[0].entry_block, arg_exprs)
        for v in range(nv):
            fn = self.fresh("flux")
            self.emit(f"{fn} = {fluxes[v]}")
            self.emit(f"{b}[{face_window(0, v)}] -= {fn}")
            self.emit(f"{b}[{face_window(1, v)}] += {fn}")

    def _emit_elementwise_region(
        self, block: Block, arg_exprs: Sequence[str]
    ) -> List[str]:
        """Emit a payload region as whole-array NumPy statements; returns
        the expressions of the terminator operands."""
        mapping: Dict[int, str] = {}
        for arg, expr in zip(block.arguments, arg_exprs):
            n = self.fresh("r")
            self.emit(f"{n} = {expr}")
            mapping[id(arg)] = n
        term = block.terminator
        for op in block.operations:
            if op is term:
                break
            self._emit_region_op(op, mapping)
        return [mapping.get(id(v), self.names.get(id(v), "?")) for v in term.operands]

    def _emit_region_op(self, op: Operation, mapping: Dict[int, str]) -> None:
        def nm(v: Value) -> str:
            return mapping.get(id(v)) or self.name(v)

        n = self.fresh("r")
        if op.name == "arith.constant":
            self.emit(f"{n} = {op.attributes['value'].value!r}")
        elif op.name in _BINOPS:
            self.emit(f"{n} = {nm(op.operand(0))} {_BINOPS[op.name]} {nm(op.operand(1))}")
        elif op.name == "arith.negf":
            self.emit(f"{n} = -{nm(op.operand(0))}")
        elif op.name == "arith.maximumf":
            self.emit(f"{n} = _np.maximum({nm(op.operand(0))}, {nm(op.operand(1))})")
        elif op.name == "arith.minimumf":
            self.emit(f"{n} = _np.minimum({nm(op.operand(0))}, {nm(op.operand(1))})")
        elif op.name in _MATH_FUNCS:
            self.emit(f"{n} = {_MATH_FUNCS[op.name]}({nm(op.operand(0))})")
        elif op.name == "math.fma":
            a, b, c = (nm(op.operand(i)) for i in range(3))
            self.emit(f"{n} = {a} * {b} + {c}")
        elif op.name == "math.powf":
            self.emit(f"{n} = {nm(op.operand(0))} ** {nm(op.operand(1))}")
        elif op.name == "arith.select":
            c, a, b = (nm(op.operand(i)) for i in range(3))
            self.emit(f"{n} = _np.where({c}, {a}, {b})")
        elif op.name in ("arith.cmpf", "arith.cmpi"):
            sym = _CMPOPS[op.attributes["predicate"].value]
            self.emit(f"{n} = {nm(op.operand(0))} {sym} {nm(op.operand(1))}")
        else:
            raise BackendError(
                f"{op.name!r} cannot be emitted as a whole-array expression"
            )
        for res in op.results:
            mapping[id(res)] = n

    # ---- cfd ------------------------------------------------------------------

    def _emit_cfd_get_parallel_blocks(self, op) -> None:
        sizes = ", ".join(self.name(o) for o in op.operands)
        offsets = repr(list(op.block_offsets))
        o_n = self.name(op.result(0))
        i_n = self.name(op.result(1))
        trailing = "," if op.num_operands == 1 else ""
        self.emit(
            f"{o_n}, {i_n} = _compute_parallel_blocks(({sizes}{trailing}), {offsets})"
        )

    def _emit_cfd_tiled_loop(self, op: TiledLoopOp) -> None:
        k = op.rank
        lbs = [self.name(v) for v in op.lbs]
        ubs = [self.name(v) for v in op.ubs]
        steps = [self.name(v) for v in op.steps]
        # Bind in args (aliases: read-only inside the body).
        for arg, in_v in zip(op.in_args, op.ins):
            self.names[id(arg)] = self.name(in_v)
            self.owned[id(arg)] = False
        # Bind out args to consumable buffers.
        out_names = []
        for j, (arg, out_v) in enumerate(zip(op.out_args, op.outs)):
            n = self.name(arg)
            idx = op.operands.index(out_v)
            self.emit(f"{n} = {self.consume(op, idx)}")
            self.owned[id(arg)] = True
            out_names.append(n)
        grid = [self.fresh("g") for _ in range(k)]
        for d in range(k):
            self.emit(
                f"{grid[d]} = max(0, -(-({ubs[d]} - {lbs[d]}) // {steps[d]}))"
            )
        ivs = [self.name(a) for a in op.induction_vars]
        term = op.body.terminator
        if op.has_groups:
            # Emit the block body as a per-block closure and hand the
            # CSR schedule to the runtime dispatcher: group-by-group,
            # blocks of one group concurrently when legal, sequentially
            # otherwise. The closure mutates the out buffers in place;
            # should the body still rebind an out name (no steal was
            # possible), the rebind is declared nonlocal and the loop is
            # marked not-in-place so dispatch never runs it concurrently.
            go = self.name(op.group_operands[0])
            gi = self.name(op.group_operands[1])
            lin = self.fresh("lin")
            blk = self.fresh("blk")
            self.emit(f"def {blk}({lin}):")
            self.indent += 1
            nonlocal_at = len(self.lines)
            rem = self.fresh("rem")
            self.emit(f"{rem} = int({lin})")
            for d in range(k - 1, -1, -1):
                c = self.fresh("c")
                self.emit(f"{c} = {rem} % {grid[d]}")
                if d > 0:
                    self.emit(f"{rem} //= {grid[d]}")
                self.emit(f"{ivs[d]} = {lbs[d]} + {c} * {steps[d]}")
            self.emit_block_body(op.body)
            rebinds = []
            for n, y in zip(out_names, term.operands):
                yn = self.name(y)
                if yn != n:
                    rebinds.append((n, yn))
            if rebinds:
                self.lines.insert(
                    nonlocal_at,
                    "    " * self.indent
                    + "nonlocal "
                    + ", ".join(sorted({n for n, _ in rebinds})),
                )
                for n, yn in rebinds:
                    self.emit(f"{n} = {yn}")
            self.indent -= 1
            self.emit(
                f"_dispatch_wavefronts({go}, {gi}, {blk}, "
                f"inplace={not rebinds}, certified=_PARALLEL_CERTIFIED)"
            )
        else:
            coords = [self.fresh("c") for _ in range(k)]
            for d in range(k):
                rng = f"range({grid[d]})"
                if op.reverse:
                    rng = f"range({grid[d]} - 1, -1, -1)"
                self.emit(f"for {coords[d]} in {rng}:")
                self.indent += 1
            for d in range(k):
                self.emit(f"{ivs[d]} = {lbs[d]} + {coords[d]} * {steps[d]}")
            self.emit_block_body(op.body)
            for n, y in zip(out_names, term.operands):
                yn = self.name(y)
                if yn != n:
                    self.emit(f"{n} = {yn}")
            self.indent -= k
        for res, n in zip(op.results, out_names):
            self.bind(res, n, owned=True)


# Wire the generic binary handlers.
for _op_name, _sym in _BINOPS.items():
    def _make(sym):
        def h(self, op):
            self._binary(op, sym)
        return h
    setattr(Emitter, "_emit_" + _op_name.replace(".", "_"), _make(_sym))

for _op_name, _fn in _MATH_FUNCS.items():
    def _make_m(fn):
        def h(self, op):
            self.bind(op.result(), f"{fn}({self.name(op.operand(0))})")
        return h
    setattr(Emitter, "_emit_" + _op_name.replace(".", "_"), _make_m(_fn))


def emit_module(module: ModuleOp) -> str:
    """Emit the whole module as Python source."""
    return Emitter(module).run()
