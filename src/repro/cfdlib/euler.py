"""The 3D compressible Euler equations (ideal gas).

Conservative state vector ``W = (rho, rho*u, rho*v, rho*w, E)`` with the
ideal-gas closure ``p = (gamma - 1) (E - 0.5 rho |u|^2)``. This module
provides the state conversions, exact fluxes, wave speeds and canonical
initial conditions used by the LU-SGS solver (§4.3).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: Ratio of specific heats for a diatomic ideal gas.
GAMMA = 1.4

#: Number of conservative variables in 3D.
NB_VAR = 5


def primitive_from_conservative(
    w: np.ndarray, gamma: float = GAMMA
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(rho, velocity[3], pressure)`` from conservative variables.

    ``w`` has shape ``(5, ...)``; velocity keeps the trailing shape with
    a leading 3.
    """
    rho = w[0]
    vel = w[1:4] / rho
    kinetic = 0.5 * rho * np.sum(vel * vel, axis=0)
    p = (gamma - 1.0) * (w[4] - kinetic)
    return rho, vel, p


def conservative_from_primitive(
    rho: np.ndarray,
    vel: Sequence[np.ndarray],
    p: np.ndarray,
    gamma: float = GAMMA,
) -> np.ndarray:
    """Conservative state ``(5, ...)`` from primitives."""
    rho = np.asarray(rho, dtype=np.float64)
    vel = [np.broadcast_to(np.asarray(v, dtype=np.float64), rho.shape) for v in vel]
    p = np.broadcast_to(np.asarray(p, dtype=np.float64), rho.shape)
    kinetic = 0.5 * rho * sum(v * v for v in vel)
    e = p / (gamma - 1.0) + kinetic
    return np.stack([rho, rho * vel[0], rho * vel[1], rho * vel[2], e])


def pressure(w: np.ndarray, gamma: float = GAMMA) -> np.ndarray:
    _, _, p = primitive_from_conservative(w, gamma)
    return p


def sound_speed(w: np.ndarray, gamma: float = GAMMA) -> np.ndarray:
    rho, _, p = primitive_from_conservative(w, gamma)
    return np.sqrt(gamma * p / rho)


def total_enthalpy(w: np.ndarray, gamma: float = GAMMA) -> np.ndarray:
    """H = (E + p) / rho."""
    _, _, p = primitive_from_conservative(w, gamma)
    return (w[4] + p) / w[0]


def flux(w: np.ndarray, axis: int, gamma: float = GAMMA) -> np.ndarray:
    """The exact Euler flux along coordinate ``axis`` (0, 1 or 2)."""
    rho, vel, p = primitive_from_conservative(w, gamma)
    un = vel[axis]
    out = np.empty_like(w)
    out[0] = rho * un
    for d in range(3):
        out[1 + d] = rho * vel[d] * un
    out[1 + axis] += p
    out[4] = (w[4] + p) * un
    return out


def max_wave_speed(w: np.ndarray, axis: int, gamma: float = GAMMA) -> np.ndarray:
    """Spectral radius ``|u_axis| + c`` — the LU-SGS diagonal ingredient."""
    rho, vel, p = primitive_from_conservative(w, gamma)
    return np.abs(vel[axis]) + np.sqrt(gamma * p / rho)


def validate_state(w: np.ndarray, gamma: float = GAMMA) -> None:
    """Raise on non-physical states (the solver's sanity check)."""
    if np.any(w[0] <= 0):
        raise ValueError("non-positive density")
    if np.any(pressure(w, gamma) <= 0):
        raise ValueError("non-positive pressure")


# ---------------------------------------------------------------------------
# Canonical initial conditions.
# ---------------------------------------------------------------------------


def uniform_flow(
    shape: Sequence[int],
    rho: float = 1.0,
    velocity: Sequence[float] = (0.5, 0.0, 0.0),
    p: float = 1.0,
    gamma: float = GAMMA,
) -> np.ndarray:
    """A constant state — fluxes cancel, the exact steady solution."""
    ones = np.ones(tuple(shape))
    return conservative_from_primitive(
        rho * ones, [v * ones for v in velocity], p * ones, gamma
    )


def density_wave(
    shape: Sequence[int],
    amplitude: float = 0.1,
    velocity: Sequence[float] = (0.5, 0.3, 0.2),
    p: float = 1.0,
    gamma: float = GAMMA,
) -> np.ndarray:
    """A smooth periodic density perturbation advected by uniform flow —
    the standard periodic-box accuracy test (matches the paper's periodic
    512^3 configuration at our scale)."""
    axes = [np.linspace(0.0, 2.0 * np.pi, n, endpoint=False) for n in shape]
    xx, yy, zz = np.meshgrid(*axes, indexing="ij")
    rho = 1.0 + amplitude * np.sin(xx) * np.sin(yy) * np.sin(zz)
    ones = np.ones(tuple(shape))
    return conservative_from_primitive(
        rho, [v * ones for v in velocity], p * ones, gamma
    )


def gaussian_pressure_pulse(
    shape: Sequence[int],
    amplitude: float = 0.2,
    width: float = 0.15,
    gamma: float = GAMMA,
) -> np.ndarray:
    """A centered pressure pulse in a quiescent gas (acoustic test)."""
    axes = [np.linspace(0.0, 1.0, n, endpoint=False) for n in shape]
    xx, yy, zz = np.meshgrid(*axes, indexing="ij")
    r2 = (xx - 0.5) ** 2 + (yy - 0.5) ** 2 + (zz - 0.5) ** 2
    p = 1.0 + amplitude * np.exp(-r2 / (2.0 * width**2))
    ones = np.ones(tuple(shape))
    return conservative_from_primitive(
        ones, [0.0 * ones] * 3, p, gamma
    )
