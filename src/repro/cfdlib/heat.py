"""Use case (d): the 3D heat equation solved implicitly with Gauss-Seidel
(Fig. 9 of the paper, pseudo-MLIR in Fig. 10).

Every time step:

1. **RHS** — the finite-difference laplacian of the temperature
   (a 7-point out-of-place ``linalg.generic``);
2. **Gauss-Seidel** — one in-place 6-point sweep computing the
   temperature increment ``dT`` from ``Rhs`` (a ``cfd.stencilOp`` with
   ``dT[i] = lambda * (Rhs[i] + sum(dT neighbours))``, i.e.
   ``d = 1/lambda`` in the Eq. 2 normal form);
3. **update** — ``T += dT`` pointwise on the interior (a margins-1
   ``linalg.generic``).

Both the IR builder (consumed by :class:`repro.core.pipeline
.StencilCompiler`) and the NumPy reference implementation live here; the
test suite pins them against each other.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.dialects import arith, func, linalg, scf, tensor
from repro.frontend import stencil
from repro.ir import ModuleOp, OpBuilder
from repro.ir.types import FunctionType, TensorType, f64

#: The laplacian accesses: center + the six axis neighbours.
_LAPLACIAN_OFFSETS = [
    (0, 0, 0, 0),
    (0, -1, 0, 0),
    (0, 1, 0, 0),
    (0, 0, -1, 0),
    (0, 0, 1, 0),
    (0, 0, 0, -1),
    (0, 0, 0, 1),
]


def build_heat3d_module(
    n: int, steps: int, lam: float = 0.1, entry: str = "heat"
) -> ModuleOp:
    """``func @heat(T0, dT0) -> T`` running ``steps`` implicit steps.

    Matches the PolyBench-style loop structure of Fig. 9: all three
    phases iterate the interior ``1 .. n-1`` only.
    """
    module = ModuleOp.create()
    b = OpBuilder.at_end(module.body)
    t = TensorType([1, n, n, n], f64)
    fn = func.FuncOp.build(b, entry, FunctionType([t, t], [t]))
    fb = OpBuilder.at_end(fn.body)
    t0, dt0 = fn.arguments
    lb = arith.const_index(fb, 0)
    ub = arith.const_index(fb, steps)
    one = arith.const_index(fb, 1)
    time_loop = scf.ForOp.build(fb, lb, ub, one, [t0, dt0])
    tb = OpBuilder.at_end(time_loop.body)
    t_cur, dt_cur = time_loop.iter_args

    # Phase 1: Rhs = laplacian(T) on the interior.
    zero = arith.const_f64(tb, 0.0)
    rhs_init = linalg.FillOp.build(
        tb, zero, tensor.empty_like(tb, t_cur)
    ).result()
    rhs = linalg.GenericOp.build(
        tb, [t_cur] * 7, rhs_init, offsets=_LAPLACIAN_OFFSETS
    )
    rb = OpBuilder.at_end(rhs.body)
    args = rhs.body.arguments
    six = arith.const_f64(rb, 6.0)
    total = args[1]
    for a in args[2:7]:
        total = arith.addf(rb, total, a)
    lap = arith.subf(rb, total, arith.mulf(rb, six, args[0]))
    linalg.LinalgYieldOp.build(rb, [lap])

    # Phase 2: Gauss-Seidel on dT:
    #   dT[i] = lam * (Rhs[i] + sum of the six dT neighbours)
    # in Eq. 2 normal form: d = 1/lam, neighbour contributions identity.
    # Written as a plain-Python @stencil kernel: the frontend infers the
    # 6-point L/U split from the read offsets' signs and the emitted op
    # is identical to the hand-built gauss_seidel_6pt_3d() version.
    d = 1.0 / lam

    @stencil
    def gauss_seidel(dt, rhs_f, i, j, k):
        dt[i, j, k] = (rhs_f[i, j, k]
                       + dt[i - 1, j, k] + dt[i, j - 1, k]
                       + dt[i, j, k - 1] + dt[i, j, k + 1]
                       + dt[i, j + 1, k] + dt[i + 1, j, k]) / d

    st = gauss_seidel.attach(tb, dt_cur, rhs.result(), dt_cur)

    # Phase 3: T += dT on the interior (margins = 1).
    upd = linalg.GenericOp.build(
        tb, [st.result()], t_cur, margins=[(0, 0), (1, 1), (1, 1), (1, 1)]
    )
    ub_ = OpBuilder.at_end(upd.body)
    dy, told = upd.body.arguments
    linalg.LinalgYieldOp.build(ub_, [arith.addf(ub_, dy, told)])

    scf.YieldOp.build(tb, [upd.result(), st.result()])
    func.ReturnOp.build(fb, [time_loop.result(0)])
    return module


def heat3d_step(
    t: np.ndarray, dt: np.ndarray, lam: float = 0.1
) -> Tuple[np.ndarray, np.ndarray]:
    """One implicit time step of Fig. 9, mutating ``t``/``dt`` in place.

    The unit the checkpointed driver snapshots between: a pure function
    of the incoming state, so interrupted runs resume bit-identically.
    """
    n = t.shape[0]
    rhs = np.zeros_like(t)
    rhs[1:-1, 1:-1, 1:-1] = (
        t[2:, 1:-1, 1:-1] + t[:-2, 1:-1, 1:-1]
        + t[1:-1, 2:, 1:-1] + t[1:-1, :-2, 1:-1]
        + t[1:-1, 1:-1, 2:] + t[1:-1, 1:-1, :-2]
        - 6.0 * t[1:-1, 1:-1, 1:-1]
    )
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            for k in range(1, n - 1):
                dt[i, j, k] = lam * (
                    rhs[i, j, k]
                    + dt[i - 1, j, k] + dt[i + 1, j, k]
                    + dt[i, j - 1, k] + dt[i, j + 1, k]
                    + dt[i, j, k - 1] + dt[i, j, k + 1]
                )
    t[1:-1, 1:-1, 1:-1] += dt[1:-1, 1:-1, 1:-1]
    return t, dt


def heat3d_reference(
    t0: np.ndarray, dt0: np.ndarray, steps: int, lam: float = 0.1
) -> Tuple[np.ndarray, np.ndarray]:
    """Direct NumPy/Python transcription of Fig. 9 (the C baseline)."""
    t = t0.copy()
    dt = dt0.copy()
    for _ in range(steps):
        heat3d_step(t, dt, lam)
    return t, dt


def checkpointed_heat3d(
    t0: np.ndarray,
    dt0: np.ndarray,
    steps: int,
    lam: float = 0.1,
    manager=None,
    report=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`heat3d_reference` with checkpoint/restart.

    Checkpoints ``(T, dT)`` per the manager's cadence and resumes from
    the last checkpoint after a crash, bit-identically to an
    uninterrupted run. The ``solver.heat-step`` fault site fires before
    every step.
    """
    from repro.runtime.resilience.checkpoint import run_checkpointed

    state = {"t": t0.copy(), "dt": dt0.copy()}

    def step(s, _k):
        heat3d_step(s["t"], s["dt"], lam)
        return s

    state = run_checkpointed(
        step, state, steps, manager=manager, site="solver.heat-step",
        report=report,
    )
    return state["t"], state["dt"]


def initial_temperature(n: int, seed: int = 0) -> np.ndarray:
    """A smooth random initial temperature field of shape ``(n, n, n)``."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, np.pi, n)
    xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
    base = np.sin(xx) * np.sin(yy) * np.sin(zz)
    noise = 0.01 * rng.standard_normal((n, n, n))
    return base + noise
