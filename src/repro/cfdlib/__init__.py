"""CFD numerics substrate.

The physical and numerical machinery the paper's evaluation runs on:

* :mod:`repro.cfdlib.mesh` — structured Cartesian meshes;
* :mod:`repro.cfdlib.boundary` — periodic / Dirichlet boundary handling;
* :mod:`repro.cfdlib.solvers` — reference iterative linear solvers
  (Jacobi, Gauss-Seidel, SOR, symmetric GS) and convergence utilities;
* :mod:`repro.cfdlib.heat` — the 3D heat equation solved with
  Gauss-Seidel (use case (d), Fig. 9/10), both as generated IR and as a
  NumPy reference;
* :mod:`repro.cfdlib.euler` — the 3D Euler equations: conservative /
  primitive conversions, ideal-gas EOS, exact fluxes;
* :mod:`repro.cfdlib.roe` — the Roe approximate Riemann solver [34];
* :mod:`repro.cfdlib.lusgs` — the LU-SGS implicit solver (§4.3, Fig. 14)
  as an end-to-end generated program plus its NumPy reference.
"""

from repro.cfdlib.mesh import StructuredMesh

__all__ = ["StructuredMesh"]
