"""The Roe approximate Riemann solver [Roe 1981, ref. 34 of the paper].

Provides both

* :func:`roe_flux` — a vectorized NumPy implementation (the reference,
  also the flux of the elsA-like baseline), and
* :func:`emit_roe_flux` — the same arithmetic emitted as IR, used as the
  region of ``cfd.faceIteratorOp`` so the flux computation is part of the
  generated program (Fig. 14) and benefits from the backend's whole-array
  vectorization.

The wave decomposition follows Toro's presentation: three acoustic /
entropy waves plus two shear waves, all using Roe-averaged states.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cfdlib.euler import GAMMA, flux, primitive_from_conservative, total_enthalpy
from repro.dialects import arith, math as math_dialect
from repro.ir.builder import OpBuilder
from repro.ir.values import Value


def roe_flux(
    wl: np.ndarray, wr: np.ndarray, axis: int, gamma: float = GAMMA
) -> np.ndarray:
    """Roe flux across faces with normal along ``axis``.

    ``wl``/``wr`` have shape ``(5, ...)``: the conservative states on the
    left/right of each face. Returns the numerical flux ``(5, ...)``.
    """
    rl, vl, pl = primitive_from_conservative(wl, gamma)
    rr, vr, pr = primitive_from_conservative(wr, gamma)
    hl = total_enthalpy(wl, gamma)
    hr = total_enthalpy(wr, gamma)

    sl, sr = np.sqrt(rl), np.sqrt(rr)
    inv = 1.0 / (sl + sr)
    u_avg = (sl * vl + sr * vr) * inv  # (3, ...)
    h_avg = (sl * hl + sr * hr) * inv
    q2 = np.sum(u_avg * u_avg, axis=0)
    a2 = (gamma - 1.0) * (h_avg - 0.5 * q2)
    a = np.sqrt(np.maximum(a2, 1e-300))
    un = u_avg[axis]
    r_avg = sl * sr

    dp = pr - pl
    dr = rr - rl
    dun = vr[axis] - vl[axis]

    alpha1 = (dp - r_avg * a * dun) / (2.0 * a2)
    alpha2 = dr - dp / a2
    alpha3 = (dp + r_avg * a * dun) / (2.0 * a2)

    lam1 = np.abs(un - a)
    lam2 = np.abs(un)
    lam3 = np.abs(un + a)

    transverse = [d for d in range(3) if d != axis]

    diss = np.zeros_like(wl)
    # Acoustic wave (u - a).
    diss[0] += lam1 * alpha1
    for d in range(3):
        shift = -a if d == axis else 0.0
        diss[1 + d] += lam1 * alpha1 * (u_avg[d] + shift)
    diss[4] += lam1 * alpha1 * (h_avg - a * un)
    # Entropy wave.
    diss[0] += lam2 * alpha2
    for d in range(3):
        diss[1 + d] += lam2 * alpha2 * u_avg[d]
    diss[4] += lam2 * alpha2 * 0.5 * q2
    # Shear waves.
    for d in transverse:
        dut = vr[d] - vl[d]
        strength = r_avg * dut
        diss[1 + d] += lam2 * strength
        diss[4] += lam2 * strength * u_avg[d]
    # Acoustic wave (u + a).
    diss[0] += lam3 * alpha3
    for d in range(3):
        shift = a if d == axis else 0.0
        diss[1 + d] += lam3 * alpha3 * (u_avg[d] + shift)
    diss[4] += lam3 * alpha3 * (h_avg + a * un)

    return 0.5 * (flux(wl, axis, gamma) + flux(wr, axis, gamma)) - 0.5 * diss


def rusanov_flux(
    wl: np.ndarray, wr: np.ndarray, axis: int, gamma: float = GAMMA
) -> np.ndarray:
    """Local Lax-Friedrichs flux: the simpler upwind comparator."""
    from repro.cfdlib.euler import max_wave_speed

    smax = np.maximum(
        max_wave_speed(wl, axis, gamma), max_wave_speed(wr, axis, gamma)
    )
    return 0.5 * (flux(wl, axis, gamma) + flux(wr, axis, gamma)) - 0.5 * smax * (
        wr - wl
    )


# ---------------------------------------------------------------------------
# IR emission: the same computation as a faceIteratorOp region payload.
# ---------------------------------------------------------------------------


class _Expr:
    """A tiny fluent wrapper to keep the emitted arithmetic readable."""

    def __init__(self, builder: OpBuilder) -> None:
        self.b = builder

    def c(self, value: float) -> Value:
        return arith.const_f64(self.b, float(value))

    def add(self, *vals: Value) -> Value:
        out = vals[0]
        for v in vals[1:]:
            out = arith.addf(self.b, out, v)
        return out

    def sub(self, a: Value, b: Value) -> Value:
        return arith.subf(self.b, a, b)

    def mul(self, *vals: Value) -> Value:
        out = vals[0]
        for v in vals[1:]:
            out = arith.mulf(self.b, out, v)
        return out

    def div(self, a: Value, b: Value) -> Value:
        return arith.divf(self.b, a, b)

    def sqrt(self, a: Value) -> Value:
        return math_dialect.sqrt(self.b, a)

    def abs(self, a: Value) -> Value:
        return math_dialect.absf(self.b, a)


def _emit_primitives(e: _Expr, w: Sequence[Value], gamma: float):
    rho = w[0]
    vel = [e.div(w[1 + d], rho) for d in range(3)]
    q2 = e.add(*[e.mul(v, v) for v in vel])
    kinetic = e.mul(e.c(0.5), rho, q2)
    p = e.mul(e.c(gamma - 1.0), e.sub(w[4], kinetic))
    h = e.div(e.add(w[4], p), rho)
    return rho, vel, p, h


def _emit_flux(e: _Expr, w: Sequence[Value], axis: int, gamma: float) -> List[Value]:
    rho, vel, p, _h = _emit_primitives(e, w, gamma)
    un = vel[axis]
    out = [e.mul(rho, un)]
    for d in range(3):
        component = e.mul(rho, vel[d], un)
        if d == axis:
            component = e.add(component, p)
        out.append(component)
    out.append(e.mul(e.add(w[4], p), un))
    return out


def emit_roe_flux(
    builder: OpBuilder,
    wl: Sequence[Value],
    wr: Sequence[Value],
    axis: int,
    gamma: float = GAMMA,
) -> List[Value]:
    """Emit the Roe flux as IR; returns the five flux values.

    ``wl``/``wr`` are the ten block arguments of a
    ``cfd.faceIteratorOp`` region (five conservative variables each).
    """
    e = _Expr(builder)
    rl, vl, pl, hl = _emit_primitives(e, wl, gamma)
    rr, vr, pr, hr = _emit_primitives(e, wr, gamma)

    s_l, s_r = e.sqrt(rl), e.sqrt(rr)
    inv = e.div(e.c(1.0), e.add(s_l, s_r))
    u_avg = [
        e.mul(e.add(e.mul(s_l, vl[d]), e.mul(s_r, vr[d])), inv)
        for d in range(3)
    ]
    h_avg = e.mul(e.add(e.mul(s_l, hl), e.mul(s_r, hr)), inv)
    q2 = e.add(*[e.mul(u, u) for u in u_avg])
    a2 = e.mul(e.c(gamma - 1.0), e.sub(h_avg, e.mul(e.c(0.5), q2)))
    a = e.sqrt(a2)
    un = u_avg[axis]
    r_avg = e.mul(s_l, s_r)

    dp = e.sub(pr, pl)
    dr = e.sub(rr, rl)
    dun = e.sub(vr[axis], vl[axis])

    two_a2 = e.mul(e.c(2.0), a2)
    ra_dun = e.mul(r_avg, a, dun)
    alpha1 = e.div(e.sub(dp, ra_dun), two_a2)
    alpha2 = e.sub(dr, e.div(dp, a2))
    alpha3 = e.div(e.add(dp, ra_dun), two_a2)

    lam1 = e.abs(e.sub(un, a))
    lam2 = e.abs(un)
    lam3 = e.abs(e.add(un, a))

    w1 = e.mul(lam1, alpha1)
    w2 = e.mul(lam2, alpha2)
    w3 = e.mul(lam3, alpha3)

    diss = [None] * 5
    diss[0] = e.add(w1, w2, w3)
    for d in range(3):
        t1 = e.mul(w1, e.sub(u_avg[d], a) if d == axis else u_avg[d])
        t2 = e.mul(w2, u_avg[d])
        t3 = e.mul(w3, e.add(u_avg[d], a) if d == axis else u_avg[d])
        diss[1 + d] = e.add(t1, t2, t3)
    diss[4] = e.add(
        e.mul(w1, e.sub(h_avg, e.mul(a, un))),
        e.mul(w2, e.mul(e.c(0.5), q2)),
        e.mul(w3, e.add(h_avg, e.mul(a, un))),
    )
    for d in range(3):
        if d == axis:
            continue
        strength = e.mul(lam2, r_avg, e.sub(vr[d], vl[d]))
        diss[1 + d] = e.add(diss[1 + d], strength)
        diss[4] = e.add(diss[4], e.mul(strength, u_avg[d]))

    f_l = _emit_flux(e, wl, axis, gamma)
    f_r = _emit_flux(e, wr, axis, gamma)
    half = e.c(0.5)
    return [
        e.sub(e.mul(half, e.add(f_l[v], f_r[v])), e.mul(half, diss[v]))
        for v in range(5)
    ]
