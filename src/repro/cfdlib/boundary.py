"""Boundary conditions for structured fields.

The evaluation's LU-SGS case uses periodic boundaries (§4.3); the stencil
kernels use Dirichlet (frozen) boundaries like PolyBench. Periodicity is
implemented with ghost layers: the field is padded, the solver works on
the padded interior, and the ghost layers are refreshed between sweeps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def add_ghost_layers(field: np.ndarray, width: int = 1) -> np.ndarray:
    """Pad every space dimension (all but the leading variable dim) with
    ``width`` ghost cells."""
    pad = [(0, 0)] + [(width, width)] * (field.ndim - 1)
    return np.pad(field, pad)


def strip_ghost_layers(field: np.ndarray, width: int = 1) -> np.ndarray:
    """Remove the ghost layers added by :func:`add_ghost_layers`."""
    inner = (slice(None),) + (slice(width, -width),) * (field.ndim - 1)
    return field[inner].copy()


def apply_periodic(field: np.ndarray, width: int = 1) -> np.ndarray:
    """Refresh ghost layers from the opposite interior side, in place."""
    for d in range(1, field.ndim):
        n = field.shape[d]
        low_ghost = [slice(None)] * field.ndim
        low_src = [slice(None)] * field.ndim
        high_ghost = [slice(None)] * field.ndim
        high_src = [slice(None)] * field.ndim
        low_ghost[d] = slice(0, width)
        low_src[d] = slice(n - 2 * width, n - width)
        high_ghost[d] = slice(n - width, n)
        high_src[d] = slice(width, 2 * width)
        field[tuple(low_ghost)] = field[tuple(low_src)]
        field[tuple(high_ghost)] = field[tuple(high_src)]
    return field


def apply_dirichlet(
    field: np.ndarray, values: Sequence[float] = None, width: int = 1
) -> np.ndarray:
    """Set the boundary shell (``width`` cells) to fixed values, in place.

    ``values`` has one entry per variable (leading dimension); defaults
    to zero.
    """
    nv = field.shape[0]
    if values is None:
        values = [0.0] * nv
    if len(values) != nv:
        raise ValueError(f"{len(values)} boundary values for {nv} variables")
    for v in range(nv):
        for d in range(1, field.ndim):
            lo = [slice(None)] * field.ndim
            hi = [slice(None)] * field.ndim
            lo[0] = hi[0] = v
            lo[d] = slice(0, width)
            hi[d] = slice(field.shape[d] - width, field.shape[d])
            field[tuple(lo)] = values[v]
            field[tuple(hi)] = values[v]
    return field
