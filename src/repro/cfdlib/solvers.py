"""Reference iterative linear solvers and convergence utilities.

These NumPy implementations define the numerics the generated kernels
must reproduce, and back the paper's motivating claim (§1) that
Gauss-Seidel/SOR converge quadratically faster than Jacobi on the model
Poisson problem [19].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.runtime.resilience.checkpoint import CheckpointManager, run_checkpointed


@dataclass
class SolveReport:
    """Convergence record of an iterative solve."""

    iterations: int
    residuals: List[float]
    converged: bool

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")

    def convergence_rate(self) -> float:
        """Geometric-mean per-iteration residual reduction factor."""
        r = [x for x in self.residuals if x > 0]
        if len(r) < 2:
            return float("nan")
        return (r[-1] / r[0]) ** (1.0 / (len(r) - 1))


def poisson_residual(u: np.ndarray, f: np.ndarray, h: float = 1.0) -> float:
    """L2 norm of the 2-D 5-point Poisson residual on the interior."""
    lap = (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        - 4.0 * u[1:-1, 1:-1]
    ) / (h * h)
    r = f[1:-1, 1:-1] - lap
    return float(np.sqrt(np.mean(r * r)))


def jacobi_poisson_sweep(u: np.ndarray, f: np.ndarray, h: float = 1.0) -> np.ndarray:
    """One Jacobi sweep for ``-laplace(u) = -f`` (out of place)."""
    new = u.copy()
    new[1:-1, 1:-1] = 0.25 * (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        - (h * h) * f[1:-1, 1:-1]
    )
    return new


def gauss_seidel_poisson_sweep(
    u: np.ndarray, f: np.ndarray, h: float = 1.0, omega: float = 1.0
) -> np.ndarray:
    """One (SOR-weighted) Gauss-Seidel sweep, truly in place."""
    n0, n1 = u.shape
    h2 = h * h
    for i in range(1, n0 - 1):
        for j in range(1, n1 - 1):
            gs = 0.25 * (
                u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1]
                - h2 * f[i, j]
            )
            u[i, j] = (1.0 - omega) * u[i, j] + omega * gs
    return u


def symmetric_gauss_seidel_sweep(
    u: np.ndarray, f: np.ndarray, h: float = 1.0
) -> np.ndarray:
    """Forward then backward Gauss-Seidel — the SGS/LU-SGS structure."""
    n0, n1 = u.shape
    h2 = h * h
    for i in range(1, n0 - 1):
        for j in range(1, n1 - 1):
            u[i, j] = 0.25 * (
                u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1]
                - h2 * f[i, j]
            )
    for i in range(n0 - 2, 0, -1):
        for j in range(n1 - 2, 0, -1):
            u[i, j] = 0.25 * (
                u[i - 1, j] + u[i + 1, j] + u[i, j - 1] + u[i, j + 1]
                - h2 * f[i, j]
            )
    return u


def solve_poisson(
    f: np.ndarray,
    method: str = "gauss_seidel",
    max_iterations: int = 500,
    tolerance: float = 1e-8,
    omega: float = 1.0,
    h: float = 1.0,
    u0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, SolveReport]:
    """Iterate a sweep until the residual drops below ``tolerance``.

    ``method`` is one of ``jacobi``, ``gauss_seidel``, ``sor``,
    ``symmetric_gs``. Boundary values of ``u`` stay zero (Dirichlet).
    """
    u = np.zeros_like(f) if u0 is None else u0.copy()
    sweep = _sweep_fn(method, f, h, omega)
    residuals = [poisson_residual(u, f, h)]
    converged = False
    for it in range(1, max_iterations + 1):
        u = sweep(u)
        residuals.append(poisson_residual(u, f, h))
        if residuals[-1] < tolerance:
            converged = True
            break
    return u, SolveReport(it, residuals, converged)


def _sweep_fn(method: str, f: np.ndarray, h: float, omega: float):
    """The out-of-place sweep closure shared by :func:`solve_poisson` and
    :func:`checkpointed_poisson_solve` (one definition keeps the two
    drivers numerically identical)."""
    sweeps: dict = {
        "jacobi": lambda u: jacobi_poisson_sweep(u, f, h),
        "gauss_seidel": lambda u: gauss_seidel_poisson_sweep(u.copy(), f, h),
        "sor": lambda u: gauss_seidel_poisson_sweep(u.copy(), f, h, omega),
        "symmetric_gs": lambda u: symmetric_gauss_seidel_sweep(u.copy(), f, h),
    }
    if method not in sweeps:
        raise ValueError(f"unknown method {method!r}")
    return sweeps[method]


def checkpointed_poisson_solve(
    f: np.ndarray,
    sweeps: int,
    method: str = "sor",
    omega: float = 1.0,
    h: float = 1.0,
    u0: Optional[np.ndarray] = None,
    manager: Optional[CheckpointManager] = None,
    report=None,
) -> np.ndarray:
    """A fixed-sweep-count Poisson solve with checkpoint/restart.

    Runs exactly ``sweeps`` sweeps (a fixed count, unlike the
    residual-driven :func:`solve_poisson`, so an interrupted and resumed
    solve is *bit-identical* to an uninterrupted one). With a ``manager``
    holding a checkpoint from a crashed run, the solve resumes from it;
    the ``solver.sweep`` fault site fires before every sweep.
    """
    sweep = _sweep_fn(method, f, h, omega)
    state = {"u": np.zeros_like(f) if u0 is None else u0.copy()}

    def step(s, _k):
        return {"u": sweep(s["u"])}

    state = run_checkpointed(
        step, state, sweeps, manager=manager, site="solver.sweep",
        report=report,
    )
    return state["u"]


def spectral_radius_model_problem(n: int, method: str, omega: float = 1.0) -> float:
    """Textbook iteration-matrix spectral radii for the n x n Dirichlet
    Poisson model problem [Greenbaum 1997]:

    * Jacobi: ``cos(pi h)``
    * Gauss-Seidel: ``cos(pi h)^2``  (the "quadratically faster" claim)
    * SOR(omega_opt): ``omega_opt - 1``
    """
    h = 1.0 / (n + 1)
    mu = np.cos(np.pi * h)
    if method == "jacobi":
        return float(mu)
    if method == "gauss_seidel":
        return float(mu**2)
    if method == "sor":
        return float(omega - 1.0) if omega > 1.0 else float(mu**2)
    raise ValueError(f"unknown method {method!r}")


def optimal_sor_omega(n: int) -> float:
    """The optimal SOR relaxation factor for the model problem."""
    h = 1.0 / (n + 1)
    mu = np.cos(np.pi * h)
    return float(2.0 / (1.0 + np.sqrt(1.0 - mu * mu)))
