"""Structured Cartesian meshes.

The paper restricts itself to structured meshes, "where the solution
vector x can be represented by a multi-dimensional array or tensor" (§1).
This class holds the geometry: uniform cell spacing per axis, cell
volumes, face areas — the quantities the implicit solver's diagonal term
``D = V/dt + sum(rho_A * A)`` needs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


class StructuredMesh:
    """A uniform Cartesian mesh of ``shape`` cells over ``extent``.

    Parameters
    ----------
    shape:
        Number of cells per axis, e.g. ``(64, 64, 64)``.
    extent:
        Physical length per axis; defaults to the unit box.
    """

    def __init__(
        self,
        shape: Sequence[int],
        extent: Sequence[float] = None,
    ) -> None:
        self.shape: Tuple[int, ...] = tuple(int(n) for n in shape)
        if any(n < 1 for n in self.shape):
            raise ValueError(f"mesh needs at least one cell per axis: {shape}")
        self.rank = len(self.shape)
        if extent is None:
            extent = [1.0] * self.rank
        self.extent: Tuple[float, ...] = tuple(float(e) for e in extent)
        if len(self.extent) != self.rank:
            raise ValueError("extent rank must match shape rank")
        if any(e <= 0 for e in self.extent):
            raise ValueError("extents must be positive")
        #: Cell spacing per axis.
        self.spacing: Tuple[float, ...] = tuple(
            e / n for e, n in zip(self.extent, self.shape)
        )

    @property
    def num_cells(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def cell_volume(self) -> float:
        v = 1.0
        for h in self.spacing:
            v *= h
        return v

    def face_area(self, axis: int) -> float:
        """Area of a face normal to ``axis``."""
        a = 1.0
        for d, h in enumerate(self.spacing):
            if d != axis:
                a *= h
        return a

    def cell_centers(self, axis: int) -> np.ndarray:
        """Coordinates of cell centers along one axis."""
        h = self.spacing[axis]
        return (np.arange(self.shape[axis]) + 0.5) * h

    def meshgrid(self) -> Tuple[np.ndarray, ...]:
        """Cell-center coordinate arrays, one per axis (ij indexing)."""
        axes = [self.cell_centers(d) for d in range(self.rank)]
        return tuple(np.meshgrid(*axes, indexing="ij"))

    def field(self, nb_var: int = 1, fill: float = 0.0) -> np.ndarray:
        """An ``(nb_var, *shape)`` field tensor."""
        return np.full((nb_var,) + self.shape, fill, dtype=np.float64)

    def __repr__(self) -> str:
        dims = "x".join(str(n) for n in self.shape)
        return f"StructuredMesh({dims}, extent={list(self.extent)})"
