"""The LU-SGS implicit Euler solver (§4.3, Fig. 14).

One implicit time step on a periodic box solves

.. math::  (V/\\Delta t\\, I - \\partial R/\\partial W)\\, \\Delta W = R(W^n)

with the Yoon-Jameson scalar-diagonal approximation: the diagonal is
``D = V/dt + sum_d rho_d A_d`` (``rho_d = |u_d| + c`` the directional
spectral radius) and the off-diagonal neighbour coupling is approximated
by ``0.5 A_d rho_d``. The solve is one forward Gauss-Seidel sweep
followed by one backward sweep — exactly the sweep pair the paper models
with two ``cfd.stencilOp`` instances whose patterns are sign-inverted
(Fig. 14's computational graph):

1. ghost refresh (periodic BCs, ``tensor`` slice ops);
2. ``B = R(W)``: three ``cfd.faceIteratorOp`` (one per axis) accumulating
   Roe fluxes;
3. forward sweep: ``cfd.stencilOp`` with ``L = {-e_d}``;
4. backward sweep: ``cfd.stencilOp`` with the inverted pattern
   (``sweep = -1``), its lower neighbours reading the forward result via
   initial-content reads;
5. ``W += dW`` pointwise update.

The NumPy/Python reference (:func:`lusgs_reference`) mirrors the same
algorithm for the correctness tests; the elsA-like hand-optimized
comparator lives in :mod:`repro.baselines.elsa`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cfdlib import euler
from repro.cfdlib.boundary import add_ghost_layers, apply_periodic
from repro.cfdlib.euler import GAMMA, NB_VAR
from repro.cfdlib.mesh import StructuredMesh
from repro.cfdlib.roe import _Expr, emit_roe_flux, roe_flux
from repro.core.stencil import StencilPattern
from repro.dialects import arith, cfd, func, linalg, scf, tensor
from repro.ir import ModuleOp, OpBuilder
from repro.ir.types import FunctionType, TensorType, f64
from repro.ir.values import Value


@dataclass
class LUSGSConfig:
    """Numerical configuration of the solver."""

    mesh: StructuredMesh
    dt: float
    gamma: float = GAMMA

    @property
    def padded_shape(self) -> Tuple[int, ...]:
        return tuple(n + 2 for n in self.mesh.shape)


def forward_pattern() -> StencilPattern:
    """L = the three lower axis neighbours (intra-sweep dependences)."""
    return StencilPattern.from_offsets(
        3, l_offsets=[(-1, 0, 0), (0, -1, 0), (0, 0, -1)]
    )


def backward_pattern() -> StencilPattern:
    """The backward sweep: upper neighbours are true dependences, lower
    neighbours are initial-content reads of the forward result."""
    return StencilPattern.from_offsets(
        3,
        l_offsets=[
            (1, 0, 0), (0, 1, 0), (0, 0, 1),
            (-1, 0, 0), (0, -1, 0), (0, 0, -1),
        ],
        sweep=-1,
        allow_initial_reads=True,
    )


def _axis_of(offset: Tuple[int, ...]) -> int:
    for d, c in enumerate(offset):
        if c:
            return d
    raise ValueError("zero offset has no axis")


def _sweep_body(config: LUSGSConfig):
    """Region payload shared by both sweeps: computes the diagonal D and
    the ``0.5 A rho dW_j`` neighbour contributions from the center state.
    """
    mesh, dt, gamma = config.mesh, config.dt, config.gamma

    def body(builder: OpBuilder, args: List[Value]):
        e = _Expr(builder)
        nv = NB_VAR
        n_access = (len(args) - nv) // nv
        center = args[n_access * nv :]
        rho = center[0]
        vel = [e.div(center[1 + d], rho) for d in range(3)]
        q2 = e.add(*[e.mul(v, v) for v in vel])
        p = e.mul(
            e.c(gamma - 1.0),
            e.sub(center[4], e.mul(e.c(0.5), rho, q2)),
        )
        c_snd = e.sqrt(e.div(e.mul(e.c(gamma), p), rho))
        radii = [e.add(e.abs(vel[d]), c_snd) for d in range(3)]
        d_val = e.c(mesh.cell_volume / dt)
        for d in range(3):
            d_val = e.add(
                d_val, e.mul(e.c(mesh.face_area(d)), radii[d])
            )
        # The pattern's access order is recovered from the stencil the
        # caller attaches this body to; contributions use the access
        # axis. attach_body passes args in pattern order.
        pattern_accesses = body.pattern_accesses
        contributions: List[Value] = []
        for a in range(n_access):
            axis = _axis_of(pattern_accesses[a][0])
            coeff = e.mul(
                e.c(0.5 * mesh.face_area(axis)), radii[axis]
            )
            for v in range(nv):
                contributions.append(e.mul(coeff, args[a * nv + v]))
        zero = e.c(0.0)
        contributions += [zero] * nv
        return d_val, contributions

    return body


def _emit_periodic_refresh(
    builder: OpBuilder, w: Value, config: LUSGSConfig
) -> Value:
    """Ghost-layer refresh with tensor slice ops, one dim at a time."""
    nv_c = arith.const_index(builder, NB_VAR)
    padded = config.padded_shape
    current = w
    for d in range(3):
        n_pad = padded[d]
        sizes = [nv_c]
        for e_d in range(3):
            if e_d == d:
                sizes.append(arith.const_index(builder, 1))
            else:
                sizes.append(arith.const_index(builder, padded[e_d]))
        zero = arith.const_index(builder, 0)

        def offs(pos: int) -> List[Value]:
            out = [zero]
            for e_d in range(3):
                out.append(
                    arith.const_index(builder, pos) if e_d == d else zero
                )
            return out

        static = [NB_VAR] + [
            1 if e_d == d else padded[e_d] for e_d in range(3)
        ]
        # low ghost <- high interior
        src = tensor.ExtractSliceOp.build(
            builder, current, offs(n_pad - 2), sizes, static_sizes=static
        ).result()
        current = tensor.InsertSliceOp.build(
            builder, src, current, offs(0), sizes
        ).result()
        # high ghost <- low interior
        src = tensor.ExtractSliceOp.build(
            builder, current, offs(1), sizes, static_sizes=static
        ).result()
        current = tensor.InsertSliceOp.build(
            builder, src, current, offs(n_pad - 1), sizes
        ).result()
    return current


def build_lusgs_module(
    config: LUSGSConfig, steps: int, entry: str = "lusgs"
) -> ModuleOp:
    """``func @lusgs(W0_padded) -> W_padded`` running ``steps`` implicit
    time steps (Fig. 14's graph, in a time loop)."""
    from repro.core import frontend

    mesh, gamma = config.mesh, config.gamma
    padded = config.padded_shape
    module = ModuleOp.create()
    b = OpBuilder.at_end(module.body)
    t = TensorType([NB_VAR] + list(padded), f64)
    fn = func.FuncOp.build(b, entry, FunctionType([t], [t]))
    fb = OpBuilder.at_end(fn.body)
    w0 = fn.arguments[0]
    lb = arith.const_index(fb, 0)
    ub = arith.const_index(fb, steps)
    one = arith.const_index(fb, 1)
    loop = scf.ForOp.build(fb, lb, ub, one, [w0])
    tb = OpBuilder.at_end(loop.body)
    w = loop.iter_args[0]

    # 1. Periodic ghost refresh.
    w = _emit_periodic_refresh(tb, w, config)

    # 2. B = R(W): Roe fluxes (scaled by face areas) over the three axes.
    zero_f = arith.const_f64(tb, 0.0)
    b_cur = linalg.FillOp.build(tb, zero_f, tensor.empty_like(tb, w)).result()
    for axis in range(3):
        face = cfd.FaceIteratorOp.build(tb, w, b_cur, axis=axis, nb_var=NB_VAR)
        rb = OpBuilder.at_end(face.body)
        wl = list(face.body.arguments[:NB_VAR])
        wr = list(face.body.arguments[NB_VAR:])
        fluxes = emit_roe_flux(rb, wl, wr, axis, gamma)
        area = arith.const_f64(rb, mesh.face_area(axis))
        scaled = [arith.mulf(rb, area, fx) for fx in fluxes]
        cfd.CFDYieldOp.build(rb, scaled)
        b_cur = face.result()

    # 3./4. Forward then backward sweeps on dW, writing the physical
    # interior [1, n+1) only. The forward pattern is one-sided, so its
    # pattern-derived interior would spill into the high ghost layer;
    # explicit bounds pin both sweeps to the real cells.
    one_c = arith.const_index(tb, 1)
    bounds = [one_c] * 3 + [
        arith.const_index(tb, padded[d] - 1) for d in range(3)
    ]
    dw0 = linalg.FillOp.build(tb, zero_f, tensor.empty_like(tb, w)).result()
    fwd_body = _sweep_body(config)
    fwd_pattern = forward_pattern()
    fwd_body.pattern_accesses = fwd_pattern.accesses
    fwd = cfd.StencilOp.build(
        tb, w, b_cur, dw0, fwd_pattern, NB_VAR, bounds=bounds
    )
    frontend.attach_body(fwd, fwd_body)

    bwd_body = _sweep_body(config)
    bwd_pattern = backward_pattern()
    bwd_body.pattern_accesses = bwd_pattern.accesses
    bwd = cfd.StencilOp.build(
        tb, w, b_cur, fwd.result(), bwd_pattern, NB_VAR, bounds=bounds
    )
    frontend.attach_body(bwd, bwd_body)

    # 5. W += dW on the interior.
    upd = linalg.GenericOp.build(
        tb, [bwd.result()], w, margins=[(0, 0), (1, 1), (1, 1), (1, 1)]
    )
    ub_ = OpBuilder.at_end(upd.body)
    dy, wold = upd.body.arguments
    linalg.LinalgYieldOp.build(ub_, [arith.addf(ub_, dy, wold)])

    scf.YieldOp.build(tb, [upd.result()])
    func.ReturnOp.build(fb, [loop.result()])
    return module


# ---------------------------------------------------------------------------
# NumPy/Python reference (the semantics oracle for the generated solver).
# ---------------------------------------------------------------------------


def compute_rhs(w: np.ndarray, config: LUSGSConfig) -> np.ndarray:
    """R(W) on a padded state: Roe fluxes accumulated over all faces."""
    mesh, gamma = config.mesh, config.gamma
    rhs = np.zeros_like(w)
    for axis in range(3):
        d = axis + 1
        left = [slice(None)] * w.ndim
        right = [slice(None)] * w.ndim
        left[d] = slice(0, w.shape[d] - 1)
        right[d] = slice(1, w.shape[d])
        fl = roe_flux(w[tuple(left)], w[tuple(right)], axis, gamma)
        fl *= mesh.face_area(axis)
        rhs[tuple(left)] -= fl
        rhs[tuple(right)] += fl
    return rhs


def diagonal_and_radii(
    w: np.ndarray, config: LUSGSConfig
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """The scalar diagonal D and the per-axis ``0.5 A rho`` coefficients."""
    mesh, dt, gamma = config.mesh, config.dt, config.gamma
    d_arr = np.full(w.shape[1:], mesh.cell_volume / dt)
    coeffs = []
    for axis in range(3):
        rho_a = euler.max_wave_speed(w, axis, gamma)
        d_arr = d_arr + mesh.face_area(axis) * rho_a
        coeffs.append(0.5 * mesh.face_area(axis) * rho_a)
    return d_arr, coeffs


def lusgs_sweeps_reference(
    w: np.ndarray, rhs: np.ndarray, config: LUSGSConfig
) -> np.ndarray:
    """Forward + backward scalar sweeps (pure Python; the oracle)."""
    d_arr, coeffs = diagonal_and_radii(w, config)
    nz, ny, nx = w.shape[1:]
    dw = np.zeros_like(w)
    for i in range(1, nz - 1):
        for j in range(1, ny - 1):
            for k in range(1, nx - 1):
                acc = rhs[:, i, j, k].copy()
                acc += coeffs[0][i, j, k] * dw[:, i - 1, j, k]
                acc += coeffs[1][i, j, k] * dw[:, i, j - 1, k]
                acc += coeffs[2][i, j, k] * dw[:, i, j, k - 1]
                dw[:, i, j, k] = acc / d_arr[i, j, k]
    for i in range(nz - 2, 0, -1):
        for j in range(ny - 2, 0, -1):
            for k in range(nx - 2, 0, -1):
                acc = rhs[:, i, j, k].copy()
                acc += coeffs[0][i, j, k] * dw[:, i - 1, j, k]
                acc += coeffs[1][i, j, k] * dw[:, i, j - 1, k]
                acc += coeffs[2][i, j, k] * dw[:, i, j, k - 1]
                acc += coeffs[0][i, j, k] * dw[:, i + 1, j, k]
                acc += coeffs[1][i, j, k] * dw[:, i, j + 1, k]
                acc += coeffs[2][i, j, k] * dw[:, i, j, k + 1]
                dw[:, i, j, k] = acc / d_arr[i, j, k]
    return dw


def lusgs_step(w: np.ndarray, config: LUSGSConfig) -> np.ndarray:
    """One implicit time step on the *padded* state, in place.

    The unit of work the checkpointed driver snapshots between: a pure
    function of the incoming padded state, so a resumed run reproduces
    an uninterrupted one bit for bit.
    """
    apply_periodic(w)
    rhs = compute_rhs(w, config)
    dw = lusgs_sweeps_reference(w, rhs, config)
    inner = (slice(None),) + (slice(1, -1),) * 3
    w[inner] += dw[inner]
    return w


def lusgs_reference(
    w0_interior: np.ndarray, config: LUSGSConfig, steps: int
) -> np.ndarray:
    """Run the reference solver; takes and returns an *unpadded* state."""
    w = add_ghost_layers(w0_interior)
    for _ in range(steps):
        lusgs_step(w, config)
    inner = (slice(None),) + (slice(1, -1),) * 3
    return w[inner].copy()


def checkpointed_lusgs(
    w0_interior: np.ndarray,
    config: LUSGSConfig,
    steps: int,
    manager=None,
    report=None,
) -> np.ndarray:
    """:func:`lusgs_reference` with checkpoint/restart.

    The padded state is checkpointed per the manager's cadence; a crash
    injected at the ``solver.lusgs-step`` fault site resumes from the
    last checkpoint and produces the same final state bit for bit.
    """
    from repro.runtime.resilience.checkpoint import run_checkpointed

    state = {"w": add_ghost_layers(w0_interior)}

    def step(s, _k):
        lusgs_step(s["w"], config)
        return s

    state = run_checkpointed(
        step, state, steps, manager=manager, site="solver.lusgs-step",
        report=report,
    )
    inner = (slice(None),) + (slice(1, -1),) * 3
    return state["w"][inner].copy()


def stable_dt(w: np.ndarray, config_mesh: StructuredMesh, cfl: float = 2.0,
              gamma: float = GAMMA) -> float:
    """A CFL-style implicit time step (implicit schemes tolerate CFL > 1)."""
    speed = 0.0
    for axis in range(3):
        speed = max(
            speed,
            float(np.max(euler.max_wave_speed(w, axis, gamma)))
            / config_mesh.spacing[axis],
        )
    return cfl / max(speed, 1e-12)
