"""The Python ``@stencil`` frontend: plain kernels to verified IR.

Write the update of Eq. 2 as an ordinary Python function and get back a
:class:`StencilProgram` carrying the statically inferred §2.1 pattern::

    from repro.frontend import stencil

    @stencil
    def kernel(u, b, i, j):
        u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
                   + u[i, j + 1] + u[i + 1, j]) / 4.0

    module = kernel.build_module((64, 64), iterations=2)

The decorator runs a **static semantic analysis over the Python AST**
before any IR exists:

1. every array subscript is resolved to a relative-offset vector
   (non-affine or data-dependent indexing is rejected — FE003/FE004);
2. the L/U in-place pattern attribute is inferred from the read-offset
   sign structure exactly as §2.1 defines it (single-field form), or
   checked against it (split ``(y, x, b, ...)`` form — FE009/FE011);
3. purity and support constraints are proved (no closures over
   mutables, no unsupported constructs, a single in-place target —
   FE001/FE002/FE005/FE007), and the update must match the
   ``(B + sum of weighted reads) / d`` normal form (FE006/FE008/FE010).

All findings are stable ``FE001``–``FE012`` diagnostics through the
shared registry (:mod:`repro.analysis.diagnostics`) with source-line
carets; a rejected kernel raises :class:`FrontendError` at decoration
time. The built IR is independently audited: the PR-2 dependence
engine re-decodes the pattern attribute from the raw IR and any
disagreement with the frontend's inference is a gating ``FE012``.

Kernel forms
------------

* **single-field** ``def k(u, b, i, j)`` — ``u`` is read *and*
  written (true in-place Gauss-Seidel/SOR); the L/U split is inferred.
* **split** ``def k(y, x, b, i, j)`` — ``y`` is the output (reads
  are current-iteration), ``x`` the previous iterate (reads are
  previous-iteration); Jacobi and friends.

Scalars may be closed over (``omega``, grid spacing, …) as long as
they fold to compile-time numbers. ``@stencil(sweep=-1)`` analyzes a
backward sweep; ``allow_initial_reads=True`` permits deliberate
initial-content reads (the LU-SGS backward phase).
"""

from __future__ import annotations

import dataclasses
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Tuple

from repro.analysis.diagnostics import DiagnosticReport
from repro.core.stencil import StencilPattern
from repro.frontend.build import (
    attach_summary_op,
    build_summary_module,
    cross_check_module,
    cross_check_op,
    pattern_for_summary,
)
from repro.frontend.diagnostics import (
    FrontendError,
    FrontendReporter,
    SourceInfo,
)
from repro.frontend.pattern import KernelSummary, analyze_kernel
from repro.frontend.visitor import visit_kernel
from repro.ir import ModuleOp, OpBuilder

#: Version stamp of the frontend's analysis + builder. Part of the
#: kernel-cache fingerprint via ``CompileOptions.frontend_version`` so a
#: behavioural change here can never alias to a stale cached kernel.
FRONTEND_VERSION = "fe-1"

__all__ = [
    "FRONTEND_VERSION",
    "FrontendError",
    "KernelSummary",
    "StencilProgram",
    "analyze_function",
    "analyze_source",
    "stencil",
    "stencil_from_source",
]


@dataclass
class StencilProgram:
    """An analyzed, buildable stencil kernel.

    What ``@stencil`` returns: carries the inferred
    :class:`KernelSummary`, the §2.1 :class:`StencilPattern` and the
    (clean) analysis report, plus builders into IR and the compiled
    pipeline. All IR built through it is FE012-audited on the way out.
    """

    name: str
    summary: KernelSummary
    pattern: StencilPattern
    report: DiagnosticReport
    src: SourceInfo

    def _reporter(self) -> FrontendReporter:
        return FrontendReporter(self.src, self.name)

    def build_module(
        self,
        space_shape: Sequence[int],
        nb_var: int = 1,
        iterations: int = 1,
        name: str = "kernel",
        module: Optional[ModuleOp] = None,
        _pattern_override: Optional[StencilPattern] = None,
    ) -> ModuleOp:
        """``func @name(X, B, Y0) -> Y`` — FE012-checked before return."""
        built, _ = build_summary_module(
            self.summary,
            space_shape,
            nb_var=nb_var,
            iterations=iterations,
            name=name,
            module=module,
            pattern_override=_pattern_override,
        )
        reporter = self._reporter()
        cross_check_module(built, self.summary, reporter)
        reporter.raise_if_errors()
        return built

    def attach(
        self,
        builder: OpBuilder,
        x,
        b,
        y_init,
        nb_var: int = 1,
        _pattern_override: Optional[StencilPattern] = None,
    ):
        """Emit one ``cfd.stencilOp`` at the builder's insertion point.

        For embedding the kernel into a larger hand-built program; the
        emitted op is FE012-checked against the inferred summary.
        """
        op = attach_summary_op(
            self.summary,
            builder,
            x,
            b,
            y_init,
            nb_var=nb_var,
            pattern_override=_pattern_override,
        )
        reporter = self._reporter()
        cross_check_op(op, self.summary, reporter)
        reporter.raise_if_errors()
        return op

    def compile(
        self,
        space_shape: Sequence[int],
        options=None,
        nb_var: int = 1,
        iterations: int = 1,
        entry: str = "kernel",
    ):
        """Build and run the full compilation pipeline.

        Stamps :data:`FRONTEND_VERSION` into
        ``CompileOptions.frontend_version`` (unless the caller already
        set one) so frontend-built kernels occupy their own cache-key
        space.
        """
        from repro.core.pipeline import CompileOptions, StencilCompiler

        options = options or CompileOptions()
        if options.frontend_version is None:
            options = dataclasses.replace(
                options, frontend_version=FRONTEND_VERSION
            )
        module = self.build_module(
            space_shape, nb_var=nb_var, iterations=iterations, name=entry
        )
        return StencilCompiler(options).compile(module, entry=entry)


def analyze_source(
    source: str,
    env: Optional[Mapping[str, object]] = None,
    name: str = "",
    rank: Optional[int] = None,
    sweep: int = 1,
    allow_initial_reads: bool = False,
    filename: str = "<stencil>",
    first_line: int = 1,
) -> Tuple[Optional[StencilProgram], DiagnosticReport]:
    """Analyze kernel source; never raises.

    Returns ``(program, report)`` — ``program`` is ``None`` exactly when
    the report carries error-severity findings.
    """
    raw, reporter = visit_kernel(
        source,
        env or {},
        name,
        rank=rank,
        filename=filename,
        first_line=first_line,
    )
    if raw is None:
        return None, reporter.report
    summary = analyze_kernel(
        raw, reporter, sweep=sweep, allow_initial_reads=allow_initial_reads
    )
    if summary is None or reporter.has_errors:
        return None, reporter.report
    program = StencilProgram(
        name=summary.name,
        summary=summary,
        pattern=pattern_for_summary(summary),
        report=reporter.report,
        src=reporter.src,
    )
    return program, reporter.report


def analyze_function(
    fn: Callable,
    rank: Optional[int] = None,
    sweep: int = 1,
    allow_initial_reads: bool = False,
) -> Tuple[Optional[StencilProgram], DiagnosticReport]:
    """Analyze a live function object; never raises.

    The environment visible to the kernel is the function's globals plus
    its closure cells — captured *by value* at analysis time, which is
    what makes "no closures over mutables" checkable at all.
    """
    try:
        lines, first_line = inspect.getsourcelines(fn)
    except (OSError, TypeError) as exc:
        reporter = FrontendReporter(
            SourceInfo(text=""), getattr(fn, "__name__", "kernel")
        )
        reporter.emit("FE001", f"kernel source is unavailable: {exc}")
        return None, reporter.report
    source = "".join(lines)
    env = dict(getattr(fn, "__globals__", {}))
    closure = getattr(fn, "__closure__", None)
    if closure:
        for var, cell in zip(fn.__code__.co_freevars, closure):
            try:
                env[var] = cell.cell_contents
            except ValueError:  # an empty cell: still being defined
                pass
    return analyze_source(
        source,
        env,
        name=fn.__name__,
        rank=rank,
        sweep=sweep,
        allow_initial_reads=allow_initial_reads,
        filename=fn.__code__.co_filename,
        first_line=first_line,
    )


def stencil_from_source(
    source: str,
    env: Optional[Mapping[str, object]] = None,
    **options,
) -> StencilProgram:
    """:func:`analyze_source` that raises :class:`FrontendError`."""
    program, report = analyze_source(textwrap.dedent(source), env, **options)
    if program is None:
        raise FrontendError(report)
    return program


def stencil(
    fn: Optional[Callable] = None,
    *,
    rank: Optional[int] = None,
    sweep: int = 1,
    allow_initial_reads: bool = False,
):
    """The decorator: kernel function → :class:`StencilProgram`.

    Usable bare (``@stencil``) or parameterized
    (``@stencil(rank=2, sweep=-1)``). Raises :class:`FrontendError`
    with the full caret-annotated report when the analyzer rejects the
    kernel.
    """

    def wrap(f: Callable) -> StencilProgram:
        program, report = analyze_function(
            f, rank=rank, sweep=sweep, allow_initial_reads=allow_initial_reads
        )
        if program is None:
            raise FrontendError(report)
        return program

    if fn is not None:
        return wrap(fn)
    return wrap
