"""Offset and affine analysis over the kernel AST.

The semantic core of the frontend analyzer: every array subscript must
resolve to a *relative-offset vector* — per space dimension, the d-th
index variable plus an integer constant (``i``, ``i - 1``, ``2 + j``…).
Anything else is rejected statically:

* a subscript component that scales, transposes or combines index
  variables, or that depends on array *data* (``u[int(x[i, j]), j]``)
  is non-affine → ``FE003``;
* a subscript whose arity differs from the kernel's index-variable
  count → ``FE004``;
* names that resolve neither to a parameter nor to a captured numeric
  constant → ``FE005``; captured non-numbers (lists, arrays, strings)
  → ``FE010``.

Scalar subexpressions (weights, the divisor) are folded over the
captured environment with plain Python arithmetic, so a closure like
``coeff = (1 - omega) * d / omega`` participates bit-identically to
the hand-built IR's constants.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.frontend.diagnostics import FrontendReporter
from repro.frontend.visitor import RawKernel

Offset = Tuple[int, ...]


@dataclass
class Read:
    """One resolved array access: ``field[... offset ...]`` times a weight.

    ``weight is None`` means the term appeared *bare* (syntactic weight
    1) — distinguished from an explicit ``1.0 *`` so the IR builder can
    reproduce the hand-built body helpers op-for-op.
    """

    field: str
    offset: Offset
    weight: Optional[float]
    node: ast.AST


class _NotConstant(Exception):
    """Internal: expression does not fold to a number."""

    def __init__(self, node: ast.AST, reason: str) -> None:
        self.node = node
        self.reason = reason
        super().__init__(reason)


_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.Pow: lambda a, b: a ** b,
}


def _fold(node: ast.expr, raw: RawKernel) -> float:
    """Fold a scalar expression to a number over the captured env."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(
            node.value, (int, float)
        ):
            raise _NotConstant(
                node, f"literal {node.value!r} is not a number"
            )
        return node.value
    if isinstance(node, ast.Name):
        if node.id in raw.params:
            raise _NotConstant(
                node, f"parameter {node.id!r} is not a constant"
            )
        if node.id not in raw.env:
            raise _NotConstant(node, f"unknown name {node.id!r}")
        value = raw.env[node.id]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _NotConstant(
                node,
                f"captured {node.id!r} is {type(value).__name__}, not a "
                "number (kernels must not close over mutable state)",
            )
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = _fold(node.operand, raw)
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.BinOp) and type(node.op) in _BINOPS:
        return _BINOPS[type(node.op)](
            _fold(node.left, raw), _fold(node.right, raw)
        )
    raise _NotConstant(
        node, f"{type(node).__name__} does not fold to a constant"
    )


def fold_constant(
    node: ast.expr,
    raw: RawKernel,
    reporter: FrontendReporter,
    what: str = "coefficient",
) -> Optional[float]:
    """Fold or emit the precise FE005/FE010 finding."""
    try:
        return _fold(node, raw)
    except _NotConstant as exc:
        if "unknown name" in exc.reason:
            reporter.emit("FE005", exc.reason, exc.node)
        elif "close over mutable" in exc.reason or "not a constant" in exc.reason:
            code = "FE010" if "captured" in exc.reason else "FE005"
            reporter.emit(code, f"{what}: {exc.reason}", exc.node)
        else:
            reporter.emit(
                "FE010", f"{what} must be a compile-time number: {exc.reason}",
                exc.node,
            )
        return None


def _index_component(
    expr: ast.expr, want_var: str, raw: RawKernel
) -> Optional[int]:
    """Resolve one subscript component to ``want_var + c`` → ``c``.

    Returns ``None`` when the component is not a unit-coefficient
    translation of the expected index variable (the caller emits the
    FE003 with context).
    """
    if isinstance(expr, ast.Name) and expr.id == want_var:
        return 0
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.Add, ast.Sub)):
        sign = 1 if isinstance(expr.op, ast.Add) else -1
        if isinstance(expr.left, ast.Name) and expr.left.id == want_var:
            const = _fold_int(expr.right, raw)
            return None if const is None else sign * const
        if (
            isinstance(expr.op, ast.Add)
            and isinstance(expr.right, ast.Name)
            and expr.right.id == want_var
        ):
            const = _fold_int(expr.left, raw)
            return None if const is None else const
    return None


def _fold_int(expr: ast.expr, raw: RawKernel) -> Optional[int]:
    try:
        value = _fold(expr, raw)
    except _NotConstant:
        return None
    if isinstance(value, float) and not value.is_integer():
        return None
    return int(value)


def _subscript_elements(node: ast.Subscript) -> List[ast.expr]:
    s = node.slice
    if isinstance(s, ast.Tuple):
        return list(s.elts)
    return [s]


def resolve_subscript(
    node: ast.Subscript, raw: RawKernel, reporter: FrontendReporter
) -> Optional[Offset]:
    """Subscript → relative-offset vector, or FE003/FE004 findings."""
    rank = len(raw.index_params)
    elements = _subscript_elements(node)
    if len(elements) != rank:
        reporter.emit(
            "FE004",
            f"subscript has {len(elements)} component(s) but the kernel "
            f"declares {rank} index variable(s) {raw.index_params}",
            node,
        )
        return None
    offset: List[int] = []
    for d, (expr, var) in enumerate(zip(elements, raw.index_params)):
        component = _index_component(expr, var, raw)
        if component is None:
            reporter.emit(
                "FE003",
                _affine_failure_reason(expr, var, d, raw),
                expr,
            )
            return None
        offset.append(component)
    return tuple(offset)


def _affine_failure_reason(
    expr: ast.expr, want_var: str, dim: int, raw: RawKernel
) -> str:
    """A precise message for why a component is not ``var + const``."""
    names = {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name)
    }
    index_names = names & set(raw.index_params)
    if any(isinstance(n, ast.Subscript) for n in ast.walk(expr)):
        return (
            f"data-dependent index in dimension {dim}: subscripts may "
            "not appear inside subscripts"
        )
    if index_names and want_var not in index_names:
        return (
            f"dimension {dim} must index with {want_var!r} (+/- a "
            f"constant); found {sorted(index_names)} — transposed or "
            "permuted indexing is not a translation"
        )
    if not index_names:
        return (
            f"dimension {dim} must be {want_var!r} plus a constant "
            "offset; absolute or constant-only indices are not relative "
            "accesses"
        )
    return (
        f"dimension {dim} is not an affine translation of {want_var!r} "
        "(only unit-coefficient `var + const` indexing is supported)"
    )
