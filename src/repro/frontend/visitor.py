"""The AST visitor: from a Python function to a validated raw kernel.

This is the *syntactic* front half of the analyzer: it parses the
kernel's source, checks the signature against the ``@stencil``
parameter convention (``FE002``), enforces the single-assignment body
shape (``FE001``/``FE007``) and classifies the parameters into field
handles and index variables by how the body actually uses them. No
offsets are resolved here — that is :mod:`repro.frontend.offsets` —
and no IR exists yet anywhere near this code.
"""

from __future__ import annotations

import ast
import textwrap
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.frontend.diagnostics import FrontendReporter, SourceInfo


@dataclass
class RawKernel:
    """The syntactically validated kernel, before offset resolution."""

    name: str
    src: SourceInfo
    fndef: ast.FunctionDef
    #: Every parameter name, in declaration order.
    params: List[str] = field(default_factory=list)
    #: Parameters the body subscripts: the field handles, in order.
    field_params: List[str] = field(default_factory=list)
    #: Parameters used as subscript indices: the space axes, in order.
    index_params: List[str] = field(default_factory=list)
    #: Captured constants: closure cells over globals (lookup-only).
    env: Mapping[str, object] = field(default_factory=dict)
    #: The single update statement.
    target: Optional[ast.Subscript] = None
    rhs: Optional[ast.expr] = None


def parse_kernel_source(
    source: str,
    reporter_name: str,
    filename: str = "<stencil>",
    first_line: int = 1,
) -> tuple:
    """Parse ``source`` into ``(SourceInfo, FunctionDef | None, FrontendReporter)``."""
    dedented = textwrap.dedent(source)
    col_shift = 0
    for raw, ded in zip(source.splitlines(), dedented.splitlines()):
        if ded.strip():
            col_shift = len(raw) - len(ded)
            break
    src = SourceInfo(
        text=dedented, filename=filename, first_line=first_line,
        col_shift=col_shift,
    )
    reporter = FrontendReporter(src, reporter_name)
    try:
        tree = ast.parse(dedented)
    except SyntaxError as exc:
        reporter.emit("FE001", f"kernel source does not parse: {exc.msg}")
        return src, None, reporter
    fndefs = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(fndefs) != 1:
        reporter.emit(
            "FE001",
            f"expected exactly one function definition, found {len(fndefs)}",
        )
        return src, None, reporter
    return src, fndefs[0], reporter


def _check_signature(
    fndef: ast.FunctionDef, reporter: FrontendReporter
) -> List[str]:
    """The parameter list, with FE002 findings for unsupported shapes."""
    args = fndef.args
    bad = []
    if args.vararg or args.kwarg:
        bad.append("*args/**kwargs")
    if args.kwonlyargs:
        bad.append("keyword-only parameters")
    if args.defaults or args.kw_defaults:
        bad.append("default values")
    if args.posonlyargs:
        bad.append("positional-only markers")
    if bad:
        reporter.emit(
            "FE002",
            "kernel parameters must be plain positional names; found "
            + ", ".join(bad),
            fndef,
        )
    params = [a.arg for a in args.args]
    if len(params) < 3:
        reporter.emit(
            "FE002",
            f"a kernel needs at least (out, rhs, index...) = 3 "
            f"parameters, found {len(params)}",
            fndef,
        )
    return params


def _single_update(
    fndef: ast.FunctionDef, reporter: FrontendReporter
) -> Optional[ast.Assign]:
    """The one plain assignment of the body (FE001/FE007 otherwise)."""
    statements = list(fndef.body)
    if (
        statements
        and isinstance(statements[0], ast.Expr)
        and isinstance(statements[0].value, ast.Constant)
        and isinstance(statements[0].value.value, str)
    ):
        statements = statements[1:]  # docstring
    assigns: List[ast.Assign] = []
    for stmt in statements:
        if isinstance(stmt, ast.Assign):
            assigns.append(stmt)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            reporter.emit(
                "FE007",
                "the in-place update must be a plain assignment "
                "(augmented/annotated assignments are not supported)",
                stmt,
            )
            return None
        elif isinstance(stmt, ast.Pass):
            continue
        else:
            reporter.emit(
                "FE001",
                f"unsupported statement in a @stencil kernel: "
                f"{type(stmt).__name__}",
                stmt,
            )
            return None
    if len(assigns) != 1:
        reporter.emit(
            "FE007",
            f"a kernel must contain exactly one in-place update "
            f"assignment, found {len(assigns)}",
            fndef if not assigns else assigns[1],
        )
        return None
    assign = assigns[0]
    if len(assign.targets) != 1 or not isinstance(
        assign.targets[0], ast.Subscript
    ):
        reporter.emit(
            "FE007",
            "the assignment target must be a single subscripted field "
            "(e.g. u[i, j] = ...)",
            assign,
        )
        return None
    return assign


def _classify_params(
    raw: RawKernel, rank: Optional[int], reporter: FrontendReporter
) -> None:
    """Split parameters into field handles and index variables by use.

    A parameter the body *subscripts* is a field; a parameter appearing
    as a bare name inside a subscript is an index variable. Fields must
    precede indices in the declaration (the ``(out[, in], rhs, i, j,
    ...)`` convention — declaration order assigns the roles), every
    parameter must be used, and nothing may be both.
    """
    body_nodes = [raw.target, raw.rhs]
    subscripted: List[str] = []
    index_used: List[str] = []
    for root in body_nodes:
        if root is None:
            continue
        for node in ast.walk(root):
            if isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Name
            ):
                base = node.value.id
                if base in raw.params and base not in subscripted:
                    subscripted.append(base)
                for inner in ast.walk(node.slice):
                    if (
                        isinstance(inner, ast.Name)
                        and inner.id in raw.params
                        and inner.id not in index_used
                    ):
                        index_used.append(inner.id)
    fields = [p for p in raw.params if p in subscripted]
    indices = [p for p in raw.params if p in index_used and p not in fields]
    both = sorted(set(subscripted) & set(index_used))
    if both:
        reporter.emit(
            "FE002",
            f"parameter(s) {both} are used both as a field and as an "
            "index variable",
            raw.fndef,
        )
        return
    unused = [p for p in raw.params if p not in fields and p not in indices]
    if unused:
        reporter.emit(
            "FE002",
            f"unused kernel parameter(s): {unused} (every parameter "
            "must be a subscripted field or an index variable)",
            raw.fndef,
        )
    # Every field handle must be declared before every index variable.
    positions = {p: raw.params.index(p) for p in raw.params}
    if fields and indices and not unused:
        if max(positions[p] for p in fields) > min(
            positions[p] for p in indices
        ):
            reporter.emit(
                "FE002",
                "kernel parameters must list the field handles first, "
                f"then the index variables: fields {fields}, indices "
                f"{indices}",
                raw.fndef,
            )
    if len(fields) not in (2, 3):
        reporter.emit(
            "FE002",
            f"a kernel subscripts {len(fields)} parameter(s); expected "
            "2 (single-field in-place form: out, rhs) or 3 "
            "(split form: out, in, rhs)",
            raw.fndef,
        )
    if rank is not None and indices and len(indices) != rank:
        reporter.emit(
            "FE002",
            f"@stencil(rank={rank}) but the kernel uses "
            f"{len(indices)} index variable(s): {indices}",
            raw.fndef,
        )
    if not indices:
        reporter.emit(
            "FE002",
            "no index variables found: subscripts must be written "
            "relative to the kernel's index parameters",
            raw.fndef,
        )
    raw.field_params = fields
    raw.index_params = indices


def visit_kernel(
    source: str,
    env: Mapping[str, object],
    name: str,
    rank: Optional[int] = None,
    filename: str = "<stencil>",
    first_line: int = 1,
) -> tuple:
    """Parse + structurally validate; returns ``(RawKernel | None, reporter)``."""
    src, fndef, reporter = parse_kernel_source(
        source, name, filename=filename, first_line=first_line
    )
    if fndef is None:
        return None, reporter
    reporter.kernel_name = reporter.kernel_name or fndef.name
    params = _check_signature(fndef, reporter)
    if reporter.has_errors:
        return None, reporter
    raw = RawKernel(
        name=name or fndef.name, src=src, fndef=fndef, params=params, env=env
    )
    assign = _single_update(fndef, reporter)
    if assign is None:
        return None, reporter
    raw.target = assign.targets[0]  # type: ignore[assignment]
    raw.rhs = assign.value
    _walk_expression_whitelist(raw.rhs, reporter)
    if reporter.has_errors:
        return None, reporter
    _classify_params(raw, rank, reporter)
    if reporter.has_errors:
        return None, reporter
    return raw, reporter


#: Expression node types the analyzer understands at all. Anything else
#: is FE001 immediately, with a caret on the offending node.
_ALLOWED_EXPR = (
    ast.BinOp,
    ast.UnaryOp,
    ast.Subscript,
    ast.Name,
    ast.Constant,
    ast.Tuple,
    ast.Load,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.Pow,
    ast.USub,
    ast.UAdd,
)


def _walk_expression_whitelist(
    node: Optional[ast.expr], reporter: FrontendReporter
) -> None:
    if node is None:
        return
    for inner in ast.walk(node):
        if not isinstance(inner, _ALLOWED_EXPR):
            reporter.emit(
                "FE001",
                f"unsupported expression in a @stencil kernel: "
                f"{type(inner).__name__}",
                inner if hasattr(inner, "lineno") else node,
            )
            return
