"""L/U pattern inference: from resolved reads to a §2.1 pattern attr.

Flattens the update's right-hand side against the Eq. 2 normal form

    out[c] = (B[c] + sum_a w_a * reads_a) / d

(``FE006`` when it does not match), then classifies every read:

* **single-field form** ``def k(u, b, i, j)`` — the output and the
  stencil input are the *same* handle, exactly the in-place situation
  of §2.1, and the L/U split is **inferred from the sign structure**:
  a read whose sweep-adjusted relative offset is lexicographically
  negative hits a cell this sweep already updated (current-iteration
  value → L), lexicographically positive hits a not-yet-updated cell
  (previous-iteration value → U), and the center reads the value being
  replaced (the previous iterate → the stencil center contribution).

* **split form** ``def k(y, x, b, i, j)`` — the roles are explicit:
  reads of ``y`` are declared current-iteration (L), reads of ``x``
  previous-iteration (U). Declared L reads are *checked*, not trusted:
  a lexicographically non-negative L offset cannot be scheduled by the
  sweep (``FE011``, unless ``allow_initial_reads``), and reading the
  output at the written cell is circular (``FE009``).

Conflicts — the same offset read twice, or tagged both L and U —
are ``FE008`` (downstream ``StencilPattern.from_offsets`` would
silently prefer L, desynchronizing the weight list, so the frontend
must reject them first).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.diagnostics import FrontendReporter
from repro.frontend.offsets import (
    Offset,
    Read,
    fold_constant,
    resolve_subscript,
)
from repro.frontend.visitor import RawKernel


def lex_sign(offset: Offset) -> int:
    """-1 / 0 / +1 for lexicographically negative / zero / positive."""
    for c in offset:
        if c < 0:
            return -1
        if c > 0:
            return 1
    return 0


@dataclass
class KernelSummary:
    """Everything the analyzer proved about one ``@stencil`` kernel."""

    name: str
    rank: int
    #: Parameter names by role; ``in_field`` equals ``out_field`` in the
    #: single-field form.
    out_field: str = ""
    in_field: str = ""
    rhs_field: str = ""
    index_vars: Tuple[str, ...] = ()
    single_field: bool = True
    #: The subscript offset of the write (reads are re-based on it).
    write_offset: Offset = ()
    #: Inferred / declared L and U offsets, relative to the write.
    l_offsets: List[Offset] = field(default_factory=list)
    u_offsets: List[Offset] = field(default_factory=list)
    #: Per-offset weight; ``None`` means the read appeared bare.
    weights: Dict[Offset, Optional[float]] = field(default_factory=dict)
    #: Weight of the center read (``None`` = the center is not read).
    center_weight: Optional[float] = None
    #: Whether the center read appeared bare (weight 1, implicit).
    center_bare: bool = False
    #: The divisor ``d`` of the normal form.
    divisor: float = 1.0
    sweep: int = 1
    allow_initial_reads: bool = False
    #: Which body-helper the builder dispatches to: ``identity`` /
    #: ``weighted`` / ``center_weighted`` / ``general``.
    form: str = "identity"

    def access_weights(self, pattern) -> List[float]:
        """Weights in the pattern's row-major access order."""
        return [
            1.0 if self.weights.get(o) is None else self.weights[o]
            for o, _ in pattern.accesses
        ]

    def describe(self) -> str:
        return (
            f"rank={self.rank} L={sorted(self.l_offsets)} "
            f"U={sorted(self.u_offsets)} d={self.divisor} "
            f"sweep={self.sweep} form={self.form}"
        )


# ---------------------------------------------------------------------------
# Term flattening: the (B + sum) / d normal form.
# ---------------------------------------------------------------------------


@dataclass
class _Term:
    """One additive term of the numerator: ``sign * [weight *] read``."""

    node: ast.expr
    sign: float
    subscript: Optional[ast.Subscript] = None
    weight_node: Optional[ast.expr] = None


def _flatten_sum(node: ast.expr, sign: float, out: List[_Term]) -> None:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        _flatten_sum(node.left, sign, out)
        _flatten_sum(node.right, sign, out)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
        _flatten_sum(node.left, sign, out)
        _flatten_sum(node.right, -sign, out)
        return
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        _flatten_sum(node.operand, -sign, out)
        return
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.UAdd):
        _flatten_sum(node.operand, sign, out)
        return
    out.append(_analyze_term(node, sign))


def _analyze_term(node: ast.expr, sign: float) -> _Term:
    """Split one term into (subscript, optional weight expression)."""
    if isinstance(node, ast.Subscript):
        return _Term(node, sign, subscript=node)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left_sub = isinstance(node.left, ast.Subscript)
        right_sub = isinstance(node.right, ast.Subscript)
        if left_sub and not right_sub:
            return _Term(node, sign, subscript=node.left,
                         weight_node=node.right)
        if right_sub and not left_sub:
            return _Term(node, sign, subscript=node.right,
                         weight_node=node.left)
    return _Term(node, sign)


def _numerator_and_divisor(
    raw: RawKernel, reporter: FrontendReporter
) -> Optional[Tuple[ast.expr, float]]:
    """Match ``rhs = numerator / d``; FE006/FE010 otherwise."""
    rhs = raw.rhs
    assert rhs is not None
    if not (isinstance(rhs, ast.BinOp) and isinstance(rhs.op, ast.Div)):
        reporter.emit(
            "FE006",
            "the update must be written as (B + sum of reads) / d — the "
            "top-level operator is not a division",
            rhs,
        )
        return None
    divisor = fold_constant(rhs.right, raw, reporter, what="divisor d")
    if divisor is None:
        return None
    if divisor == 0.0:
        reporter.emit("FE010", "the divisor d folds to zero", rhs.right)
        return None
    return rhs.left, divisor


# ---------------------------------------------------------------------------
# The analysis proper.
# ---------------------------------------------------------------------------


def analyze_kernel(
    raw: RawKernel,
    reporter: FrontendReporter,
    sweep: int = 1,
    allow_initial_reads: bool = False,
) -> Optional[KernelSummary]:
    """Infer the :class:`KernelSummary` or return ``None`` with findings."""
    fields = raw.field_params
    single_field = len(fields) == 2
    summary = KernelSummary(
        name=raw.name,
        rank=len(raw.index_params),
        out_field=fields[0],
        in_field=fields[0] if single_field else fields[1],
        rhs_field=fields[-1],
        index_vars=tuple(raw.index_params),
        single_field=single_field,
        sweep=sweep,
        allow_initial_reads=allow_initial_reads,
    )

    assert raw.target is not None
    if not (
        isinstance(raw.target.value, ast.Name)
        and raw.target.value.id == summary.out_field
    ):
        reporter.emit(
            "FE007",
            f"the in-place target must be the first field parameter "
            f"{summary.out_field!r}",
            raw.target,
        )
        return None
    write_offset = resolve_subscript(raw.target, raw, reporter)
    if write_offset is None:
        return None
    summary.write_offset = write_offset

    matched = _numerator_and_divisor(raw, reporter)
    if matched is None:
        return None
    numerator, summary.divisor = matched

    terms: List[_Term] = []
    _flatten_sum(numerator, 1.0, terms)
    reads = _resolve_terms(terms, raw, summary, reporter)
    if reads is None:
        return None
    if not _classify_reads(reads, raw, summary, reporter):
        return None
    _classify_form(summary)
    return summary


def _resolve_terms(
    terms: List[_Term],
    raw: RawKernel,
    summary: KernelSummary,
    reporter: FrontendReporter,
) -> Optional[List[Read]]:
    """Terms → :class:`Read` list, re-based on the write offset."""
    reads: List[Read] = []
    ok = True
    for term in terms:
        if term.subscript is None:
            reporter.emit(
                "FE006",
                "every additive term must be a (optionally weighted) "
                "field read — constant or compound terms are outside "
                "the Eq. 2 normal form",
                term.node,
            )
            ok = False
            continue
        base = term.subscript.value
        if not (isinstance(base, ast.Name) and base.id in raw.field_params):
            reporter.emit(
                "FE005",
                "subscripted object is not a kernel field parameter",
                term.subscript,
            )
            ok = False
            continue
        offset = resolve_subscript(term.subscript, raw, reporter)
        if offset is None:
            ok = False
            continue
        weight: Optional[float] = None
        if term.weight_node is not None:
            weight = fold_constant(term.weight_node, raw, reporter)
            if weight is None:
                ok = False
                continue
        if term.sign < 0:
            weight = -1.0 if weight is None else -weight
        rel = tuple(o - w for o, w in zip(offset, summary.write_offset))
        reads.append(Read(base.id, rel, weight, term.node))
    return reads if ok else None


def _classify_reads(
    reads: List[Read],
    raw: RawKernel,
    summary: KernelSummary,
    reporter: FrontendReporter,
) -> bool:
    """Assign every read to B / L / U / center; the §2.1 inference."""
    center = tuple([0] * summary.rank)
    ok = True
    rhs_reads = 0
    #: offset -> "L" | "U", to catch FE008 conflicts with context.
    tagged: Dict[Offset, str] = {}
    for read in reads:
        if read.field == summary.rhs_field:
            rhs_reads += 1
            if read.offset != center or read.weight is not None:
                reporter.emit(
                    "FE006",
                    f"the right-hand side {summary.rhs_field!r} must be "
                    "read exactly once, bare, at the written cell",
                    read.node,
                )
                ok = False
            continue
        if summary.single_field:
            # The in-place handle: L/U from the sweep-adjusted sign.
            sign = lex_sign(tuple(c * summary.sweep for c in read.offset))
            role = "center" if read.offset == center else (
                "L" if sign < 0 else "U"
            )
        elif read.field == summary.out_field:
            if read.offset == center:
                reporter.emit(
                    "FE009",
                    f"{summary.out_field!r} is read at the cell being "
                    "written — the update would consume its own result",
                    read.node,
                )
                ok = False
                continue
            role = "L"
            sign = lex_sign(tuple(c * summary.sweep for c in read.offset))
            if sign >= 0 and not summary.allow_initial_reads:
                reporter.emit(
                    "FE011",
                    f"current-iteration read at offset {read.offset} is "
                    "not on the already-swept side for sweep="
                    f"{summary.sweep} — the traversal would read a "
                    "future value (§2.1); pass allow_initial_reads=True "
                    "only for deliberate initial-content reads",
                    read.node,
                )
                ok = False
                continue
        else:  # the explicit previous-iterate handle
            role = "center" if read.offset == center else "U"
        if role == "center":
            if summary.center_weight is not None or summary.center_bare:
                reporter.emit(
                    "FE008",
                    "the center is read twice",
                    read.node,
                )
                ok = False
                continue
            if read.weight is None:
                summary.center_bare = True
                summary.center_weight = 1.0
            else:
                summary.center_weight = read.weight
            continue
        if read.offset in tagged:
            prior = tagged[read.offset]
            detail = (
                f"offset {read.offset} is read twice"
                if prior == role
                else f"offset {read.offset} is tagged both "
                "current-iteration (L) and previous-iteration (U)"
            )
            reporter.emit("FE008", detail, read.node)
            ok = False
            continue
        tagged[read.offset] = role
        (summary.l_offsets if role == "L" else summary.u_offsets).append(
            read.offset
        )
        summary.weights[read.offset] = read.weight
    if rhs_reads != 1:
        reporter.emit(
            "FE006",
            f"the right-hand side {summary.rhs_field!r} must be read "
            f"exactly once (found {rhs_reads} reads)",
            raw.rhs,
        )
        ok = False
    if ok and not summary.l_offsets and not summary.u_offsets:
        reporter.emit(
            "FE006",
            "a stencil needs at least one neighbour read of the field",
            raw.rhs,
        )
        ok = False
    return ok


def _classify_form(summary: KernelSummary) -> None:
    """Pick the body helper reproducing the hand-built IR op-for-op."""
    all_bare = all(w is None for w in summary.weights.values())
    all_weighted = all(w is not None for w in summary.weights.values())
    if summary.center_weight is None:
        if all_bare:
            summary.form = "identity"
        elif all_weighted:
            summary.form = "weighted"
        else:
            summary.form = "general"
    elif all_bare and not summary.center_bare:
        summary.form = "center_weighted"
    else:
        summary.form = "general"
