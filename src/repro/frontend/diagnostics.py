"""Frontend diagnostics: ``FE0xx`` findings with source-line carets.

Every finding of the kernel-semantics analyzer points back at the
user's *Python source*, not at IR: the :class:`Diagnostic` excerpt is
the offending source line with a caret column marker, and ``op_path``
is a ``file:line:col`` location, so the CLI / ``--github`` renderings
land on the line the user actually wrote.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic, DiagnosticReport


@dataclass
class SourceInfo:
    """The kernel's source snippet plus how it maps back to its file.

    ``text`` is the dedented snippet handed to :func:`ast.parse`;
    ``first_line`` is the file line number of the snippet's first line
    and ``col_shift`` the number of columns stripped by dedenting, so
    AST positions (snippet-relative) convert to file positions.
    """

    text: str
    filename: str = "<stencil>"
    first_line: int = 1
    col_shift: int = 0
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()

    def location(self, node: Optional[ast.AST]) -> str:
        if node is None or not hasattr(node, "lineno"):
            return self.filename
        line = self.first_line + node.lineno - 1
        col = node.col_offset + self.col_shift
        return f"{self.filename}:{line}:{col + 1}"

    def caret(self, node: Optional[ast.AST]) -> str:
        """The source line of ``node`` with a ``^`` column marker."""
        if node is None or not hasattr(node, "lineno"):
            return ""
        idx = node.lineno - 1
        if not 0 <= idx < len(self.lines):
            return ""
        line = self.lines[idx]
        marker = " " * node.col_offset + "^"
        end_col = getattr(node, "end_col_offset", None)
        if end_col is not None and getattr(node, "end_lineno", None) == node.lineno:
            marker = " " * node.col_offset + "^" * max(1, end_col - node.col_offset)
        return f"{line}\n{marker}"


class FrontendError(Exception):
    """Raised by ``@stencil`` when the analyzer finds errors.

    Carries the full :class:`DiagnosticReport`; the message renders
    every finding with its source-line caret.
    """

    def __init__(self, report: DiagnosticReport) -> None:
        self.report = report
        super().__init__(
            f"@stencil kernel rejected ({report.summary()}):\n"
            + report.render()
        )


class FrontendReporter:
    """Collects frontend diagnostics against one source snippet."""

    def __init__(self, src: SourceInfo, kernel_name: str = "") -> None:
        self.src = src
        self.kernel_name = kernel_name
        self.report = DiagnosticReport()

    def emit(
        self,
        code: str,
        message: str,
        node: Optional[ast.AST] = None,
        severity: str = "error",
    ) -> None:
        where = self.kernel_name or "kernel"
        self.report.diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                severity=severity,
                op_path=f"@stencil[{where}] at {self.src.location(node)}",
                excerpt=self.src.caret(node),
            )
        )

    @property
    def has_errors(self) -> bool:
        return self.report.has_errors

    def raise_if_errors(self) -> None:
        if self.report.has_errors:
            raise FrontendError(self.report)
