"""The frontend lint corpus: ``python -m repro.analysis --frontend``.

Two kinds of entries:

* **good** stems mirroring the ported examples (``quickstart``,
  ``sor_poisson``, ``heat3d_implicit``): the kernel must analyze
  cleanly, build through the FE012 cross-check, and the built IR must
  pass the PR-2 analysis gate — frontend output flows straight into
  the existing gate stack;

* the **fe_mutants** stem: one deliberately broken kernel per
  ``FE001``–``FE012`` code. Every mutant must produce its expected
  error — a frontend that silently accepts one of these has lost a
  check, and CI runs this stem with an inverted exit-code expectation.

There is intentionally no ``examples/fe_mutants.py``: directory
resolution over ``examples/`` therefore never picks the must-fail stem
up, exactly like the ``perf_demo`` corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.analysis.diagnostics import DiagnosticReport
from repro.core.stencil import StencilPattern
from repro.frontend import FrontendError, analyze_function, analyze_source

#: SOR closure constants, shared with the ported example's derivation.
_OMEGA = 1.5
_SOR_D = 4.0 / _OMEGA
_SOR_COEFF = (1.0 - _OMEGA) * 4.0 / _OMEGA

#: Heat3d closure constant (`d = 1/lambda` of Fig. 9's normal form).
_HEAT_D = 1.0 / 0.1


def _gs5_kernel(u, b, i, j):
    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1]
               + u[i, j + 1] + u[i + 1, j]) / 4.0


def _sor_kernel(u, b, i, j):
    u[i, j] = (b[i, j] + u[i - 1, j] + u[i, j - 1] + u[i, j + 1]
               + u[i + 1, j] + _SOR_COEFF * u[i, j]) / _SOR_D


def _jacobi_kernel(y, x, b, i, j):
    y[i, j] = (b[i, j] + x[i - 1, j] + x[i, j - 1]
               + x[i, j + 1] + x[i + 1, j]) / 4.0


def _heat_gs_kernel(dt, rhs, i, j, k):
    dt[i, j, k] = (rhs[i, j, k]
                   + dt[i - 1, j, k] + dt[i, j - 1, k] + dt[i, j, k - 1]
                   + dt[i, j, k + 1] + dt[i, j + 1, k]
                   + dt[i + 1, j, k]) / _HEAT_D


@dataclass(frozen=True)
class FrontendEntry:
    """One frontend-lintable kernel (or must-fail mutant)."""

    name: str
    description: str
    run: Callable[[], DiagnosticReport]
    file: str = "src/repro/frontend/corpus.py"
    #: Codes the report must contain (mutants); empty for good entries.
    expect_codes: Tuple[str, ...] = field(default=())


def _good(
    fn,
    space_shape: Tuple[int, ...],
    iterations: int = 1,
) -> Callable[[], DiagnosticReport]:
    """Analyze + build + FE012 + the PR-2 gate over the built IR."""

    def run() -> DiagnosticReport:
        program, report = analyze_function(fn)
        if program is None:
            return report
        try:
            module = program.build_module(space_shape, iterations=iterations)
        except FrontendError as exc:
            report.diagnostics.extend(exc.report.diagnostics)
            return report
        from repro.analysis.analyzer import AnalysisGate

        gate = AnalysisGate(fail_fast=False)
        gate(module, after_pass=None)
        report.diagnostics.extend(gate.report.diagnostics)
        return report

    return run


def _mutant(source: str, env=None, **options) -> Callable[[], DiagnosticReport]:
    def run() -> DiagnosticReport:
        _, report = analyze_source(source, env, **options)
        return report

    return run


def _fe012_tamper() -> DiagnosticReport:
    """A correct kernel whose built IR is tampered: the pattern attr is
    swapped under the analyzer (one L tag moved to U), so only the
    independent dependence-engine re-derivation can catch it."""
    program, report = analyze_function(_gs5_kernel)
    assert program is not None
    tampered = StencilPattern.from_offsets(
        2,
        l_offsets=[(-1, 0)],
        u_offsets=[(0, -1), (0, 1), (1, 0)],
    )
    try:
        program.build_module((32, 32), _pattern_override=tampered)
    except FrontendError as exc:
        report.diagnostics.extend(exc.report.diagnostics)
    return report


#: source, expected code, description — one per FE code (FE012 is the
#: tamper entry above: it needs the build path, not just source).
_MUTANTS = (
    (
        "FE001", "loop statement in the kernel body",
        "def k(u, b, i, j):\n"
        "    for q in range(3):\n"
        "        u[i, j] = (b[i, j] + u[i - 1, j]) / 4.0\n",
        None,
    ),
    (
        "FE002", "index variable declared before the field handles",
        "def k(i, u, b, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j]) / 4.0\n",
        None,
    ),
    (
        "FE003", "transposed (permuted) indexing",
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[j, i]) / 4.0\n",
        None,
    ),
    (
        "FE004", "1-component subscript in a rank-2 kernel",
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1]) / 4.0\n",
        None,
    ),
    (
        "FE005", "weight references an undefined name",
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + alpha * u[i - 1, j]) / 4.0\n",
        None,
    ),
    (
        "FE006", "no division: not the (B + sum)/d normal form",
        "def k(u, b, i, j):\n"
        "    u[i, j] = b[i, j] + u[i - 1, j]\n",
        None,
    ),
    (
        "FE007", "two in-place updates",
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j]) / 4.0\n"
        "    u[i, j] = (b[i, j] + u[i, j - 1]) / 4.0\n",
        None,
    ),
    (
        "FE008", "the same offset is read twice",
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + u[i - 1, j] + u[i - 1, j]) / 4.0\n",
        None,
    ),
    (
        "FE009", "the output is read at the written cell (split form)",
        "def k(y, x, b, i, j):\n"
        "    y[i, j] = (b[i, j] + x[i - 1, j] + y[i, j]) / 4.0\n",
        None,
    ),
    (
        "FE010", "captured weight is a list, not a number",
        "def k(u, b, i, j):\n"
        "    u[i, j] = (b[i, j] + w * u[i - 1, j]) / 4.0\n",
        {"w": [1.0, 2.0]},
    ),
    (
        "FE011", "declared current-iteration read on the future side",
        "def k(y, x, b, i, j):\n"
        "    y[i, j] = (b[i, j] + y[i + 1, j] + x[i - 1, j]) / 4.0\n",
        None,
    ),
)


def build_frontend_corpus() -> Dict[str, Tuple[FrontendEntry, ...]]:
    """Stem -> frontend-lint entries (good stems + ``fe_mutants``)."""
    corpus: Dict[str, Tuple[FrontendEntry, ...]] = {
        "quickstart": (
            FrontendEntry(
                "quickstart[gs5]",
                "5-point Gauss-Seidel via @stencil (L/U inferred)",
                _good(_gs5_kernel, (64, 64), iterations=2),
                file="examples/quickstart.py",
            ),
        ),
        "sor_poisson": (
            FrontendEntry(
                "sor_poisson[sor]",
                "SOR via @stencil (weighted center read)",
                _good(_sor_kernel, (34, 34)),
                file="examples/sor_poisson.py",
            ),
            FrontendEntry(
                "sor_poisson[jacobi]",
                "Jacobi via @stencil (split form, empty L)",
                _good(_jacobi_kernel, (34, 34)),
                file="examples/sor_poisson.py",
            ),
        ),
        "heat3d_implicit": (
            FrontendEntry(
                "heat3d_implicit[gs6]",
                "3D 6-point Gauss-Seidel via @stencil (Fig. 9 phase 2)",
                _good(_heat_gs_kernel, (16, 16, 16)),
                file="examples/heat3d_implicit.py",
            ),
        ),
    }
    mutants = [
        FrontendEntry(
            f"fe_mutants[{code}]",
            description,
            _mutant(source, env),
            expect_codes=(code,),
        )
        for code, description, source, env in _MUTANTS
    ]
    mutants.append(
        FrontendEntry(
            "fe_mutants[FE012]",
            "pattern attr tampered after inference (cross-check catch)",
            _fe012_tamper,
            expect_codes=("FE012",),
        )
    )
    corpus["fe_mutants"] = tuple(mutants)
    return corpus
