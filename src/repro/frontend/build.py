"""From a :class:`KernelSummary` to ``cfd.stencilOp`` IR.

Parity by construction: the builder dispatches to the *same* body
helpers the hand-written examples use (:func:`identity_body`,
:func:`weighted_body`, :func:`center_weighted_body` from
:mod:`repro.core.frontend`) and reuses :func:`build_stencil_kernel`, so
a kernel written through ``@stencil`` prints — and therefore
fingerprints (:func:`repro.codegen.cache.module_fingerprint`) —
identically to its hand-built equivalent. Only summaries that mix bare
and weighted reads fall back to the frontend-local
:func:`general_body`.

After construction the built IR is audited (``FE012``): the pattern
attribute of every ``cfd.stencilOp`` is re-decoded by the PR-2
dependence engine (:func:`repro.analysis.dependence.stencil_raw_attrs`
— an independent implementation that never goes through
:class:`StencilPattern`) and compared against the frontend's inferred
summary. A disagreement means the frontend or the builder miscompiled
the kernel, and it gates the pipeline: ``build_module`` raises.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.frontend import (
    StencilBody,
    attach_body,
    build_stencil_kernel,
    center_weighted_body,
    identity_body,
    weighted_body,
)
from repro.core.stencil import StencilPattern
from repro.dialects import arith, cfd
from repro.frontend.diagnostics import FrontendReporter
from repro.frontend.pattern import KernelSummary
from repro.ir import ModuleOp, OpBuilder
from repro.ir.values import Value


def pattern_for_summary(summary: KernelSummary) -> StencilPattern:
    """The §2.1 pattern attribute of an analyzed kernel."""
    return StencilPattern.from_offsets(
        summary.rank,
        l_offsets=summary.l_offsets,
        u_offsets=summary.u_offsets,
        sweep=summary.sweep,
        allow_initial_reads=summary.allow_initial_reads,
    )


def general_body(
    weights: Sequence[Optional[float]],
    center_weight: Optional[float],
    d: float,
) -> StencilBody:
    """Arbitrary mix of bare and weighted reads plus an optional center.

    ``weights`` has one entry per access in pattern (row-major) order;
    ``None`` keeps the access bare. ``center_weight=None`` contributes
    zero for the center, matching :func:`identity_body`.
    """

    def body(builder: OpBuilder, args: List[Value]) -> Tuple[Value, List[Value]]:
        nv = getattr(args, "nb_var", 1)
        n_access = (len(args) - nv) // nv
        if len(weights) != n_access:
            raise ValueError(
                f"{len(weights)} weights for {n_access} stencil accesses"
            )
        d_val = arith.const_f64(builder, d)
        zero = None
        if center_weight is None:
            zero = arith.const_f64(builder, 0.0)
        contributions: List[Value] = []
        for a in range(n_access):
            w = weights[a]
            if w is None:
                contributions.extend(args[a * nv:(a + 1) * nv])
            else:
                w_val = arith.const_f64(builder, w)
                for v in range(nv):
                    contributions.append(
                        arith.mulf(builder, w_val, args[a * nv + v])
                    )
        if center_weight is None:
            contributions += [zero] * nv
        else:
            cw = arith.const_f64(builder, center_weight)
            for v in range(nv):
                contributions.append(
                    arith.mulf(builder, cw, args[len(args) - nv + v])
                )
        return d_val, contributions

    return body


def body_for_summary(
    summary: KernelSummary, pattern: StencilPattern
) -> StencilBody:
    """Dispatch to the parity-preserving body helper for this summary."""
    if summary.form == "identity":
        return identity_body(summary.divisor)
    if summary.form == "weighted":
        return weighted_body(summary.access_weights(pattern), summary.divisor)
    if summary.form == "center_weighted":
        assert summary.center_weight is not None
        return center_weighted_body(summary.divisor, summary.center_weight)
    return general_body(
        [summary.weights.get(o) for o, _ in pattern.accesses],
        summary.center_weight,
        summary.divisor,
    )


# ---------------------------------------------------------------------------
# FE012: the independent pattern cross-check.
# ---------------------------------------------------------------------------


def cross_check_op(
    op, summary: KernelSummary, reporter: FrontendReporter
) -> None:
    """Compare one op's raw pattern attr against the inferred summary.

    Decoding goes through :func:`stencil_raw_attrs` — the dependence
    engine's from-scratch attribute reader — so a builder bug cannot
    hide behind the same code that introduced it.
    """
    from repro.analysis.dependence import stencil_raw_attrs

    raw = stencil_raw_attrs(op)
    if raw is None:
        reporter.emit(
            "FE012",
            "built stencil op carries no decodable pattern attribute",
        )
        return
    rank, l_offsets, u_offsets, sweep, allow_initial = raw
    problems = []
    if rank != summary.rank:
        problems.append(f"rank {rank} != inferred {summary.rank}")
    if set(l_offsets) != set(summary.l_offsets):
        problems.append(
            f"L {sorted(l_offsets)} != inferred {sorted(summary.l_offsets)}"
        )
    if set(u_offsets) != set(summary.u_offsets):
        problems.append(
            f"U {sorted(u_offsets)} != inferred {sorted(summary.u_offsets)}"
        )
    if sweep != summary.sweep:
        problems.append(f"sweep {sweep} != inferred {summary.sweep}")
    if allow_initial != summary.allow_initial_reads:
        problems.append(
            f"allow_initial_reads {allow_initial} != inferred "
            f"{summary.allow_initial_reads}"
        )
    if problems:
        reporter.emit(
            "FE012",
            "the dependence engine re-derived a different pattern from "
            "the built IR: " + "; ".join(problems),
        )


def cross_check_module(
    module: ModuleOp, summary: KernelSummary, reporter: FrontendReporter
) -> int:
    """FE012-audit every stencil op under ``module``; returns the count."""
    checked = 0
    for op in module.walk():
        if op.name != cfd.StencilOp.OP_NAME:
            continue
        cross_check_op(op, summary, reporter)
        checked += 1
    if checked == 0:
        reporter.emit(
            "FE012",
            "the built module contains no stencil op to cross-check",
        )
    return checked


# ---------------------------------------------------------------------------
# Module / op construction.
# ---------------------------------------------------------------------------


def build_summary_module(
    summary: KernelSummary,
    space_shape: Sequence[int],
    nb_var: int = 1,
    iterations: int = 1,
    name: str = "kernel",
    module: Optional[ModuleOp] = None,
    pattern_override: Optional[StencilPattern] = None,
) -> Tuple[ModuleOp, StencilPattern]:
    """Build ``func @name(X, B, Y0) -> Y`` from an analyzed kernel.

    ``pattern_override`` substitutes a different pattern attribute into
    the IR while the summary keeps the inferred one — the tamper hook
    the FE012 mutant corpus uses to prove the cross-check actually
    fires. Production callers never pass it.
    """
    pattern = pattern_override or pattern_for_summary(summary)
    body = body_for_summary(summary, pattern)
    module = build_stencil_kernel(
        pattern,
        space_shape,
        body,
        nb_var=nb_var,
        iterations=iterations,
        name=name,
        module=module,
    )
    return module, pattern


def attach_summary_op(
    summary: KernelSummary,
    builder: OpBuilder,
    x: Value,
    b: Value,
    y_init: Value,
    nb_var: int = 1,
    pattern_override: Optional[StencilPattern] = None,
):
    """Create + populate one ``cfd.stencilOp`` at the builder's point.

    For embedding an analyzed kernel into a larger hand-built program
    (e.g. one phase of the heat3d module).
    """
    pattern = pattern_override or pattern_for_summary(summary)
    op = cfd.StencilOp.build(builder, x, b, y_init, pattern, nb_var)
    attach_body(op, body_for_summary(summary, pattern))
    return op
