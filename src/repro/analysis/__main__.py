"""The lint driver: ``python -m repro.analysis [paths...]``.

Each path may be an example file, an example stem (``quickstart``) or a
directory of examples (``examples/``). Every resolved stem is linted by
rebuilding its corpus pipelines (:mod:`repro.analysis.corpus`) and
running them with the analysis gate attached after every pass; entries
whose lowered form bufferizes are additionally bufferized and re-linted,
which exercises the memory-safety clients (IP013–IP015) on memref-level
IR. Exit status is 1 when any error-severity diagnostic is produced, 0
otherwise (warnings and notes are printed but do not fail the lint).

Machine-readable output:

``--json``
    One JSON object per diagnostic per line (``code``, ``severity``,
    ``title``, ``message``, ``op_path``, ``after_pass``, ``entry``,
    ``file``) instead of the human-readable report.
``--github``
    GitHub Actions workflow annotations (``::error`` / ``::warning`` /
    ``::notice``) so findings surface inline on pull requests.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.analyzer import AnalysisGate
from repro.analysis.corpus import build_corpus
from repro.analysis.diagnostics import Diagnostic
from repro.core.bufferization import BufferizationError, BufferizePass
from repro.core.pipeline import StencilCompiler

#: diagnostic severity -> GitHub annotation command
_GITHUB_LEVELS = {"error": "error", "warning": "warning", "note": "notice"}


def _resolve_stems(paths: List[str], known: List[str]) -> List[str]:
    """Map CLI path arguments to corpus stems (sorted, deduplicated)."""
    if not paths:
        return list(known)
    stems = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found = sorted(
                f.stem for f in p.glob("*.py") if f.stem in known
            )
            if not found:
                raise SystemExit(
                    f"error: no lintable examples under {raw!r} "
                    f"(known: {', '.join(known)})"
                )
            stems.extend(found)
        else:
            stem = p.stem
            if stem not in known:
                raise SystemExit(
                    f"error: no lint corpus for {raw!r} "
                    f"(known: {', '.join(known)})"
                )
            stems.append(stem)
    seen = set()
    return [s for s in stems if not (s in seen or seen.add(s))]


def _emit_json(diag: Diagnostic, entry_name: str, file: str) -> None:
    print(json.dumps({
        "code": diag.code,
        "severity": diag.severity,
        "title": diag.title,
        "message": diag.message,
        "op_path": diag.op_path,
        "after_pass": diag.after_pass,
        "entry": entry_name,
        "file": file,
    }, sort_keys=True))


def _emit_github(diag: Diagnostic, entry_name: str, file: str) -> None:
    level = _GITHUB_LEVELS[diag.severity]
    where = f" (after pass {diag.after_pass!r})" if diag.after_pass else ""
    # '::' would terminate the annotation command prematurely.
    message = f"[{entry_name}] {diag.message}{where}".replace("::", ":")
    print(f"::{level} file={file},title={diag.code} {diag.title}::{message}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="In-place legality, wavefront race and memory-safety "
        "lint over the example pipelines.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="example files, stems or directories (default: all)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the per-entry verdict lines",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON object per diagnostic per line",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit GitHub Actions ::error/::warning annotations",
    )
    args = parser.parse_args(argv)

    corpus = build_corpus()
    stems = _resolve_stems(args.paths, list(corpus))
    machine = args.as_json or args.github

    exit_code = 0
    total = 0
    for stem in stems:
        file = f"examples/{stem}.py"
        for entry in corpus[stem]:
            gate = AnalysisGate(fail_fast=False)
            compiler = StencilCompiler(entry.options)
            pm = compiler.build_pipeline()
            pm.gate = gate
            pm.gate_each = True
            module = entry.build()
            gate(module, after_pass=None)  # lint the frontend output too
            crash: Optional[Exception] = None
            try:
                pm.run(module)
            except Exception as exc:  # a mutant may not even lower
                crash = exc
            if crash is None:
                # Re-lint at the buffer level when the lowered form is
                # bufferizable: the uninit-read and clobber checkers only
                # see memref-level IR.
                try:
                    BufferizePass().run(module)
                except BufferizationError:
                    pass
                else:
                    gate(module, after_pass="bufferize")
            report = gate.report
            total += len(report.diagnostics)
            failed = report.has_errors or crash is not None
            verdict = "FAIL" if failed else "ok"
            if args.as_json:
                for diag in report.diagnostics:
                    _emit_json(diag, entry.name, file)
            elif args.github:
                for diag in report.diagnostics:
                    _emit_github(diag, entry.name, file)
            if not args.as_json:
                print(
                    f"[{verdict}] {entry.name}: {entry.description} "
                    f"({entry.options.describe()}) -- {report.summary()}"
                )
                if crash is not None:
                    print(f"  pipeline crashed: {crash}")
                if report.diagnostics and not args.quiet and not machine:
                    print(report.render())
            if failed:
                exit_code = 1
    if not args.as_json:
        print(f"linted {sum(len(corpus[s]) for s in stems)} pipeline(s) "
              f"from {len(stems)} example(s): {total} diagnostic(s)")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
