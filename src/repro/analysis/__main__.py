"""The lint driver: ``python -m repro.analysis [paths...]``.

Each path may be an example file, an example stem (``quickstart``) or a
directory of examples (``examples/``). Every resolved stem is linted by
rebuilding its corpus pipelines (:mod:`repro.analysis.corpus`) and
running them with the analysis gate attached after every pass. Exit
status is 1 when any error-severity diagnostic is produced, 0 otherwise
(warnings and notes are printed but do not fail the lint).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.analysis.analyzer import AnalysisGate
from repro.analysis.corpus import build_corpus
from repro.core.pipeline import StencilCompiler


def _resolve_stems(paths: List[str], known: List[str]) -> List[str]:
    """Map CLI path arguments to corpus stems (sorted, deduplicated)."""
    if not paths:
        return list(known)
    stems = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found = sorted(
                f.stem for f in p.glob("*.py") if f.stem in known
            )
            if not found:
                raise SystemExit(
                    f"error: no lintable examples under {raw!r} "
                    f"(known: {', '.join(known)})"
                )
            stems.extend(found)
        else:
            stem = p.stem
            if stem not in known:
                raise SystemExit(
                    f"error: no lint corpus for {raw!r} "
                    f"(known: {', '.join(known)})"
                )
            stems.append(stem)
    seen = set()
    return [s for s in stems if not (s in seen or seen.add(s))]


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="In-place legality & wavefront race lint over the "
        "example pipelines.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="example files, stems or directories (default: all)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the per-entry verdict lines",
    )
    args = parser.parse_args(argv)

    corpus = build_corpus()
    stems = _resolve_stems(args.paths, list(corpus))

    exit_code = 0
    total = 0
    for stem in stems:
        for entry in corpus[stem]:
            gate = AnalysisGate(fail_fast=False)
            compiler = StencilCompiler(entry.options)
            pm = compiler.build_pipeline()
            pm.gate = gate
            pm.gate_each = True
            module = entry.build()
            gate(module, after_pass=None)  # lint the frontend output too
            crash = None
            try:
                pm.run(module)
            except Exception as exc:  # a mutant may not even lower
                crash = exc
            report = gate.report
            total += len(report.diagnostics)
            failed = report.has_errors or crash is not None
            verdict = "FAIL" if failed else "ok"
            print(
                f"[{verdict}] {entry.name}: {entry.description} "
                f"({entry.options.describe()}) -- {report.summary()}"
            )
            if crash is not None:
                print(f"  pipeline crashed: {crash}")
            if report.diagnostics and not args.quiet:
                print(report.render())
            if failed:
                exit_code = 1
    print(f"linted {sum(len(corpus[s]) for s in stems)} pipeline(s) "
          f"from {len(stems)} example(s): {total} diagnostic(s)")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
