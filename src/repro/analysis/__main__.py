"""The lint driver: ``python -m repro.analysis [paths...]``.

Each path may be an example file, an example stem (``quickstart``) or a
directory of examples (``examples/``). Every resolved stem is linted by
rebuilding its corpus pipelines (:mod:`repro.analysis.corpus`) and
running them with the analysis gate attached after every pass; entries
whose lowered form bufferizes are additionally bufferized and re-linted,
which exercises the memory-safety clients (IP013–IP015) on memref-level
IR. Exit status is 1 when any error-severity diagnostic is produced, 0
otherwise (warnings and notes are printed but do not fail the lint).

Machine-readable output:

``--json``
    One JSON object per diagnostic per line (``code``, ``severity``,
    ``title``, ``message``, ``op_path``, ``after_pass``, ``entry``,
    ``file``) instead of the human-readable report.
``--github``
    GitHub Actions workflow annotations (``::error`` / ``::warning`` /
    ``::notice``) so findings surface inline on pull requests.

Translation validation:

``--validate``
    Additionally run the per-pass translation validator
    (:mod:`repro.analysis.tv`) over every pipeline: the reference
    schedule is captured on the frontend output and every pass (plus
    the bufferized form) must preserve every flow/anti/output
    dependence. TV diagnostics merge into the report and fail the lint
    like IP errors.
``--certificates PATH``
    With ``--validate``, write the per-pass certificate summaries (one
    record per entry per pass, with per-site instance counts and
    certified/violated status) as a JSON file — the artifact CI
    uploads.

Performance lint:

``--perf``
    Run the *static performance prover* instead of the correctness
    gates: each corpus pipeline's schedule is priced against a machine
    model (footprints, cache traffic, operational intensity, wavefront
    parallelism) without executing anything, and mis-schedulings
    surface as PF001–PF007 diagnostics. With no paths this also covers
    the ``perf_demo`` corpus of deliberately mis-tiled configurations.
    Exit status 1 only on error-severity findings (PF001).
``--machine {host,py-numpy,single-core,xeon-6152}``
    Machine-model preset to price against (default: the entry's own
    ``CompileOptions.machine``, then ``$REPRO_MACHINE``, then the
    host-calibrated model).

Frontend lint:

``--frontend``
    Lint the ``@stencil`` frontend corpus
    (:mod:`repro.frontend.corpus`) instead of the IR pipelines: each
    good entry's kernel is statically analyzed (FE001–FE012), built
    through the FE012 pattern cross-check and gate-checked as IR; the
    ``fe_mutants`` stem holds one must-fail kernel per FE code. Exit
    status 1 on any error-severity finding — CI runs the examples
    (must pass) and ``fe_mutants`` (must fail, inverted).

Engine selection and coverage:

``--engine {auto,symbolic,enumerated}``
    Decision procedure for every gate (default: the ``REPRO_VERIFY``
    environment variable, then ``auto``).
``--stats``
    After linting, print per-gate decision-procedure coverage: how many
    queries each gate (legality, wavefront, dependence, absint, tv)
    answered symbolically vs by enumeration fallback, with cumulative
    per-gate decision time. With ``--json``, emitted as a single
    ``{"stats": ...}`` object on the last line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.affine import ENGINE_STATS, VERIFY_ENGINES
from repro.analysis.analyzer import AnalysisGate
from repro.analysis.corpus import build_corpus, build_perf_demo_corpus
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.tv import TranslationValidator
from repro.core.bufferization import BufferizationError, BufferizePass
from repro.core.pipeline import StencilCompiler

#: diagnostic severity -> GitHub annotation command
_GITHUB_LEVELS = {"error": "error", "warning": "warning", "note": "notice"}


def _resolve_stems(paths: List[str], known: List[str]) -> List[str]:
    """Map CLI path arguments to corpus stems (sorted, deduplicated)."""
    if not paths:
        return list(known)
    stems = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            found = sorted(
                f.stem for f in p.glob("*.py") if f.stem in known
            )
            if not found:
                raise SystemExit(
                    f"error: no lintable examples under {raw!r} "
                    f"(known: {', '.join(known)})"
                )
            stems.extend(found)
        else:
            stem = p.stem
            if stem not in known:
                raise SystemExit(
                    f"error: no lint corpus for {raw!r} "
                    f"(known: {', '.join(known)})"
                )
            stems.append(stem)
    seen = set()
    return [s for s in stems if not (s in seen or seen.add(s))]


def _emit_json(diag: Diagnostic, entry_name: str, file: str) -> None:
    print(json.dumps({
        "code": diag.code,
        "severity": diag.severity,
        "title": diag.title,
        "message": diag.message,
        "op_path": diag.op_path,
        "after_pass": diag.after_pass,
        "entry": entry_name,
        "file": file,
    }, sort_keys=True))


def _emit_github(diag: Diagnostic, entry_name: str, file: str) -> None:
    level = _GITHUB_LEVELS[diag.severity]
    where = f" (after pass {diag.after_pass!r})" if diag.after_pass else ""
    # '::' would terminate the annotation command prematurely.
    message = f"[{entry_name}] {diag.message}{where}".replace("::", ":")
    print(f"::{level} file={file},title={diag.code} {diag.title}::{message}")


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="In-place legality, wavefront race and memory-safety "
        "lint over the example pipelines.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="example files, stems or directories (default: all)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print only the per-entry verdict lines",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit one JSON object per diagnostic per line",
    )
    parser.add_argument(
        "--github", action="store_true",
        help="emit GitHub Actions ::error/::warning annotations",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="also run per-pass translation validation (TV001-TV007)",
    )
    parser.add_argument(
        "--certificates", metavar="PATH",
        help="with --validate, write per-pass certificate JSON to PATH",
    )
    parser.add_argument(
        "--perf", action="store_true",
        help="run the static performance prover (PF001-PF007) instead "
        "of the correctness gates",
    )
    parser.add_argument(
        "--frontend", action="store_true",
        help="lint the @stencil frontend corpus (FE001-FE012) instead "
        "of the IR pipelines",
    )
    parser.add_argument(
        "--machine", choices=_machine_choices(), default=None,
        help="machine-model preset for --perf (default: the entry's "
        "CompileOptions.machine, then $REPRO_MACHINE, then the host)",
    )
    parser.add_argument(
        "--engine", choices=list(VERIFY_ENGINES), default=None,
        help="decision procedure for every gate "
        "(default: $REPRO_VERIFY, then auto)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-gate symbolic-vs-enumerated coverage and timing",
    )
    args = parser.parse_args(argv)
    if args.certificates and not args.validate:
        parser.error("--certificates requires --validate")
    if args.perf and (args.validate or args.certificates):
        parser.error("--perf is incompatible with --validate")
    if args.machine and not args.perf:
        parser.error("--machine requires --perf")
    if args.frontend and (args.perf or args.validate or args.certificates):
        parser.error("--frontend is incompatible with --perf/--validate")
    if args.frontend:
        return _frontend_main(args)

    corpus = build_corpus()
    if args.perf:
        corpus = {**corpus, **build_perf_demo_corpus()}
    stems = _resolve_stems(args.paths, list(corpus))
    machine = args.as_json or args.github
    ENGINE_STATS.reset()

    exit_code = 0
    total = 0
    certificates = []
    for stem in stems:
        file = f"examples/{stem}.py"
        for entry in corpus[stem]:
            try:
                crashed_diag = None
                if args.perf:
                    exit_code, total = _perf_entry(
                        entry, file, args, machine, exit_code, total
                    )
                else:
                    exit_code, total = _lint_entry(
                        entry, file, args, machine, certificates,
                        exit_code, total,
                    )
            except Exception as exc:  # noqa: BLE001 - degrade to a finding
                # An *internal* analyzer crash (not a pipeline failure,
                # which _lint_entry already degrades) becomes a
                # structured RS009 finding: nonzero exit, no traceback.
                crashed_diag = Diagnostic(
                    "RS009",
                    f"internal analyzer crash: "
                    f"{type(exc).__name__}: {exc}",
                    severity="error",
                )
            if crashed_diag is not None:
                total += 1
                exit_code = 1
                if args.as_json:
                    _emit_json(crashed_diag, entry.name, file)
                elif args.github:
                    _emit_github(crashed_diag, entry.name, file)
                if not args.as_json:
                    print(
                        f"[FAIL] {entry.name}: {entry.description} "
                        f"({entry.options.describe()}) -- analyzer crashed"
                    )
                    if not args.quiet and not machine:
                        print(crashed_diag.render())
    if args.certificates:
        Path(args.certificates).write_text(
            json.dumps(certificates, indent=2, sort_keys=True) + "\n"
        )
    if not args.as_json:
        print(f"linted {sum(len(corpus[s]) for s in stems)} pipeline(s) "
              f"from {len(stems)} example(s): {total} diagnostic(s)")
    if args.stats:
        _emit_stats(args.as_json)
    return exit_code


def _frontend_main(args) -> int:
    """The ``--frontend`` mode: lint the ``@stencil`` kernel corpus."""
    from repro.frontend.corpus import build_frontend_corpus

    corpus = build_frontend_corpus()
    stems = _resolve_stems(args.paths, list(corpus))
    machine = args.as_json or args.github
    exit_code = 0
    total = 0
    linted = 0
    for stem in stems:
        for entry in corpus[stem]:
            linted += 1
            try:
                report = entry.run()
            except Exception as exc:  # noqa: BLE001 - degrade to a finding
                from repro.analysis.diagnostics import DiagnosticReport

                report = DiagnosticReport()
                report.diagnostics.append(Diagnostic(
                    "RS009",
                    f"internal frontend-analyzer crash: "
                    f"{type(exc).__name__}: {exc}",
                    severity="error",
                ))
            total += len(report.diagnostics)
            failed = report.has_errors
            if args.as_json:
                for diag in report.diagnostics:
                    _emit_json(diag, entry.name, entry.file)
            elif args.github:
                for diag in report.diagnostics:
                    _emit_github(diag, entry.name, entry.file)
            if not args.as_json:
                verdict = "FAIL" if failed else "ok"
                print(
                    f"[{verdict}] {entry.name}: {entry.description} "
                    f"-- {report.summary()}"
                )
                if report.diagnostics and not args.quiet and not machine:
                    print(report.render())
            if failed:
                exit_code = 1
    if not args.as_json:
        print(
            f"frontend-linted {linted} kernel(s) from {len(stems)} "
            f"stem(s): {total} diagnostic(s)"
        )
    return exit_code


def _emit_stats(as_json: bool) -> None:
    """Per-gate decision-procedure coverage accumulated over the run."""
    snap = ENGINE_STATS.snapshot()
    if as_json:
        print(json.dumps({"stats": snap}, sort_keys=True))
        return
    print("engine coverage (queries answered per decision procedure):")
    if not snap:
        print("  (no gate queries recorded)")
        return
    width = max(len(g) for g in snap)
    for gate, record in snap.items():
        counts = record["counts"]
        total = sum(counts.values())
        sym = counts.get("symbolic", 0)
        parts = ", ".join(
            f"{eng}={n}" for eng, n in sorted(counts.items())
        ) or "none"
        pct = f"{100.0 * sym / total:5.1f}%" if total else "  n/a"
        print(
            f"  {gate:<{width}}  {parts:<40} symbolic {pct}"
            f"  ({record['seconds'] * 1000:.1f} ms)"
        )


def _machine_choices() -> List[str]:
    from repro.machine.model import MACHINE_PRESETS

    return ["host"] + sorted(MACHINE_PRESETS)


def _perf_entry(entry, file, args, machine, exit_code, total):
    """Perf-lint one corpus entry; returns the updated (exit_code, total)."""
    from repro.analysis.perf import analyze_stencils, perf_findings
    from repro.machine.model import resolve_machine_model

    model = resolve_machine_model(args.machine or entry.options.machine)
    module = entry.build()
    diagnostics: List[Diagnostic] = []
    priced = 0
    for op_path, report in analyze_stencils(
        module, entry.options, machine=model
    ):
        priced += 1
        diagnostics.extend(perf_findings(report, model, op_path))
    total += len(diagnostics)
    failed = any(d.severity == "error" for d in diagnostics)
    verdict = "FAIL" if failed else "ok"
    if args.as_json:
        for diag in diagnostics:
            _emit_json(diag, entry.name, file)
    elif args.github:
        for diag in diagnostics:
            _emit_github(diag, entry.name, file)
    if not args.as_json:
        print(
            f"[{verdict}] {entry.name}: {entry.description} "
            f"({entry.options.describe()}) -- {len(diagnostics)} perf "
            f"finding(s) over {priced} stencil op(s) on {model.name}"
        )
        if diagnostics and not args.quiet and not machine:
            for diag in diagnostics:
                print(diag.render())
    if failed:
        exit_code = 1
    return exit_code, total


def _lint_entry(entry, file, args, machine, certificates, exit_code, total):
    """Lint one corpus entry; returns the updated (exit_code, total)."""
    gate = AnalysisGate(fail_fast=False, engine=args.engine)
    compiler = StencilCompiler(entry.options)
    pm = compiler.build_pipeline()
    pm.gate = gate
    pm.gate_each = True
    validator: Optional[TranslationValidator] = None
    if args.validate:
        validator = TranslationValidator(fail_fast=False, engine=args.engine)
        pm.validator = validator
    module = entry.build()
    gate(module, after_pass=None)  # lint the frontend output too
    crash: Optional[Exception] = None
    try:
        pm.run(module)
    except Exception as exc:  # a mutant may not even lower
        crash = exc
    if crash is None:
        # Re-lint at the buffer level when the lowered form is
        # bufferizable: the uninit-read and clobber checkers only
        # see memref-level IR.
        try:
            BufferizePass().run(module)
        except BufferizationError:
            pass
        else:
            gate(module, after_pass="bufferize")
            if validator is not None:
                validator.after_pass(module, "bufferize")
    report = gate.report
    diagnostics = list(report.diagnostics)
    has_errors = report.has_errors
    if validator is not None:
        diagnostics.extend(validator.report.diagnostics)
        has_errors = has_errors or validator.report.has_errors
        certificates.append({
            "entry": entry.name,
            "file": file,
            "options": entry.options.describe(),
            "passes": validator.certificates,
        })
    total += len(diagnostics)
    failed = has_errors or crash is not None
    verdict = "FAIL" if failed else "ok"
    if args.as_json:
        for diag in diagnostics:
            _emit_json(diag, entry.name, file)
    elif args.github:
        for diag in diagnostics:
            _emit_github(diag, entry.name, file)
    if not args.as_json:
        summary = report.summary()
        if validator is not None:
            certified = sum(
                1 for record in validator.certificates
                if not record["violations"]
            )
            summary += (
                f"; validated {certified}/"
                f"{len(validator.certificates)} pass(es) clean"
            )
        print(
            f"[{verdict}] {entry.name}: {entry.description} "
            f"({entry.options.describe()}) -- {summary}"
        )
        if crash is not None:
            print(f"  pipeline crashed: {crash}")
        if diagnostics and not args.quiet and not machine:
            print(report.render())
            if validator is not None and validator.report.diagnostics:
                print(validator.report.render())
    if failed:
        exit_code = 1
    return exit_code, total


if __name__ == "__main__":
    sys.exit(main())
