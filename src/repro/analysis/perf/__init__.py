"""Static performance prover and performance lint (PR 8).

:mod:`repro.analysis.perf.model` prices a schedule — footprints, bytes
per cache level, operational intensity, vector shape, wavefront
parallelism, predicted seconds — without executing it, through the
affine footprint engine and a :class:`~repro.machine.model.MachineModel`.
:mod:`repro.analysis.perf.lint` turns those predictions into the
``PF001``–``PF007`` diagnostic family.
"""

from repro.analysis.perf.lint import (
    HALO_RATIO_THRESHOLD,
    MEMORY_BOUND_HALO_THRESHOLD,
    analyze_stencils,
    perf_findings,
)
from repro.analysis.perf.model import (
    DTYPE_BYTES,
    LIVE_TENSORS,
    PerfReport,
    WavefrontProfile,
    pattern_halos,
    predict,
    static_cost,
    wavefront_profile,
    wavefront_profile_from_csr,
)

__all__ = [
    "DTYPE_BYTES",
    "HALO_RATIO_THRESHOLD",
    "LIVE_TENSORS",
    "MEMORY_BOUND_HALO_THRESHOLD",
    "PerfReport",
    "WavefrontProfile",
    "analyze_stencils",
    "pattern_halos",
    "perf_findings",
    "predict",
    "static_cost",
    "wavefront_profile",
    "wavefront_profile_from_csr",
]
