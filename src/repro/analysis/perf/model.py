"""The static performance prover (PR 8 tentpole).

Given a stencil pattern, a space shape and tile sizes — the schedule the
compiler is about to build — :func:`predict` derives, *without executing
anything*, everything the roofline and wavefront arguments of the paper
need:

* exact per-tile and per-sweep memory footprints, through the affine
  footprint engine (:mod:`repro.analysis.affine.footprint`);
* bytes moved per cache level: compulsory DRAM streaming when the live
  data exceeds the last-level cache, L2-level halo-recompute traffic
  (window − core), and per-access L1 touches;
* flops, operational intensity and the vectorizable innermost extent;
* a wavefront parallelism profile from the CSR schedule — critical-path
  length, mean/max group width, and the Brent-bound speedup ceiling
  ``T1 / max(T1/p, T∞)``;
* a predicted sweep time priced against a :class:`MachineModel`'s
  capacities, bandwidths and per-event costs.

:func:`static_cost` is the scalar the autotuner minimizes;
:func:`wavefront_profile_from_csr` consumes an already-computed CSR
schedule (a :class:`~repro.core.scheduling.ScheduleStamp`), which the
prediction-accuracy bench cross-validates against the machine-model
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.affine.footprint import SweepFootprint, sweep_footprint
from repro.core.scheduling import compute_parallel_blocks
from repro.core.stencil import StencilPattern
from repro.machine.model import MachineModel, resolve_machine_model

#: Everything in this reproduction computes in float64.
DTYPE_BYTES = 8
#: Live tensors of one sweep: X (coefficients), B (rhs), Y (solution).
LIVE_TENSORS = 3
#: Largest tile grid whose CSR schedule is derived exactly; beyond it
#: the wavefront profile is skipped (the longest-path replay is
#: O(tiles · |L|) and static costing must stay cheap).
MAX_PROFILE_TILES = 20_000


@dataclass(frozen=True)
class WavefrontProfile:
    """Parallelism shape of one CSR wavefront schedule."""

    num_tiles: int
    #: Number of wavefront groups — the schedule's critical-path length.
    num_groups: int
    max_width: int
    mean_width: float

    def brent_speedup(self, threads: int) -> float:
        """Brent's bound with unit tile cost: ``T1 / max(T1/p, T∞)``,
        i.e. ``min(p, tiles/groups)`` — the speedup ceiling no executor
        of this schedule can beat."""
        if self.num_tiles <= 0 or threads <= 0:
            return 1.0
        t1 = float(self.num_tiles)
        return t1 / max(t1 / threads, float(self.num_groups))


def wavefront_profile_from_csr(
    offsets: Union[Sequence[int], np.ndarray],
) -> WavefrontProfile:
    """Profile from a CSR group-offsets array (the
    ``cfd.get_parallel_blocks`` payload / ``ScheduleStamp`` shape)."""
    sizes = np.diff(np.asarray(offsets, dtype=np.int64))
    if np.any(sizes < 0):
        raise ValueError("CSR group offsets must be non-decreasing")
    sizes = sizes[sizes > 0]
    total = int(sizes.sum())
    groups = int(len(sizes))
    return WavefrontProfile(
        num_tiles=total,
        num_groups=groups,
        max_width=int(sizes.max()) if groups else 0,
        mean_width=(total / groups) if groups else 0.0,
    )


def wavefront_profile(
    pattern: StencilPattern,
    tile_grid: Sequence[int],
    tile_sizes: Sequence[int],
) -> Optional[WavefrontProfile]:
    """Profile of the schedule the compiler would build for this tiling:
    block-level dependence offsets from the L pattern, then the exact
    Eq. (3) longest-path CSR groups. ``None`` when the grid exceeds
    :data:`MAX_PROFILE_TILES` or is empty."""
    num_tiles = 1
    for n in tile_grid:
        num_tiles *= int(n)
    if num_tiles <= 0 or num_tiles > MAX_PROFILE_TILES:
        return None
    deps = pattern.block_stencil_offsets(tile_sizes)
    csr_offsets, _ = compute_parallel_blocks(tile_grid, deps)
    return wavefront_profile_from_csr(csr_offsets)


@dataclass(frozen=True)
class PerfReport:
    """Everything the prover can say about one schedule, statically."""

    machine_name: str
    space_shape: Tuple[int, ...]
    tile_sizes: Tuple[int, ...]
    nb_var: int
    vf: int

    # -- footprints (exact cell counts from the affine engine) --
    tile_grid: Tuple[int, ...]
    num_tiles: int
    sweep_core_cells: int
    sweep_window_cells: int
    #: Widest single tile's halo-inclusive working set across the live
    #: tensors — what must fit the private cache.
    tile_window_bytes: int
    #: (window − core) / core: the fraction of traffic that is halo
    #: re-reads rather than useful cells.
    halo_ratio: float

    # -- traffic per cache level, bytes per sweep --
    bytes_l1: int
    bytes_l2: int
    bytes_dram: int
    #: True when the live data fits the last-level cache, so steady-state
    #: sweeps stream from cache rather than DRAM.
    cache_resident: bool

    # -- compute --
    flops: int
    operational_intensity: float
    #: Vectorizable innermost extent (the unit-stride run length).
    innermost_extent: int
    #: False when the innermost dimension is pinned to extent 1, making
    #: every access effectively strided/scalar.
    unit_stride_innermost: bool
    vector_utilization: float
    #: Dimensions pinned to tile size 1 by §2.1 legality: widening any
    #: of them alone would break the lexicographic block order (the
    #: legalizer would force it straight back to 1).
    pinned_dims: Tuple[int, ...]

    # -- predicted time, seconds per sweep (single thread) --
    t_compute: float
    t_dram: float
    t_halo: float
    t_loop: float
    predicted_seconds: float

    # -- parallelism --
    wavefront: Optional[WavefrontProfile]

    @property
    def predicted_ms(self) -> float:
        return self.predicted_seconds * 1e3

    def to_json(self) -> dict:
        out = {
            "machine": self.machine_name,
            "space_shape": list(self.space_shape),
            "tile_sizes": list(self.tile_sizes),
            "nb_var": self.nb_var,
            "vf": self.vf,
            "tile_grid": list(self.tile_grid),
            "num_tiles": self.num_tiles,
            "sweep_core_cells": self.sweep_core_cells,
            "sweep_window_cells": self.sweep_window_cells,
            "tile_window_bytes": self.tile_window_bytes,
            "halo_ratio": self.halo_ratio,
            "bytes_l1": self.bytes_l1,
            "bytes_l2": self.bytes_l2,
            "bytes_dram": self.bytes_dram,
            "cache_resident": self.cache_resident,
            "flops": self.flops,
            "operational_intensity": self.operational_intensity,
            "innermost_extent": self.innermost_extent,
            "unit_stride_innermost": self.unit_stride_innermost,
            "vector_utilization": self.vector_utilization,
            "pinned_dims": list(self.pinned_dims),
            "t_compute": self.t_compute,
            "t_dram": self.t_dram,
            "t_halo": self.t_halo,
            "t_loop": self.t_loop,
            "predicted_seconds": self.predicted_seconds,
        }
        if self.wavefront is not None:
            out["wavefront"] = {
                "num_tiles": self.wavefront.num_tiles,
                "num_groups": self.wavefront.num_groups,
                "max_width": self.wavefront.max_width,
                "mean_width": self.wavefront.mean_width,
            }
        return out


def pattern_halos(pattern: StencilPattern) -> Tuple[Tuple[int, int], ...]:
    """Per-dimension ``(lo, hi)`` read margins of the pattern."""
    halos = []
    for d in range(pattern.rank):
        lo = max([0] + [-o[d] for o, _ in pattern.accesses])
        hi = max([0] + [o[d] for o, _ in pattern.accesses])
        halos.append((lo, hi))
    return tuple(halos)


def predict(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    tile_sizes: Sequence[int],
    *,
    nb_var: int = 1,
    machine: Union[MachineModel, str, None] = None,
    vf: int = 8,
    live_tensors: int = LIVE_TENSORS,
    dtype_bytes: int = DTYPE_BYTES,
    with_wavefront: bool = True,
) -> PerfReport:
    """Statically price one sweep of ``pattern`` over ``space_shape``
    tiled with ``tile_sizes`` on ``machine`` (a :class:`MachineModel`,
    a preset name, or ``None`` for the resolved default)."""
    if not isinstance(machine, MachineModel):
        machine = resolve_machine_model(machine)
    space_shape = tuple(int(n) for n in space_shape)
    tile_sizes = tuple(int(t) for t in tile_sizes)
    if len(tile_sizes) != pattern.rank or len(space_shape) != pattern.rank:
        raise ValueError("space/tile rank must match the pattern rank")

    interior = pattern.interior_bounds(space_shape)
    halos = pattern_halos(pattern)
    fp: SweepFootprint = sweep_footprint(
        space_shape, interior, tile_sizes, halos
    )

    core_cells = fp.core_cells
    window_cells = fp.window_cells
    cell_bytes = nb_var * dtype_bytes
    tile_window_bytes = fp.max_tile_window_cells * live_tensors * cell_bytes
    halo_cells = max(0, window_cells - core_cells)
    halo_ratio = (halo_cells / core_cells) if core_cells else 0.0

    # ---- traffic per level -------------------------------------------------
    # DRAM: one sweep must stream every live tensor at least once when the
    # live data exceeds the last-level cache; below that, steady-state
    # sweeps are cache-resident and the compulsory DRAM term vanishes.
    domain_cells = 1
    for n in space_shape:
        domain_cells *= n
    domain_bytes = domain_cells * live_tensors * cell_bytes
    cache_resident = domain_bytes <= machine.l3_bytes_total
    bytes_dram = 0 if cache_resident else domain_bytes
    # L2: every tile loads its halo-inclusive window of the live tensors.
    bytes_l2 = window_cells * live_tensors * cell_bytes
    # L1: every access of every interior cell touches the L1 (the stencil
    # reads + the B read + the Y write).
    accesses = pattern.num_accesses + 2
    bytes_l1 = accesses * core_cells * cell_bytes

    # ---- compute and vector shape -----------------------------------------
    lo, hi = interior[-1]
    interior_inner = max(0, hi - lo)
    innermost = max(1, min(tile_sizes[-1], max(1, interior_inner)))
    unit_stride = innermost > 1
    calls_per_strip = -(-innermost // vf) if vf > 1 else innermost
    utilization = (
        innermost / (vf * calls_per_strip) if vf > 1 and calls_per_strip
        else 1.0 / max(1, vf)
    )
    strips = core_cells // innermost if innermost else 0
    vector_calls = strips * calls_per_strip * accesses * nb_var
    # Per interior cell: one multiply-add per access plus the residual
    # combine, per variable.
    flops = core_cells * nb_var * (2 * pattern.num_accesses + 2)

    # ---- price it ----------------------------------------------------------
    t_compute = flops / (machine.flops_per_core * max(utilization, 1e-9))
    t_dram = bytes_dram / machine.mem_bw_per_numa
    halo_bytes = halo_cells * live_tensors * cell_bytes
    t_halo = halo_bytes / machine.cache_bw
    t_loop = (
        fp.num_tiles * machine.tile_start_seconds
        + strips * machine.strip_start_seconds
        + vector_calls * machine.vector_call_seconds
    )
    # Cross-outer-step reuse: advancing the tile's outermost index by one
    # re-reads the window's trailing plane (the last two dims' extents).
    plane_dims = fp.dims[-2:] if len(fp.dims) >= 2 else fp.dims
    plane_bytes = live_tensors * cell_bytes
    for d in plane_dims:
        plane_bytes *= d.window_max
    if tile_window_bytes > machine.l2_bytes:
        # Spilled working set: every per-tile/strip/call operand touch
        # now misses the private cache (the PF001 regime).
        t_loop *= machine.cache_spill_penalty
    elif plane_bytes > machine.l1_bytes:
        # Middle tier: the tile fits L2, but its reuse plane spills L1,
        # so halo rereads between neighbouring strips come from L2.
        t_loop *= machine.l1_spill_penalty
    predicted = max(t_compute, t_dram) + t_halo + t_loop

    oi_denominator = bytes_dram if bytes_dram else bytes_l2
    oi = flops / oi_denominator if oi_denominator else float("inf")

    pinned = _pinned_dims(pattern, tile_sizes)

    wf = (
        wavefront_profile(pattern, fp.tile_grid, tile_sizes)
        if with_wavefront
        else None
    )

    return PerfReport(
        machine_name=machine.name,
        space_shape=space_shape,
        tile_sizes=tile_sizes,
        nb_var=nb_var,
        vf=vf,
        tile_grid=fp.tile_grid,
        num_tiles=fp.num_tiles,
        sweep_core_cells=core_cells,
        sweep_window_cells=window_cells,
        tile_window_bytes=tile_window_bytes,
        halo_ratio=halo_ratio,
        bytes_l1=bytes_l1,
        bytes_l2=bytes_l2,
        bytes_dram=bytes_dram,
        cache_resident=cache_resident,
        flops=flops,
        operational_intensity=oi,
        innermost_extent=innermost,
        unit_stride_innermost=unit_stride,
        vector_utilization=utilization,
        pinned_dims=pinned,
        t_compute=t_compute,
        t_dram=t_dram,
        t_halo=t_halo,
        t_loop=t_loop,
        predicted_seconds=predicted,
        wavefront=wf,
    )


def _pinned_dims(
    pattern: StencilPattern, tile_sizes: Tuple[int, ...]
) -> Tuple[int, ...]:
    """Dimensions the §2.1 legalizer holds at tile size 1: widening the
    dimension alone is immediately forced back (or rejected outright).
    Asked of the real legalizer rather than re-derived, so the report
    can never disagree with what the tiling pass would do."""
    from repro.core.tiling import legalize_tile_sizes

    pinned = []
    for d, size in enumerate(tile_sizes):
        if size != 1:
            continue
        widened = list(tile_sizes)
        widened[d] = 2
        try:
            legal = legalize_tile_sizes(pattern, widened)
        except ValueError:
            pinned.append(d)
            continue
        if legal[d] == 1:
            pinned.append(d)
    return tuple(pinned)


def static_cost(
    pattern: StencilPattern,
    space_shape: Sequence[int],
    tile_sizes: Sequence[int],
    *,
    nb_var: int = 1,
    machine: Union[MachineModel, str, None] = None,
    vf: int = 8,
) -> float:
    """The scalar the autotuner's ``static`` mode minimizes: predicted
    single-thread seconds per sweep (wavefront profiling skipped — it
    does not change a single-thread ranking and the candidate loop must
    stay cheap)."""
    return predict(
        pattern,
        space_shape,
        tile_sizes,
        nb_var=nb_var,
        machine=machine,
        vf=vf,
        with_wavefront=False,
    ).predicted_seconds
