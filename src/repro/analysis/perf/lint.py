"""Performance lint: the ``PF001``–``PF007`` diagnostic family.

Each check consumes a :class:`~repro.analysis.perf.model.PerfReport`
(the static prover's verdict on one schedule) plus the machine model it
was priced against, and emits :class:`Diagnostic` findings that carry
the predicted traffic and parallelism numbers — so a CI annotation
reads like a measurement, not an opinion. Severity policy: only PF001
(a working set that cannot fit the private cache) is an *error*; the
rest are warnings and notes, so canonical pipelines lint clean while
genuinely mis-tiled schedules fail the gate.

:func:`analyze_stencils` is the module-level driver: it walks a
frontend module for ``cfd.stencilOp`` sites, derives each site's
schedule from a :class:`~repro.core.pipeline.CompileOptions` (cache
tile sizes, legalized; sub-domain grid for the wavefront profile) and
returns ``(op_path, PerfReport)`` pairs ready for
:func:`perf_findings`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple, Union

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.perf.model import (
    PerfReport,
    predict,
    wavefront_profile,
)
from repro.machine.model import MachineModel, resolve_machine_model

#: PF004 fires when halo re-reads exceed this multiple of the useful
#: (core) traffic.
HALO_RATIO_THRESHOLD = 1.5
#: PF006 fires on memory-bound schedules whose halo ratio exceeds this
#: (redundant traffic on a bandwidth-limited kernel).
MEMORY_BOUND_HALO_THRESHOLD = 0.25


def _mib(nbytes: float) -> str:
    return f"{nbytes / (1 << 20):.2f} MiB"


def perf_findings(
    report: PerfReport, machine: MachineModel, op_path: str = ""
) -> List[Diagnostic]:
    """All PF findings for one statically-priced schedule."""
    out: List[Diagnostic] = []

    def emit(code: str, severity: str, message: str) -> None:
        out.append(
            Diagnostic(code, message, severity=severity, op_path=op_path)
        )

    tiles = "x".join(map(str, report.tile_sizes))
    if report.tile_window_bytes > machine.l2_bytes:
        emit(
            "PF001", "error",
            f"tile {tiles} working set {_mib(report.tile_window_bytes)} "
            f"exceeds the private cache ({_mib(machine.l2_bytes)} L2 on "
            f"{machine.name}): every sweep re-streams its halo windows "
            f"(predicted {report.predicted_ms:.2f} ms/sweep)",
        )

    if report.pinned_dims:
        dims = ", ".join(str(d) for d in report.pinned_dims)
        emit(
            "PF002", "note",
            f"dimension(s) {dims} carry negative dependence distances and "
            f"are pinned to tile size 1 (§2.1); the tile shape {tiles} "
            f"cannot be widened there",
        )

    wf = report.wavefront
    if (
        wf is not None
        and machine.cores > 1
        and wf.max_width < machine.cores
    ):
        emit(
            "PF003", "warning",
            f"widest wavefront group has {wf.max_width} tile(s) for "
            f"{machine.cores} cores ({wf.num_groups} groups over "
            f"{wf.num_tiles} tiles, mean width {wf.mean_width:.1f}); "
            f"Brent-bound speedup ceiling "
            f"{wf.brent_speedup(machine.cores):.1f}x",
        )

    if report.halo_ratio > HALO_RATIO_THRESHOLD:
        emit(
            "PF004", "warning",
            f"halo re-reads are {report.halo_ratio:.2f}x the useful "
            f"traffic (window {report.sweep_window_cells} cells vs core "
            f"{report.sweep_core_cells}; threshold "
            f"{HALO_RATIO_THRESHOLD:.2f}x): tiles {tiles} are too thin "
            f"for this stencil's halo",
        )

    if not report.unit_stride_innermost and report.space_shape[-1] > 3:
        emit(
            "PF005", "warning",
            f"innermost tile extent is 1, so no access is unit-stride "
            f"vectorizable (vector utilization "
            f"{report.vector_utilization:.2f} at VF={report.vf}); "
            f"predicted {report.predicted_ms:.2f} ms/sweep",
        )

    memory_bound = report.bytes_dram > 0 and report.t_dram >= report.t_compute
    if memory_bound and report.halo_ratio > MEMORY_BOUND_HALO_THRESHOLD:
        emit(
            "PF006", "warning",
            f"schedule is memory-bound (DRAM {report.t_dram * 1e3:.2f} ms "
            f">= compute {report.t_compute * 1e3:.2f} ms, operational "
            f"intensity {report.operational_intensity:.2f} flop/byte) yet "
            f"{report.halo_ratio:.2f}x of its traffic is redundant halo "
            f"re-reads — widening tiles {tiles} reduces bytes moved",
        )

    if report.cache_resident or wf is None:
        reasons = []
        if report.cache_resident:
            reasons.append(
                f"live data {_mib(_domain_bytes(report))} fits the "
                f"{_mib(machine.l3_bytes_total)} LLC, so the DRAM "
                f"roofline term vanished"
            )
        if wf is None:
            reasons.append(
                "no exact wavefront profile (serial schedule or "
                "oversized tile grid)"
            )
        parallelism = (
            f"{wf.num_groups} groups, max width {wf.max_width}"
            if wf is not None
            else "unprofiled"
        )
        emit(
            "PF007", "note",
            f"prediction {report.predicted_ms:.3f} ms/sweep on "
            f"{machine.name} (OI {report.operational_intensity:.2f} "
            f"flop/byte, L2 traffic {_mib(report.bytes_l2)}, wavefront: "
            f"{parallelism}); confidence moderate: "
            + "; ".join(reasons),
        )

    return out


def _domain_bytes(report: PerfReport) -> int:
    cells = 1
    for n in report.space_shape:
        cells *= n
    return cells * 3 * report.nb_var * 8


def analyze_stencils(
    module,
    options,
    machine: Union[MachineModel, str, None] = None,
) -> List[Tuple[str, PerfReport]]:
    """Statically price every ``cfd.stencilOp`` in a frontend module
    under the schedule ``options`` describes.

    The cache working set uses the (legalized) inner ``tile_sizes``
    (falling back to ``subdomain_sizes``, then the whole interior); the
    wavefront profile uses the sub-domain grid — that is the level
    ``cfd.get_parallel_blocks`` schedules.
    """
    from repro.core.tiling import legalize_tile_sizes
    from repro.dialects import cfd

    if not isinstance(machine, MachineModel):
        machine = resolve_machine_model(
            machine or getattr(options, "machine", None)
        )
    vf = options.vectorize if options.vectorize else 8
    out: List[Tuple[str, PerfReport]] = []
    index = 0
    for op in module.walk():
        if op.name != cfd.StencilOp.OP_NAME:
            continue
        stencil_op: cfd.StencilOp = op
        pattern = stencil_op.pattern
        space_shape = tuple(stencil_op.y_init.type.shape[1:])
        interior = pattern.interior_bounds(space_shape)
        proposed = (
            options.tile_sizes
            or options.subdomain_sizes
            or tuple(hi - lo for lo, hi in interior)
        )
        tile_sizes = tuple(
            legalize_tile_sizes(pattern, _fit(proposed, space_shape))
        )
        report = predict(
            pattern,
            space_shape,
            tile_sizes,
            nb_var=stencil_op.nb_var,
            machine=machine,
            vf=vf,
            with_wavefront=False,
        )
        if options.parallel and options.subdomain_sizes:
            sub = tuple(
                legalize_tile_sizes(
                    pattern, _fit(options.subdomain_sizes, space_shape)
                )
            )
            grid = tuple(
                max(1, -(-(hi - lo) // t))
                for (lo, hi), t in zip(interior, sub)
            )
            report = dataclasses.replace(
                report, wavefront=wavefront_profile(pattern, grid, sub)
            )
        out.append((f"cfd.stencilOp#{index}", report))
        index += 1
    return out


def _fit(sizes, space_shape) -> Tuple[int, ...]:
    """Clamp proposed sizes to the space extents (the tiling passes do
    the same), tolerating rank-generic option tuples."""
    return tuple(
        max(1, min(int(t), int(n))) for t, n in zip(sizes, space_shape)
    )
