"""The lint corpus: what ``python -m repro.analysis examples/`` checks.

The examples under ``examples/`` are scripts (they benchmark, plot and
assert numerics), so the lint driver does not execute them. Instead each
example *stem* maps to a corpus entry that rebuilds the same IR with the
same compiler configuration — smaller shapes where the original sizes
only matter for benchmarking — and the driver runs the full pass
pipeline over it with the analysis gate attached after every pass.

This keeps the CI lint step fast and hermetic while still covering every
kernel/configuration shape the examples exercise: plain Gauss-Seidel,
SOR and Jacobi sweeps, the heat3d ablation pipelines and the LU-SGS
symmetric-sweep solver.

:func:`build_perf_demo_corpus` adds the ``perf_demo`` stem: correct but
deliberately mis-tiled configurations that only the performance lint
(``--perf``) resolves, giving the PF diagnostic family true positives
without failing the standard gate lint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core import frontend
from repro.core.pipeline import CompileOptions, ablation_options
from repro.core.stencil import (
    gauss_seidel_5pt_2d,
    gauss_seidel_6pt_3d,
    gauss_seidel_9pt_2d,
    jacobi_5pt_2d,
    sor_5pt_2d,
)
from repro.ir import ModuleOp


@dataclass(frozen=True)
class CorpusEntry:
    """One lintable pipeline configuration derived from an example."""

    name: str
    description: str
    build: Callable[[], ModuleOp]
    options: CompileOptions
    entry: str = "kernel"


def _gs5() -> ModuleOp:
    # Built through the @stencil Python frontend (not the hand-built
    # path) so the standard gate lint exercises frontend-emitted IR;
    # the parity tests pin both paths to identical fingerprints.
    from repro.frontend.corpus import _gs5_kernel
    from repro.frontend import analyze_function

    program, report = analyze_function(_gs5_kernel)
    assert program is not None, report.render()
    return program.build_module((64, 64), iterations=2)


def _gs9() -> ModuleOp:
    return frontend.build_stencil_kernel(
        gauss_seidel_9pt_2d(), (32, 32),
        frontend.weighted_body([1.0] * 8, 8.0),
    )


def _sor() -> ModuleOp:
    return frontend.build_stencil_kernel(
        sor_5pt_2d(), (34, 34), frontend.sor_body(1.5, 4.0)
    )


def _jacobi() -> ModuleOp:
    return frontend.build_stencil_kernel(
        jacobi_5pt_2d(), (34, 34), frontend.identity_body(4.0)
    )


def _heat3d() -> ModuleOp:
    from repro.cfdlib.heat import build_heat3d_module

    return build_heat3d_module(24, 1)


def _lusgs() -> ModuleOp:
    from repro.cfdlib.lusgs import LUSGSConfig, build_lusgs_module
    from repro.cfdlib.mesh import StructuredMesh

    config = LUSGSConfig(mesh=StructuredMesh((12, 12, 12)), dt=0.01)
    return build_lusgs_module(config, steps=1)


def _symmetric() -> ModuleOp:
    return frontend.build_symmetric_sweep_kernel(
        gauss_seidel_6pt_3d(), (16, 16, 16), frontend.identity_body(6.0)
    )


def _perf_mistiled() -> ModuleOp:
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (512, 512), frontend.identity_body(4.0)
    )


def _perf_thin() -> ModuleOp:
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (4096, 4096), frontend.identity_body(4.0)
    )


def _perf_strided() -> ModuleOp:
    return frontend.build_stencil_kernel(
        gauss_seidel_5pt_2d(), (1024, 1024), frontend.identity_body(4.0)
    )


def build_perf_demo_corpus() -> Dict[str, Tuple[CorpusEntry, ...]]:
    """Deliberately mis-scheduled configurations for the performance
    lint (``--perf``): each entry is IP/TV-clean but statically
    mis-tiled, so the PF family has true positives to find. Kept out of
    :func:`build_corpus` — the standard gate lint and CI's
    ``examples/``-directory resolution never see them (there is no
    ``examples/perf_demo.py``)."""
    return {
        "perf_demo": (
            CorpusEntry(
                "perf_demo[mistiled]",
                "tile working set bigger than the private L2 (PF001)",
                _perf_mistiled,
                CompileOptions(
                    tile_sizes=(256, 256), machine="xeon-6152"
                ),
            ),
            CorpusEntry(
                "perf_demo[thin]",
                "memory-bound sweep with thin, halo-heavy tiles (PF006)",
                _perf_thin,
                CompileOptions(
                    subdomain_sizes=(256, 1024), tile_sizes=(4, 512),
                    parallel=True, machine="xeon-6152",
                ),
            ),
            CorpusEntry(
                "perf_demo[strided]",
                "innermost tile extent 1: no unit-stride access (PF005)",
                _perf_strided,
                CompileOptions(
                    tile_sizes=(256, 1), machine="xeon-6152"
                ),
            ),
        ),
    }


def build_corpus() -> Dict[str, Tuple[CorpusEntry, ...]]:
    """Example stem -> the pipeline configurations linted for it."""
    return {
        "quickstart": (
            CorpusEntry(
                "quickstart",
                "5-point Gauss-Seidel, sub-domains + tiles + fusion",
                _gs5,
                CompileOptions(
                    subdomain_sizes=(32, 64), tile_sizes=(16, 32),
                    fuse=True, parallel=True,
                ),
            ),
        ),
        "sor_poisson": (
            CorpusEntry(
                "sor_poisson[sor]", "SOR sweep, vectorized",
                _sor, CompileOptions(vectorize=32),
            ),
            CorpusEntry(
                "sor_poisson[jacobi]", "Jacobi sweep, vectorized",
                _jacobi, CompileOptions(vectorize=32),
            ),
        ),
        "heat3d_implicit": tuple(
            CorpusEntry(
                f"heat3d_implicit[{tr}]",
                f"3D implicit heat, ablation {tr}",
                _heat3d,
                ablation_options(tr, (6, 12, 22), (6, 6, 22), vf=22),
                entry="heat",
            )
            for tr in ("Tr1", "Tr2", "Tr3", "Tr4")
        ),
        "euler_lusgs": (
            CorpusEntry(
                "euler_lusgs",
                "3D Euler LU-SGS (symmetric sweeps, Roe flux)",
                _lusgs,
                CompileOptions(
                    subdomain_sizes=(6, 6, 12), tile_sizes=(3, 3, 12),
                    fuse=True, parallel=True, vectorize=12,
                ),
                entry="lusgs",
            ),
            CorpusEntry(
                "euler_lusgs[symmetric]",
                "forward + backward 6-point sweeps",
                _symmetric,
                CompileOptions(
                    subdomain_sizes=(8, 8, 16), parallel=True, vectorize=0
                ),
                entry="symmetric_kernel",
            ),
        ),
        "inspect_pipeline": (
            CorpusEntry(
                "inspect_pipeline",
                "5-point Gauss-Seidel through every pipeline stage",
                lambda: frontend.build_stencil_kernel(
                    gauss_seidel_5pt_2d(), (32, 32),
                    frontend.identity_body(4.0),
                ),
                CompileOptions(
                    subdomain_sizes=(16, 16), tile_sizes=(4, 8),
                    fuse=True, parallel=True, vectorize=8,
                ),
            ),
            CorpusEntry(
                "inspect_pipeline[9pt]",
                "9-point kernel (tile legalization to 1 x T)",
                _gs9,
                CompileOptions(
                    subdomain_sizes=(16, 32), tile_sizes=(16, 16),
                    fuse=True, parallel=True,
                ),
            ),
        ),
    }
