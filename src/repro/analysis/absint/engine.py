"""The forward abstract evaluator over the interval domain.

The engine walks a function in execution order
(:class:`~repro.ir.dataflow.ForwardDataflowWalker`) and maintains two
environments:

* an *index* environment mapping bound SSA values (loop induction
  variables, enumerated tile coordinates) to :class:`Interval`\\ s; every
  other index expression is evaluated on demand by recursing through its
  defining ``arith`` ops;
* an *extent* environment mapping shaped values (tensors, memrefs,
  block arguments of loops) to per-dimension extent intervals, resolved
  through the producing op (``tensor.empty`` sizes, slice windows,
  loop-carried inits) or the static type.

Precision strategy — the part that makes the in-bounds proofs *exact*
rather than conservative: ``cfd.tiled_loop`` grids with statically known
bounds are **enumerated** (every tile coordinate visited with point
intervals), because the tiling pass's window arithmetic
(``max(iv - halo, 0)``, ``iv - w_lo``) correlates the induction variable
with itself and pure interval arithmetic would lose that correlation
catastrophically. Corpus-scale grids are tiny; loops whose trip-count
product exceeds ``enumeration_limit`` fall back to a single hull-bound
visit with :attr:`approx_depth` raised, which clients degrade to IP010
notes instead of hard verdicts. Innermost ``scf.for`` ranges stay
symbolic — their induction variables occur at most once per access
expression, so the interval stays exact.

Client analyses implement :class:`AbsintClient` and receive every op (in
execution order, once per enumerated visit) through ``on_op``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint.interval import Box, Interval
from repro.analysis.diagnostics import Diagnostic
from repro.ir.attributes import IntegerAttr
from repro.ir.dataflow import ForwardDataflowWalker
from repro.ir.operation import Operation
from repro.ir.types import MemRefType, TensorType
from repro.ir.values import BlockArgument, OpResult, Value

#: Default cap on the number of enumerated tile coordinates per loop.
ENUMERATION_LIMIT = 4096

_BINARY = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.floordivi": lambda a, b: a.floordiv(b),
    "arith.ceildivi": lambda a, b: -((-a).floordiv(b)),
    "arith.remi": lambda a, b: a.remainder(b),
    "arith.minsi": lambda a, b: a.min_(b),
    "arith.maxsi": lambda a, b: a.max_(b),
}

#: Ops whose result extents simply forward one operand's extents
#: (functional updates that preserve shape): name -> operand index.
_EXTENT_FORWARD = {
    "tensor.insert": 1,
    "tensor.insert_slice": 1,
    "cfd.stencilOp": 2,
    "cfd.faceIteratorOp": 1,
    "linalg.fill": 1,
    "vector.transfer_write": 1,
}


class AbsintClient:
    """Base class of the engine's client analyses."""

    def on_op(self, op: Operation, engine: "AbstractEvaluator") -> None:
        raise NotImplementedError

    def diagnostics(self) -> List[Diagnostic]:
        return []


class AbstractEvaluator(ForwardDataflowWalker):
    """Interval-domain forward evaluation of one function body."""

    def __init__(
        self,
        clients: Optional[List[AbsintClient]] = None,
        enumeration_limit: int = ENUMERATION_LIMIT,
    ) -> None:
        self.clients: List[AbsintClient] = clients or []
        self.enumeration_limit = enumeration_limit
        #: id(Value) -> Interval for explicitly bound values.
        self.index_env: Dict[int, Interval] = {}
        #: id(Value) -> per-dim extents for explicitly bound shaped values.
        self.extent_env: Dict[int, Box] = {}
        #: Enclosing loop ops (innermost last) at the current visit point.
        self.loop_stack: List[Operation] = []
        #: > 0 while inside a loop whose bounds could not be resolved or
        #: whose grid was too large to enumerate; clients must then treat
        #: failed containment checks as "unprovable", not as violations.
        self.approx_depth = 0

    # ---- evaluation ------------------------------------------------------

    def eval(self, value: Value, _memo: Optional[Dict[int, Interval]] = None) -> Interval:
        """The interval of an index-typed SSA value in the current context."""
        bound = self.index_env.get(id(value))
        if bound is not None:
            return bound
        memo = _memo if _memo is not None else {}
        key = id(value)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = Interval.top()  # cycle guard
        result = self._eval_uncached(value, memo)
        memo[key] = result
        return result

    def _eval_uncached(self, value: Value, memo: Dict[int, Interval]) -> Interval:
        if not isinstance(value, OpResult):
            return Interval.top()  # unbound block argument
        op = value.op
        name = op.name
        if name == "arith.constant":
            attr = op.attributes.get("value")
            if isinstance(attr, IntegerAttr):
                return Interval.point(attr.value)
            return Interval.top()
        fn = _BINARY.get(name)
        if fn is not None and op.num_operands == 2:
            return fn(self.eval(op.operand(0), memo), self.eval(op.operand(1), memo))
        if name == "arith.index_cast":
            return self.eval(op.operand(0), memo)
        if name == "arith.select" and op.num_operands == 3:
            return self.eval(op.operand(1), memo).join(self.eval(op.operand(2), memo))
        if name in ("tensor.dim", "memref.dim"):
            dim = op.attributes.get("dim")
            if isinstance(dim, IntegerAttr):
                ext = self.extent(op.operand(0))
                if 0 <= dim.value < len(ext):
                    return ext[dim.value]
        return Interval.top()

    def eval_exact(self, value: Value) -> Optional[int]:
        """The concrete integer of ``value``, or ``None`` if not a point."""
        iv = self.eval(value)
        if iv.is_point and isinstance(iv.lo, int):
            return iv.lo
        return None

    # ---- extents ---------------------------------------------------------

    def extent(self, value: Value) -> Box:
        """Per-dimension extent intervals of a tensor/memref value."""
        bound = self.extent_env.get(id(value))
        if bound is not None:
            return bound
        t = value.type
        if not isinstance(t, (TensorType, MemRefType)):
            raise TypeError(f"extent() of non-shaped value {value!r}")
        if all(d != -1 for d in t.shape):
            return tuple(Interval.point(d) for d in t.shape)
        return self._dynamic_extent(value, t.shape)

    def _dynamic_extent(self, value: Value, shape: Tuple[int, ...]) -> Box:
        if isinstance(value, OpResult):
            op = value.op
            name = op.name
            forward = _EXTENT_FORWARD.get(name)
            if forward is not None:
                return self.extent(op.operand(forward))
            if name in ("tensor.empty", "memref.alloc"):
                dyn = iter(op.operands)
                return tuple(
                    Interval.point(d) if d != -1 else self.eval(next(dyn))
                    for d in shape
                )
            if name in ("tensor.extract_slice", "memref.subview"):
                rank = (op.num_operands - 1) // 2
                sizes = op.operands[1 + rank :]
                return tuple(
                    Interval.point(d) if d != -1 else self.eval(sizes[i])
                    for i, d in enumerate(shape)
                )
            if name == "scf.for":
                return self.extent(op.operand(3 + value.index))
            if name == "cfd.tiled_loop":
                return self.extent(op.outs[value.index])
            if name == "linalg.generic":
                return self.extent(op.operand(op.attributes["num_ins"].value))
        # Unknown producer / unbound block argument: static dims only.
        return tuple(
            Interval.point(d) if d != -1 else Interval.top() for d in shape
        )

    # ---- walking ---------------------------------------------------------

    def run(self, fn: Operation) -> None:
        """Evaluate one ``func.func`` body."""
        self.walk_block(fn.regions[0].entry_block)

    def before_op(self, op: Operation) -> None:
        for client in self.clients:
            client.on_op(op, self)

    def _walk_loop_body(self, op: Operation) -> None:
        self.loop_stack.append(op)
        try:
            self.walk_block(op.regions[0].entry_block)
        finally:
            self.loop_stack.pop()

    def visit_scf_for(self, op: Operation) -> None:
        self.before_op(op)
        lb, ub, step = (self.eval(op.operand(i)) for i in range(3))
        body = op.regions[0].entry_block
        for j, init in enumerate(op.operands[3:]):
            if isinstance(init.type, (TensorType, MemRefType)):
                self.extent_env[id(body.arguments[1 + j])] = self.extent(init)
        exact = (
            lb.is_point
            and ub.is_point
            and step.is_point
            and isinstance(step.lo, int)
            and step.lo > 0
        )
        if exact:
            trip = len(range(lb.lo, ub.lo, step.lo))
            if trip == 0:
                return  # the body never executes
            iv = Interval(lb.lo, lb.lo + (trip - 1) * step.lo)
            self.index_env[id(body.arguments[0])] = iv
            self._walk_loop_body(op)
            return
        hi = ub.hi - 1
        iv = Interval(lb.lo, max(hi, lb.lo))
        self.index_env[id(body.arguments[0])] = iv
        self.approx_depth += 1
        try:
            self._walk_loop_body(op)
        finally:
            self.approx_depth -= 1

    def visit_scf_parallel(self, op: Operation) -> None:
        self.before_op(op)
        rank = op.num_operands // 3
        body = op.regions[0].entry_block
        approx = False
        for d in range(rank):
            lb = self.eval(op.operand(d))
            ub = self.eval(op.operand(rank + d))
            hi = ub.hi - 1
            if not (lb.is_point and ub.is_point):
                approx = True
            self.index_env[id(body.arguments[d])] = Interval(
                lb.lo, max(hi, lb.lo)
            )
        self.approx_depth += 1 if approx else 0
        try:
            self._walk_loop_body(op)
        finally:
            self.approx_depth -= 1 if approx else 0

    def visit_scf_if(self, op: Operation) -> None:
        self.before_op(op)
        for region in op.regions:
            for block in region.blocks:
                self.walk_block(block)

    def visit_cfd_tiled_loop(self, op: Operation) -> None:
        self.before_op(op)
        body = op.regions[0].entry_block
        rank = op.rank
        for arg, val in zip(op.in_args, op.ins):
            if isinstance(val.type, (TensorType, MemRefType)):
                self.extent_env[id(arg)] = self.extent(val)
        for arg, val in zip(op.out_args, op.outs):
            if isinstance(val.type, (TensorType, MemRefType)):
                self.extent_env[id(arg)] = self.extent(val)
        lbs = [self.eval_exact(v) for v in op.lbs]
        ubs = [self.eval_exact(v) for v in op.ubs]
        steps = [self.eval_exact(v) for v in op.steps]
        ivs = op.induction_vars
        if (
            None not in lbs
            and None not in ubs
            and None not in steps
            and all(s > 0 for s in steps)
        ):
            per_dim = [
                range(lb, ub, st) for lb, ub, st in zip(lbs, ubs, steps)
            ]
            total = 1
            for r in per_dim:
                total *= len(r)
            if total == 0:
                return
            if total <= self.enumeration_limit:
                for coords in itertools.product(*per_dim):
                    for iv, c in zip(ivs, coords):
                        self.index_env[id(iv)] = Interval.point(c)
                    self._walk_loop_body(op)
                return
            # Statically known but too large to enumerate: one hull visit.
            for iv, lb, ub, st in zip(ivs, lbs, ubs, steps):
                last = lb + (len(range(lb, ub, st)) - 1) * st
                self.index_env[id(iv)] = Interval(lb, last)
            self.approx_depth += 1
            try:
                self._walk_loop_body(op)
            finally:
                self.approx_depth -= 1
            return
        # Unresolvable bounds: hull-bind what we can, flag approximation.
        for d, iv in enumerate(ivs):
            lb = self.eval(op.lbs[d])
            ub = self.eval(op.ubs[d])
            hi = ub.hi - 1
            self.index_env[id(iv)] = Interval(lb.lo, max(hi, lb.lo))
        self.approx_depth += 1
        try:
            self._walk_loop_body(op)
        finally:
            self.approx_depth -= 1


def run_clients(
    module: Operation,
    make_clients,
    enumeration_limit: int = ENUMERATION_LIMIT,
) -> List[AbsintClient]:
    """Run ``make_clients()`` over every function of ``module``.

    ``make_clients`` is called once per ``func.func`` (clients keep
    per-function state); the instantiated clients are returned so the
    caller can collect their diagnostics and reports.
    """
    all_clients: List[AbsintClient] = []
    for op in module.regions[0].entry_block.operations:
        if op.name != "func.func":
            continue
        clients = make_clients()
        all_clients.extend(clients)
        AbstractEvaluator(clients, enumeration_limit).run(op)
    return all_clients
