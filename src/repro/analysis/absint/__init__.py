"""Abstract interpretation for memory safety (IP011–IP015).

A forward dataflow engine over an interval domain for index arithmetic
(:mod:`~repro.analysis.absint.engine`,
:mod:`~repro.analysis.absint.interval`) with three client analyses:

* in-bounds proofs for every load/store/slice/vector transfer
  (:mod:`~repro.analysis.absint.bounds`, IP011/IP012);
* uninitialized-read detection over bufferized IR
  (:mod:`~repro.analysis.absint.memory`, IP013);
* replay of bufferization's in-place reuse decisions against interval
  footprints (IP014/IP015).

Since PR 7 the first-choice decision procedure is the symbolic affine
prover (:mod:`repro.analysis.affine.prover`), which walks each function
once and decides affine accesses at a cost independent of the mesh. The
enumerating interval engine remains the fallback for non-affine
accesses and the only engine for the memref-level clients (IP013–IP015
need bufferized footprints). :data:`~repro.analysis.affine.VERIFY_ENGINE_ENV`
or the ``engine`` argument selects the mode; an explicit
``enumeration_limit`` forces the legacy enumerated path (callers that
cap enumeration are asking for exactly its degradation behavior).

:func:`run_memory_safety` is the entry point :func:`analyze_module`
wires into the :class:`~repro.analysis.analyzer.AnalysisGate`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.absint.bounds import InBoundsChecker
from repro.analysis.absint.engine import (
    ENUMERATION_LIMIT,
    AbsintClient,
    AbstractEvaluator,
    run_clients,
)
from repro.analysis.absint.interval import (
    Box,
    Interval,
    box_contains,
    box_join,
    box_str,
)
from repro.analysis.absint.memory import ClobberChecker, UninitReadChecker
from repro.analysis.affine import resolve_verify_engine
from repro.analysis.diagnostics import Diagnostic
from repro.ir.attributes import IntegerAttr
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation


@dataclass
class MemorySafetyReport:
    """The result of one :func:`run_memory_safety` sweep."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: id(op) -> statically proven access hull (see ``InBoundsChecker``).
    proven: Dict[int, Box] = field(default_factory=dict)
    #: How many access ops each decision path settled: ``symbolic`` (the
    #: affine prover), ``enumerated`` (the interval walk), ``hull``
    #: (undecided by both — the IP010 notes).
    engine_stats: Dict[str, int] = field(default_factory=dict)
    #: The engine mode this sweep ran under.
    engine_mode: str = "auto"


def _const_of(value) -> Optional[int]:
    op = getattr(value, "op", None)
    if op is not None and op.name == "arith.constant":
        attr = op.attributes.get("value")
        if isinstance(attr, IntegerAttr):
            return attr.value
    return None


def _oversized_grids(module: Operation, limit: int) -> List[tuple]:
    """``(op, grid_points)`` for each tiled loop whose statically known
    grid exceeds ``limit`` — the loops the interval engine degrades to a
    single hull visit on."""
    out = []
    for op in module.walk():
        if op.name != "cfd.tiled_loop":
            continue
        total = 1
        for lb_v, ub_v, st_v in zip(op.lbs, op.ubs, op.steps):
            lb, ub, st = _const_of(lb_v), _const_of(ub_v), _const_of(st_v)
            if lb is None or ub is None or st is None or st <= 0:
                total = None
                break
            total *= len(range(lb, ub, st))
        if total is not None and total > limit:
            out.append((op, total))
    return out


def _has_memref_ops(module: Operation) -> bool:
    return any(op.name.startswith("memref.") for op in module.walk())


def run_memory_safety(
    module: Operation,
    enumeration_limit: Optional[int] = None,
    engine: Optional[str] = None,
) -> MemorySafetyReport:
    """Run the memory-safety gate over every function of ``module``.

    ``engine`` (or ``REPRO_VERIFY``) picks the decision procedure:
    ``auto`` runs the symbolic affine prover first and falls back to the
    enumerating interval engine only for what it could not decide;
    ``symbolic`` does the same but reports every fallback explicitly
    (IP017); ``enumerated`` is the legacy path. Passing an explicit
    ``enumeration_limit`` also forces the enumerated path.
    """
    t0 = time.perf_counter()
    forced_enumerated = enumeration_limit is not None
    limit = ENUMERATION_LIMIT if enumeration_limit is None else enumeration_limit
    mode = "enumerated" if forced_enumerated else resolve_verify_engine(engine)

    report = MemorySafetyReport()
    prover_report = None
    predecided: set = set()
    if mode != "enumerated":
        from repro.analysis.affine.prover import prove_module

        prover_report = prove_module(module)
        predecided = prover_report.decided_ids - set(prover_report.undecided)

    walk_needed = (
        mode == "enumerated"
        or (prover_report is not None and bool(prover_report.undecided))
        or _has_memref_ops(module)
    )

    checkers: List[InBoundsChecker] = []
    if walk_needed:
        clients = run_clients(
            module,
            lambda: [
                InBoundsChecker(predecided=predecided),
                UninitReadChecker(),
                ClobberChecker(),
            ],
            enumeration_limit=limit,
        )
        for client in clients:
            report.diagnostics.extend(client.diagnostics())
            if isinstance(client, InBoundsChecker):
                checkers.append(client)
                report.proven.update(client.proven)

    walk_decided = set(report.proven)
    walk_decided.update(
        id_for
        for checker in checkers
        for (id_for, code) in checker.emitted
        if code in ("IP011", "IP012")
    )

    if prover_report is not None:
        emitted = {(d.code, d.op_path) for d in report.diagnostics}
        for (op_id, code), diag in prover_report.violations.items():
            if (diag.code, diag.op_path) not in emitted:
                report.diagnostics.append(diag)
        for op_id, box in prover_report.proven.items():
            if op_id not in report.proven and (
                op_id not in prover_report.undecided
            ):
                report.proven[op_id] = box
        if mode == "symbolic":
            # Forced symbolic: every fallback site is reported, not
            # silently re-enumerated.
            for op_id, reason in prover_report.undecided.items():
                op = prover_report.undecided_ops[op_id]
                report.diagnostics.append(
                    Diagnostic(
                        code="IP017",
                        message=(
                            f"symbolic engine could not decide {op.name}: "
                            f"{reason}; fell back to enumeration"
                        ),
                        severity="note",
                        op_path=op_path(op),
                        excerpt=op_excerpt(op),
                    )
                )

    # ---- attribution -----------------------------------------------------
    symbolic_ids = predecided
    enumerated_ids = walk_decided - symbolic_ids
    hull_ids = {
        key
        for checker in checkers
        for (key, code) in checker.emitted
        if code == "IP010" and key not in symbolic_ids
    }
    report.engine_mode = mode
    report.engine_stats = {
        "symbolic": len(symbolic_ids),
        "enumerated": len(enumerated_ids),
        "hull": len(hull_ids),
    }
    from repro.analysis.affine import ENGINE_STATS

    for name, n in report.engine_stats.items():
        if n:
            ENGINE_STATS.record("absint", name, n)
    ENGINE_STATS.record_time("absint", time.perf_counter() - t0)

    # ---- the precision-cliff diagnostic (IP017) --------------------------
    for op, total in _oversized_grids(module, limit):
        detail = (
            f"{len(symbolic_ids)} access(es) decided symbolically, "
            f"{len(enumerated_ids)} by enumeration, "
            f"{len(hull_ids)} by hull bounds only"
        )
        report.diagnostics.append(
            Diagnostic(
                code="IP017",
                message=(
                    f"tile grid of {total} points exceeds the enumeration "
                    f"limit ({limit}): per-instance interval proofs are "
                    f"unavailable for {op.name}; {detail}"
                ),
                severity="note",
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
        )
    return report


__all__ = [
    "AbsintClient",
    "AbstractEvaluator",
    "Box",
    "ClobberChecker",
    "ENUMERATION_LIMIT",
    "InBoundsChecker",
    "Interval",
    "MemorySafetyReport",
    "UninitReadChecker",
    "box_contains",
    "box_join",
    "box_str",
    "run_memory_safety",
]
