"""Abstract interpretation for memory safety (IP011–IP015).

A forward dataflow engine over an interval domain for index arithmetic
(:mod:`~repro.analysis.absint.engine`,
:mod:`~repro.analysis.absint.interval`) with three client analyses:

* in-bounds proofs for every load/store/slice/vector transfer
  (:mod:`~repro.analysis.absint.bounds`, IP011/IP012);
* uninitialized-read detection over bufferized IR
  (:mod:`~repro.analysis.absint.memory`, IP013);
* replay of bufferization's in-place reuse decisions against interval
  footprints (IP014/IP015).

:func:`run_memory_safety` is the entry point :func:`analyze_module`
wires into the :class:`~repro.analysis.analyzer.AnalysisGate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.absint.bounds import InBoundsChecker
from repro.analysis.absint.engine import (
    ENUMERATION_LIMIT,
    AbsintClient,
    AbstractEvaluator,
    run_clients,
)
from repro.analysis.absint.interval import (
    Box,
    Interval,
    box_contains,
    box_join,
    box_str,
)
from repro.analysis.absint.memory import ClobberChecker, UninitReadChecker
from repro.analysis.diagnostics import Diagnostic
from repro.ir.operation import Operation


@dataclass
class MemorySafetyReport:
    """The result of one :func:`run_memory_safety` sweep."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: id(op) -> statically proven access hull (see ``InBoundsChecker``).
    proven: Dict[int, Box] = field(default_factory=dict)


def run_memory_safety(
    module: Operation, enumeration_limit: int = ENUMERATION_LIMIT
) -> MemorySafetyReport:
    """Run all three absint clients over every function of ``module``."""
    clients = run_clients(
        module,
        lambda: [InBoundsChecker(), UninitReadChecker(), ClobberChecker()],
        enumeration_limit=enumeration_limit,
    )
    report = MemorySafetyReport()
    for client in clients:
        report.diagnostics.extend(client.diagnostics())
        if isinstance(client, InBoundsChecker):
            report.proven.update(client.proven)
    return report


__all__ = [
    "AbsintClient",
    "AbstractEvaluator",
    "Box",
    "ClobberChecker",
    "ENUMERATION_LIMIT",
    "InBoundsChecker",
    "Interval",
    "MemorySafetyReport",
    "UninitReadChecker",
    "box_contains",
    "box_join",
    "box_str",
    "run_memory_safety",
]
