"""Uninitialized-read (IP013) and bufferization-clobber (IP014/IP015)
detection over bufferized (memref-level) IR.

Both clients record the *memory events* of a function — reads and writes
with interval footprints, resolved through ``memref.subview`` aliasing
chains to their base allocation — in execution order, then analyze the
event timeline when diagnostics are collected:

* :class:`UninitReadChecker` flags reads from locally allocated buffers
  that no initializer or producer has written: either no write can
  precede the read at all, or the read footprint provably reaches cells
  outside the hull of everything written before it (sound because the
  hull over-approximates the written set, so escaping the hull means
  definitely reading unwritten cells). A write "may precede" a read when
  it is earlier in program order or shares an enclosing loop (a previous
  iteration may have executed it).

* :class:`ClobberChecker` replays the in-place reuse decisions of
  :class:`~repro.core.bufferization.BufferizePass` against the
  footprints. The pass stamps every emitted access with the *serial* of
  the tensor-level value it materializes (``absint_reads`` /
  ``absint_writes`` / ``absint_parent``) and every lowered loop with its
  carry chain (``absint_carries``), which reconstructs the derivation
  graph of tensor values. A read of value ``v`` from a cell whose last
  write materialized ``w`` is correct iff ``v`` is ``w`` or derives from
  it (in-place updates only changed cells ``v`` redefines); if instead
  ``w`` strictly derives from ``v``, the buffer was reused while ``v``
  was still live — an IP014 clobber. Unrelated lineages on the same
  buffer cannot be verified and warn as IP015.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.absint.engine import AbsintClient, AbstractEvaluator
from repro.analysis.absint.interval import (
    Box,
    Interval,
    box_contains,
    box_is_bounded,
    box_join,
    box_overlaps,
    box_str,
)
from repro.analysis.diagnostics import Diagnostic
from repro.ir.attributes import DenseIntElementsAttr, IntegerAttr
from repro.ir.operation import Operation
from repro.ir.values import Value


@dataclass
class MemEvent:
    """One read or write of a base buffer, in base coordinates."""

    kind: str  # "read" | "write"
    base: int  # id() of the base buffer value
    box: Box
    op: Operation
    scopes: Tuple[int, ...]  # ids of the enclosing loop ops
    serial: Optional[int] = None  # stamped value serial, if any
    parent: Optional[int] = None  # stamped parent serial (writes only)


class _AliasTracker:
    """Resolves ``memref.subview`` chains to (base value, offset box)."""

    def __init__(self) -> None:
        #: id(view value) -> (base value, per-dim offset intervals)
        self._views: Dict[int, Tuple[Value, Box]] = {}

    def register_subview(self, op: Operation, engine: AbstractEvaluator) -> None:
        rank = (op.num_operands - 1) // 2
        offs = tuple(engine.eval(v) for v in op.operands[1 : 1 + rank])
        base, outer = self.resolve(op.operand(0))
        if outer is not None:
            offs = tuple(a + b for a, b in zip(outer, offs))
        self._views[id(op.result())] = (base, offs)

    def resolve(self, value: Value) -> Tuple[Value, Optional[Box]]:
        entry = self._views.get(id(value))
        if entry is None:
            return value, None
        return entry

    def translate(
        self, value: Value, box: Box
    ) -> Tuple[Value, Box]:
        """A footprint on ``value`` expressed on its base buffer."""
        base, offs = self.resolve(value)
        if offs is None:
            return value, box
        return base, tuple(b + o for b, o in zip(box, offs))


def _footprints(
    op: Operation, engine: AbstractEvaluator
) -> List[Tuple[str, Value, Box]]:
    """The (kind, accessed value, footprint) list of one memref-level op."""
    name = op.name
    if name == "memref.load":
        return [("read", op.operand(0),
                 tuple(engine.eval(v) for v in op.operands[1:]))]
    if name == "memref.store":
        return [("write", op.operand(1),
                 tuple(engine.eval(v) for v in op.operands[2:]))]
    if name == "memref.copy":
        out: List[Tuple[str, Value, Box]] = []
        for kind, val in (("read", op.operand(0)), ("write", op.operand(1))):
            ext = engine.extent(val)
            out.append((kind, val, tuple(Interval(0, max(0, e.hi - 1)) for e in ext)))
        return out
    if name == "vector.transfer_read":
        box = [engine.eval(v) for v in op.operands[1:]]
        vf = op.result().type.shape[0]
        box[-1] = Interval(box[-1].lo, box[-1].hi + vf - 1)
        return [("read", op.operand(0), tuple(box))]
    if name == "vector.transfer_write" and op.num_results == 0:
        box = [engine.eval(v) for v in op.operands[2:]]
        vf = op.operand(0).type.shape[0]
        box[-1] = Interval(box[-1].lo, box[-1].hi + vf - 1)
        return [("write", op.operand(1), tuple(box))]
    return []


class _EventCollector(AbsintClient):
    """Shared base: accumulates alias-resolved memory events."""

    def __init__(self) -> None:
        self._aliases = _AliasTracker()
        self.events: List[MemEvent] = []
        #: id(alloc result) -> (alloc op, extent box at allocation time)
        self.local_allocs: Dict[int, Tuple[Operation, Box]] = {}
        self._diags: List[Diagnostic] = []
        self._seen: Set[Tuple[int, str]] = set()
        self._analyzed = False

    def on_op(self, op: Operation, engine: AbstractEvaluator) -> None:
        name = op.name
        if name == "memref.subview":
            self._aliases.register_subview(op, engine)
            return
        if name == "memref.alloc":
            ext = engine.extent(op.result())
            self.local_allocs[id(op.result())] = (op, ext)
            return
        scopes = tuple(id(l) for l in engine.loop_stack)
        for kind, value, box in _footprints(op, engine):
            base, tbox = self._aliases.translate(value, box)
            self.events.append(MemEvent(
                kind=kind, base=id(base), box=tbox, op=op, scopes=scopes,
                serial=_stamp(op, "absint_reads" if kind == "read" else "absint_writes"),
                parent=_stamp(op, "absint_parent") if kind == "write" else None,
            ))
        self._extra_op(op, engine)

    def _extra_op(self, op: Operation, engine: AbstractEvaluator) -> None:
        pass

    def diagnostics(self) -> List[Diagnostic]:
        if not self._analyzed:
            self._analyzed = True
            self._analyze()
        return list(self._diags)

    def _analyze(self) -> None:
        raise NotImplementedError

    def _emit(self, op: Operation, code: str, severity: str, message: str) -> None:
        from repro.ir.location import op_excerpt, op_path

        key = (id(op), code)
        if key in self._seen:
            return
        self._seen.add(key)
        self._diags.append(Diagnostic(
            code=code, message=message, severity=severity,
            op_path=op_path(op), excerpt=op_excerpt(op),
        ))


def _stamp(op: Operation, key: str) -> Optional[int]:
    attr = op.attributes.get(key)
    return attr.value if isinstance(attr, IntegerAttr) else None


def _may_precede(write: MemEvent, w_index: int, read_index: int,
                 read: MemEvent) -> bool:
    if w_index < read_index:
        return True
    return bool(set(write.scopes) & set(read.scopes))


class UninitReadChecker(_EventCollector):
    """IP013: reads of locally allocated cells nothing has written."""

    def _analyze(self) -> None:
        for i, ev in enumerate(self.events):
            if ev.kind != "read" or ev.base not in self.local_allocs:
                continue
            _, ext = self.local_allocs[ev.base]
            full_box = tuple(Interval(0, max(0, e.lo - 1)) for e in ext)
            preceding = [
                w for j, w in enumerate(self.events)
                if w.kind == "write" and w.base == ev.base
                and _may_precede(w, j, i, ev)
            ]
            if not preceding:
                self._emit(
                    ev.op, "IP013", "error",
                    f"read of {box_str(ev.box)} from a buffer of extent "
                    f"{box_str(ext)} that no write can precede",
                )
                continue
            if any(
                box_is_bounded(w.box) and box_contains(w.box, full_box)
                for w in preceding
            ):
                continue  # fully initialized (a whole-buffer copy/fill)
            hull = preceding[0].box
            for w in preceding[1:]:
                hull = box_join(hull, w.box)
            if not box_is_bounded(ev.box) or not box_is_bounded(hull):
                continue  # unresolvable; the bounds client already noted it
            if not box_contains(hull, ev.box):
                self._emit(
                    ev.op, "IP013", "error",
                    f"read of {box_str(ev.box)} reaches outside the written "
                    f"region {box_str(hull)} of a local buffer that was "
                    "never fully initialized",
                )


class ClobberChecker(_EventCollector):
    """IP014/IP015: in-place buffer reuse vs. still-live tensor values."""

    def __init__(self) -> None:
        super().__init__()
        #: derivation edges: serial u -> serials derived in place from u.
        self._edges: Dict[int, Set[int]] = {}
        self._reach_memo: Dict[Tuple[int, int], bool] = {}

    def _extra_op(self, op: Operation, engine: AbstractEvaluator) -> None:
        carries = op.attributes.get("absint_carries")
        if isinstance(carries, DenseIntElementsAttr) and len(carries.shape) == 2:
            for row in carries.to_nested_lists():
                init, arg, yielded, result = row
                self._edge(init, arg)
                self._edge(yielded, arg)
                self._edge(yielded, result)
                # A loop result is the init after zero or more in-place
                # iterations, so it derives from the init even when the
                # body never runs (zero-trip loops contribute no stamped
                # writes to bridge arg -> yielded).
                self._edge(init, result)

    def _edge(self, src: int, dst: int) -> None:
        self._edges.setdefault(src, set()).add(dst)

    def _derives(self, src: int, dst: int) -> bool:
        """Is ``dst`` (transitively) derived in place from ``src``?"""
        if src == dst:
            return True
        key = (src, dst)
        cached = self._reach_memo.get(key)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = [src]
        found = False
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node == dst:
                found = True
                break
            stack.extend(self._edges.get(node, ()))
        self._reach_memo[key] = found
        return found

    def _analyze(self) -> None:
        for ev in self.events:  # writes contribute derivation edges
            if ev.kind == "write" and ev.serial is not None and ev.parent is not None:
                self._edge(ev.parent, ev.serial)
        for i, ev in enumerate(self.events):
            if ev.kind != "read" or ev.serial is None:
                continue
            # Overlapping writes that may precede the read, latest first,
            # up to (and including) the first that fully covers it.
            for j in range(len(self.events) - 1, -1, -1):
                w = self.events[j]
                if (
                    w.kind != "write"
                    or w.base != ev.base
                    or w.serial is None
                    or not _may_precede(w, j, i, ev)
                    or not box_overlaps(w.box, ev.box)
                ):
                    continue
                if not self._check_pair(ev, w):
                    break  # a clobber/warning was emitted
                if box_is_bounded(w.box) and box_contains(w.box, ev.box):
                    break  # fully covered: earlier writes are invisible

    def _check_pair(self, read: MemEvent, write: MemEvent) -> bool:
        v, w = read.serial, write.serial
        if self._derives(w, v):
            return True  # reading a descendant of the cell contents: exact
        if self._derives(v, w):
            self._emit(
                read.op, "IP014", "error",
                f"in-place reuse clobbers a live value: cells "
                f"{box_str(read.box)} were overwritten by a later in-place "
                "update of the same buffer before this read",
            )
            return False
        self._emit(
            read.op, "IP015", "warning",
            "unverifiable in-place reuse: this read overlaps a write of an "
            "unrelated value lineage on the same buffer "
            f"(cells {box_str(read.box)})",
        )
        return False
