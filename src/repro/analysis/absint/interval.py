"""The interval abstract domain for index arithmetic.

An :class:`Interval` is an inclusive integer range ``[lo, hi]`` whose
endpoints may be ``-inf``/``+inf`` (``float`` infinities; every finite
endpoint is an ``int``). The engine (:mod:`repro.analysis.absint.engine`)
interprets every ``arith`` index op over this domain; the client analyses
then phrase their questions as containment queries, e.g. "is the access
range inside ``[0, extent)``".

Precision notes baked into the operations:

* point intervals (``lo == hi``) propagate *exactly* through all
  arithmetic, which is what makes the engine's concrete enumeration of
  tile coordinates lossless;
* ``min``/``max`` are exact on intervals (the clamp idiom of the tiling
  window arithmetic), while division is widened to ``TOP`` except for
  exact positive constant divisors.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

Endpoint = Union[int, float]

NEG_INF: float = float("-inf")
POS_INF: float = float("inf")


class Interval:
    """An inclusive integer interval ``[lo, hi]`` (possibly unbounded)."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Endpoint, hi: Endpoint) -> None:
        if lo > hi:
            raise ValueError(f"empty interval [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    # ---- constructors ----------------------------------------------------

    @staticmethod
    def point(value: int) -> "Interval":
        return Interval(int(value), int(value))

    @staticmethod
    def top() -> "Interval":
        return Interval(NEG_INF, POS_INF)

    # ---- predicates ------------------------------------------------------

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return self.lo != NEG_INF and self.hi != POS_INF

    def contains(self, other: "Interval") -> bool:
        """Is every value of ``other`` inside ``self``?"""
        return self.lo <= other.lo and other.hi <= self.hi

    def disjoint_from(self, other: "Interval") -> bool:
        """Do ``self`` and ``other`` share no value?"""
        return self.hi < other.lo or other.hi < self.lo

    # ---- arithmetic ------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        corners = [
            _mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(corners), max(corners))

    def floordiv(self, other: "Interval") -> "Interval":
        """Exact only for a positive point divisor; otherwise ``TOP``."""
        if other.is_point and isinstance(other.lo, int) and other.lo > 0:
            d = other.lo
            lo = NEG_INF if self.lo == NEG_INF else self.lo // d
            hi = POS_INF if self.hi == POS_INF else self.hi // d
            return Interval(lo, hi)
        return Interval.top()

    def remainder(self, other: "Interval") -> "Interval":
        if other.is_point and isinstance(other.lo, int) and other.lo > 0:
            if self.is_point and isinstance(self.lo, int):
                return Interval.point(self.lo % other.lo)
            return Interval(0, other.lo - 1)
        return Interval.top()

    def min_(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    # ---- lattice ---------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        """The convex hull (least upper bound)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    # ---- misc ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def _mul(a: Endpoint, b: Endpoint) -> Endpoint:
    if a == 0 or b == 0:  # 0 * inf is 0 for interval corners
        return 0
    return a * b


#: A per-dimension box of intervals (an access footprint).
Box = Tuple[Interval, ...]


def box_join(a: Box, b: Box) -> Box:
    if len(a) != len(b):
        raise ValueError(f"rank mismatch joining boxes {a} and {b}")
    return tuple(x.join(y) for x, y in zip(a, b))


def box_contains(outer: Box, inner: Box) -> bool:
    return len(outer) == len(inner) and all(
        o.contains(i) for o, i in zip(outer, inner)
    )


def box_disjoint(a: Box, b: Box) -> bool:
    """Definitely no common cell (disjoint along some dimension)."""
    return any(x.disjoint_from(y) for x, y in zip(a, b))


def box_overlaps(a: Box, b: Box) -> bool:
    """May share a cell (the negation of :func:`box_disjoint`)."""
    return not box_disjoint(a, b)


def box_is_bounded(box: Box) -> bool:
    return all(iv.is_bounded for iv in box)


def box_str(box: Sequence[Interval]) -> str:
    return "x".join(str(iv) for iv in box)


def hull_of_points(points: Sequence[Sequence[int]]) -> List[Interval]:
    """The bounding box of a non-empty set of concrete index tuples."""
    lo = [min(p[d] for p in points) for d in range(len(points[0]))]
    hi = [max(p[d] for p in points) for d in range(len(points[0]))]
    return [Interval(a, b) for a, b in zip(lo, hi)]
