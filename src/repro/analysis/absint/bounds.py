"""In-bounds proofs (IP011/IP012) and the proven-range record.

For every element access (``tensor.extract``/``insert``,
``memref.load``/``store``, ``vector.transfer_read``/``write``), slice
window (``tensor.extract_slice``/``insert_slice``, ``memref.subview``)
and structured op (bounded ``cfd.stencilOp``, ``linalg.generic``) this
client evaluates the access footprint in the engine's current context
and compares it against the accessed value's extents:

* footprint provably inside ``[0, extent)`` → recorded in
  :attr:`InBoundsChecker.proven` (the hull over all visited contexts, the
  side the checked interpreter's dynamic oracle is compared against);
* footprint bounded but escaping, in an exactly-modeled context → an
  ``IP011`` (element access) or ``IP012`` (slice window) error;
* anything unresolvable (unbounded interval, dynamic extent, or a loop
  the engine had to approximate) → an ``IP010`` note, never a silent
  pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.absint.engine import AbsintClient, AbstractEvaluator
from repro.analysis.absint.interval import (
    NEG_INF,
    Box,
    Interval,
    box_join,
    box_str,
)
from repro.analysis.diagnostics import Diagnostic
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation
from repro.ir.types import TensorType, MemRefType

#: verdicts of one footprint-vs-extent comparison
_OK, _UNKNOWN, _ESCAPES = range(3)


class InBoundsChecker(AbsintClient):
    """The IP011/IP012 client of the abstract evaluator."""

    def __init__(self, predecided: Optional[set] = None) -> None:
        self._diags: List[Diagnostic] = []
        self._seen: set = set()
        #: ops already decided by the symbolic affine prover: an
        #: unresolvable footprint of such an op is not an IP010 note
        #: (the symbolic engine carries the proof the hull walk lost).
        self._predecided = predecided or set()
        #: id(op) -> hull of every proven access footprint of that op, in
        #: the coordinates of the op's accessed operand.
        self.proven: Dict[int, Box] = {}

    def diagnostics(self) -> List[Diagnostic]:
        return list(self._diags)

    @property
    def emitted(self) -> set:
        """``(id(op), code)`` pairs this checker emitted diagnostics for."""
        return set(self._seen)

    # ---- dispatch --------------------------------------------------------

    def on_op(self, op: Operation, engine: AbstractEvaluator) -> None:
        name = op.name
        if name == "tensor.extract":
            self._check_point(op, engine, op.operand(0), op.operands[1:], "read")
        elif name == "memref.load":
            self._check_point(op, engine, op.operand(0), op.operands[1:], "read")
        elif name == "tensor.insert":
            self._check_point(op, engine, op.operand(1), op.operands[2:], "write")
        elif name == "memref.store":
            self._check_point(op, engine, op.operand(1), op.operands[2:], "write")
        elif name in ("tensor.extract_slice", "memref.subview"):
            rank = (op.num_operands - 1) // 2
            self._check_window(
                op, engine, op.operand(0),
                op.operands[1 : 1 + rank], op.operands[1 + rank :],
            )
        elif name == "tensor.insert_slice":
            rank = (op.num_operands - 2) // 2
            self._check_window(
                op, engine, op.operand(1),
                op.operands[2 : 2 + rank], op.operands[2 + rank :],
            )
        elif name == "vector.transfer_read":
            self._check_transfer(op, engine, op.operand(0), op.operands[1:],
                                 op.result().type.shape[0], "read")
        elif name == "vector.transfer_write":
            self._check_transfer(op, engine, op.operand(1), op.operands[2:],
                                 op.operand(0).type.shape[0], "write")
        elif name == "cfd.stencilOp":
            self._check_stencil(op, engine)
        elif name == "linalg.generic":
            self._check_generic(op, engine)

    # ---- the three footprint shapes --------------------------------------

    def _check_point(self, op, engine, buffer, index_values, what) -> None:
        box = tuple(engine.eval(v) for v in index_values)
        self._verdict(op, engine, buffer, box, "IP011",
                      f"{what} at index {box_str(box)}")

    def _check_window(self, op, engine, buffer, offs, sizes) -> None:
        offs_iv = [engine.eval(v) for v in offs]
        sizes_iv = [engine.eval(v) for v in sizes]
        box = tuple(
            Interval(o.lo, max(o.lo, o.hi + s.hi - 1))
            for o, s in zip(offs_iv, sizes_iv)
        )
        self._verdict(op, engine, buffer, box, "IP012",
                      f"slice window {box_str(box)}")

    def _check_transfer(self, op, engine, buffer, index_values, vf, what) -> None:
        box = [engine.eval(v) for v in index_values]
        box[-1] = Interval(box[-1].lo, box[-1].hi + vf - 1)
        self._verdict(op, engine, buffer, tuple(box), "IP011",
                      f"vector {what} of width {vf} at {box_str(box)}")

    # ---- structured ops --------------------------------------------------

    def _check_stencil(self, op, engine) -> None:
        if not op.has_bounds:
            return  # interior bounds are in range by construction
        pattern = op.pattern
        k = pattern.rank
        halo_lo = [max([0] + [-o[d] for o, _ in pattern.accesses]) for d in range(k)]
        halo_hi = [max([0] + [o[d] for o, _ in pattern.accesses]) for d in range(k)]
        los = [engine.eval(v) for v in op.bounds_lo]
        his = [engine.eval(v) for v in op.bounds_hi]
        if any(h.hi <= l.lo for l, h in zip(los, his)):
            return  # provably empty core: no cell is updated
        nv = Interval(0, op.nb_var - 1)
        write_box = (nv,) + tuple(
            Interval(l.lo, h.hi - 1) for l, h in zip(los, his)
        )
        read_box = (nv,) + tuple(
            Interval(l.lo - hl, h.hi - 1 + hh)
            for l, h, hl, hh in zip(los, his, halo_lo, halo_hi)
        )
        what = f"halo reads {box_str(read_box)}"
        self._verdict(op, engine, op.x, read_box, "IP011", what)
        self._verdict(op, engine, op.y_init, read_box, "IP011", what)
        self._verdict(op, engine, op.b, write_box, "IP011",
                      f"rhs reads {box_str(write_box)}")

    def _check_generic(self, op, engine) -> None:
        out_ext = engine.extent(op.out_init)
        offsets = op.offsets
        margins = op.margins
        rank = len(out_ext)
        los: List[int] = []
        his: List[Interval] = []
        for d in range(rank):
            lo = max([0] + [-o[d] for o in offsets] + [margins[d][0]])
            hi_margin = max([0] + [o[d] for o in offsets] + [margins[d][1]])
            los.append(lo)
            his.append(out_ext[d] - Interval.point(hi_margin))
        if any(h.hi <= lo for lo, h in zip(los, his)):
            return  # provably empty iteration domain
        for j, (value, off) in enumerate(zip(op.ins, offsets)):
            box = tuple(
                Interval(lo + off[d], his[d].hi - 1 + off[d])
                for d, lo in enumerate(los)
            )
            self._verdict(op, engine, value, box, "IP011",
                          f"input #{j} reads {box_str(box)}")

    # ---- verdicts --------------------------------------------------------

    def _verdict(
        self,
        op: Operation,
        engine: AbstractEvaluator,
        buffer,
        box: Box,
        code: str,
        what: str,
    ) -> None:
        if not isinstance(buffer.type, (TensorType, MemRefType)):
            return
        ext = engine.extent(buffer)
        if len(ext) != len(box):
            return  # malformed IR; the verifier owns this complaint
        status = _OK
        for idx, e in zip(box, ext):
            if not idx.is_bounded or e.lo == NEG_INF:
                status = max(status, _UNKNOWN)
            elif idx.lo < 0 or idx.hi > e.lo - 1:
                status = max(status, _ESCAPES)
        if status == _ESCAPES and engine.approx_depth:
            status = _UNKNOWN  # over-approximated context: not a proof
        if status == _OK:
            key = id(op)
            prior = self.proven.get(key)
            self.proven[key] = box if prior is None else box_join(prior, box)
            return
        extent_str = box_str(ext)
        if status == _ESCAPES:
            self._emit(op, code, "error",
                       f"{what} escapes the allocation of extent {extent_str}")
        elif id(op) not in self._predecided:
            self._emit(op, "IP010", "note",
                       f"in-bounds check skipped: {what} vs extent "
                       f"{extent_str} could not be resolved statically")

    def _emit(self, op: Operation, code: str, severity: str, message: str) -> None:
        key = (id(op), code)
        if key in self._seen:
            return
        self._seen.add(key)
        self._diags.append(
            Diagnostic(
                code=code,
                message=message,
                severity=severity,
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
        )
