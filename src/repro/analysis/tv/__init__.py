"""Per-pass translation validation: symbolic schedules and
dependence-preservation certificates (``TV001``–``TV007``).

The public surface is :class:`TranslationValidator` (wired behind
``CompileOptions(validate_passes=True)`` and the
``python -m repro.analysis --validate`` lint mode) plus the extraction
primitives for tests and tooling.
"""

from repro.analysis.tv.extract import (
    ExtractionUnsupported,
    InstanceExtractor,
    InstanceMap,
    SiteRef,
    capture_reference,
    find_site_roots,
)
from repro.analysis.tv.validator import (
    TranslationValidationError,
    TranslationValidator,
)

__all__ = [
    "ExtractionUnsupported",
    "InstanceExtractor",
    "InstanceMap",
    "SiteRef",
    "TranslationValidationError",
    "TranslationValidator",
    "capture_reference",
    "find_site_roots",
]
