"""Statement-instance and schedule extraction for translation validation.

For every stamped stencil *site* (a ``cfd.stencilOp`` tagged with a
``tv_id`` attribute at pipeline start, whose tag is propagated by the
transformation passes onto whatever op replaces it), this module rebuilds
the site's *instance map*: ``space cell -> timestamp``, where the
timestamp encodes the happens-before order the current IR executes the
per-cell updates in (see :mod:`repro.ir.schedule`).

Four forms are understood, matching everything the pipelines produce:

``cfd.stencilOp``
    The declarative form: one sequential component per space dimension,
    negated for backward sweeps.
``cfd.tiled_loop``
    The tile grid is enumerated from the (constant-evaluated) bounds.
    With a wavefront schedule attached, the CSR of the feeding
    ``cfd.get_parallel_blocks`` is *replayed* from its declared block
    stencil (Eq. 3) and each tile gets ``(group, parallel tile-id)``
    components; without one, per-dimension sequential components honor
    the ``reverse`` flag. The stamped inner op is located inside the
    body and recursed into with the tile window's origin accumulated, so
    two-level tiling nests naturally.
``scf.for`` nests (scalar, vectorized and bufferized lowerings)
    Loop trees are decoded once per enclosing tile environment; the
    write anchors (``tensor.insert`` / ``memref.store`` /
    ``vector.transfer_write``) have their index operands recovered as
    linear forms over the nest induction variables, then every concrete
    iteration is enumerated. A ``transfer_write`` expands into one
    *parallel* lane component per vector element.
``linalg.generic``
    The fully-parallel out-of-place form (Jacobi): every instance is
    concurrent with every other.

All constant evaluation goes through one
:class:`~repro.analysis.absint.engine.AbstractEvaluator` whose
``index_env`` is seeded with the enclosing tile's induction variables
(``Interval.point``), exactly the trick the memory-safety clients use to
enumerate concrete tile grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.absint.engine import AbstractEvaluator
from repro.analysis.absint.interval import Interval
from repro.core.scheduling import compute_parallel_blocks
from repro.core.stencil import StencilPattern
from repro.ir.attributes import IntegerAttr
from repro.ir.location import op_path
from repro.ir.operation import Operation
from repro.ir.schedule import PAR, SEQ, LinearForm, Timestamp, resolve_linear
from repro.ir.values import OpResult, Value

Cell = Tuple[int, ...]

#: Default cap on enumerated instances per site (heat-3D's 22^3 interior
#: is ~10.6k; anything past the cap degrades to a TV006 note).
INSTANCE_LIMIT = 60000

#: The attribute tagging an op as (the root of) a validated site.
TV_ID_ATTR = "tv_id"


class ExtractionUnsupported(Exception):
    """A site's current form cannot be validated (degrades to TV006)."""


@dataclass
class SiteRef:
    """The pre-pipeline reference of one stencil site."""

    tv_id: int
    path: str
    pattern: StencilPattern
    sweep: int
    nv: int
    #: Reference write box, per space dimension ``[lo, hi)``; ``None``
    #: when the frontend bounds could not be resolved (``degraded``).
    box: Optional[Tuple[Tuple[int, int], ...]]
    degraded: str = ""

    @property
    def rank(self) -> int:
        return self.pattern.rank

    @property
    def flow_offsets(self) -> List[Tuple[int, ...]]:
        """Offsets ``o`` with a flow dependence *from* ``c + o`` *to* ``c``."""
        return list(self.pattern.dependent_l_offsets)

    @property
    def anti_offsets(self) -> List[Tuple[int, ...]]:
        """Offsets ``o`` where ``c`` reads the *initial* value of
        ``c + o`` (write must come after the read)."""
        return list(self.pattern.initial_l_offsets)

    def cells(self):
        assert self.box is not None
        return product(*(range(lo, hi) for lo, hi in self.box))


@dataclass
class InstanceMap:
    """The extracted schedule of one site in one IR snapshot."""

    form: str
    #: cell -> timestamp of its (first) ``v == 0`` write.
    ts: Dict[Cell, Timestamp] = field(default_factory=dict)
    #: (cell, v) -> number of writes observed.
    counts: Dict[Tuple[Cell, int], int] = field(default_factory=dict)
    #: writes landing outside the reference box (cell, v).
    outside: List[Tuple[Cell, int]] = field(default_factory=list)
    instances: int = 0


def capture_reference(module: Operation) -> List[SiteRef]:
    """Stamp every ``cfd.stencilOp`` with a ``tv_id`` and record its
    reference pattern, sweep and write box. Called once, before the
    first pass runs."""
    ev = AbstractEvaluator()
    sites: List[SiteRef] = []
    for op in module.walk():
        if op.name != "cfd.stencilOp":
            continue
        tv_id = len(sites)
        op.attributes[TV_ID_ATTR] = IntegerAttr(tv_id)
        pattern = op.pattern
        box: Optional[Tuple[Tuple[int, int], ...]] = None
        degraded = ""
        if op.has_bounds:
            lo = [ev.eval_exact(v) for v in op.bounds_lo]
            hi = [ev.eval_exact(v) for v in op.bounds_hi]
            if any(v is None for v in lo + hi):
                degraded = "frontend bounds are not static"
            else:
                box = tuple(zip(lo, hi))
        else:
            shape = op.y_init.type.shape
            if any(d == -1 for d in shape):
                degraded = "dynamic y shape"
            else:
                box = tuple(pattern.interior_bounds(shape[1:]))
        sites.append(
            SiteRef(tv_id, op_path(op), pattern, op.sweep, op.nb_var,
                    box, degraded)
        )
    return sites


def _stamp_of(op: Operation) -> Optional[int]:
    attr = op.attributes.get(TV_ID_ATTR)
    return attr.value if isinstance(attr, IntegerAttr) else None


def find_site_roots(module: Operation) -> List[Tuple[int, Operation]]:
    """Outermost stamped ops in program order. The scan descends into
    unstamped structure (e.g. ``scf.for`` time loops) but not *into* a
    stamped root — the stamped inner op of a tiled loop belongs to the
    root's own extraction."""
    roots: List[Tuple[int, Operation]] = []

    def scan(block) -> None:
        for op in block.operations:
            tv_id = _stamp_of(op)
            if tv_id is not None:
                roots.append((tv_id, op))
                continue
            for region in op.regions:
                for inner in region.blocks:
                    scan(inner)

    for region in module.regions:
        for block in region.blocks:
            scan(block)
    return roots


def _find_stamped_inner(block, tv_id: int) -> Optional[Operation]:
    for op in block.operations:
        if _stamp_of(op) == tv_id:
            return op
        for region in op.regions:
            for inner in region.blocks:
                found = _find_stamped_inner(inner, tv_id)
                if found is not None:
                    return found
    return None


def _y_window_slice(inner: Operation) -> Optional[Operation]:
    """The ``tensor.extract_slice`` carving the tile's y window, found by
    chasing the inner site op's destination operand."""
    if inner.name == "cfd.stencilOp":
        val = inner.y_init
    elif inner.name == "cfd.tiled_loop":
        val = inner.outs[0]
    elif inner.name == "scf.for" and inner.num_operands > 3:
        val = inner.operand(3)
    elif inner.name == "linalg.generic":
        val = inner.operand(inner.num_ins)
    else:
        return None
    while isinstance(val, OpResult):
        if val.op.name == "tensor.extract_slice":
            return val.op
        return None
    return None


class InstanceExtractor:
    """Builds :class:`InstanceMap` for one site root; one instance per
    validation call (the evaluator caches nothing across modules)."""

    def __init__(self, limit: int = INSTANCE_LIMIT) -> None:
        self.ev = AbstractEvaluator()
        self.limit = limit
        #: Optional per-tile callback ``(loop, inner, tile_index,
        #: origin)`` invoked while the tile's induction variables are
        #: still pinned in ``self.ev.index_env`` (the TV004 fused-halo
        #: check hooks in here).
        self.tile_hook: Optional[Callable] = None

    # ---- helpers ---------------------------------------------------------

    def _exact(self, value: Value, what: str) -> int:
        c = self.ev.eval_exact(value)
        if c is None:
            raise ExtractionUnsupported(f"{what} is not statically resolvable")
        return c

    def _record(
        self, out: InstanceMap, site: SiteRef, cell: Cell, v: int,
        ts: Timestamp,
    ) -> None:
        out.instances += 1
        if out.instances > self.limit:
            raise ExtractionUnsupported(
                f"more than {self.limit} instances"
            )
        assert site.box is not None
        if any(not (lo <= c < hi) for c, (lo, hi) in zip(cell, site.box)):
            out.outside.append((cell, v))
            return
        key = (cell, v)
        out.counts[key] = out.counts.get(key, 0) + 1
        if v == 0 and cell not in out.ts:
            out.ts[cell] = ts

    # ---- entry point -----------------------------------------------------

    def site_instances(self, root: Operation, site: SiteRef) -> InstanceMap:
        out = InstanceMap(form=root.name)
        self._emit(root, site, (0,) * site.rank, (), out)
        return out

    def _emit(
        self, op: Operation, site: SiteRef, origin: Cell,
        prefix: Timestamp, out: InstanceMap,
    ) -> None:
        if op.name == "cfd.stencilOp":
            self._emit_stencil(op, site, origin, prefix, out)
        elif op.name == "cfd.tiled_loop":
            self._emit_tiled(op, site, origin, prefix, out)
        elif op.name == "scf.for":
            self._emit_nest(op, site, origin, prefix, out)
        elif op.name == "linalg.generic":
            self._emit_pointwise(op, site, origin, prefix, out)
        else:
            raise ExtractionUnsupported(f"unsupported site form {op.name!r}")

    # ---- form A: the declarative stencil op ------------------------------

    def _emit_stencil(self, op, site, origin, prefix, out) -> None:
        if op.has_bounds:
            lo = [self._exact(v, "stencil bound") for v in op.bounds_lo]
            hi = [self._exact(v, "stencil bound") for v in op.bounds_hi]
        else:
            if site.box is None:
                raise ExtractionUnsupported(site.degraded)
            lo = [b[0] - o for b, o in zip(site.box, origin)]
            hi = [b[1] - o for b, o in zip(site.box, origin)]
        sweep = op.sweep
        for local in product(*(range(a, b) for a, b in zip(lo, hi))):
            cell = tuple(c + o for c, o in zip(local, origin))
            ts = prefix + tuple((SEQ, sweep * c) for c in local)
            for v in range(site.nv):
                self._record(out, site, cell, v, ts)

    # ---- form B: the tiled loop ------------------------------------------

    def _replay_groups(self, loop, grid: List[int]) -> Dict[int, int]:
        offsets_v, _ = loop.group_operands
        gp = offsets_v.op if isinstance(offsets_v, OpResult) else None
        if gp is None or gp.name != "cfd.get_parallel_blocks":
            raise ExtractionUnsupported(
                "wavefront groups not fed by cfd.get_parallel_blocks"
            )
        num_blocks = tuple(
            self._exact(v, "wavefront grid extent") for v in gp.operands
        )
        if list(num_blocks) != grid:
            raise ExtractionUnsupported(
                f"wavefront grid {list(num_blocks)} != tile grid {grid}"
            )
        offsets, indices = compute_parallel_blocks(
            num_blocks, gp.block_offsets
        )
        group_of: Dict[int, int] = {}
        for g in range(len(offsets) - 1):
            for pos in range(int(offsets[g]), int(offsets[g + 1])):
                group_of.setdefault(int(indices[pos]), g)
        total = 1
        for n in grid:
            total *= n
        if len(group_of) != total:
            raise ExtractionUnsupported("wavefront CSR does not cover the grid")
        return group_of

    def _emit_tiled(self, loop, site, origin, prefix, out) -> None:
        ranges = []
        for lb_v, ub_v, st_v in zip(loop.lbs, loop.ubs, loop.steps):
            lb = self._exact(lb_v, "tile bound")
            ub = self._exact(ub_v, "tile bound")
            st = self._exact(st_v, "tile step")
            if st <= 0:
                raise ExtractionUnsupported("non-positive tile step")
            ranges.append(list(range(lb, ub, st)))
        grid = [len(r) for r in ranges]
        group_of = (
            self._replay_groups(loop, grid) if loop.has_groups else None
        )
        inner = _find_stamped_inner(loop.body, site.tv_id)
        if inner is None:
            raise ExtractionUnsupported(
                "stamped inner op not found in tile body"
            )
        window = _y_window_slice(inner)
        if window is None:
            raise ExtractionUnsupported("tile y window slice not found")
        reverse = loop.reverse
        for tidx in product(*(range(n) for n in grid)):
            lin = 0
            for p, n in zip(tidx, grid):
                lin = lin * n + p
            if group_of is not None:
                tile_ts: Timestamp = ((SEQ, group_of[lin]), (PAR, lin))
            else:
                tile_ts = tuple(
                    (SEQ, -p if reverse else p) for p in tidx
                )
            for iv, r, p in zip(loop.induction_vars, ranges, tidx):
                self.ev.index_env[id(iv)] = Interval.point(r[p])
            sub = tuple(
                self._exact(off, "y window offset")
                for off in window.offsets[1:]
            )
            new_origin = tuple(a + b for a, b in zip(origin, sub))
            if self.tile_hook is not None:
                self.tile_hook(loop, inner, tidx, new_origin)
            self._emit(inner, site, new_origin, prefix + tile_ts, out)

    # ---- form C: lowered scf.for nests -----------------------------------

    def _emit_nest(self, root, site, origin, prefix, out) -> None:
        iv_ids: Dict[int, Value] = {}

        def decode_block(block) -> list:
            nodes = []
            for op_idx, op in enumerate(block.operations):
                if op.name == "scf.for":
                    iv = op.induction_var
                    iv_ids[id(iv)] = iv
                    lb = self._exact(op.lower, "loop bound")
                    ub = self._exact(op.upper, "loop bound")
                    st = self._exact(op.step, "loop step")
                    if st <= 0:
                        raise ExtractionUnsupported("non-positive loop step")
                    nodes.append(
                        ("loop", op_idx, iv, lb, ub, st,
                         decode_block(op.body))
                    )
                elif op.name in ("tensor.insert", "memref.store",
                                 "vector.transfer_write"):
                    forms = [
                        resolve_linear(v, iv_ids, self.ev.eval_exact)
                        for v in op.indices
                    ]
                    if any(f is None for f in forms):
                        raise ExtractionUnsupported(
                            f"{op.name} index is not linear in the nest"
                        )
                    if not forms[0].is_const:
                        raise ExtractionUnsupported(
                            f"{op.name} variable index is not constant"
                        )
                    lanes = 1
                    if op.name == "vector.transfer_write":
                        lanes = op.vector.type.shape[0]
                    nodes.append(
                        ("anchor", op_idx, forms[0].const, forms[1:], lanes)
                    )
            return nodes

        # The root loop itself is the first event of the nest.
        iv_ids[id(root.induction_var)] = root.induction_var
        top = [("loop", 0, root.induction_var,
                self._exact(root.lower, "loop bound"),
                self._exact(root.upper, "loop bound"),
                self._exact(root.step, "loop step"),
                decode_block(root.body))]
        env: Dict[int, int] = {}

        def run(nodes, key: Timestamp) -> None:
            for node in nodes:
                if node[0] == "loop":
                    _, op_idx, iv, lb, ub, st, children = node
                    for it, ivv in enumerate(range(lb, ub, st)):
                        env[id(iv)] = ivv
                        run(children, key + ((SEQ, op_idx), (SEQ, it)))
                else:
                    _, op_idx, v, space_forms, lanes = node
                    coords = [f.value_at(env) for f in space_forms]
                    base = key + ((SEQ, op_idx),)
                    if lanes == 1:
                        cell = tuple(
                            c + o for c, o in zip(coords, origin)
                        )
                        self._record(out, site, cell, v, base)
                    else:
                        for u in range(lanes):
                            shifted = list(coords)
                            shifted[-1] += u
                            cell = tuple(
                                c + o for c, o in zip(shifted, origin)
                            )
                            self._record(
                                out, site, cell, v, base + ((PAR, u),)
                            )

        run(top, prefix)

    # ---- form D: the fully-parallel pointwise generic --------------------

    def _emit_pointwise(self, op, site, origin, prefix, out) -> None:
        out_t = op.operand(op.num_ins).type
        shape = out_t.shape
        if any(d == -1 for d in shape):
            raise ExtractionUnsupported("dynamic generic output shape")
        bounds = op.iteration_bounds(shape)
        v_lo, v_hi = bounds[0]
        space = bounds[1:]
        lin = 0
        for local in product(*(range(a, b) for a, b in space)):
            cell = tuple(c + o for c, o in zip(local, origin))
            ts = prefix + ((PAR, lin),)
            lin += 1
            for v in range(v_lo, v_hi):
                self._record(out, site, cell, v, ts)
