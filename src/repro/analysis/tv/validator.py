"""The per-pass translation validator.

:class:`TranslationValidator` captures a *reference* of every stencil
site before the first pass runs (:func:`~repro.analysis.tv.extract.
capture_reference`), then after every pass re-extracts each site's
instance map and checks, against the reference dependences of the
stencil pattern:

``TV001`` / ``TV002``
    Every *flow* dependence (an L offset on the dependence side of the
    sweep: the write of ``c + o`` feeds the read at ``c``) is still
    scheduled source-before-target — not after (TV001) and not
    concurrent in a wavefront group or vector write (TV002).
``TV007``
    Every *anti* dependence (an initial-content read with
    ``allow_initial_reads``) still reads before the cell is overwritten.
``TV003``
    Write coverage: each ``(cell, variable)`` of the reference write box
    is written exactly once and nothing is written outside the box —
    this is also the output-dependence check (two writes of the same
    cell would have to be ordered; a single write needs no order).
``TV004``
    Inside tiled loops, every fused producer's computed window still
    covers the tile core the stencil consumes (recomputation halo not
    dropped).
``TV005``
    The stamped sites still exist, in the same relative program order.
``TV006``
    A degradation note whenever a site cannot be extracted (unsupported
    form, unresolved bounds, domain too large): validation never passes
    silently on IR it does not understand.

Violations carry a concrete witness — the two statement instances and
their timestamps — and name the offending pass; certified passes are
summarized in :attr:`TranslationValidator.certificates`.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.affine import ENGINE_STATS, resolve_verify_engine
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.tv.extract import (
    ExtractionUnsupported,
    InstanceExtractor,
    InstanceMap,
    SiteRef,
    capture_reference,
    find_site_roots,
)
from repro.analysis.tv.symbolic import (
    SymbolicExtractor,
    SymbolicUnsupported,
    canonical_site_key,
    check_site_symbolic,
)
from repro.ir.location import op_path
from repro.ir.operation import Operation
from repro.ir.schedule import (
    AFTER,
    BEFORE,
    CONCURRENT,
    compare_timestamps,
    render_timestamp,
)
from repro.ir.values import OpResult


class TranslationValidationError(RuntimeError):
    """Raised by a fail-fast validator when a pass breaks a dependence."""

    def __init__(self, report: DiagnosticReport, after_pass: Optional[str]):
        self.report = report
        self.after_pass = after_pass
        first = report.errors[0] if report.errors else None
        where = f" after pass {after_pass!r}" if after_pass else ""
        summary = first.render() if first else report.summary()
        super().__init__(
            f"translation validation failed{where} "
            f"({len(report.errors)} violation(s)):\n{summary}"
        )


class TranslationValidator:
    """Dependence-preservation certificates between passes.

    Use through ``CompileOptions(validate_passes=True)`` /
    ``PassManager(validator=...)``, or drive directly::

        tv = TranslationValidator(fail_fast=False)
        tv.begin(module)            # stamp + capture the reference
        SomePass().run(module)
        tv.after_pass(module, "some-pass")
        tv.report                   # all diagnostics, witnesses included
        tv.certificates             # one summary dict per validated pass
    """

    def __init__(
        self,
        fail_fast: bool = True,
        max_witnesses: int = 3,
        instance_limit: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.fail_fast = fail_fast
        self.max_witnesses = max_witnesses
        self.instance_limit = instance_limit
        #: Decision procedure per site: ``auto`` checks each dependence
        #: class symbolically (cost independent of the mesh) and falls
        #: back to enumeration per site when the schedule is not uniform;
        #: ``symbolic`` additionally reports every fallback (TV006);
        #: ``enumerated`` is the legacy per-instance path. An explicit
        #: ``instance_limit`` forces enumeration — callers capping the
        #: enumeration are asking for exactly its degradation behavior.
        self.engine = (
            "enumerated"
            if instance_limit is not None
            else resolve_verify_engine(engine)
        )
        self.sites: List[SiteRef] = []
        self.report = DiagnosticReport()
        #: One entry per validated snapshot: ``{"after_pass", "sites",
        #: "violations"}`` with per-site form/instance/edge counts.
        self.certificates: List[dict] = []
        #: tv_id -> (canonical piece set, certified stats) of the last
        #: clean symbolic check. Scalar cleanup passes (cse, licm, dce,
        #: constant-fold) rewrite the IR without moving any write
        #: instance, so the extracted pieces — a complete semantic
        #: summary of the site's schedule — come out identical; the
        #: pairwise dependence check is then skipped and the previous
        #: certificate reissued. Extraction (and the TV004 tile hook)
        #: still runs on every snapshot.
        self._clean_pieces: Dict[int, Tuple[tuple, dict]] = {}

    # ---- pass-manager hooks ----------------------------------------------

    def begin(self, module: Operation) -> List[Diagnostic]:
        """Stamp sites, capture the reference, and self-check it (the
        ``"frontend"`` certificate is the baseline every pass is compared
        against)."""
        self.sites = capture_reference(module)
        return self._validate(module, "frontend")

    def after_pass(self, module: Operation, name: str) -> List[Diagnostic]:
        return self._validate(module, name)

    # ---- the validation of one IR snapshot -------------------------------

    def _validate(self, module: Operation, label: str) -> List[Diagnostic]:
        # The snapshot validation allocates large volumes of strictly
        # acyclic tuples (pieces, timestamps, canonical keys) that
        # reference counting reclaims on its own; with the default
        # thresholds the cyclic collector fires mid-validation and walks
        # the entire IR graph repeatedly for nothing — in practice more
        # wall clock than the validation itself. Suspend it for the
        # duration and restore on exit.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._validate_inner(module, label)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _validate_inner(
        self, module: Operation, label: str
    ) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        certs: List[dict] = []
        roots = find_site_roots(module)
        self._check_sites_present(roots, label, diags)
        by_id: Dict[int, Operation] = {}
        for tv_id, op in roots:
            by_id.setdefault(tv_id, op)
        kwargs = {}
        if self.instance_limit is not None:
            kwargs["limit"] = self.instance_limit
        for site in self.sites:
            root = by_id.get(site.tv_id)
            cert = {"site": site.tv_id, "path": site.path}
            certs.append(cert)
            if root is None:
                cert.update(status="lost")
                continue
            cert["form"] = root.name
            if site.box is None:
                diags.append(self._note(site, root, label, site.degraded))
                cert.update(status="skipped", detail=site.degraded)
                continue
            site_diags: List[Diagnostic] = []
            handled = False
            t0 = time.perf_counter()
            if self.engine != "enumerated":
                handled = self._validate_site_symbolic(
                    site, root, label, cert, site_diags, diags
                )
            if handled:
                ENGINE_STATS.record(
                    "tv", "symbolic", seconds=time.perf_counter() - t0
                )
            else:
                extractor = InstanceExtractor(**kwargs)
                site_diags = []
                extractor.tile_hook = self._make_tile_hook(
                    extractor, site, site_diags
                )
                try:
                    inst = extractor.site_instances(root, site)
                except ExtractionUnsupported as exc:
                    diags.append(self._note(site, root, label, str(exc)))
                    cert.update(status="skipped", detail=str(exc))
                    continue
                stats = self._check_site(site, inst, root, site_diags)
                cert.update(
                    form=inst.form,
                    engine="enumerated",
                    instances=inst.instances,
                    cells=len(inst.ts),
                    **stats,
                )
                ENGINE_STATS.record(
                    "tv", "enumerated", seconds=time.perf_counter() - t0
                )
            cert["status"] = (
                "violated"
                if any(d.is_error for d in site_diags)
                else "certified"
            )
            diags.extend(site_diags)
        for d in diags:
            if d.after_pass is None:
                d.after_pass = label
        self.report.extend(diags)
        errors = [d for d in diags if d.is_error]
        self.certificates.append(
            {"after_pass": label, "violations": len(errors), "sites": certs}
        )
        if self.fail_fast and errors:
            snapshot = DiagnosticReport(list(diags))
            raise TranslationValidationError(snapshot, label)
        return diags

    # ---- TV005: site presence and order ----------------------------------

    def _check_sites_present(self, roots, label, diags) -> None:
        known = {s.tv_id for s in self.sites}
        seen: List[int] = []
        for tv_id, op in roots:
            if tv_id in seen:
                diags.append(Diagnostic(
                    "TV005",
                    f"site #{tv_id} appears more than once",
                    op_path=op_path(op),
                ))
            seen.append(tv_id)
        ordered = [i for i in seen if i in known]
        for site in self.sites:
            if site.tv_id not in seen:
                diags.append(Diagnostic(
                    "TV005",
                    f"site #{site.tv_id} ({site.path}) disappeared",
                ))
        deduped = list(dict.fromkeys(ordered))
        if deduped != sorted(deduped):
            diags.append(Diagnostic(
                "TV005",
                f"sites reordered: program order is now {deduped}",
            ))

    def _note(self, site, root, label, reason) -> Diagnostic:
        return Diagnostic(
            "TV006",
            f"site #{site.tv_id}: {reason}",
            severity="note",
            op_path=op_path(root),
        )

    # ---- the symbolic (per-dependence-class) site validation -------------

    def _validate_site_symbolic(
        self, site, root, label, cert, site_diags, diags,
    ) -> bool:
        """Validate one site with the affine piece engine. Returns False
        when the site's schedule is not uniform enough — the caller then
        runs the legacy enumerated path (in forced ``symbolic`` mode the
        fallback is additionally reported as a TV006 note)."""
        try:
            extractor = SymbolicExtractor()
            extractor.tile_hook = self._make_tile_hook(
                extractor, site, site_diags
            )
            pieces = extractor.site_pieces(root, site)
            key = canonical_site_key(pieces)
            memo = self._clean_pieces.get(site.tv_id)
            if memo is not None and memo[0] == key:
                cert.update(form=pieces.form, engine="symbolic", **memo[1])
                return True
            chk = check_site_symbolic(site, pieces)
        except (SymbolicUnsupported, ExtractionUnsupported) as exc:
            # Discard TV004 findings of the aborted walk; the enumerated
            # rerun repeats the same per-tile hook checks.
            site_diags.clear()
            if self.engine == "symbolic":
                diags.append(self._note(
                    site, root, label,
                    f"symbolic validation unavailable ({exc}); "
                    f"falling back to enumeration",
                ))
            return False
        if chk.clean:
            self._clean_pieces[site.tv_id] = (key, chk.stats)
            cert.update(form=pieces.form, engine="symbolic", **chk.stats)
            return True
        # A dependence class is violated: materialize concrete witnesses
        # through the enumerated extractor so messages match the legacy
        # path exactly; past the enumeration limit, synthesize them from
        # the affine counterexample points instead.
        en_diags: List[Diagnostic] = []
        enumerator = InstanceExtractor()
        enumerator.tile_hook = self._make_tile_hook(
            enumerator, site, en_diags
        )
        try:
            inst = enumerator.site_instances(root, site)
        except ExtractionUnsupported:
            path = op_path(root)
            for code, witnesses in chk.violations:
                self._emit_witnesses(site, path, code, witnesses, site_diags)
            cert.update(form=pieces.form, engine="symbolic", **chk.stats)
            return True
        site_diags.clear()
        site_diags.extend(en_diags)
        stats = self._check_site(site, inst, root, site_diags)
        cert.update(
            form=inst.form,
            engine="symbolic",
            instances=inst.instances,
            cells=len(inst.ts),
            **stats,
        )
        return True

    def _emit_witnesses(
        self, site, path, code, witnesses: List[str], diags,
    ) -> None:
        shown = witnesses[: self.max_witnesses]
        extra = len(witnesses) - len(shown)
        if extra > 0:
            shown.append(f"... and {extra} more like it")
        for w in shown:
            diags.append(Diagnostic(
                code, f"site #{site.tv_id}: {w}", op_path=path
            ))

    # ---- TV001/TV002/TV003/TV007: instance-level checks ------------------

    def _check_site(
        self, site: SiteRef, inst: InstanceMap, root: Operation,
        diags: List[Diagnostic],
    ) -> dict:
        path = op_path(root)

        def emit(code: str, witnesses: List[str]) -> None:
            shown = witnesses[: self.max_witnesses]
            extra = len(witnesses) - len(shown)
            if extra > 0:
                shown.append(f"... and {extra} more like it")
            for w in shown:
                diags.append(Diagnostic(
                    code, f"site #{site.tv_id}: {w}", op_path=path
                ))

        missing, dup = [], []
        for cell in site.cells():
            for v in range(site.nv):
                n = inst.counts.get((cell, v), 0)
                if n == 0:
                    missing.append(f"instance {cell} (var {v}) is never "
                                   "written (live store removed?)")
                elif n > 1:
                    dup.append(f"instance {cell} (var {v}) is written "
                               f"{n} times")
        outside = [
            f"write of {cell} (var {v}) lands outside the reference "
            f"write box" for cell, v in inst.outside
        ]
        emit("TV003", missing)
        emit("TV003", dup)
        emit("TV003", outside)

        flow = site.flow_offsets
        anti = site.anti_offsets
        checked_flow = checked_anti = 0
        order_viol: List[str] = []
        conc_viol: List[str] = []
        anti_viol: List[str] = []
        for cell, ts_c in inst.ts.items():
            for off in flow:
                src = tuple(c + d for c, d in zip(cell, off))
                ts_s = inst.ts.get(src)
                if ts_s is None:
                    continue
                checked_flow += 1
                verdict = compare_timestamps(ts_s, ts_c)
                if verdict == AFTER:
                    order_viol.append(
                        f"flow dependence (offset {off}): source instance "
                        f"{src} [t={render_timestamp(ts_s)}] is scheduled "
                        f"after its target {cell} "
                        f"[t={render_timestamp(ts_c)}]"
                    )
                elif verdict == CONCURRENT:
                    conc_viol.append(
                        f"flow dependence (offset {off}): instances {src} "
                        f"[t={render_timestamp(ts_s)}] and {cell} "
                        f"[t={render_timestamp(ts_c)}] are concurrent"
                    )
            for off in anti:
                dst = tuple(c + d for c, d in zip(cell, off))
                ts_w = inst.ts.get(dst)
                if ts_w is None:
                    continue
                checked_anti += 1
                if compare_timestamps(ts_c, ts_w) != BEFORE:
                    anti_viol.append(
                        f"anti dependence (offset {off}): instance {cell} "
                        f"[t={render_timestamp(ts_c)}] reads the initial "
                        f"value of {dst} but is not scheduled before its "
                        f"write [t={render_timestamp(ts_w)}]"
                    )
        emit("TV001", order_viol)
        emit("TV002", conc_viol)
        emit("TV007", anti_viol)
        return {"flow_edges": checked_flow, "anti_edges": checked_anti}

    # ---- TV004: fused producers still cover the tile core ----------------

    def _make_tile_hook(self, extractor, site, sink: List[Diagnostic]):
        state = {"reported": False}

        def hook(loop, inner, tile_index, origin) -> None:
            if state["reported"] or inner.name != "cfd.stencilOp":
                return
            diag = self._check_fused_producers(
                extractor, site, inner, tile_index, origin
            )
            if diag is not None:
                sink.append(diag)
                state["reported"] = True

        return hook

    def _check_fused_producers(
        self, extractor, site, inner, tile_index, origin
    ) -> Optional[Diagnostic]:
        # The symbolic extractor carries a shared-memo concrete evaluator
        # (one memo per tile environment); fall back to the interval
        # engine's per-call resolve for the enumerated extractor.
        ev = getattr(extractor, "_cexact", None) or extractor.ev.eval_exact
        if not inner.has_bounds:
            return None
        core_lo = [ev(v) for v in inner.bounds_lo]
        core_hi = [ev(v) for v in inner.bounds_hi]
        if any(v is None for v in core_lo + core_hi):
            return None
        core = [
            (lo + o, hi + o)
            for lo, hi, o in zip(core_lo, core_hi, origin)
        ]
        val = inner.b
        for _ in range(16):
            if not isinstance(val, OpResult):
                return None
            producer = val.op
            if producer.name == "tensor.extract_slice":
                val = producer.source
            elif producer.name == "linalg.fill":
                val = producer.init  # fills its whole window: covers
            elif producer.name == "cfd.faceIteratorOp":
                val = producer.operand(1)  # accumulates over the window
            elif producer.name == "linalg.generic":
                diag = self._generic_covers(
                    ev, site, producer, core, tile_index
                )
                if diag is not None:
                    return diag
                val = producer.operand(producer.num_ins)
            else:
                return None
        return None

    def _generic_covers(
        self, ev, site, producer, core, tile_index
    ) -> Optional[Diagnostic]:
        out = producer.operand(producer.num_ins)
        # The out-init window is typically zero-seeded through a fill.
        if isinstance(out, OpResult) and out.op.name == "linalg.fill":
            out = out.op.init
        if not isinstance(out, OpResult) or (
            out.op.name != "tensor.extract_slice"
        ):
            return None
        window = out.op
        offs = [ev(v) for v in window.offsets]
        sizes = [ev(v) for v in window.sizes]
        if any(v is None for v in offs + sizes):
            return None
        bounds = producer.iteration_bounds(tuple(sizes))
        computed = [
            (offs[d + 1] + lo, offs[d + 1] + hi)
            for d, (lo, hi) in enumerate(bounds[1:])
        ]
        witness: Optional[Tuple[int, ...]] = None
        for d, ((c_lo, c_hi), (p_lo, p_hi)) in enumerate(zip(core, computed)):
            if c_lo >= c_hi:
                continue
            if c_lo < p_lo or c_hi > p_hi:
                cell = [lo for lo, _ in core]
                cell[d] = c_lo if c_lo < p_lo else p_hi
                witness = tuple(cell)
                break
        if witness is None:
            return None
        return Diagnostic(
            "TV004",
            f"site #{site.tv_id}, tile {tile_index}: fused producer "
            f"computes {computed} but the consumed tile core is {core}; "
            f"first uncovered instance {witness}",
            op_path=op_path(producer),
        )
