"""Symbolic (per-dependence-class) translation validation.

The enumerated validator (:mod:`repro.analysis.tv.extract`) timestamps
every statement instance — 10k–17k per snapshot on the paper's kernels —
even though the schedules our lowerings emit are *uniform*: within one
loop nest, every cell's timestamp is the same affine function of the
cell. This module exploits that. A site's instance map is represented as
a small set of :class:`Piece` objects

* ``dims`` — per space dimension an arithmetic progression
  ``(start, step, count)`` of absolute cell coordinates,
* ``vs`` — the variable indices written,
* ``ts`` — the timestamp, each component either a constant (tile
  prefixes, op positions) or a :class:`RatForm`, an integer-valued
  rational-affine function of the cell,
* ``mult`` — how many times each covered ``(cell, v)`` is written,

and the dependence checks become algebra over pieces:

* **TV003** coverage by inclusion–exclusion over clipped progressions:
  duplicate writes are a non-empty pairwise intersection (or
  ``mult > 1``), missing writes a volume deficit, out-of-box writes a
  clip loss;
* **TV001/TV002/TV007** by a lexicographic walk over each piece pair's
  *joint domain* (per-dimension progression intersection via gcd/CRT):
  within a pair, the difference of two timestamp components is an affine
  function of the cell whose sign over an AP box is decided exactly from
  its corners — for the common same-nest case it is a constant, so the
  whole dependence class is decided with a handful of integer
  comparisons, independent of the mesh.

Anything non-uniform (mixed-sign component differences, unsupported
index shapes, piece blow-ups) raises :class:`SymbolicUnsupported`; the
validator falls back to enumeration for exactly that site. A detected
violation is also re-materialized through the enumerated extractor so
witness messages stay byte-identical with the legacy path; only when the
mesh is too large to enumerate does the checker synthesize its witness
from the affine counterexample point.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.analysis.tv.extract import (
    ExtractionUnsupported,
    InstanceExtractor,
    SiteRef,
)
from repro.ir.attributes import IntegerAttr
from repro.ir.operation import Operation
from repro.ir.schedule import (
    AFTER,
    BEFORE,
    CONCURRENT,
    PAR,
    SEQ,
    LinearForm,
    render_timestamp,
    resolve_linear,
)
from repro.ir.values import OpResult

#: Cap on pieces per site; past this, symbolic validation degrades to
#: enumeration (one piece per loop nest anchor per tile — real pipelines
#: sit far below this).
MAX_SITE_PIECES = 4096

#: An arithmetic progression ``start + j*step`` for ``j in [0, count)``,
#: normalized to ``step >= 1``.
AP = Tuple[int, int, int]


class SymbolicUnsupported(Exception):
    """This site's schedule is not uniform enough to validate
    symbolically (the caller falls back to enumeration)."""


def _ap(start: int, step: int, count: int) -> AP:
    if count <= 0:
        return (start, 1, 0)
    if count == 1:
        return (start, 1, 1)
    if step < 0:
        return (start + (count - 1) * step, -step, count)
    if step == 0:
        raise SymbolicUnsupported("zero-step progression")
    return (start, step, count)


def ap_last(ap: AP) -> int:
    return ap[0] + (ap[2] - 1) * ap[1]


def ap_clip(ap: AP, lo: int, hi: int) -> AP:
    """Restrict to values in ``[lo, hi)``."""
    start, step, count = ap
    if count == 0:
        return ap
    j_lo = max(0, -(-(lo - start) // step))
    j_hi = min(count - 1, (hi - 1 - start) // step)
    if j_lo > j_hi:
        return (start, 1, 0)
    return (start + j_lo * step, step, j_hi - j_lo + 1)


def ap_shift(ap: AP, off: int) -> AP:
    return (ap[0] + off, ap[1], ap[2])


def ap_intersect(a: AP, b: AP) -> AP:
    """The common values of two progressions (gcd/CRT)."""
    if a[2] == 0 or b[2] == 0:
        return (a[0], 1, 0)
    sa, sb = a[1], b[1]
    if sa == 1 and sb == 1:  # contiguous ranges: plain interval overlap
        lo = max(a[0], b[0])
        hi = min(a[0] + a[2], b[0] + b[2]) - 1
        if lo > hi:
            return (a[0], 1, 0)
        return (lo, 1, hi - lo + 1)
    g = gcd(sa, sb)
    if (b[0] - a[0]) % g != 0:
        return (a[0], 1, 0)
    # Solve a0 + i*sa == b0 + j*sb: i == (b0 - a0)/g * inv(sa/g) mod sb/g
    m = sb // g
    i0 = ((b[0] - a[0]) // g * pow(sa // g, -1, m)) % m if m > 1 else 0
    start = a[0] + i0 * sa
    step = sa // g * sb  # lcm
    lo = max(a[0], b[0])
    hi = min(ap_last(a), ap_last(b))
    if start < lo:
        start += -(-(lo - start) // step) * step
    if start > hi:
        return (a[0], 1, 0)
    return (start, step, (hi - start) // step + 1)


def ap_volume(dims: Tuple[AP, ...]) -> int:
    v = 1
    for ap in dims:
        v *= ap[2]
    return v


@dataclass(frozen=True)
class RatForm:
    """``(const + sum(coeffs[d] * cell[d])) / den`` — integral on the
    domain it is used on; ``den >= 1``."""

    const: int
    coeffs: Tuple[Tuple[int, int], ...] = ()
    den: int = 1

    @staticmethod
    def make(const: int, coeffs: Dict[int, int], den: int) -> "RatForm":
        if den < 0:
            const, den = -const, -den
            coeffs = {d: -c for d, c in coeffs.items()}
        if den == 0:
            raise SymbolicUnsupported("zero-denominator timestamp")
        return RatForm(
            const, tuple(sorted((d, c) for d, c in coeffs.items() if c)), den
        )

    @property
    def is_const(self) -> bool:
        return not self.coeffs

    def value_at(self, cell: Tuple[int, ...]) -> int:
        n = self.const + sum(c * cell[d] for d, c in self.coeffs)
        if n % self.den:
            raise SymbolicUnsupported("non-integral timestamp component")
        return n // self.den


#: A timestamp component: ``(flag, int | RatForm)``.
Comp = Tuple[int, object]

#: Affine numerators used by the lexicographic walk: const + coeff*cell.
Affine = Tuple[int, Tuple[Tuple[int, int], ...]]


def _as_rat(value) -> RatForm:
    if isinstance(value, RatForm):
        return value
    return RatForm(int(value))


def _rat_shift(f: RatForm, off: Tuple[int, ...]) -> RatForm:
    """``x -> f(x + off)`` as a form of ``x``."""
    return RatForm(
        f.const + sum(c * off[d] for d, c in f.coeffs), f.coeffs, f.den
    )


def _diff(a: RatForm, b: RatForm) -> Affine:
    """The numerator of ``a - b`` over the (positive) common denominator."""
    coeffs: Dict[int, int] = {}
    for d, c in a.coeffs:
        coeffs[d] = coeffs.get(d, 0) + c * b.den
    for d, c in b.coeffs:
        coeffs[d] = coeffs.get(d, 0) - c * a.den
    const = a.const * b.den - b.const * a.den
    return const, tuple(sorted((d, c) for d, c in coeffs.items() if c))


def _affine_range(aff: Affine, dims: Tuple[AP, ...]) -> Tuple[int, int]:
    """Exact ``[min, max]`` of an affine form over an AP box."""
    const, coeffs = aff
    lo = hi = const
    for d, c in coeffs:
        a, b = dims[d][0] * c, ap_last(dims[d]) * c
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _affine_argmax(aff: Affine, dims: Tuple[AP, ...]) -> Tuple[int, ...]:
    """A cell of the AP box attaining the maximum of ``aff``."""
    const, coeffs = aff
    by_dim = dict(coeffs)
    return tuple(
        (ap_last(ap) if by_dim.get(d, 0) >= 0 else ap[0])
        for d, ap in enumerate(dims)
    )


@dataclass
class Piece:
    """One uniform family of write instances."""

    dims: Tuple[AP, ...]
    vs: Tuple[int, ...]
    ts: Tuple[Comp, ...]
    mult: int = 1

    def ts_at(self, cell: Tuple[int, ...]):
        out = []
        for flag, value in self.ts:
            out.append(
                (flag, value.value_at(cell))
                if isinstance(value, RatForm)
                else (flag, value)
            )
        return tuple(out)


@dataclass
class SitePieces:
    """The symbolic instance map of one site in one snapshot."""

    form: str
    pieces: List[Piece]

    def instances(self) -> int:
        return sum(p.mult * ap_volume(p.dims) * len(p.vs) for p in self.pieces)


def canonical_site_key(sp: SitePieces) -> tuple:
    """A key equal across snapshots whenever the checker's verdict must
    be equal.

    Scalar cleanup passes (cse, licm, dce, constant-fold) move and
    delete ops inside the nests, shifting the absolute ``(SEQ, op_idx)``
    timestamp components while preserving their relative order. The
    checker compares timestamps positionally, so at every position where
    all pieces carry an integer component under the same flag the values
    are rank-compressed; everything else (geometry, variables, rational
    forms, multiplicities) is kept verbatim.
    """
    pieces = sp.pieces
    keys = [[p.dims, p.vs, list(p.ts), p.mult] for p in pieces]
    if pieces:
        length = len(pieces[0].ts)
        if all(len(p.ts) == length for p in pieces):
            for pos in range(length):
                comps = [p.ts[pos] for p in pieces]
                flag0 = comps[0][0]
                if all(
                    flag == flag0 and isinstance(val, int)
                    for flag, val in comps
                ):
                    rank = {
                        v: i
                        for i, v in enumerate(
                            sorted({val for _, val in comps})
                        )
                    }
                    for key, (flag, val) in zip(keys, comps):
                        key[2][pos] = (flag, rank[val])
    return (
        sp.form,
        tuple((d, vs, tuple(ts), m) for d, vs, ts, m in keys),
    )


class _VersionedEnv(dict):
    """``index_env`` that counts its mutations, so the concrete-integer
    memo below knows when the enclosing tile bindings changed."""

    def __init__(self) -> None:
        super().__init__()
        self.version = 0

    def __setitem__(self, key, value) -> None:
        self.version += 1
        super().__setitem__(key, value)


_MISS = object()


class _ConstEval:
    """Concrete-integer evaluation with one shared memo per tile
    environment. ``AbstractEvaluator.eval_exact`` builds a fresh memo per
    call and allocates intervals through the whole expression tree; the
    tile window bounds feed every anchor of a nest, so sharing the memo
    across the ~100 queries of one tile is a large constant-factor win."""

    def __init__(self, ev) -> None:
        self.ev = ev
        self.memo: Dict[int, Optional[int]] = {}
        self.version = -1

    def __call__(self, value) -> Optional[int]:
        env = self.ev.index_env
        if env.version != self.version:
            self.memo.clear()
            self.version = env.version
        return self._eval(value, env)

    def _eval(self, value, env) -> Optional[int]:
        key = id(value)
        hit = self.memo.get(key, _MISS)
        if hit is not _MISS:
            return hit
        bound = env.get(key)
        if bound is not None:
            out = (
                bound.lo
                if bound.is_point and isinstance(bound.lo, int)
                else None
            )
            self.memo[key] = out
            return out
        out = self._compute(value, env)
        self.memo[key] = out
        return out

    def _compute(self, value, env) -> Optional[int]:
        op = getattr(value, "op", None)
        if op is None:
            return None
        name = op.name
        if name == "arith.constant":
            attr = op.attributes.get("value")
            return attr.value if isinstance(attr, IntegerAttr) else None
        if name in _INT_BINARY and op.num_operands == 2:
            a = self._eval(op.operand(0), env)
            if a is None:
                return None
            b = self._eval(op.operand(1), env)
            if b is None:
                return None
            return _INT_BINARY[name](a, b)
        if name == "arith.index_cast":
            return self._eval(op.operand(0), env)
        # Extent queries and anything unmodeled: the interval engine.
        return self.ev.eval_exact(value)


# Mirrors the interval engine's point semantics exactly: division and
# remainder are defined only for positive divisors (TOP otherwise).
_INT_BINARY = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.floordivi": lambda a, b: a // b if b > 0 else None,
    "arith.ceildivi": lambda a, b: -((-a) // b) if b > 0 else None,
    "arith.remi": lambda a, b: a % b if b > 0 else None,
    "arith.minsi": min,
    "arith.maxsi": max,
}


class SymbolicExtractor(InstanceExtractor):
    """Extracts :class:`SitePieces` instead of enumerating instances.

    Tile grids (``cfd.tiled_loop``) are still walked tile by tile — the
    wavefront CSR replay and the TV004 fused-producer hook need concrete
    tile indices, and the tile count is the *grid*, not the mesh — but
    the per-tile loop nests inside become single pieces each.
    """

    def __init__(self) -> None:
        super().__init__(limit=1)  # _record must never be reached
        self.pieces: List[Piece] = []
        self.ev.index_env = _VersionedEnv()
        self._cexact = _ConstEval(self.ev)
        self._nest_tpl: Dict[int, list] = {}

    def _exact(self, value, what: str) -> int:
        c = self._cexact(value)
        if c is None:
            raise ExtractionUnsupported(
                f"{what} is not statically resolvable"
            )
        return c

    def site_pieces(self, root: Operation, site: SiteRef) -> SitePieces:
        self.pieces = []
        out = SitePieces(form=root.name, pieces=self.pieces)
        self._emit(root, site, (0,) * site.rank, (), out)
        return out

    def _push(self, piece: Piece) -> None:
        if ap_volume(piece.dims) == 0:
            return
        self.pieces.append(piece)
        if len(self.pieces) > MAX_SITE_PIECES:
            raise SymbolicUnsupported(
                f"more than {MAX_SITE_PIECES} uniform pieces"
            )

    # ---- form A: the declarative stencil op ------------------------------

    def _emit_stencil(self, op, site, origin, prefix, out) -> None:
        if op.has_bounds:
            lo = [self._exact(v, "stencil bound") for v in op.bounds_lo]
            hi = [self._exact(v, "stencil bound") for v in op.bounds_hi]
        else:
            if site.box is None:
                raise ExtractionUnsupported(site.degraded)
            lo = [b[0] - o for b, o in zip(site.box, origin)]
            hi = [b[1] - o for b, o in zip(site.box, origin)]
        sweep = op.sweep
        dims = tuple(
            _ap(a + o, 1, b - a) for a, b, o in zip(lo, hi, origin)
        )
        ts = tuple(prefix) + tuple(
            (SEQ, RatForm.make(-sweep * o, {d: sweep}, 1))
            for d, o in enumerate(origin)
        )
        self._push(Piece(dims, tuple(range(site.nv)), ts))

    # ---- form C: lowered scf.for nests -----------------------------------
    #
    # The nest *structure* — the loop tree, which induction variable
    # drives which index with what coefficient — is tile-invariant; only
    # the leaf constants (window bounds, tile origins) change from tile
    # to tile. ``_nest_template`` decodes each nest root once per
    # extractor into a skeleton holding SSA values for the leaves, and
    # ``_emit_nest`` re-evaluates just those leaves per tile through the
    # shared-memo evaluator instead of re-resolving every index
    # expression on every tile of the grid.

    def _nest_template(self, root) -> list:
        iv_ids: Dict[int, object] = {}

        def linear_tpl(value):
            """``(const, iv_coeffs, leaves)`` mirroring
            :func:`resolve_linear` with loop-invariant sub-expressions
            kept symbolic, ``("dyn", value, ivs)`` when instantiation
            needs a full per-tile resolve (a tile-dependent scalar
            scaling an induction variable), or ``None`` when every
            tile's resolve would fail."""
            if id(value) in iv_ids:
                return (0, {id(value): 1}, ())
            if isinstance(value, OpResult):
                op = value.op
                name = op.name
                if (
                    name in ("arith.addi", "arith.subi")
                    and op.num_operands == 2
                ):
                    lhs = linear_tpl(op.operand(0))
                    rhs = linear_tpl(op.operand(1))
                    if lhs is None or rhs is None:
                        return None
                    if lhs[0] == "dyn" or rhs[0] == "dyn":
                        return ("dyn", value, dict(iv_ids))
                    sign = 1 if name == "arith.addi" else -1
                    coeffs = dict(lhs[1])
                    for k, c in rhs[1].items():
                        coeffs[k] = coeffs.get(k, 0) + sign * c
                        if coeffs[k] == 0:
                            del coeffs[k]
                    leaves = lhs[2] + tuple(
                        (v, sign * c) for v, c in rhs[2]
                    )
                    return (lhs[0] + sign * rhs[0], coeffs, leaves)
                if name == "arith.muli" and op.num_operands == 2:
                    lhs = linear_tpl(op.operand(0))
                    rhs = linear_tpl(op.operand(1))
                    if lhs is None or rhs is None:
                        return None
                    if lhs[0] == "dyn" or rhs[0] == "dyn":
                        return ("dyn", value, dict(iv_ids))
                    if not lhs[1] and not rhs[1]:
                        # Loop-invariant either way: one opaque leaf.
                        return (0, {}, ((value, 1),))
                    for a, b in ((lhs, rhs), (rhs, lhs)):
                        if b[1]:
                            continue
                        if not b[2]:  # static integer scale
                            f = b[0]
                            return (
                                a[0] * f,
                                {k: c * f for k, c in a[1].items()},
                                tuple((v, c * f) for v, c in a[2]),
                            )
                        # Tile-dependent scalar times an iv expression:
                        # the coefficients themselves vary per tile.
                        return ("dyn", value, dict(iv_ids))
                    return None
                if name == "arith.index_cast":
                    return linear_tpl(op.operand(0))
                if name == "arith.constant":
                    attr = op.attributes.get("value")
                    if isinstance(attr, IntegerAttr):
                        return (attr.value, {}, ())
            return (0, {}, ((value, 1),))

        def decode_block(block) -> list:
            nodes = []
            for op_idx, op in enumerate(block.operations):
                if op.name == "scf.for":
                    iv = op.induction_var
                    iv_ids[id(iv)] = iv
                    nodes.append(
                        ("loop", op_idx, iv, op.lower, op.upper, op.step,
                         decode_block(op.body))
                    )
                elif op.name in ("tensor.insert", "memref.store",
                                 "vector.transfer_write"):
                    tpls = [linear_tpl(v) for v in op.indices]
                    if any(t is None for t in tpls):
                        raise ExtractionUnsupported(
                            f"{op.name} index is not linear in the nest"
                        )
                    if tpls[0][0] != "dyn" and tpls[0][1]:
                        raise ExtractionUnsupported(
                            f"{op.name} variable index is not constant"
                        )
                    lanes = 1
                    if op.name == "vector.transfer_write":
                        lanes = op.vector.type.shape[0]
                    plan = None
                    if all(t[0] != "dyn" for t in tpls):
                        # Tile-invariant anchor structure: which iv
                        # drives which dimension with what coefficient
                        # is fixed; only the leaf constants move.
                        driver: Dict[int, Tuple[int, int]] = {}
                        dim_specs = []
                        for d, t in enumerate(tpls[1:]):
                            const, ivs, leaves = t
                            if len(ivs) > 1:
                                raise SymbolicUnsupported(
                                    "space index mixes induction "
                                    "variables"
                                )
                            if ivs:
                                ((iv_id, coeff),) = ivs.items()
                                if iv_id in driver:
                                    raise SymbolicUnsupported(
                                        "one induction variable drives "
                                        "two dimensions"
                                    )
                                driver[iv_id] = (d, coeff)
                                dim_specs.append(
                                    (iv_id, coeff, const, leaves)
                                )
                            else:
                                dim_specs.append((None, 0, const, leaves))
                        plan = (tuple(dim_specs), driver)
                    nodes.append(
                        ("anchor", op_idx, op.name, tpls[0], tpls[1:],
                         lanes, plan)
                    )
            return nodes

        iv_ids[id(root.induction_var)] = root.induction_var
        return [("loop", 0, root.induction_var,
                 root.lower, root.upper, root.step,
                 decode_block(root.body))]

    def _inst_form(self, tpl) -> Optional[LinearForm]:
        """Instantiate one index template under the current tile."""
        if tpl[0] == "dyn":
            return resolve_linear(tpl[1], tpl[2], self._cexact)
        const, coeffs, leaves = tpl
        for v, c in leaves:
            x = self._cexact(v)
            if x is None:
                return None
            const += c * x
        return LinearForm(const, coeffs)

    def _emit_nest(self, root, site, origin, prefix, out) -> None:
        tpl = self._nest_tpl.get(id(root))
        if tpl is None:
            tpl = self._nest_template(root)
            self._nest_tpl[id(root)] = tpl

        # loops on the path to the current anchor: (op_idx, id(iv), lb,
        # st, trip), innermost last.
        path: List[Tuple[int, int, int, int, int]] = []

        cexact = self._cexact

        def finish(op_idx, v, dims, comps, mult, lanes, rank) -> None:
            for d in range(rank):
                if dims[d] is None:
                    raise SymbolicUnsupported(
                        "space dimension driven by a variable outside "
                        "the nest"
                    )
            comps.append((SEQ, op_idx))
            if lanes == 1:
                self._push(Piece(tuple(dims), (v,), tuple(comps), mult))
                return
            if lanes > 64:
                raise SymbolicUnsupported("vector with more than 64 lanes")
            if dims[-1][2] == 1:
                # All lanes of a single vector write, merged into one
                # piece: the cells are base..base+lanes-1, every earlier
                # timestamp form evaluates at the base (freeze its
                # last-dim term there), and the lane id becomes the
                # parallel component x_last - base. Equivalent to the
                # per-lane pieces below, at 1/lanes the piece count.
                base = dims[-1][0]
                lane_dims = list(dims)
                lane_dims[-1] = _ap(base, 1, lanes)
                frozen = []
                for flag, val in comps:
                    if isinstance(val, RatForm):
                        c_last = dict(val.coeffs).get(rank - 1, 0)
                        if c_last:
                            val = RatForm(
                                val.const + c_last * base,
                                tuple(
                                    (d, c) for d, c in val.coeffs
                                    if d != rank - 1
                                ),
                                val.den,
                            )
                    frozen.append((flag, val))
                frozen.append((PAR, RatForm.make(-base, {rank - 1: 1}, 1)))
                self._push(Piece(
                    tuple(lane_dims), (v,), tuple(frozen), mult,
                ))
                return
            for u in range(lanes):
                lane_dims = list(dims)
                lane_dims[-1] = ap_shift(dims[-1], u)
                # Lane u writes x_last = base + u, so every timestamp
                # form of x must be re-expressed with the lane shift
                # folded out: f(x) -> f(x - u*e_last).
                back = tuple(
                    -u if d == rank - 1 else 0 for d in range(rank)
                )
                lane_comps = tuple(
                    (flag, _rat_shift(val, back))
                    if isinstance(val, RatForm) else (flag, val)
                    for flag, val in comps
                )
                self._push(Piece(
                    tuple(lane_dims), (v,),
                    lane_comps + ((PAR, u),), mult,
                ))

        def emit_static(op_idx, op_name, v, plan, lanes) -> None:
            dim_specs, driver = plan
            rank = len(dim_specs)
            dims: List[Optional[AP]] = [None] * rank
            starts: List[int] = [0] * rank
            for d, (iv_id, _, const, leaves) in enumerate(dim_specs):
                for lv, lc in leaves:
                    x = cexact(lv)
                    if x is None:
                        raise ExtractionUnsupported(
                            f"{op_name} index is not linear in the nest"
                        )
                    const += lc * x
                starts[d] = const
                if iv_id is None:
                    dims[d] = _ap(const + origin[d], 1, 1)

            mult = 1
            comps: List[Comp] = list(prefix)
            for l_op_idx, iv_id, lb, st, trip in path:
                comps.append((SEQ, l_op_idx))
                drv = driver.get(iv_id)
                if drv is None:
                    if trip > 1:
                        mult *= trip
                    comps.append((SEQ, 0))
                    continue
                d, coeff = drv
                start = starts[d] + coeff * lb + origin[d]
                dims[d] = _ap(start, coeff * st, trip)
                # it = (x_d - origin_d - starts_d - coeff*lb) / (coeff*st)
                den = coeff * st
                if den == 0:
                    raise SymbolicUnsupported("zero-denominator timestamp")
                if den < 0:
                    comps.append((SEQ, RatForm(start, ((d, -1),), -den)))
                else:
                    comps.append((SEQ, RatForm(-start, ((d, 1),), den)))
            finish(op_idx, v, dims, comps, mult, lanes, rank)

        def emit_anchor(op_idx, v, space_forms, lanes) -> None:
            rank = len(space_forms)
            # Which enclosing loop drives which space dimension.
            driver: Dict[int, Tuple[int, int]] = {}  # id(iv) -> (dim, coeff)
            dims: List[Optional[AP]] = [None] * rank
            starts: List[int] = [0] * rank
            for d, f in enumerate(space_forms):
                items = list(f.coeffs.items())
                if len(items) > 1:
                    raise SymbolicUnsupported(
                        "space index mixes induction variables"
                    )
                if not items:
                    dims[d] = _ap(f.const + origin[d], 1, 1)
                    starts[d] = f.const
                    continue
                iv_id, coeff = items[0]
                if iv_id in driver:
                    raise SymbolicUnsupported(
                        "one induction variable drives two dimensions"
                    )
                driver[iv_id] = (d, coeff)
                starts[d] = f.const

            mult = 1
            comps: List[Comp] = list(prefix)
            for l_op_idx, iv_id, lb, st, trip in path:
                comps.append((SEQ, l_op_idx))
                drv = driver.get(iv_id)
                if drv is None:
                    if trip > 1:
                        mult *= trip
                    comps.append((SEQ, 0))
                    continue
                d, coeff = drv
                start = starts[d] + coeff * lb + origin[d]
                dims[d] = _ap(start, coeff * st, trip)
                # it = (x_d - origin_d - starts_d - coeff*lb) / (coeff*st)
                comps.append((SEQ, RatForm.make(
                    -(starts[d] + coeff * lb + origin[d]) * 1,
                    {d: 1}, coeff * st,
                )))
            finish(op_idx, v, dims, comps, mult, lanes, rank)

        def walk(nodes) -> None:
            for node in nodes:
                if node[0] == "loop":
                    _, op_idx, iv, lb_v, ub_v, st_v, children = node
                    lb = self._exact(lb_v, "loop bound")
                    ub = self._exact(ub_v, "loop bound")
                    st = self._exact(st_v, "loop step")
                    if st <= 0:
                        raise ExtractionUnsupported("non-positive loop step")
                    trip = len(range(lb, ub, st))
                    if trip == 0:
                        continue
                    path.append((op_idx, id(iv), lb, st, trip))
                    walk(children)
                    path.pop()
                else:
                    _, op_idx, op_name, var_tpl, space_tpls, lanes, plan = (
                        node
                    )
                    var_f = self._inst_form(var_tpl)
                    if var_f is None:
                        raise ExtractionUnsupported(
                            f"{op_name} index is not linear in the nest"
                        )
                    if not var_f.is_const:
                        raise ExtractionUnsupported(
                            f"{op_name} variable index is not constant"
                        )
                    if plan is not None:
                        emit_static(op_idx, op_name, var_f.const, plan,
                                    lanes)
                        continue
                    forms = [self._inst_form(t) for t in space_tpls]
                    if any(f is None for f in forms):
                        raise ExtractionUnsupported(
                            f"{op_name} index is not linear in the nest"
                        )
                    emit_anchor(op_idx, var_f.const, forms, lanes)

        walk(tpl)

    # ---- form D: the fully-parallel pointwise generic --------------------

    def _emit_pointwise(self, op, site, origin, prefix, out) -> None:
        out_t = op.operand(op.num_ins).type
        shape = out_t.shape
        if any(d == -1 for d in shape):
            raise ExtractionUnsupported("dynamic generic output shape")
        bounds = op.iteration_bounds(shape)
        v_lo, v_hi = bounds[0]
        space = bounds[1:]
        dims = tuple(
            _ap(lo + o, 1, hi - lo) for (lo, hi), o in zip(space, origin)
        )
        # Row-major linearization of the local coordinates — the same
        # parallel id the enumerated path counts out.
        coeffs: Dict[int, int] = {}
        const = 0
        stride = 1
        for d in range(len(space) - 1, -1, -1):
            lo, hi = space[d]
            coeffs[d] = stride
            const -= stride * (lo + origin[d])
            stride *= hi - lo
        ts = tuple(prefix) + ((PAR, RatForm.make(const, coeffs, 1)),)
        self._push(Piece(dims, tuple(range(v_lo, v_hi)), ts))


# ---------------------------------------------------------------------------
# The symbolic dependence checker
# ---------------------------------------------------------------------------


@dataclass
class SymbolicCheck:
    """The verdict of one symbolic site validation.

    ``stats`` carries the certificate fields (``instances``, ``cells``,
    ``flow_edges``, ``anti_edges``) matching what the enumerated
    ``_check_site`` would report on a clean site. ``violations`` is a
    list of ``(code, witnesses)`` in the legacy emission order; each
    witness is synthesized from an affine counterexample point and uses
    the enumerated path's exact message format.
    """

    stats: Dict[str, int]
    violations: List[Tuple[str, List[str]]]

    @property
    def clean(self) -> bool:
        return not self.violations


def _joint(
    a_dims: Tuple[AP, ...],
    b_dims: Tuple[AP, ...],
    off: Optional[Tuple[int, ...]] = None,
) -> Optional[Tuple[AP, ...]]:
    """Per-dimension progression intersection of ``a`` with ``b - off``
    (``None`` when empty), with a cheap interval reject first."""
    out = []
    for d, (a, b) in enumerate(zip(a_dims, b_dims)):
        if off is not None and off[d]:
            b = ap_shift(b, -off[d])
        if a[2] == 0 or b[2] == 0:
            return None
        if a[0] > ap_last(b) or b[0] > ap_last(a):
            return None
        j = ap_intersect(a, b)
        if j[2] == 0:
            return None
        out.append(j)
    return tuple(out)


def _compare_forms(
    ts_a: Tuple[Comp, ...],
    off_a: Optional[Tuple[int, ...]],
    ts_b: Tuple[Comp, ...],
    off_b: Optional[Tuple[int, ...]],
    box: Tuple[AP, ...],
) -> int:
    """``compare_timestamps(ts_a(x + off_a), ts_b(x + off_b))`` for
    *every* cell ``x`` of the AP box at once. Shifts are applied lazily —
    constant components (tile prefixes, op positions) are
    shift-invariant and decide most pairs with plain integer compares.
    Raises :class:`SymbolicUnsupported` when the verdict is not uniform
    over the box (mixed-sign component difference) — the caller then
    falls back to enumeration."""
    for (fa, va), (fb, vb) in zip(ts_a, ts_b):
        a_rat = type(va) is RatForm
        b_rat = type(vb) is RatForm
        if not a_rat and not b_rat:
            if va == vb:
                if fa == fb:
                    continue
                return CONCURRENT
            if fa != fb:
                return CONCURRENT
            if fa == SEQ:
                return BEFORE if va < vb else AFTER
            return CONCURRENT  # differing parallel constants
        if va is vb:
            # Identical forms (a piece against itself across an offset):
            # the difference is the constant sum(c * (off_a - off_b)).
            n0 = 0
            if off_a:
                n0 += sum(c * off_a[d] for d, c in va.coeffs)
            if off_b:
                n0 -= sum(c * off_b[d] for d, c in vb.coeffs)
            nmin = nmax = n0
        else:
            ra = _rat_shift(va, off_a) if a_rat and off_a else _as_rat(va)
            rb = _rat_shift(vb, off_b) if b_rat and off_b else _as_rat(vb)
            n = _diff(ra, rb)
            nmin, nmax = _affine_range(n, box)
        if nmin == 0 == nmax:
            if fa == fb:
                continue
            return CONCURRENT
        if fa != fb:
            return CONCURRENT
        if fa == SEQ:
            if nmax < 0:
                return BEFORE
            if nmin > 0:
                return AFTER
            raise SymbolicUnsupported(
                "mixed-sign sequential component difference"
            )
        # Both parallel with differing values somewhere.
        if nmin > 0 or nmax < 0:
            return CONCURRENT
        raise SymbolicUnsupported("mixed parallel component difference")
    return CONCURRENT


class _SpatialIndex:
    """A bucket grid over piece bounding boxes, for sub-quadratic pair
    enumeration: ``query`` returns only the pieces whose bounding box
    overlaps the query box.

    The bucket edge per dimension is the largest piece extent in that
    dimension, so every piece lands in at most two buckets per dimension
    and a piece-sized query box touches a bounded number of buckets.
    (A sorted-by-dim-0 list degenerates on tiled grids: with only a
    handful of distinct tile origins per dimension, a dim-0 window
    admits most of the rows and every query pays a linear scan.)"""

    #: Below this many pieces a plain scan beats building the grid.
    LINEAR_CUTOFF = 24

    def __init__(self, entries: List[Tuple[Piece, Tuple[AP, ...]]]) -> None:
        rows = []
        for k, (p, cd) in enumerate(entries):
            bbox = tuple((ap[0], ap_last(ap)) for ap in cd)
            rows.append((k, p, cd, bbox))
        self.rows = rows
        self.buckets: Optional[Dict[Tuple[int, ...], list]] = None
        self.cell: Tuple[int, ...] = ()
        if len(rows) <= self.LINEAR_CUTOFF:
            return
        rank = len(rows[0][3])
        self.cell = tuple(
            max(1, max(r[3][d][1] - r[3][d][0] + 1 for r in rows))
            for d in range(rank)
        )
        buckets: Dict[Tuple[int, ...], list] = {}
        for row in rows:
            for key in product(*(
                range(lo // c, hi // c + 1)
                for (lo, hi), c in zip(row[3], self.cell)
            )):
                buckets.setdefault(key, []).append(row)
        self.buckets = buckets

    def query(self, qbox: Tuple[Tuple[int, int], ...]) -> list:
        """``(k, piece, dims)`` rows with bbox overlapping ``qbox``."""
        out: list = []
        if self.buckets is None:
            for row in self.rows:
                for (blo, bhi), (qlo, qhi) in zip(row[3], qbox):
                    if blo > qhi or bhi < qlo:
                        break
                else:
                    out.append((row[0], row[1], row[2]))
            return out
        buckets = self.buckets
        seen = set()
        for key in product(*(
            range(lo // c, hi // c + 1)
            for (lo, hi), c in zip(qbox, self.cell)
        )):
            for row in buckets.get(key, ()):
                k = row[0]
                if k in seen:
                    continue
                seen.add(k)
                for (blo, bhi), (qlo, qhi) in zip(row[3], qbox):
                    if blo > qhi or bhi < qlo:
                        break
                else:
                    out.append((k, row[1], row[2]))
        return out


def _outside_cell(
    dims: Tuple[AP, ...], box: Tuple[Tuple[int, int], ...],
) -> Optional[Tuple[int, ...]]:
    """A concrete cell of the piece landing outside the box."""
    cell: List[int] = []
    found = False
    for ap, (lo, hi) in zip(dims, box):
        if not found and ap[0] < lo:
            cell.append(ap[0])
            found = True
        elif not found and ap_last(ap) >= hi:
            cell.append(ap_last(ap))
            found = True
        else:
            clipped = ap_clip(ap, lo, hi)
            cell.append(clipped[0] if clipped[2] else ap[0])
    return tuple(cell) if found else None


def check_site_symbolic(site: SiteRef, sp: SitePieces) -> SymbolicCheck:
    """Validate one site's :class:`SitePieces` against the reference
    dependences, entirely by progression algebra — no instance is ever
    enumerated, so the cost is a function of the *piece* count (loop
    nests x tiles), not the mesh."""
    assert site.box is not None
    box = site.box
    box_vol = 1
    for lo, hi in box:
        box_vol *= max(0, hi - lo)

    clipped: List[Tuple[Piece, Tuple[AP, ...], int]] = []
    outside_w: List[str] = []
    for p in sp.pieces:
        cdims = tuple(
            ap_clip(ap, lo, hi) for ap, (lo, hi) in zip(p.dims, box)
        )
        raw, cv = ap_volume(p.dims), ap_volume(cdims)
        if raw > cv:
            cell = _outside_cell(p.dims, box)
            for v in p.vs:
                outside_w.append(
                    f"write of {cell} (var {v}) lands outside the "
                    f"reference write box"
                )
        if cv:
            clipped.append((p, cdims, cv))

    # ---- TV003: exactly-once coverage of the write box -------------------
    missing_w: List[str] = []
    dup_w: List[str] = []
    per_v: Dict[int, List[Tuple[Piece, Tuple[AP, ...], int]]] = {}
    for entry in clipped:
        p = entry[0]
        for v in p.vs:
            per_v.setdefault(v, []).append(entry)
        if p.mult > 1:
            cell = tuple(ap[0] for ap in entry[1])
            for v in p.vs:
                dup_w.append(
                    f"instance {cell} (var {v}) is written {p.mult} times"
                )
    # Variables written by sibling anchors of one nest share the same
    # clipped geometry, and the pairwise-overlap scan only depends on
    # that geometry — run it once per distinct multiset of progressions
    # and replay the verdict for every variable in the group.
    scanned: Dict[tuple, Tuple[List[Tuple[int, ...]], int]] = {}
    overlapped = False
    for v in range(site.nv):
        plist = per_v.get(v, [])
        key = tuple(sorted(cd for _, cd, _ in plist))
        res = scanned.get(key)
        if res is None:
            pair_cells: List[Tuple[int, ...]] = []
            index = _SpatialIndex([(p, cd) for p, cd, _ in plist])
            for i, (_, di, _) in enumerate(plist):
                qbox = tuple((ap[0], ap_last(ap)) for ap in di)
                for j, _, dj in index.query(qbox):
                    if j <= i:
                        continue
                    joint = _joint(di, dj)
                    if joint is not None:
                        pair_cells.append(tuple(ap[0] for ap in joint))
            res = (pair_cells, sum(cv for _, _, cv in plist))
            scanned[key] = res
        pair_cells, covered = res
        for cell in pair_cells:
            dup_w.append(
                f"instance {cell} (var {v}) is written 2 times"
            )
            overlapped = True
        if not overlapped and covered < box_vol:
            missing_w.append(
                f"instance coverage deficit for var {v}: "
                f"{box_vol - covered} cell(s) of the reference write box "
                f"are never written (live store removed?)"
            )

    # ---- TV001/TV002/TV007: the per-dependence-class lex walk ------------
    v0 = [(p, cd) for p, cd, _ in clipped if 0 in p.vs]
    order_w: List[str] = []
    conc_w: List[str] = []
    anti_w: List[str] = []

    def witness_flow(a: Piece, b: Piece, off, jbox, kind: str) -> str:
        x = tuple(ap[0] for ap in jbox)
        src = tuple(c + d for c, d in zip(x, off))
        ts_c = a.ts_at(x)
        ts_s = b.ts_at(src)
        if kind == "after":
            return (
                f"flow dependence (offset {off}): source instance "
                f"{src} [t={render_timestamp(ts_s)}] is scheduled "
                f"after its target {x} [t={render_timestamp(ts_c)}]"
            )
        return (
            f"flow dependence (offset {off}): instances {src} "
            f"[t={render_timestamp(ts_s)}] and {x} "
            f"[t={render_timestamp(ts_c)}] are concurrent"
        )

    index0 = _SpatialIndex(v0)
    for off in site.flow_offsets:
        for a, a_dims in v0:          # target cells live in a
            qbox = tuple(
                (ap[0] + o, ap_last(ap) + o) for ap, o in zip(a_dims, off)
            )
            for _, b, b_dims in index0.query(qbox):  # source cells in b
                jbox = _joint(a_dims, b_dims, off)
                if jbox is None:
                    continue
                verdict = _compare_forms(b.ts, off, a.ts, None, jbox)
                if verdict == AFTER:
                    order_w.append(witness_flow(a, b, off, jbox, "after"))
                elif verdict == CONCURRENT:
                    conc_w.append(witness_flow(a, b, off, jbox, "conc"))

    for off in site.anti_offsets:
        for a, a_dims in v0:          # reader cells live in a
            qbox = tuple(
                (ap[0] + o, ap_last(ap) + o) for ap, o in zip(a_dims, off)
            )
            for _, b, b_dims in index0.query(qbox):  # overwritten cell in b
                jbox = _joint(a_dims, b_dims, off)
                if jbox is None:
                    continue
                verdict = _compare_forms(a.ts, None, b.ts, off, jbox)
                if verdict != BEFORE:
                    x = tuple(ap[0] for ap in jbox)
                    dst = tuple(c + d for c, d in zip(x, off))
                    anti_w.append(
                        f"anti dependence (offset {off}): instance {x} "
                        f"[t={render_timestamp(a.ts_at(x))}] reads the "
                        f"initial value of {dst} but is not scheduled "
                        f"before its write "
                        f"[t={render_timestamp(b.ts_at(dst))}]"
                    )

    # ---- certificate stats ------------------------------------------------
    # With exactly-once coverage, the timestamp map holds every box cell,
    # so the checked edge counts close to a product formula per offset.
    def edges(offsets) -> int:
        total = 0
        for off in offsets:
            pairs = 1
            for (lo, hi), o in zip(box, off):
                pairs *= max(0, (hi - lo) - abs(o))
            total += pairs
        return total

    cells = (
        box_vol
        if not missing_w and not overlapped
        else sum(cv for p, _, cv in clipped if 0 in p.vs)
    )
    stats = {
        "instances": sp.instances(),
        "cells": cells,
        "flow_edges": edges(site.flow_offsets),
        "anti_edges": edges(site.anti_offsets),
    }
    violations = [
        (code, ws)
        for code, ws in (
            ("TV003", missing_w), ("TV003", dup_w), ("TV003", outside_w),
            ("TV001", order_w), ("TV002", conc_w), ("TV007", anti_w),
        )
        if ws
    ]
    return SymbolicCheck(stats, violations)
