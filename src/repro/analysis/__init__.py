"""Static analysis for in-place stencil pipelines.

A standalone audit layer over the compiler: a two-level dependence
engine (:mod:`~repro.analysis.dependence`), the §2.1 in-place legality
checks (:mod:`~repro.analysis.legality`), a wavefront race detector
replaying the ``cfd.get_parallel_blocks`` CSR payload
(:mod:`~repro.analysis.wavefront`), an abstract-interpretation
memory-safety analyzer proving accesses in bounds and auditing
bufferization's in-place reuse (:mod:`~repro.analysis.absint`) and
structured diagnostics with stable ``IP0xx`` codes
(:mod:`~repro.analysis.diagnostics`).

Entry points: :func:`analyze_module` for a one-shot walk,
:class:`AnalysisGate` for pipeline integration via
``CompileOptions.check_level``, and ``python -m repro.analysis`` as the
CLI lint driver over the example pipelines.
"""

from repro.analysis.absint import (
    Interval,
    MemorySafetyReport,
    run_memory_safety,
)
from repro.analysis.analyzer import (
    CHECK_LEVELS,
    AnalysisError,
    AnalysisGate,
    analyze_module,
    analyze_op,
)
from repro.analysis.dependence import (
    AccessSet,
    cross_check_stencil,
    decode_stencil_attr,
    flow_distance_vectors,
    lex_sign,
    lowered_access_set,
    pattern_access_set,
    schedule_relevant_offsets,
    stencil_raw_attrs,
)
from repro.analysis.diagnostics import (
    ERROR_CODES,
    SEVERITIES,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.legality import (
    block_offset_range,
    check_sweep_order,
    check_tiled_loop,
    illegal_block_offsets,
    tile_sizes_legal,
)
from repro.analysis.wavefront import (
    check_csr_schedule,
    check_get_parallel_blocks,
    derive_block_offsets,
)

__all__ = [
    "AccessSet",
    "AnalysisError",
    "AnalysisGate",
    "CHECK_LEVELS",
    "Diagnostic",
    "DiagnosticReport",
    "ERROR_CODES",
    "Interval",
    "MemorySafetyReport",
    "SEVERITIES",
    "analyze_module",
    "analyze_op",
    "block_offset_range",
    "check_csr_schedule",
    "check_get_parallel_blocks",
    "check_sweep_order",
    "check_tiled_loop",
    "cross_check_stencil",
    "decode_stencil_attr",
    "derive_block_offsets",
    "flow_distance_vectors",
    "illegal_block_offsets",
    "lex_sign",
    "lowered_access_set",
    "pattern_access_set",
    "run_memory_safety",
    "schedule_relevant_offsets",
    "stencil_raw_attrs",
    "tile_sizes_legal",
]
