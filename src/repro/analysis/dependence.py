"""The two-level dependence engine.

Distance vectors are extracted **two independent ways** so that one can
audit the other:

* at the ``cfd`` level, by decoding the raw ``stencil`` attribute box of
  a ``cfd.stencilOp`` — deliberately *not* through
  :class:`~repro.core.stencil.StencilPattern`, whose constructor already
  enforces the invariants the analyzer is supposed to check;
* at the ``scf`` level, by lowering a probe clone of the op with the
  production scalar lowering and recovering access offsets from the raw
  index arithmetic of the emitted loop nest (``tensor.extract`` /
  ``tensor.insert`` coordinates resolved to ``induction_var + constant``
  form).

:func:`cross_check_stencil` compares the two and reports any mismatch as
``IP003`` — a machine check that the lowering reads exactly the cells the
L/U tags promise (the correctness argument of §3.2/Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.consteval import resolve_affine
from repro.analysis.diagnostics import Diagnostic
from repro.ir.attributes import BoolAttr, DenseIntElementsAttr, IntegerAttr
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation
from repro.ir.values import BlockArgument, OpResult, Value

Offset = Tuple[int, ...]


def lex_sign(offset: Offset) -> int:
    """-1 / 0 / +1 for lexicographically negative / zero / positive."""
    for c in offset:
        if c < 0:
            return -1
        if c > 0:
            return 1
    return 0


@dataclass
class AccessSet:
    """The access structure of one in-place stencil update.

    ``y_reads`` are reads of the output tensor (the L subset), ``x_reads``
    reads of the previous iterate (the U subset plus the center), and
    ``b_reads`` reads of the right-hand side (the center only, for a
    well-formed lowering).
    """

    rank: int
    y_reads: Set[Offset] = field(default_factory=set)
    x_reads: Set[Offset] = field(default_factory=set)
    b_reads: Set[Offset] = field(default_factory=set)

    def describe(self) -> str:
        return (
            f"Y{sorted(self.y_reads)} X{sorted(self.x_reads)} "
            f"B{sorted(self.b_reads)}"
        )


# ---------------------------------------------------------------------------
# Level 1: the cfd.stencilOp attribute box, decoded from scratch.
# ---------------------------------------------------------------------------


def decode_stencil_attr(attr: DenseIntElementsAttr):
    """Decode a pattern box into ``(rank, l_offsets, u_offsets)``.

    An independent re-derivation of :class:`StencilPattern`'s enumeration:
    row-major positions re-centered by the per-dimension radii.
    """
    shape = attr.shape
    rank = len(shape)
    radii = [s // 2 for s in shape]
    strides: List[int] = []
    acc = 1
    for s in reversed(shape):
        strides.insert(0, acc)
        acc *= s
    l_offsets: List[Offset] = []
    u_offsets: List[Offset] = []
    for pos, tag in enumerate(attr.flat()):
        if tag == 0:
            continue
        coords = [(pos // st) % s for st, s in zip(strides, shape)]
        offset = tuple(c - r for c, r in zip(coords, radii))
        (l_offsets if tag == -1 else u_offsets).append(offset)
    return rank, l_offsets, u_offsets


def stencil_raw_attrs(op: Operation):
    """``(rank, l, u, sweep, allow_initial_reads)`` from raw attributes,
    or ``None`` when the op does not carry a well-formed box."""
    attr = op.attributes.get("stencil")
    if not isinstance(attr, DenseIntElementsAttr) or not attr.shape:
        return None
    rank, l_offsets, u_offsets = decode_stencil_attr(attr)
    sweep_attr = op.attributes.get("sweep")
    sweep = sweep_attr.value if isinstance(sweep_attr, IntegerAttr) else 1
    initial = op.attributes.get("allow_initial_reads")
    allow_initial = bool(initial.value) if isinstance(initial, BoolAttr) else False
    return rank, l_offsets, u_offsets, sweep, allow_initial


def pattern_access_set(op: Operation) -> Optional[AccessSet]:
    """The :class:`AccessSet` promised by the op's L/U tags."""
    raw = stencil_raw_attrs(op)
    if raw is None:
        return None
    rank, l_offsets, u_offsets, _, _ = raw
    center = tuple([0] * rank)
    return AccessSet(
        rank=rank,
        y_reads=set(l_offsets),
        x_reads=set(u_offsets) | {center},
        b_reads={center},
    )


def schedule_relevant_offsets(
    l_offsets: List[Offset], sweep: int, allow_initial_reads: bool
) -> List[Offset]:
    """Predecessor offsets constraining tile execution order.

    Sweep-adjusted lexicographically negative L offsets are true
    dependences and contribute themselves; offsets on the other side are
    initial-content reads (anti-dependences) and contribute their
    negation. Independent of
    :meth:`StencilPattern.schedule_relevant_offsets`.
    """
    out: Set[Offset] = set()
    for o in l_offsets:
        adjusted = tuple(c * sweep for c in o)
        if lex_sign(adjusted) < 0:
            out.add(o)
        elif allow_initial_reads:
            out.add(tuple(-c for c in o))
    return sorted(out)


def flow_distance_vectors(
    l_offsets: List[Offset], sweep: int, allow_initial_reads: bool
) -> List[Offset]:
    """Iteration-space distance vectors of the in-place dependences.

    A (sweep-directed) read at offset ``r`` of a value written in the
    same sweep has distance ``-r`` — lexicographically positive exactly
    when the schedule is legal.
    """
    return [
        tuple(-c for c in o)
        for o in schedule_relevant_offsets(l_offsets, sweep, allow_initial_reads)
    ]


def block_dependence_witness(
    l_offsets: List[Offset],
    sweep: int,
    allow_initial_reads: bool,
    tile_sizes,
    engine: Optional[str] = None,
) -> Optional[Tuple[Offset, Offset]]:
    """Does some L offset cross *forward* at block granularity?

    The dependence-existence query behind §2.1 tile legality: a
    ``(element_offset, block_offset)`` witness of a cyclic tile
    dependence, or ``None`` when the tiling is legal. Under ``auto`` /
    ``symbolic`` the answer is an affine overlap test over the
    lex-disjunct decomposition of the reachable-block box
    (:mod:`repro.analysis.affine.blockdep`) — O(rank²) per offset, never
    an instance-pair scan; ``enumerated`` forces the corner-alignment
    product the affine path is audited against.
    """
    import time

    from repro.analysis.affine import ENGINE_STATS, resolve_verify_engine
    from repro.analysis.affine.blockdep import (
        block_offset_bounds,
        violation_witness,
    )

    t0 = time.perf_counter()
    mode = resolve_verify_engine(engine)
    relevant = schedule_relevant_offsets(
        list(l_offsets), sweep, allow_initial_reads
    )
    if mode != "enumerated":
        found = None
        for offset in relevant:
            block = violation_witness(offset, sweep, tile_sizes)
            if block is not None:
                found = (offset, block)
                break
        ENGINE_STATS.record(
            "dependence", "symbolic", seconds=time.perf_counter() - t0
        )
        return found
    found = None
    for offset in relevant:
        per_dim = []
        for d in range(len(tile_sizes)):
            lo, hi = block_offset_bounds(offset[d], int(tile_sizes[d]))
            per_dim.append(range(lo, hi + 1))
        for block in _iter_product(per_dim):
            if any(c != 0 for c in block) and lex_sign(
                tuple(c * sweep for c in block)
            ) >= 0:
                found = (offset, block)
                break
        if found:
            break
    ENGINE_STATS.record(
        "dependence", "enumerated", seconds=time.perf_counter() - t0
    )
    return found


def _iter_product(ranges):
    if not ranges:
        yield ()
        return
    for head in ranges[0]:
        for tail in _iter_product(ranges[1:]):
            yield (head,) + tail


# ---------------------------------------------------------------------------
# Level 2: lowered scf loop nests, read back from index arithmetic.
# ---------------------------------------------------------------------------


def _tensor_origin(value: Value) -> Tuple[str, Optional[int]]:
    """Classify the tensor a ``tensor.extract``/``insert`` touches.

    Chases insert chains and loop iter-args upward. Returns
    ``("iter", None)`` for the in-place accumulator threaded through
    ``scf.for`` iter-args, ``("arg", i)`` for function block argument
    ``i``, and ``("other", None)`` otherwise.
    """
    current = value
    for _ in range(10_000):  # defensive bound; chains are short
        if isinstance(current, OpResult):
            op = current.op
            if op.name == "tensor.insert":
                current = op.operand(1)
                continue
            return "other", None
        if isinstance(current, BlockArgument):
            block = current.block
            parent = block.parent.parent if block.parent is not None else None
            if parent is not None and parent.name == "scf.for":
                if current.index == 0:
                    return "other", None  # an induction variable
                return "iter", None
            if parent is not None and parent.name == "func.func":
                return "arg", current.index
            return "other", None
        return "other", None
    return "other", None


def extract_loop_access_set(root: Operation) -> Optional[AccessSet]:
    """Recover the :class:`AccessSet` of the innermost in-place loop nest
    under ``root`` from raw index arithmetic.

    The write anchor is the first ``tensor.insert`` into the iter-arg
    chain: its space coordinates define the per-dimension index roots.
    Every ``tensor.extract`` is then resolved against those roots via
    :func:`~repro.analysis.consteval.resolve_affine`; reads whose roots do
    not all match the write roots (e.g. boundary handling) are ignored.
    Returns ``None`` when no in-place write is found.
    """
    inserts = [
        op
        for op in root.walk()
        if op.name == "tensor.insert"
        and _tensor_origin(op.operand(1))[0] == "iter"
    ]
    if not inserts:
        return None
    anchor = inserts[0]
    # Coordinate 0 is the variable index; space coordinates follow.
    write_coords = anchor.operands[2:]
    roots = []
    base = []
    for coord in write_coords[1:]:
        r, off = resolve_affine(coord)
        roots.append(r)
        base.append(off)
    rank = len(roots)
    access = AccessSet(rank=rank)
    for op in root.walk():
        if op.name != "tensor.extract":
            continue
        coords = op.operands[1:]
        if len(coords) != rank + 1:
            continue
        offset = []
        matched = True
        for d, coord in enumerate(coords[1:]):
            r, off = resolve_affine(coord)
            if r is not roots[d]:
                matched = False
                break
            offset.append(off - base[d])
        if not matched:
            continue
        kind, arg_index = _tensor_origin(op.operand(0))
        offset_t = tuple(offset)
        if kind == "iter":
            access.y_reads.add(offset_t)
        elif kind == "arg" and arg_index == 0:
            access.x_reads.add(offset_t)
        elif kind == "arg" and arg_index == 1:
            access.b_reads.add(offset_t)
    return access


def lowered_access_set(op: Operation) -> Optional[AccessSet]:
    """Lower a probe clone of a ``cfd.stencilOp`` with the production
    scalar lowering and read its access set back from the loop nest."""
    from repro.core.lowering import LowerStencilsPass
    from repro.dialects import func
    from repro.ir import ModuleOp, OpBuilder
    from repro.ir.types import FunctionType

    raw = stencil_raw_attrs(op)
    if raw is None or op.num_operands < 3:
        return None
    probe = ModuleOp.create()
    builder = OpBuilder.at_end(probe.body)
    types = [op.operand(i).type for i in range(3)]
    fn = func.FuncOp.build(
        builder, "probe", FunctionType(types, [types[2]])
    )
    fb = OpBuilder.at_end(fn.body)
    x, b, y = fn.arguments
    # Rebuild the op from its raw attributes (bounds dropped: the probe
    # analyzes the full interior, which has the same access structure).
    attrs = {
        key: op.attributes[key]
        for key in ("stencil", "nbVar", "sweep", "allow_initial_reads")
        if key in op.attributes
    }
    attrs["has_bounds"] = BoolAttr(False)
    clone = fb.create(op.name, [x, b, y], [y.type], attrs, regions=[])
    body_region = op.regions[0]
    mapping: Dict[Value, Value] = {}
    from repro.ir.block import Block, Region

    new_region = Region(
        [Block(arg_types=[a.type for a in body_region.entry_block.arguments])]
    )
    for old_arg, new_arg in zip(
        body_region.entry_block.arguments, new_region.entry_block.arguments
    ):
        mapping[old_arg] = new_arg
    for inner in body_region.entry_block.operations:
        new_region.entry_block.append(inner.clone(mapping))
    clone.append_region(new_region)
    func.ReturnOp.build(fb, [clone.result()])
    LowerStencilsPass().run(probe)
    return extract_loop_access_set(fn)


# ---------------------------------------------------------------------------
# The cross-check.
# ---------------------------------------------------------------------------


def compare_access_sets(
    expected: AccessSet, actual: AccessSet, op: Optional[Operation] = None
) -> List[Diagnostic]:
    """``IP003`` diagnostics for every disagreement between the two."""
    diags: List[Diagnostic] = []
    path = op_path(op) if op is not None else ""
    excerpt = op_excerpt(op) if op is not None else ""
    pairs = (
        ("Y (current-iterate / L)", expected.y_reads, actual.y_reads),
        ("X (previous-iterate / U)", expected.x_reads, actual.x_reads),
        ("B (right-hand side)", expected.b_reads, actual.b_reads),
    )
    for label, want, got in pairs:
        if want == got:
            continue
        missing = sorted(want - got)
        extra = sorted(got - want)
        parts = []
        if missing:
            parts.append(f"pattern offsets absent from the loop nest: {missing}")
        if extra:
            parts.append(f"loop-nest offsets absent from the pattern: {extra}")
        diags.append(
            Diagnostic(
                code="IP003",
                message=f"{label} reads disagree — " + "; ".join(parts),
                op_path=path,
                excerpt=excerpt,
            )
        )
    return diags


def cross_check_stencil(op: Operation) -> List[Diagnostic]:
    """Audit one ``cfd.stencilOp``: L/U tags vs lowered index arithmetic."""
    expected = pattern_access_set(op)
    if expected is None:
        return []
    try:
        actual = lowered_access_set(op)
    except Exception as exc:
        return [
            Diagnostic(
                code="IP010",
                severity="note",
                message=f"could not lower a probe clone for cross-checking: {exc}",
                op_path=op_path(op),
            )
        ]
    if actual is None:
        return [
            Diagnostic(
                code="IP010",
                severity="note",
                message="no in-place loop nest found in the lowered probe",
                op_path=op_path(op),
            )
        ]
    return compare_access_sets(expected, actual, op)
