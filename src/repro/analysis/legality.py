"""In-place legality: the §2.1 restrictions, re-derived independently.

Two checks, both working from *raw attributes* (never through
:class:`StencilPattern` or :func:`legalize_tile_sizes`, whose code they
audit):

* **sweep order** (``IP001``): every L offset must be lexicographically
  negative under the declared sweep direction (positive offsets are only
  admissible with ``allow_initial_reads``, where they are initial-content
  anti-dependences);
* **tile legality** (``IP002``): a rectangular tiling executed in
  (sweep-directed) lexicographic tile order is valid only when every
  schedule-relevant offset maps to lexicographically negative block
  offsets for every corner alignment of the tile (Fig. 1). A tile-size
  vector that lets an L dependence cross *forward* at block granularity
  creates a cyclic tile dependence — e.g. tile sizes ``(16, 128)`` for
  the 9-point kernel's ``(-1, 1)`` offset, which the paper fixes by
  forcing ``1 x 128``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.analysis.consteval import eval_index
from repro.analysis.dependence import (
    lex_sign,
    schedule_relevant_offsets,
    stencil_raw_attrs,
)
from repro.analysis.diagnostics import Diagnostic
from repro.ir.attributes import BoolAttr
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation

Offset = Tuple[int, ...]


def _floor_div(a: int, b: int) -> int:
    return a // b  # Python's // is the floor division the derivation needs


def block_offset_range(element_offset: int, tile_size: int) -> range:
    """The block offsets an element offset can produce along one dim.

    An element at in-tile position ``c`` (``0 <= c < T``) reaches in-tile
    position ``c + o``; the containing block moves by
    ``floor((c + o) / T)``. The extremes are attained at the tile's two
    corners, and every integer in between is attainable.
    """
    lo = _floor_div(element_offset, tile_size)
    hi = _floor_div(tile_size - 1 + element_offset, tile_size)
    return range(lo, hi + 1)


def illegal_block_offsets(
    l_offsets: Sequence[Offset],
    sweep: int,
    allow_initial_reads: bool,
    tile_sizes: Sequence[int],
    engine: Optional[str] = None,
) -> List[Tuple[Offset, Offset]]:
    """All ``(element_offset, block_offset)`` pairs violating §2.1.

    A block offset is a violation when it is non-zero and not
    lexicographically negative after sweep adjustment: the tile schedule
    would then run a dependent tile no later than its predecessor.

    Under ``auto``/``symbolic`` the violating region is read off the
    lex-disjunct boxes of :mod:`repro.analysis.affine.blockdep`: legal
    tilings are dismissed without visiting a single corner alignment,
    and violations are listed in time linear in their number. The
    ``enumerated`` engine scans the full corner product (the oracle the
    affine path is audited against); both produce the identical
    lexicographically-ordered pair list.
    """
    from repro.analysis.affine import ENGINE_STATS, resolve_verify_engine

    t0 = time.perf_counter()
    mode = resolve_verify_engine(engine)
    relevant = schedule_relevant_offsets(
        list(l_offsets), sweep, allow_initial_reads
    )
    violations: List[Tuple[Offset, Offset]] = []
    if mode != "enumerated":
        from repro.analysis.affine.blockdep import violating_blocks

        for offset in relevant:
            violations.extend(
                (offset, block)
                for block in violating_blocks(offset, sweep, tile_sizes)
            )
        ENGINE_STATS.record(
            "legality", "symbolic", seconds=time.perf_counter() - t0
        )
        return violations
    for offset in relevant:
        per_dim = [
            block_offset_range(offset[d], int(tile_sizes[d]))
            for d in range(len(tile_sizes))
        ]
        for block in _product(per_dim):
            if all(c == 0 for c in block):
                continue
            adjusted = tuple(c * sweep for c in block)
            if lex_sign(adjusted) >= 0:
                violations.append((offset, block))
    ENGINE_STATS.record(
        "legality", "enumerated", seconds=time.perf_counter() - t0
    )
    return violations


def _product(ranges: List[range]):
    if not ranges:
        yield ()
        return
    for head in ranges[0]:
        for tail in _product(ranges[1:]):
            yield (head,) + tail


def tile_sizes_legal(
    pattern, tile_sizes: Sequence[int], engine: Optional[str] = None
) -> bool:
    """Convenience predicate over a :class:`StencilPattern` (used by the
    checker/legalizer agreement property test and the tile-size
    legalizer). A pure existence query: under ``auto``/``symbolic`` it
    is one affine overlap test per offset — independent of the tile
    sizes — via :func:`~repro.analysis.dependence.block_dependence_witness`."""
    from repro.analysis.dependence import block_dependence_witness

    return (
        block_dependence_witness(
            list(pattern.l_offsets),
            pattern.sweep,
            pattern.allow_initial_reads,
            tile_sizes,
            engine=engine,
        )
        is None
    )


# ---------------------------------------------------------------------------
# Op-level checks.
# ---------------------------------------------------------------------------


def check_sweep_order(op: Operation) -> List[Diagnostic]:
    """``IP001`` for every L offset on the wrong lexicographic side."""
    raw = stencil_raw_attrs(op)
    if raw is None:
        return []
    _, l_offsets, _, sweep, allow_initial = raw
    if sweep not in (1, -1):
        return [
            Diagnostic(
                code="IP001",
                message=f"declared sweep {sweep!r} is neither 1 nor -1",
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
        ]
    diags: List[Diagnostic] = []
    direction = "negative" if sweep == 1 else "positive"
    for o in l_offsets:
        adjusted = tuple(c * sweep for c in o)
        sign = lex_sign(adjusted)
        if sign < 0:
            continue
        if sign == 0:
            message = (
                f"L offset {o} is the center: the update would read the "
                "value it is about to write"
            )
        elif allow_initial:
            continue  # an initial-content read, explicitly permitted
        else:
            message = (
                f"L offset {o} is not lexicographically {direction}: the "
                f"{'forward' if sweep == 1 else 'backward'} traversal "
                "would read a cell it has not written yet"
            )
        diags.append(
            Diagnostic(
                code="IP001",
                message=message,
                op_path=op_path(op),
                excerpt=op_excerpt(op),
            )
        )
    return diags


def loop_stencil_raw_attrs(loop: Operation):
    """Stencil attributes of a ``cfd.tiled_loop``: the stamped copies
    left by the tiling pass, or the direct inner ``cfd.stencilOp``."""
    if "stencil" in loop.attributes:
        return stencil_raw_attrs(loop)
    for op in loop.walk():
        if op is not loop and op.name == "cfd.stencilOp":
            return stencil_raw_attrs(op)
    return None


def static_tile_sizes(loop: Operation) -> Optional[List[int]]:
    """Tile sizes of a ``cfd.tiled_loop``: its step operands, evaluated
    statically (the stamped ``tile_sizes`` attribute is *not* consulted —
    the steps are what actually executes)."""
    steps = getattr(loop, "steps", None)
    if steps is None:
        return None
    sizes = [eval_index(s) for s in steps]
    if any(s is None or s < 1 for s in sizes):
        return None
    return [int(s) for s in sizes]


def check_tiled_loop(
    loop: Operation, engine: Optional[str] = None
) -> List[Diagnostic]:
    """Audit one ``cfd.tiled_loop``: sweep consistency and tile legality."""
    raw = loop_stencil_raw_attrs(loop)
    if raw is None:
        return []  # not a stencil loop (or already fully lowered)
    rank, l_offsets, _, sweep, allow_initial = raw
    diags: List[Diagnostic] = []

    reverse_attr = loop.attributes.get("reverse")
    reverse = bool(reverse_attr.value) if isinstance(reverse_attr, BoolAttr) else False
    if reverse != (sweep == -1):
        diags.append(
            Diagnostic(
                code="IP001",
                message=(
                    f"loop traversal direction (reverse={reverse}) does not "
                    f"match the stencil sweep ({sweep}): the tile order "
                    "would run against the dependence direction"
                ),
                op_path=op_path(loop),
                excerpt=op_excerpt(loop),
            )
        )

    tile_sizes = static_tile_sizes(loop)
    if tile_sizes is None or len(tile_sizes) != rank:
        diags.append(
            Diagnostic(
                code="IP010",
                severity="note",
                message="tile step sizes are not statically resolvable; "
                "tile-legality check skipped",
                op_path=op_path(loop),
            )
        )
        return diags
    for element_offset, block in illegal_block_offsets(
        l_offsets, sweep, allow_initial, tile_sizes, engine=engine
    ):
        diags.append(
            Diagnostic(
                code="IP002",
                message=(
                    f"tile sizes {tile_sizes} let L offset {element_offset} "
                    f"reach block offset {block}, which is not "
                    "lexicographically negative under the declared sweep: "
                    "the lexicographic tile order has a cyclic dependence "
                    "(a dimension carrying a negative dependence distance "
                    "must have tile size 1, §2.1)"
                ),
                op_path=op_path(loop),
                excerpt=op_excerpt(loop),
            )
        )
    return diags
