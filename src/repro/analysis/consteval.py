"""Best-effort static evaluation of index expressions.

The analyzer needs concrete integers for tile steps and sub-domain grid
extents. The tiling pass materializes them as ``arith`` index arithmetic
over constants (``tensor.dim`` folds to a constant for static shapes),
so a tiny recursive evaluator over the arithmetic ops recovers them.
Anything it cannot resolve — dynamic shapes, loop-carried values — yields
``None`` and the caller degrades to an ``IP010`` note instead of a wrong
answer.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.attributes import IntegerAttr
from repro.ir.values import OpResult, Value

_BINARY = {
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.floordivi": lambda a, b: a // b if b else None,
    "arith.ceildivi": lambda a, b: -(-a // b) if b else None,
    "arith.remi": lambda a, b: a % b if b else None,
    "arith.maxsi": max,
    "arith.minsi": min,
}


def eval_index(value: Value, _memo: Optional[Dict[int, Optional[int]]] = None) -> Optional[int]:
    """Evaluate an index-typed SSA value to a Python int, or ``None``."""
    memo = _memo if _memo is not None else {}
    key = id(value)
    if key in memo:
        return memo[key]
    memo[key] = None  # cycle guard; real IR is acyclic but stay safe
    result: Optional[int] = None
    if isinstance(value, OpResult):
        op = value.op
        if op.name == "arith.constant":
            attr = op.attributes.get("value")
            if isinstance(attr, IntegerAttr):
                result = attr.value
        elif op.name == "tensor.dim":
            src_type = op.operand(0).type
            dim_attr = op.attributes.get("dim")
            shape = getattr(src_type, "shape", None)
            if (
                isinstance(dim_attr, IntegerAttr)
                and shape is not None
                and 0 <= dim_attr.value < len(shape)
            ):
                extent = shape[dim_attr.value]
                result = None if extent == -1 else int(extent)
        elif op.name in _BINARY and op.num_operands == 2:
            lhs = eval_index(op.operand(0), memo)
            rhs = eval_index(op.operand(1), memo)
            if lhs is not None and rhs is not None:
                result = _BINARY[op.name](lhs, rhs)
    memo[key] = result
    return result


def resolve_affine(value: Value):
    """Peel ``+c`` / ``-c`` constant terms off an index expression.

    Returns ``(root, offset)`` such that ``value == root + offset`` where
    ``root`` is the first value that is not an add/sub with a constant
    operand. This is how the lowered-loop dependence engine recovers
    stencil offsets from raw index arithmetic: reads are emitted as
    ``addi(idx, const)`` around the write index ``idx`` (for both sweep
    directions — the backward sweep's ``idx = hi - 1 - iv`` is itself the
    shared root).
    """
    offset = 0
    current = value
    while isinstance(current, OpResult):
        op = current.op
        if op.name == "arith.addi":
            lhs_c = _const_of(op.operand(0))
            rhs_c = _const_of(op.operand(1))
            if rhs_c is not None and lhs_c is None:
                offset += rhs_c
                current = op.operand(0)
                continue
            if lhs_c is not None and rhs_c is None:
                offset += lhs_c
                current = op.operand(1)
                continue
            break
        if op.name == "arith.subi":
            rhs_c = _const_of(op.operand(1))
            if rhs_c is not None and _const_of(op.operand(0)) is None:
                offset -= rhs_c
                current = op.operand(0)
                continue
            break
        break
    return current, offset


def _const_of(value: Value) -> Optional[int]:
    if isinstance(value, OpResult) and value.op.name == "arith.constant":
        attr = value.op.attributes.get("value")
        if isinstance(attr, IntegerAttr):
            return attr.value
    return None
