"""Structured diagnostics with stable ``IP0xx`` error codes.

Every finding of the static analyzer is a :class:`Diagnostic`: an error
code from the table below, a severity, a human-readable message, the
path of the offending operation inside the module and a short printed IR
excerpt. Codes are *stable* — tests, CI and downstream tooling match on
them — so new checks get new codes instead of repurposing old ones.

=======  ==================================================================
 IP001    sweep-order violation: an L offset is on the wrong
          lexicographic side for the declared sweep direction (§2.1)
 IP002    illegal tile sizes: the tiling maps an L dependence to a
          non-lexicographically-negative block offset (§2.1, Fig. 1)
 IP003    dependence cross-check mismatch: access offsets recovered from
          lowered loop index arithmetic disagree with the L/U pattern tags
 IP004    wavefront race: two sub-domains in the same parallel group are
          connected by a block-level dependence (Eq. 3, §2.3)
 IP005    wavefront coverage: a sub-domain is missing from the schedule
 IP006    wavefront overlap: a sub-domain appears twice, so two scheduled
          tiles have overlapping write regions
 IP007    wavefront order: a dependence points at a sub-domain scheduled
          in a *later* group (predecessor not strictly earlier)
 IP008    declared block stencil of ``cfd.get_parallel_blocks`` disagrees
          with the offsets derived from the L pattern and tile sizes
 IP009    malformed CSR payload (non-monotonic offsets, out-of-range or
          non-integral indices, mixed-direction dependence offsets)
 IP010    analysis limitation: a check was skipped because static
          information (tile sizes, grid extents) could not be resolved
 IP011    out-of-bounds access: an element or vector access range proven
          by the interval engine escapes its allocation
 IP012    slice window out of range: an ``extract_slice``/``subview``/
          ``insert_slice`` window exceeds its source buffer
 IP013    uninitialized read: a read of locally allocated cells that no
          producer or initializer has written
 IP014    bufferization clobber: an in-place buffer reuse overwrote a
          value that a later access still reads
 IP015    unverifiable in-place reuse: a read overlaps a write of an
          unrelated value lineage on the same buffer (warning)
 IP016    fusion opportunity rejected (informational): a producer could
          not be fused because its halo exceeds the stencil halo
=======  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

#: severity levels, most severe first.
SEVERITIES = ("error", "warning", "note")

#: The stable code registry: code -> short title. Never renumber.
ERROR_CODES = {
    "IP001": "sweep-order violation",
    "IP002": "illegal tile sizes across a backward dependence",
    "IP003": "dependence cross-check mismatch",
    "IP004": "wavefront race inside a parallel group",
    "IP005": "wavefront schedule misses a sub-domain",
    "IP006": "wavefront schedule duplicates a sub-domain (write overlap)",
    "IP007": "wavefront dependence scheduled in a later group",
    "IP008": "declared block stencil disagrees with derived offsets",
    "IP009": "malformed wavefront CSR payload",
    "IP010": "static information unavailable; check skipped",
    "IP011": "out-of-bounds access (interval proof failed)",
    "IP012": "slice window exceeds its source buffer",
    "IP013": "uninitialized read of a local buffer",
    "IP014": "bufferization reuse clobbers a live value",
    "IP015": "unverifiable in-place buffer reuse",
    "IP016": "fusion opportunity rejected",
}


@dataclass
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    message: str
    severity: str = "error"
    op_path: str = ""
    excerpt: str = ""
    #: Name of the pipeline pass after which the finding was produced
    #: (filled in by the :class:`~repro.analysis.analyzer.AnalysisGate`).
    after_pass: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return ERROR_CODES[self.code]

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        """Multi-line human-readable form (the CLI output format)."""
        lines = [f"{self.severity}[{self.code}] {self.title}: {self.message}"]
        if self.op_path:
            lines.append(f"  at {self.op_path}")
        if self.after_pass:
            lines.append(f"  after pass {self.after_pass!r}")
        if self.excerpt:
            for row in self.excerpt.splitlines():
                lines.append(f"  | {row}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with summary helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diags: List[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def summary(self) -> str:
        counts = {s: 0 for s in SEVERITIES}
        for d in self.diagnostics:
            counts[d.severity] += 1
        parts = [f"{n} {s}{'s' if n != 1 else ''}" for s, n in counts.items() if n]
        return ", ".join(parts) if parts else "no diagnostics"

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)
