"""Structured diagnostics with stable ``IP0xx``/``TV0xx`` error codes.

Every finding of the static analyzer is a :class:`Diagnostic`: an error
code from :data:`REGISTRY`, a severity, a human-readable message, the
path of the offending operation inside the module and a short printed IR
excerpt. Codes are *stable* — tests, CI and downstream tooling match on
them — so new checks get new codes instead of repurposing old ones.

``IP0xx`` codes belong to the in-place legality / wavefront / memory
analyzers; ``TV0xx`` codes belong to the per-pass translation validator
(:mod:`repro.analysis.tv`); ``RS0xx`` codes belong to the resilience
layer (:mod:`repro.runtime.resilience`) — retries, degradations,
fallbacks, quarantines, checkpoints and watchdog timeouts; ``PF0xx``
codes belong to the static performance prover
(:mod:`repro.analysis.perf`) — cache-capacity, halo-traffic, vector
shape and wavefront-parallelism findings priced against a machine
model; ``FE0xx`` codes belong to the Python ``@stencil`` frontend
(:mod:`repro.frontend`) — kernel-semantics findings produced by the
static analysis pass that runs over the user's Python AST *before* any
IR is constructed. This module is the single source of truth for the code table:
the README diagnostics tables are generated from :data:`REGISTRY` and a
test asserts they match exactly (codes, canonical severities, one-line
descriptions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: severity levels, most severe first.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class DiagnosticInfo:
    """One registry entry: the stable identity of a diagnostic code."""

    code: str
    title: str
    #: The severity this code is normally emitted at (README table column).
    severity: str
    #: One-line description (README table column).
    description: str


def _info(code: str, title: str, severity: str, description: str) -> DiagnosticInfo:
    assert severity in SEVERITIES
    return DiagnosticInfo(code, title, severity, description)


#: The stable code registry. Never renumber; new checks get new codes.
REGISTRY: Dict[str, DiagnosticInfo] = {
    info.code: info
    for info in (
        _info("IP001", "sweep-order violation", "error",
              "an L offset is on the wrong lexicographic side for the "
              "declared sweep direction (§2.1)"),
        _info("IP002", "illegal tile sizes across a backward dependence",
              "error",
              "the tiling maps an L dependence to a non-lexicographically-"
              "negative block offset (§2.1, Fig. 1)"),
        _info("IP003", "dependence cross-check mismatch", "error",
              "access offsets recovered from lowered loop index arithmetic "
              "disagree with the L/U pattern tags"),
        _info("IP004", "wavefront race inside a parallel group", "error",
              "two sub-domains in the same parallel group are connected by "
              "a block-level dependence (Eq. 3, §2.3)"),
        _info("IP005", "wavefront schedule misses a sub-domain", "error",
              "a sub-domain is missing from the CSR schedule"),
        _info("IP006", "wavefront schedule duplicates a sub-domain "
              "(write overlap)", "error",
              "a sub-domain appears twice, so two scheduled tiles have "
              "overlapping write regions"),
        _info("IP007", "wavefront dependence scheduled in a later group",
              "error",
              "a dependence points at a sub-domain scheduled in a later "
              "group (predecessor not strictly earlier)"),
        _info("IP008", "declared block stencil disagrees with derived "
              "offsets", "error",
              "the declared block stencil of cfd.get_parallel_blocks "
              "disagrees with the offsets derived from the L pattern and "
              "tile sizes"),
        _info("IP009", "malformed wavefront CSR payload", "error",
              "non-monotonic offsets, out-of-range or non-integral "
              "indices, or mixed-direction dependence offsets"),
        _info("IP010", "static information unavailable; check skipped",
              "note",
              "a check was skipped because static information (tile "
              "sizes, grid extents) could not be resolved"),
        _info("IP011", "out-of-bounds access (interval proof failed)",
              "error",
              "an element or vector access range proven by the interval "
              "engine escapes its allocation"),
        _info("IP012", "slice window exceeds its source buffer", "error",
              "an extract_slice/subview/insert_slice window exceeds its "
              "source buffer"),
        _info("IP013", "uninitialized read of a local buffer", "error",
              "a read of locally allocated cells that no producer or "
              "initializer has written"),
        _info("IP014", "bufferization reuse clobbers a live value", "error",
              "an in-place buffer reuse overwrote a value that a later "
              "access still reads"),
        _info("IP015", "unverifiable in-place buffer reuse", "warning",
              "a read overlaps a write of an unrelated value lineage on "
              "the same buffer"),
        _info("IP016", "fusion opportunity rejected", "note",
              "a producer could not be fused because its halo exceeds the "
              "stencil halo"),
        _info("IP017", "enumeration budget exceeded", "note",
              "a tile grid is larger than the enumeration limit; reports "
              "which engine (symbolic, enumerated, or hull-only) decided "
              "each access"),
        _info("TV001", "dependence scheduled out of order", "error",
              "a pass scheduled the source of a flow dependence after its "
              "target (witness: both instances and their timestamps)"),
        _info("TV002", "dependent instances scheduled concurrently", "error",
              "two instances connected by a dependence landed in the same "
              "parallel component (wavefront group or vector write)"),
        _info("TV003", "write coverage broken", "error",
              "a statement instance of the reference write box is missing, "
              "duplicated, or written outside the box after a pass"),
        _info("TV004", "fused producer no longer covers the consumed "
              "region", "error",
              "a fused producer's computed window does not contain the "
              "tile core the consumer stencil reads (dropped halo "
              "recomputation)"),
        _info("TV005", "stencil site lost or reordered", "error",
              "a stamped stencil site disappeared or changed relative "
              "program order during a pass"),
        _info("TV006", "translation validation skipped", "note",
              "a site could not be validated after a pass (unsupported "
              "form, unresolved bounds, or domain too large)"),
        _info("TV007", "anti-dependence scheduled out of order", "error",
              "a pass scheduled the write of an initially-read cell "
              "before (or concurrent with) its reader"),
        _info("RS001", "transient failure retried from snapshot", "warning",
              "a pass or compile attempt failed and was retried from the "
              "last-good IR snapshot with backoff"),
        _info("RS002", "configuration degraded", "warning",
              "retries were exhausted and the compile was reattempted at "
              "a weaker configuration on the policy chain"),
        _info("RS003", "interpreter fallback engaged", "warning",
              "every compiled configuration failed; the pristine module "
              "runs on the reference interpreter instead"),
        _info("RS004", "corrupted disk-cache entry quarantined", "warning",
              "a truncated, corrupted or version-skewed kernel-cache disk "
              "entry was quarantined and treated as a miss"),
        _info("RS005", "kernel execution failed", "error",
              "a compiled kernel's entry point was missing or raised "
              "mid-execution"),
        _info("RS006", "execution watchdog timeout", "error",
              "an execution exceeded its wall-clock budget and was "
              "cancelled by the watchdog"),
        _info("RS007", "solver checkpoint written", "note",
              "an iterative solve captured a periodic state checkpoint "
              "for crash recovery"),
        _info("RS008", "solver resumed from checkpoint", "warning",
              "a crashed solve resumed from its last checkpoint instead "
              "of restarting from step 0"),
        _info("RS009", "internal tool crash converted to a finding", "error",
              "an analyzer or driver crashed internally; the crash was "
              "converted to a structured finding instead of a traceback"),
        _info("RS010", "parallel worker degraded to sequential", "warning",
              "a wavefront worker thread failed mid-group; the remaining "
              "blocks of the dispatch re-ran sequentially"),
        _info("RS011", "parallel dispatch refused", "note",
              "a kernel without a clean parallel-safety certificate (or "
              "with a rebinding block body) executed its wavefront "
              "groups sequentially despite a multi-thread request"),
        _info("RS012", "request rejected by admission control", "warning",
              "the compile service's bounded queue was full (or the "
              "admission stage faulted); the request was rejected with "
              "a retry-after hint instead of queuing unboundedly"),
        _info("RS013", "request deadline exceeded", "warning",
              "a service request's deadline expired while queued or "
              "mid-compile; the request was cancelled with a structured "
              "response (a shared compilation continues for its other "
              "waiters)"),
        _info("RS014", "single-flight leader failed; waiter re-dispatched",
              "warning",
              "the leader compiling a fingerprint crashed or hung; one "
              "waiter was promoted to re-dispatch the compilation "
              "exactly once per round, so a crashed leader never "
              "strands its waiters"),
        _info("RS015", "compile request load-shed to a degraded "
              "configuration", "warning",
              "under queue pressure a new compile was admitted at a "
              "weaker configuration on the degradation chain "
              "(O2 -> O0 -> interpreter) instead of being rejected"),
        _info("RS016", "request rejected: service draining", "note",
              "a request arrived during graceful shutdown; it was "
              "rejected immediately while in-flight requests were "
              "allowed to finish"),
        _info("PF001", "working set exceeds the private cache", "error",
              "a tile's halo-inclusive working set is larger than the "
              "machine model's private (L2) cache, so every sweep "
              "re-streams its windows"),
        _info("PF002", "un-tileable dimension pinned to 1", "note",
              "a dimension carrying a negative dependence distance is "
              "pinned to tile size 1 by §2.1 legality and cannot be "
              "widened"),
        _info("PF003", "wavefront width below thread count", "warning",
              "the widest wavefront group holds fewer tiles than the "
              "machine has cores; the Brent bound caps the parallel "
              "speedup below the core count"),
        _info("PF004", "halo-recompute ratio above threshold", "warning",
              "halo re-reads exceed the threshold multiple of the useful "
              "(core) traffic; the tiles are too thin for the stencil's "
              "halo"),
        _info("PF005", "non-unit-stride innermost access", "warning",
              "the innermost tile extent is 1, so no access is "
              "unit-stride and vectorization degrades to scalar"),
        _info("PF006", "memory-bound kernel with redundant traffic",
              "warning",
              "the DRAM roofline term dominates compute while a "
              "significant fraction of the traffic is redundant halo "
              "re-reads"),
        _info("PF007", "prediction-confidence note", "note",
              "the static prediction's headline numbers plus why its "
              "confidence is reduced (cache-resident working set or an "
              "unprofiled wavefront)"),
        _info("FE001", "unsupported kernel construct", "error",
              "a statement or expression in the kernel body is outside "
              "the supported @stencil subset"),
        _info("FE002", "malformed kernel signature", "error",
              "the kernel signature does not follow the "
              "(out[, in], rhs, *indices) parameter convention"),
        _info("FE003", "non-affine subscript", "error",
              "an array subscript does not resolve to index variables "
              "plus constant offsets (non-affine or data-dependent "
              "indexing)"),
        _info("FE004", "subscript rank mismatch", "error",
              "an array subscript has a different arity than the "
              "kernel's index variables"),
        _info("FE005", "impure reference", "error",
              "the kernel references an unknown name or closes over "
              "non-constant state"),
        _info("FE006", "update not in normal form", "error",
              "the update is not in the (B + sum of weighted reads) / d "
              "normal form of Eq. 2"),
        _info("FE007", "invalid in-place target", "error",
              "the kernel must contain exactly one plain assignment to "
              "the output field"),
        _info("FE008", "conflicting accesses", "error",
              "the same relative offset is read twice, or tagged both "
              "current- and previous-iteration"),
        _info("FE009", "self-read of the output center", "error",
              "the output field is read at the cell being written"),
        _info("FE010", "non-constant coefficient", "error",
              "a stencil coefficient or divisor does not fold to a "
              "nonzero compile-time number"),
        _info("FE011", "in-place schedule violation", "error",
              "an inferred current-iteration (L) read is on the wrong "
              "lexicographic side for the sweep (§2.1)"),
        _info("FE012", "pattern cross-check mismatch", "error",
              "the frontend's inferred L/U pattern disagrees with the "
              "dependence engine's re-derivation from the built IR"),
    )
}

#: Backwards-compatible ``code -> title`` view of :data:`REGISTRY`.
ERROR_CODES = {code: info.title for code, info in REGISTRY.items()}


def render_registry_table(prefix: str) -> List[str]:
    """The README markdown table rows for codes starting with ``prefix``
    (the test asserting README⟷registry parity renders through this)."""
    rows = ["| Code | Severity | Description |", "| --- | --- | --- |"]
    for code, info in REGISTRY.items():
        if code.startswith(prefix):
            rows.append(
                f"| `{code}` | {info.severity} | {info.description} |"
            )
    return rows


@dataclass
class Diagnostic:
    """One finding of the static analyzer."""

    code: str
    message: str
    severity: str = "error"
    op_path: str = ""
    excerpt: str = ""
    #: Name of the pipeline pass after which the finding was produced
    #: (filled in by the :class:`~repro.analysis.analyzer.AnalysisGate`).
    after_pass: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in REGISTRY:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def title(self) -> str:
        return REGISTRY[self.code].title

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        """Multi-line human-readable form (the CLI output format)."""
        lines = [f"{self.severity}[{self.code}] {self.title}: {self.message}"]
        if self.op_path:
            lines.append(f"  at {self.op_path}")
        if self.after_pass:
            lines.append(f"  after pass {self.after_pass!r}")
        if self.excerpt:
            for row in self.excerpt.splitlines():
                lines.append(f"  | {row}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with summary helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diags: List[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def summary(self) -> str:
        counts = {s: 0 for s in SEVERITIES}
        for d in self.diagnostics:
            counts[d.severity] += 1
        parts = [f"{n} {s}{'s' if n != 1 else ''}" for s, n in counts.items() if n]
        return ", ".join(parts) if parts else "no diagnostics"

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        return "\n".join(d.render() for d in self.diagnostics)
