"""The module-level analyzer and its pipeline gate.

:func:`analyze_module` walks a module and runs every check of the
package on the ops it applies to:

=========================  ============================================
 ``cfd.stencilOp``          sweep-order check (``IP001``) and the
                            two-level dependence cross-check (``IP003``)
 ``cfd.tiled_loop``         traversal-direction consistency (``IP001``)
                            and §2.1 tile legality (``IP002``)
 ``cfd.get_parallel_blocks``  wavefront replay and audit
                            (``IP004``–``IP009``)
=========================  ============================================

:class:`AnalysisGate` adapts the analyzer to
:class:`~repro.ir.pass_manager.PassManager`: installed via
``CompileOptions.check_level`` it re-analyzes the module after the whole
pipeline (``"after-pipeline"``) or after every pass
(``"after-every-pass"``) and raises :class:`AnalysisError` on any
error-severity finding.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.dependence import cross_check_stencil
from repro.analysis.diagnostics import Diagnostic, DiagnosticReport
from repro.analysis.legality import check_sweep_order, check_tiled_loop
from repro.analysis.wavefront import check_get_parallel_blocks
from repro.ir.attributes import StringAttr
from repro.ir.location import op_excerpt, op_path
from repro.ir.operation import Operation

#: Valid values of ``CompileOptions.check_level``.
CHECK_LEVELS = ("off", "after-pipeline", "after-every-pass")


def analyze_op(
    op: Operation, cross_check: bool = True, engine: Optional[str] = None
) -> List[Diagnostic]:
    """All diagnostics for one operation (not recursing into regions)."""
    diags: List[Diagnostic] = []
    rejected = op.attributes.get("fusion_rejected")
    if isinstance(rejected, StringAttr):
        diags.append(Diagnostic(
            code="IP016",
            message=rejected.value,
            severity="note",
            op_path=op_path(op),
            excerpt=op_excerpt(op),
        ))
    if op.name == "cfd.stencilOp":
        diags.extend(check_sweep_order(op))
        if cross_check:
            diags.extend(cross_check_stencil(op))
    elif op.name == "cfd.tiled_loop":
        diags.extend(check_tiled_loop(op, engine=engine))
    elif op.name == "cfd.get_parallel_blocks":
        diags.extend(check_get_parallel_blocks(op, engine=engine))
    return diags


def analyze_module(
    module: Operation,
    cross_check: bool = True,
    memory: bool = True,
    engine: Optional[str] = None,
) -> DiagnosticReport:
    """Run every static check over ``module``.

    ``cross_check=False`` skips the probe-lowering dependence cross-check
    (the one check that is not a cheap attribute walk); the per-pass gate
    uses it to keep ``after-every-pass`` overhead proportionate.
    ``memory=False`` additionally skips the abstract-interpretation
    memory-safety sweep (:mod:`repro.analysis.absint`). ``engine``
    selects the decision procedure of every gate (see
    :func:`repro.analysis.affine.resolve_verify_engine`).
    """
    report = DiagnosticReport()
    for op in module.walk():
        report.extend(analyze_op(op, cross_check=cross_check, engine=engine))
    if memory:
        from repro.analysis.absint import run_memory_safety

        report.extend(run_memory_safety(module, engine=engine).diagnostics)
    return report


class AnalysisError(RuntimeError):
    """Raised by :class:`AnalysisGate` when a module fails analysis."""

    def __init__(self, report: DiagnosticReport, after_pass: Optional[str] = None):
        self.report = report
        self.after_pass = after_pass
        where = f" after pass {after_pass!r}" if after_pass else ""
        super().__init__(
            f"static analysis failed{where} ({report.summary()}):\n"
            + report.render()
        )


class AnalysisGate:
    """A :class:`PassManager` gate running the analyzer over the module.

    Parameters
    ----------
    fail_fast:
        Raise :class:`AnalysisError` as soon as a call produces an
        error-severity diagnostic (the pipeline behaviour). ``False``
        collects everything into :attr:`report` instead (the CLI lint
        behaviour).
    cross_check:
        Forwarded to :func:`analyze_module`. The pipeline's end-of-run
        call always cross-checks; per-pass calls follow this flag.
    engine:
        Decision-procedure selection forwarded to every gate
        (``None`` defers to ``REPRO_VERIFY`` / ``auto``).
    """

    def __init__(
        self,
        fail_fast: bool = True,
        cross_check: bool = True,
        engine: Optional[str] = None,
    ):
        self.fail_fast = fail_fast
        self.cross_check = cross_check
        self.engine = engine
        self.report = DiagnosticReport()

    def __call__(self, module: Operation, after_pass: Optional[str] = None) -> None:
        found = analyze_module(
            module, cross_check=self.cross_check, engine=self.engine
        )
        for diag in found.diagnostics:
            diag.after_pass = after_pass
        self.report.extend(found.diagnostics)
        if self.fail_fast and found.has_errors:
            raise AnalysisError(found, after_pass=after_pass)
