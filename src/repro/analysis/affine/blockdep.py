"""Block-level dependence queries as affine sets (§2.1, Fig. 1).

The enumerated engines answer "does tile-size vector ``T`` let L offset
``o`` cross *forward* at block granularity?" by materialising every
corner alignment: the product of the per-dimension ranges
``floor(o_d/T_d) .. floor((T_d-1+o_d)/T_d)``. That product is
exponential in the rank and, for offsets much larger than the tile,
wide per dimension — offset 128 at tile size 2 spans 65 block offsets
per dim, so rank 3 enumerates 65³ ≈ 275k tuples just to conclude the
tiling is legal.

This module answers the same question as an affine overlap test. The
reachable block offsets form the integer box

    floor(o_d / T_d)  <=  b_d  <=  floor((T_d - 1 + o_d) / T_d)

(every integer in between is attained at some in-tile alignment), and
the §2.1 violation condition — ``b != 0`` and ``sweep·b`` not
lexicographically negative — decomposes into the disjoint lex-disjuncts

    D_k = { b : b_0 = ... = b_{k-1} = 0,  sweep·b_k >= 1 },  k < rank

(the all-zero tuple satisfies no disjunct, so ``b != 0`` is implied).
Each ``D_k`` intersected with the box is again a box: emptiness is
decided — and a violating block sampled — by
:class:`~repro.analysis.affine.sets.AffineSet` without enumerating a
single corner alignment, at a cost independent of both the mesh and the
tile sizes. When violations do exist, listing them walks only the
violating boxes, so materialisation is linear in the *output* rather
than in the full corner product.
"""

from __future__ import annotations

from itertools import product
from typing import List, Optional, Sequence, Tuple

from repro.analysis.affine.sets import AffineSet, AffineUnknown, LinExpr

Offset = Tuple[int, ...]


def block_offset_bounds(element_offset: int, tile_size: int) -> Tuple[int, int]:
    """Inclusive bounds of the block offsets one element offset reaches
    along one dimension (the corner extremes of Fig. 1)."""
    return (
        element_offset // tile_size,
        (tile_size - 1 + element_offset) // tile_size,
    )


def _var(d: int) -> str:
    return f"b{d}"


def reachable_block_box(
    offset: Offset, tile_sizes: Sequence[int]
) -> AffineSet:
    """The affine box of block offsets ``offset`` can produce."""
    names = [_var(d) for d in range(len(tile_sizes))]
    bounds = [
        block_offset_bounds(offset[d], int(tile_sizes[d]))
        for d in range(len(tile_sizes))
    ]
    return AffineSet.box(names, bounds)


def violation_sets(
    offset: Offset, sweep: int, tile_sizes: Sequence[int]
) -> List[AffineSet]:
    """The §2.1-violating region as disjoint affine sets (one lex
    disjunct per leading dimension)."""
    box = reachable_block_box(offset, tile_sizes)
    out: List[AffineSet] = []
    for k in range(len(tile_sizes)):
        s = box
        for d in range(k):
            s = s.and_eq0(LinExpr.var(_var(d)))
        # sweep * b_k >= 1
        s = s.and_ge0(LinExpr.var(_var(k), sweep) - LinExpr.of(1))
        out.append(s)
    return out


def _point_to_block(env, rank: int) -> Offset:
    return tuple(int(env.get(_var(d), 0)) for d in range(rank))


def violation_witness(
    offset: Offset, sweep: int, tile_sizes: Sequence[int]
) -> Optional[Offset]:
    """One §2.1-violating block offset, or ``None`` when the tiling is
    legal for this element offset. Decided per lex disjunct in O(rank)
    affine samples — never by corner enumeration."""
    for s in violation_sets(offset, sweep, tile_sizes):
        try:
            env = s.sample_point()
        except AffineUnknown:  # pragma: no cover - boxes always decide
            return None
        if env is not None:
            return _point_to_block(env, len(tile_sizes))
    return None


def violating_blocks(
    offset: Offset, sweep: int, tile_sizes: Sequence[int]
) -> List[Offset]:
    """All §2.1-violating block offsets, lexicographically sorted.

    Walks each non-empty lex-disjunct box over its exact affine bounds:
    the cost is linear in the number of violations returned, not in the
    corner product the enumerated engine scans.
    """
    rank = len(tile_sizes)
    blocks: List[Offset] = []
    for s in violation_sets(offset, sweep, tile_sizes):
        if s.is_empty():
            continue
        per_dim = []
        for d in range(rank):
            lo, hi = s.bounds(LinExpr.var(_var(d)))
            per_dim.append(range(lo, hi + 1))
        blocks.extend(product(*per_dim))
    return sorted(blocks)
