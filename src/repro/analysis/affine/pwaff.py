"""Piecewise-affine index expressions over an affine domain.

The tiling pass's window arithmetic (``max(iv - halo, 0)``,
``min(core_end + halo, n)``) is not affine, but it *is* piecewise
affine: each ``min``/``max`` splits the induction-variable space into
two affine regions. :class:`PwAff` represents an index value as a small
set of ``(guard, expression)`` pieces — the guard an
:class:`~repro.analysis.affine.sets.AffineSet` over the same variables,
the expression a :class:`~repro.analysis.affine.sets.LinExpr` — so the
in-bounds prover can decide every access by a handful of emptiness
tests instead of enumerating the tile grid.

Guards need not partition: they only need to *cover* the context domain
(a point may satisfy several guards whose expressions then agree or
over-approximate). ``min``/``max`` produce exact complementary splits;
``select`` joins both branches (a sound over-approximation, matching
the interval engine's join). ``floordiv``/``rem`` introduce an
existential quotient variable via the caller-supplied ``fresh`` namer.

Piece counts are capped: blowing past :data:`MAX_PIECES` raises
:class:`~repro.analysis.affine.sets.AffineUnknown`, which callers treat
as "not affine — fall back to enumeration".
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.affine.sets import AffineSet, AffineUnknown, LinExpr

#: Cap on pieces per value; past this the expression is "not affine".
MAX_PIECES = 32

Piece = Tuple[AffineSet, LinExpr]


class PwAff:
    """A piecewise-affine integer value: ``[(guard, expr), ...]``.

    ``exact`` records whether the pieces are an exact case analysis of
    the value (every ``min``/``max``/``floordiv`` split is); it is
    cleared by :meth:`join`, whose branches merely over-approximate.
    Exact values support domain forking: a client may case-split its
    context on the guards and treat each piece's expression as the
    value.
    """

    __slots__ = ("pieces", "exact")

    def __init__(self, pieces: List[Piece], exact: bool = True) -> None:
        if not pieces:
            raise AffineUnknown("empty piecewise value")
        if len(pieces) > MAX_PIECES:
            raise AffineUnknown(
                f"piecewise value exceeds {MAX_PIECES} pieces"
            )
        self.pieces = list(pieces)
        self.exact = exact

    # ---- constructors ----------------------------------------------------

    @classmethod
    def const(cls, c: int) -> "PwAff":
        return cls([(AffineSet.universe(), LinExpr.of(c))])

    @classmethod
    def var(cls, name: str) -> "PwAff":
        return cls([(AffineSet.universe(), LinExpr.var(name))])

    @classmethod
    def expr(cls, e: LinExpr) -> "PwAff":
        return cls([(AffineSet.universe(), e)])

    @property
    def is_const(self) -> bool:
        return len(self.pieces) == 1 and self.pieces[0][1].is_const

    def as_const(self) -> Optional[int]:
        if self.is_const:
            return self.pieces[0][1].const
        return None

    # ---- arithmetic ------------------------------------------------------

    def _map2(self, other: "PwAff", fn) -> "PwAff":
        out: List[Piece] = []
        for ga, ea in self.pieces:
            for gb, eb in other.pieces:
                out.append((ga.conjoin(gb), fn(ea, eb)))
        return PwAff(out, self.exact and other.exact)

    def __add__(self, other: "PwAff") -> "PwAff":
        return self._map2(other, lambda a, b: a + b)

    def __sub__(self, other: "PwAff") -> "PwAff":
        return self._map2(other, lambda a, b: a - b)

    def __neg__(self) -> "PwAff":
        return PwAff([(g, -e) for g, e in self.pieces], self.exact)

    def scaled(self, k: int) -> "PwAff":
        return PwAff([(g, e.scaled(k)) for g, e in self.pieces], self.exact)

    def mul(self, other: "PwAff") -> "PwAff":
        """Multiplication, defined when either side is constant."""
        k = other.as_const()
        if k is not None:
            return self.scaled(k)
        k = self.as_const()
        if k is not None:
            return other.scaled(k)
        raise AffineUnknown("product of two non-constant index values")

    # ---- the piecewise combinators ---------------------------------------

    def min_(self, other: "PwAff") -> "PwAff":
        out: List[Piece] = []
        for ga, ea in self.pieces:
            for gb, eb in other.pieces:
                g = ga.conjoin(gb)
                # a <= b -> a;  b <= a - 1 -> b  (exact split)
                out.append((g.and_le(ea, eb), ea))
                out.append((g.and_ge0(ea - eb - 1), eb))
        return PwAff(out, self.exact and other.exact)

    def max_(self, other: "PwAff") -> "PwAff":
        out: List[Piece] = []
        for ga, ea in self.pieces:
            for gb, eb in other.pieces:
                g = ga.conjoin(gb)
                out.append((g.and_le(eb, ea), ea))
                out.append((g.and_ge0(eb - ea - 1), eb))
        return PwAff(out, self.exact and other.exact)

    def join(self, other: "PwAff") -> "PwAff":
        """Both branches possible (``arith.select`` without the cond)."""
        return PwAff(self.pieces + other.pieces, exact=False)

    def floordiv(self, m: int, fresh: Callable[[str], str]) -> "PwAff":
        """``floor(self / m)`` for a positive constant ``m``, via an
        existential quotient: ``q`` with ``0 <= e - m*q <= m - 1``."""
        if m <= 0:
            raise AffineUnknown("floordiv by a non-positive constant")
        out: List[Piece] = []
        for g, e in self.pieces:
            q = LinExpr.var(fresh("q"))
            rem = e - q.scaled(m)
            out.append(
                (g.and_ge0(rem).and_ge0(LinExpr.of(m - 1) - rem), q)
            )
        return PwAff(out, self.exact)

    def rem(self, m: int, fresh: Callable[[str], str]) -> "PwAff":
        """``self mod m`` (non-negative) for a positive constant ``m``."""
        if m <= 0:
            raise AffineUnknown("remainder by a non-positive constant")
        out: List[Piece] = []
        for g, e in self.pieces:
            q = LinExpr.var(fresh("q"))
            rem = e - q.scaled(m)
            out.append(
                (g.and_ge0(rem).and_ge0(LinExpr.of(m - 1) - rem), rem)
            )
        return PwAff(out, self.exact)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PwAff(" + "; ".join(
            f"{e!r} if {g!r}" for g, e in self.pieces
        ) + ")"


#: three-valued verdict of a piecewise proof
PROVEN, VIOLATES, UNKNOWN = "proven", "violates", "unknown"


def prove_ge0(pw: PwAff, domain: AffineSet) -> str:
    """Is ``pw >= 0`` for every point of ``domain``?

    Returns :data:`PROVEN` when every piece is non-negative on its
    guard, :data:`VIOLATES` when some reachable piece goes negative (the
    domain must be exact for the caller to treat this as an error), and
    :data:`UNKNOWN` when the integer emptiness test gave up.
    """
    verdict = PROVEN
    for g, e in pw.pieces:
        bad = domain.conjoin(g).and_ge0(-e - 1)
        try:
            if not bad.is_empty():
                return VIOLATES
        except AffineUnknown:
            verdict = UNKNOWN
    return verdict


def prove_lt(pw: PwAff, bound: PwAff, domain: AffineSet) -> str:
    """Is ``pw < bound`` for every point of ``domain``?"""
    verdict = PROVEN
    for ga, ea in pw.pieces:
        for gb, eb in bound.pieces:
            bad = domain.conjoin(ga).conjoin(gb).and_ge0(ea - eb)
            try:
                if not bad.is_empty():
                    return VIOLATES
            except AffineUnknown:
                verdict = UNKNOWN
    return verdict


def hull(pw: PwAff, domain: AffineSet) -> Tuple[int, int]:
    """The exact attained ``[lo, hi]`` of ``pw`` over ``domain``
    (the affine analogue of the interval engine's proven hull). Raises
    :class:`AffineUnknown` when unbounded or undecidable; the hull of a
    value over an empty domain is also unknown (there is nothing to
    attain)."""
    lo: Optional[int] = None
    hi: Optional[int] = None
    for g, e in pw.pieces:
        piece_dom = domain.conjoin(g)
        if piece_dom.is_empty():
            continue
        a, b = piece_dom.bounds(e)
        lo = a if lo is None else min(lo, a)
        hi = b if hi is None else max(hi, b)
    if lo is None or hi is None:
        raise AffineUnknown("hull over an empty domain")
    return lo, hi
