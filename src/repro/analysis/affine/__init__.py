"""Integer affine sets: the symbolic decision procedure of the analyzers.

The enumeration-based engines of :mod:`repro.analysis.absint` and
:mod:`repro.analysis.tv` prove their facts by visiting every statement
instance — exact, but linear in the mesh size. This package supplies the
polyhedral alternative: affine maps over induction variables and mesh
parameters, conjunctions of linear constraints, and emptiness /
containment / overlap tests decided by Fourier–Motzkin elimination with
exact integer arithmetic (:mod:`~repro.analysis.affine.sets`), a
piecewise-affine expression layer for ``min``/``max``/``floordiv`` index
arithmetic (:mod:`~repro.analysis.affine.pwaff`), and the in-bounds
prover that walks a function once and decides every affine access at a
cost independent of the mesh (:mod:`~repro.analysis.affine.prover`).

Engine selection is shared by every client gate: the ``REPRO_VERIFY``
environment variable (or an explicit option) picks one of

``auto``
    symbolic first, silent fallback to enumeration for anything the
    affine engines cannot express (the default);
``symbolic``
    affine engines forced on; unsupported sites degrade to explicit
    precision diagnostics instead of silently enumerating;
``enumerated``
    the legacy per-instance engines only.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.analysis.affine.sets import (
    AffineSet,
    AffineUnknown,
    LinExpr,
    enumerate_points,
)

#: Environment variable selecting the verification engine.
VERIFY_ENGINE_ENV = "REPRO_VERIFY"

#: Valid engine names.
VERIFY_ENGINES = ("auto", "symbolic", "enumerated")


def resolve_verify_engine(explicit: Optional[str] = None) -> str:
    """The effective engine mode: explicit option > environment > auto."""
    mode = explicit or os.environ.get(VERIFY_ENGINE_ENV) or "auto"
    if mode not in VERIFY_ENGINES:
        raise ValueError(
            f"unknown verification engine {mode!r}; "
            f"expected one of {VERIFY_ENGINES}"
        )
    return mode


class EngineStats:
    """Per-gate tallies of which decision procedure actually answered.

    Every gate client (legality, wavefront, dependence, absint, TV)
    records one event per query it resolves: the gate name plus the
    engine that produced the verdict (``"symbolic"`` or
    ``"enumerated"``). ``repro.analysis --stats`` reads the snapshot to
    report symbolic coverage vs enumeration fallback per gate.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, Dict[str, int]] = {}
        self._times: Dict[str, float] = {}

    def record(
        self, gate: str, engine: str, n: int = 1, seconds: float = 0.0
    ) -> None:
        per_gate = self._counts.setdefault(gate, {})
        per_gate[engine] = per_gate.get(engine, 0) + n
        if seconds:
            self._times[gate] = self._times.get(gate, 0.0) + seconds

    def record_time(self, gate: str, seconds: float) -> None:
        self._times[gate] = self._times.get(gate, 0.0) + seconds

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        gates = set(self._counts) | set(self._times)
        return {
            gate: {
                "counts": dict(self._counts.get(gate, {})),
                "seconds": round(self._times.get(gate, 0.0), 6),
            }
            for gate in sorted(gates)
        }

    def reset(self) -> None:
        self._counts.clear()
        self._times.clear()


#: The process-wide registry ``repro.analysis --stats`` reports from.
ENGINE_STATS = EngineStats()


__all__ = [
    "AffineSet",
    "AffineUnknown",
    "ENGINE_STATS",
    "EngineStats",
    "LinExpr",
    "VERIFY_ENGINES",
    "VERIFY_ENGINE_ENV",
    "enumerate_points",
    "resolve_verify_engine",
]
